#!/usr/bin/env python3
"""Capacity stealing on a skewed multiprogrammed mix.

Runs Table 2's MIX1 — apsi, art, equake, and mesa — where art's
working set far exceeds a 2 MB private cache while mesa barely uses
its share.  Private caches force art to evict to memory; CMP-NuRAPID
demotes art's overflow into mesa's under-used d-group (Section 3.3),
trading a 20-cycle neighbour access for a 300-cycle memory miss.

The script prints per-design miss rates, the demotion/promotion
activity, and how CMP-NuRAPID's d-group occupancy redistributes
capacity across cores.

Usage::

    python examples/capacity_stealing.py [accesses_per_core]
"""

import itertools
import sys

from repro import CmpSystem, NurapidCache, PrivateCaches, SharedCache, make_mix
from repro.experiments import format_table

MIX = "MIX1"


def run(design, accesses_per_core):
    system = CmpSystem(design)
    workload = make_mix(MIX)
    events = workload.events(accesses_per_core=2 * accesses_per_core)
    system.run(itertools.islice(events, accesses_per_core * workload.num_cores))
    system.reset_stats()
    system.run(events)
    return workload, system.stats()


def main():
    accesses_per_core = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000

    workload, shared_stats = run(SharedCache(), accesses_per_core)
    _, private_stats = run(PrivateCaches(), accesses_per_core)
    nurapid = NurapidCache()
    _, nurapid_stats = run(nurapid, accesses_per_core)

    apps = ", ".join(f"P{i}={app.name}" for i, app in enumerate(workload.apps))
    print(f"{MIX}: {apps}")
    print()
    print(
        format_table(
            ["design", "L2 miss rate", "rel. IPC (sum)"],
            [
                [
                    name,
                    f"{100 * stats.accesses.miss_rate:.1f}%",
                    f"{stats.aggregate_ipc / shared_stats.aggregate_ipc:.3f}",
                ]
                for name, stats in (
                    ("uniform-shared", shared_stats),
                    ("private", private_stats),
                    ("cmp-nurapid", nurapid_stats),
                )
            ],
        )
    )
    print()
    print(
        f"CMP-NuRAPID demotions: {nurapid.counters.demotions}, "
        f"promotions: {nurapid.counters.promotions}"
    )
    print(
        "closest-d-group share of hits: "
        f"{100 * nurapid_stats.dgroups.closest_fraction_of_hits:.1f}%"
    )
    print()
    occupancy_rows = [
        [
            f"d-group {chr(ord('a') + index)} (P{index}'s closest)",
            group.occupied_count,
            group.num_frames,
        ]
        for index, group in enumerate(nurapid.data.dgroups)
    ]
    print(format_table(["d-group", "occupied frames", "total frames"], occupancy_rows))
    print()
    print(
        "Expected: private caches miss far more than the shared cache "
        "(art thrashes its 2 MB); CMP-NuRAPID stays near the shared "
        "cache's miss rate while keeping private-cache-like latency — "
        "the Figure 11/12 result."
    )


if __name__ == "__main__":
    main()
