#!/usr/bin/env python3
"""Drive the simulators from a trace file.

Real evaluations replay traces captured from full-system simulators or
binary instrumentation.  This example writes a synthetic trace to disk
in the repo's one-line-per-event format, reads it back, and replays the
identical stream through two L2 designs — the workflow a user with
their own Simics/gem5/Pin traces would follow (convert to
``core address(hex) R|W [gap] [colocated]`` lines and go).

Usage::

    python examples/trace_driven.py [trace_path] [accesses_per_core]
"""

import sys
import tempfile
from pathlib import Path

from repro import CmpSystem, NurapidCache, SharedCache, make_workload
from repro.experiments import format_table
from repro.workloads import tracefile


def replay(design, path):
    system = CmpSystem(design)
    system.run(tracefile.read_trace(path))
    return system.stats()


def main():
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    accesses_per_core = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000

    if path is None:
        path = Path(tempfile.gettempdir()) / "repro_example_trace.txt"

    workload = make_workload("specjbb")
    count = tracefile.write_trace(
        workload.events(accesses_per_core=accesses_per_core), path
    )
    size_kb = path.stat().st_size // 1024
    print(f"wrote {count} events ({size_kb} KiB) to {path}")
    print()

    rows = []
    baseline = None
    for design in (SharedCache(), NurapidCache()):
        stats = replay(design, path)
        if baseline is None:
            baseline = stats.throughput
        rows.append(
            [
                design.name,
                f"{100 * stats.accesses.miss_rate:.1f}%",
                f"{stats.throughput / baseline:.3f}",
            ]
        )
    print(format_table(["design", "L2 miss rate", "rel. perf"], rows))
    print()
    print(
        "Both designs replayed the byte-identical stream from disk — "
        "swap in your own trace file to evaluate real workloads."
    )


if __name__ == "__main__":
    main()
