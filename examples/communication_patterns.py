#!/usr/bin/env python3
"""In-situ communication on a producer-consumer microbenchmark.

One core produces values into a set of shared blocks; three cores
consume them.  Under private MESI caches every update invalidates the
consumers, so each round pays read-write-sharing coherence misses.
CMP-NuRAPID's MESIC protocol keeps one dirty copy shared by everyone
(the communication state), so after the first round the consumers only
ever *hit* — the behaviour Section 3.2 of the paper builds.

The script drives both designs with the identical pattern and prints a
round-by-round comparison plus the final coherence states.

Usage::

    python examples/communication_patterns.py [rounds]
"""

import sys

from repro import Access, AccessType, MissClass, NurapidCache, PrivateCaches
from repro.experiments import format_table

SHARED_BLOCKS = [0x900000 + i * 128 for i in range(32)]
PRODUCER = 0
CONSUMERS = (1, 2, 3)


def run_round(design, record):
    """One communication round: produce every block, then consume."""
    for address in SHARED_BLOCKS:
        result = design.access(Access(PRODUCER, address, AccessType.WRITE))
        record["producer"][result.miss_class] = (
            record["producer"].get(result.miss_class, 0) + 1
        )
    for consumer in CONSUMERS:
        for address in SHARED_BLOCKS:
            result = design.access(Access(consumer, address, AccessType.READ))
            record["consumers"][result.miss_class] = (
                record["consumers"].get(result.miss_class, 0) + 1
            )


def drive(design, rounds):
    per_round = []
    for _ in range(rounds):
        record = {"producer": {}, "consumers": {}}
        run_round(design, record)
        per_round.append(record)
    return per_round


def main():
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    private = PrivateCaches()
    nurapid = NurapidCache()
    private_rounds = drive(private, rounds)
    nurapid_rounds = drive(nurapid, rounds)

    rows = []
    for index, (p, n) in enumerate(zip(private_rounds, nurapid_rounds)):
        rows.append(
            [
                index + 1,
                p["consumers"].get(MissClass.RWS, 0),
                n["consumers"].get(MissClass.RWS, 0),
                p["consumers"].get(MissClass.HIT, 0),
                n["consumers"].get(MissClass.HIT, 0),
            ]
        )
    print(f"{len(SHARED_BLOCKS)} shared blocks, 1 producer, 3 consumers")
    print()
    print(
        format_table(
            [
                "round",
                "private RWS misses",
                "nurapid RWS misses",
                "private hits",
                "nurapid hits",
            ],
            rows,
        )
    )
    print()
    example = SHARED_BLOCKS[0]
    states = [nurapid.state_of(core, example) for core in range(4)]
    print(
        "CMP-NuRAPID coherence states for one block after the run: "
        + ", ".join(f"P{core}={state.value}" for core, state in enumerate(states))
    )
    copies = len(list(nurapid.data.frames_holding(example)))
    print(f"Data copies of that block in the shared array: {copies}")
    print()
    print(
        "Expected: private caches keep paying consumer RWS misses every "
        "round; CMP-NuRAPID pays them only in round 1, after which the "
        "whole communication group stays in state C around one copy."
    )


if __name__ == "__main__":
    main()
