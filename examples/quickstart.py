#!/usr/bin/env python3
"""Quickstart: compare all five L2 designs on one workload.

Runs the paper's five cache organizations (uniform-shared, CMP-SNUCA,
private MESI, ideal, and CMP-NuRAPID) on the synthetic OLTP workload
and prints each design's access mix and performance relative to the
uniform-shared baseline — a miniature of the paper's Figure 10.

Usage::

    python examples/quickstart.py [accesses_per_core]

The default trace is short so the script finishes in under a minute;
expect the relative numbers to sharpen with longer traces.

Set ``REPRO_CHECK_INVARIANTS=N`` to run the model invariant checker
every N accesses (paranoid mode) — CI uses this as a smoke test that
every design stays structurally legal under real traffic.  Set
``REPRO_BUS_MODEL=eventq`` to rebase every design's interconnect on
the discrete-event scheduler (bit-identical results by construction).

Observability (applied to the cmp-nurapid run only, so the other
designs stay untouched baselines):

* ``REPRO_TRACE=out.jsonl`` — stream its structured events as JSONL;
* ``REPRO_METRICS=m.json`` (and ``REPRO_METRICS_EVERY=N``, default
  10000) — write interval metric samples (CSV if the path ends .csv);
* ``REPRO_PROFILE=1`` — print wall-clock timings of the hot paths.
"""

import itertools
import os
import sys

from repro import CmpSystem, MetricsCollector, MissClass, Profiler, Tracer, make_workload
from repro.experiments import format_table
from repro.experiments.runner import build_design

CHECK_EVERY = int(os.environ.get("REPRO_CHECK_INVARIANTS", "0"))
TRACE_PATH = os.environ.get("REPRO_TRACE")
METRICS_PATH = os.environ.get("REPRO_METRICS")
METRICS_EVERY = int(os.environ.get("REPRO_METRICS_EVERY", "10000"))
PROFILE = bool(int(os.environ.get("REPRO_PROFILE", "0") or "0"))

#: The design the observability env vars instrument.
OBSERVED_DESIGN = "cmp-nurapid"


def run_design(name, accesses_per_core):
    """Warm up and measure one design; return its stats."""
    design = build_design(name)  # honors REPRO_BUS_MODEL
    observed = name == OBSERVED_DESIGN
    tracer = Tracer(sink=TRACE_PATH) if observed and TRACE_PATH else None
    metrics = (
        MetricsCollector(sample_every=METRICS_EVERY)
        if observed and METRICS_PATH
        else None
    )
    system = CmpSystem(design, tracer=tracer, metrics=metrics)
    profiler = Profiler() if observed and PROFILE else None
    if profiler is not None:
        profiler.instrument(system)
    workload = make_workload("oltp")
    events = workload.events(accesses_per_core=2 * accesses_per_core)
    warmup_events = accesses_per_core * workload.num_cores
    if CHECK_EVERY:
        from repro.harness import HarnessConfig, run_events

        run_events(
            system, events, warmup_events,
            HarnessConfig(check_every=CHECK_EVERY),
            profiler=profiler,
        )
    else:
        system.run(itertools.islice(events, warmup_events))
        system.reset_stats()
        system.run(events)
    if metrics is not None:
        series = metrics.finish()
        if METRICS_PATH.endswith(".csv"):
            series.to_csv(METRICS_PATH)
        else:
            series.to_json(METRICS_PATH)
        print(f"[{name}] metrics: {len(series)} sample(s) -> {METRICS_PATH}")
    if tracer is not None:
        tracer.close()
        print(f"[{name}] trace: {tracer.emitted} event(s) -> {TRACE_PATH}")
    if profiler is not None:
        print(profiler.report())
    return system.stats()


def main():
    accesses_per_core = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    names = [
        "uniform-shared",
        "non-uniform-shared",
        "private",
        "ideal",
        "cmp-nurapid",
    ]
    rows = []
    baseline = None
    for name in names:
        stats = run_design(name, accesses_per_core)
        if baseline is None:
            baseline = stats.throughput
        acc = stats.accesses
        rows.append(
            [
                name,
                f"{100 * acc.fraction(MissClass.HIT):.1f}%",
                f"{100 * acc.fraction(MissClass.ROS):.1f}%",
                f"{100 * acc.fraction(MissClass.RWS):.1f}%",
                f"{100 * acc.fraction(MissClass.CAPACITY):.1f}%",
                f"{stats.throughput / baseline:.3f}",
            ]
        )
    print("OLTP workload, 4-core CMP, 8 MB L2 budget")
    print()
    print(
        format_table(
            ["design", "hits", "ROS", "RWS", "capacity", "rel. perf"], rows
        )
    )
    print()
    print(
        "Expected shape (paper Figure 10): cmp-nurapid beats both the "
        "shared and private baselines; ideal is the upper bound."
    )


if __name__ == "__main__":
    main()
