#!/usr/bin/env python3
"""Explore CMP-NuRAPID's design space on one workload.

Sweeps the knobs the paper discusses — tag capacity (Section 2.2.2),
the controlled-replication threshold (Section 3.1), and the promotion
policy (Section 3.3.1) — and prints miss rates and relative
performance for each configuration, reproducing the qualitative
arguments behind the paper's chosen design point.

Usage::

    python examples/design_space.py [workload] [accesses_per_core]
"""

import itertools
import sys

from repro import CmpSystem, NurapidCache, make_workload
from repro.common.params import NurapidParams
from repro.experiments import format_table


def run(params, workload_name, accesses_per_core):
    design = NurapidCache(params)
    system = CmpSystem(design)
    workload = make_workload(workload_name)
    events = workload.events(accesses_per_core=2 * accesses_per_core)
    system.run(itertools.islice(events, accesses_per_core * workload.num_cores))
    system.reset_stats()
    system.run(events)
    stats = system.stats()
    return design, stats


def main():
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "oltp"
    accesses_per_core = int(sys.argv[2]) if len(sys.argv) > 2 else 80_000

    configurations = [
        ("baseline (2x tags, use-2, fastest)", NurapidParams()),
        ("1x tags", NurapidParams(tag_capacity_factor=1)),
        ("4x tags", NurapidParams(tag_capacity_factor=4)),
        ("replicate on first use", NurapidParams(replicate_on_use=1)),
        ("replicate on third use", NurapidParams(replicate_on_use=3)),
        ("next-fastest promotion", NurapidParams(promotion_policy="next-fastest")),
    ]

    rows = []
    baseline_throughput = None
    for label, params in configurations:
        design, stats = run(params, workload_name, accesses_per_core)
        if baseline_throughput is None:
            baseline_throughput = stats.throughput
        rows.append(
            [
                label,
                f"{100 * stats.accesses.miss_rate:.2f}%",
                f"{100 * stats.dgroups.distribution()['closest']:.1f}%",
                f"{stats.throughput / baseline_throughput:.3f}",
            ]
        )

    print(f"CMP-NuRAPID design space on {workload_name}")
    print()
    print(
        format_table(
            ["configuration", "miss rate", "closest-d-group accesses", "rel. perf"],
            rows,
        )
    )
    print()
    print(
        "Paper's choices: 2x tags (almost as good as 4x at a quarter of "
        "the overhead), replication on the second use (first-use copies "
        "waste capacity on never-reused blocks), and the fastest "
        "promotion policy (next-fastest pollutes a neighbour's closest "
        "d-group)."
    )


if __name__ == "__main__":
    main()
