"""Property tests: the SoA pool's primitives track the scalar L1.

Three layers, all against random streams:

* the **vectorized primitives** (masked tag :meth:`L1Pool.probe`,
  :meth:`L1Pool.classify`, and the occurrence-ranked recency update in
  :meth:`L1Pool.commit_hits`) must agree element-wise with what
  ``L1Cache``/``SetAssociativeArray`` compute one access at a time;
* the **scalar fallback ops** (``load``/``store``/``fill``/``revoke``/
  ``invalidate``) must mirror ``L1Cache`` return values, stats, and
  array state bit for bit over arbitrary interleavings;
* **re-sync round-trips** (:meth:`L1Pool.from_caches` →
  :meth:`L1Pool.write_back`) must be lossless for every field the L1
  ever mutates.

A tiny 4 KB / 2-way / 128 B geometry (16 sets) keeps collision and
eviction pressure high at small stream lengths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.l1 import L1Cache
from repro.common.params import KB, CacheGeometry, L1Params
from repro.kernel import L1Pool

SMALL = L1Params(geometry=CacheGeometry(4 * KB, 2, 128))
BLOCK = SMALL.geometry.block_size
L2_BLOCK = 1024  # spans several L1 blocks, exercising inclusion sweeps


def small_l1() -> L1Cache:
    return L1Cache(SMALL)


# One op: (kind, block, offset, writable, dirty).  Blocks 0..63 over 16
# sets force plenty of aliasing and eviction.
ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=BLOCK - 1),
        st.booleans(),
        st.booleans(),
    ),
    min_size=1,
    max_size=200,
)


def apply_scalar(l1: L1Cache, op):
    kind, block, offset, writable, dirty = op
    address = block * BLOCK + offset
    if kind == 0:
        return l1.load(address)
    if kind == 1:
        return l1.store(address)
    if kind == 2:
        return l1.fill(address, writable=writable, dirty=dirty)
    if kind == 3:
        return l1.revoke_writable(address)
    if kind == 4:
        return l1.invalidate(address)
    return l1.invalidate_l2_block(block * BLOCK, L2_BLOCK)


def apply_pool(pool: L1Pool, slot: int, op):
    kind, block, offset, writable, dirty = op
    address = block * BLOCK + offset
    if kind == 0:
        return pool.load(slot, address)
    if kind == 1:
        return pool.store(slot, address)
    if kind == 2:
        return pool.fill(slot, address, writable=writable, dirty=dirty)
    if kind == 3:
        return pool.revoke_writable(slot, address)
    if kind == 4:
        return pool.invalidate(slot, address)
    return pool.invalidate_l2_block(slot, block * BLOCK, L2_BLOCK)


def cache_state(l1: L1Cache):
    """Every mutable field, as one comparable structure."""
    return (
        [
            (set_index, way, entry.tag, entry.state, entry.writable,
             entry.dirty, entry.lru)
            for set_index, way, entry in l1.array.entries()
        ],
        l1.array._clock,
        l1.stats,
    )


def assert_pool_matches(pool: L1Pool, slot: int, l1: L1Cache):
    """The pool's ``slot`` equals ``l1`` after a write-back."""
    mirror = small_l1()
    single = L1Pool(1, SMALL)
    for name in ("tags", "valid", "writable", "dirty", "lru"):
        getattr(single, name)[0] = getattr(pool, name)[slot]
    single.clock[0] = pool.clock[slot]
    for name, array in single.counters.items():
        array[0] = pool.counters[name][slot]
    single.write_back([mirror])
    got_entries, got_clock, got_stats = cache_state(mirror)
    want_entries, want_clock, want_stats = cache_state(l1)
    # write_back normalizes invalid entries' tag/writable/dirty/lru to
    # whatever the arrays hold; the scalar cache keeps stale tags on
    # invalid entries too, and both agree because invalidate preserves
    # them identically.  Compare everything.
    assert got_entries == want_entries
    assert got_clock == want_clock
    assert got_stats == want_stats


@settings(max_examples=60, deadline=None)
@given(ops=ops)
def test_scalar_ops_mirror_l1cache(ops):
    """Same op stream: same return values, stats, and final state."""
    l1 = small_l1()
    pool = L1Pool(2, SMALL)  # slot 1 stays untouched and must stay zero
    for op in ops:
        want = apply_scalar(l1, op)
        got = apply_pool(pool, 0, op)
        assert got == want, (op, got, want)
    assert_pool_matches(pool, 0, l1)
    assert not pool.valid[1].any()
    assert pool.clock[1] == 0


@settings(max_examples=60, deadline=None)
@given(ops=ops, probes=st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=50
))
def test_probe_and_classify_match_scalar(ops, probes):
    """After arbitrary state, batched probe/classify == per-access L1."""
    l1 = small_l1()
    pool = L1Pool(1, SMALL)
    for op in ops:
        apply_scalar(l1, op)
        apply_pool(pool, 0, op)

    addresses = np.asarray([block * BLOCK for block in probes])
    slots = np.zeros(len(probes), dtype=np.int64)
    sets = (addresses >> pool.offset_bits) & pool.index_mask
    tags = addresses >> pool.tag_shift

    hit, way = pool.probe(slots, sets, tags)
    for i, address in enumerate(addresses):
        entry = l1.array.lookup(int(address), touch=False)
        assert bool(hit[i]) == (entry is not None)
        if entry is not None:
            assert int(pool.tags[0, sets[i], way[i]]) == entry.tag

    for is_write in (np.zeros(len(probes), dtype=bool),
                     np.ones(len(probes), dtype=bool)):
        pure, chit, cway = pool.classify(slots, sets, tags, is_write)
        np.testing.assert_array_equal(chit, hit)
        for i, address in enumerate(addresses):
            entry = l1.array.lookup(int(address), touch=False)
            if entry is None:
                want_pure = False
            elif is_write[i]:
                want_pure = entry.writable
            else:
                want_pure = True
            assert bool(pure[i]) == want_pure


@settings(max_examples=60, deadline=None)
@given(
    fills=st.lists(
        st.tuples(st.integers(min_value=0, max_value=31), st.booleans()),
        min_size=1, max_size=40, unique_by=lambda f: f[0],
    ),
    data=st.data(),
)
def test_commit_hits_matches_scalar_hit_stream(fills, data):
    """A run of guaranteed hits: ranked stamps == one-at-a-time clock.

    Fill both sides identically, then draw a random hit-only stream
    over the resident blocks (stores only where the line is writable)
    and commit it in one vector call; LRU stamps, clock, dirty bits,
    and hit counters must equal the scalar replay.
    """
    l1 = small_l1()
    pool = L1Pool(1, SMALL)
    for block, writable in fills:
        l1.fill(block * BLOCK, writable=writable, dirty=False)
        pool.fill(0, block * BLOCK, writable=writable, dirty=False)

    stream = data.draw(st.lists(
        st.tuples(st.sampled_from(fills), st.booleans()),
        min_size=1, max_size=80,
    ))
    # A store on a non-writable line would leave the pure-hit contract;
    # demote those to loads, as the engine's classify would.
    stream = [
        (block, is_write and writable)
        for (block, writable), is_write in stream
    ]

    for block, is_write in stream:
        assert (l1.store(block * BLOCK) if is_write
                else l1.load(block * BLOCK))

    addresses = np.asarray([block * BLOCK for block, _ in stream])
    slots = np.zeros(len(stream), dtype=np.int64)
    sets = (addresses >> pool.offset_bits) & pool.index_mask
    tags = addresses >> pool.tag_shift
    is_write = np.asarray([w for _, w in stream])
    pure, hit, way = pool.classify(slots, sets, tags, is_write)
    assert pure.all()
    pool.commit_hits(slots, sets, way, is_write)

    assert_pool_matches(pool, 0, l1)


@settings(max_examples=40, deadline=None)
@given(ops_by_core=st.lists(ops, min_size=1, max_size=3))
def test_from_caches_write_back_round_trip(ops_by_core):
    """from_caches -> write_back is lossless for arbitrary L1 states."""
    l1s = [small_l1() for _ in ops_by_core]
    for l1, core_ops in zip(l1s, ops_by_core):
        for op in core_ops:
            apply_scalar(l1, op)
    want = [cache_state(l1) for l1 in l1s]

    pool = L1Pool.from_caches(l1s)
    fresh = [small_l1() for _ in ops_by_core]
    pool.write_back(fresh)
    got = [cache_state(l1) for l1 in fresh]
    assert got == want

    # And the block maps agree with the arrays they index.
    for slot in range(pool.num_slots):
        resident = {
            (int(pool.tags[slot, s, w]) << pool.index_bits) | s
            for s in range(pool.num_sets)
            for w in range(pool.ways)
            if pool.valid[slot, s, w]
        }
        assert set(pool.block_maps[slot]) == resident


def test_from_caches_rejects_mixed_geometry():
    big = L1Cache(L1Params())
    with pytest.raises(ValueError):
        L1Pool.from_caches([small_l1(), big])


def test_write_back_rejects_wrong_arity():
    pool = L1Pool(2, SMALL)
    with pytest.raises(ValueError):
        pool.write_back([small_l1()])


# ---------------------------------------------------------------------------
# EventTape edge cases: the windowed engine at its boundaries.
#
# The engine consumes tapes in WINDOW-sized speculative slices; the
# interesting lengths are the degenerate ones — no events at all, a
# single event (window of one), a tape that is exactly one window, and
# a ragged tape whose final window is only partially filled.  All four
# must stay bit-identical to the scalar engine for every lane in a
# mixed batch.


def _tape_edge_designs():
    from repro.experiments.runner import build_design

    return [
        ("private", "atomic"),
        ("cmp-nurapid", "atomic"),
        ("cmp-nurapid-cr", "eventq"),
    ], build_design


def _edge_stream(n, num_cores=4):
    """A deterministic n-event mix of aliasing reads and writes."""
    from repro.common.types import Access, AccessType, SharingClass
    from repro.cpu.system import TimedAccess

    for i in range(n):
        core = i % num_cores
        shared = i % 3 == 0
        base = 0x40000 if shared else (core + 1) << 20
        address = base + (i % 7) * 64
        kind = AccessType.WRITE if i % 5 == 2 else AccessType.READ
        sharing = (
            SharingClass.READ_WRITE_SHARED if shared else SharingClass.PRIVATE
        )
        yield TimedAccess(Access(core, address, kind, sharing),
                          gap=i % 4, colocated=i % 2)


@pytest.mark.parametrize(
    "length",
    [0, 1, 24, 53],
    ids=["empty", "single", "exactly-one-window", "ragged-mid-window"],
)
def test_event_tape_edge_lengths_identical(length):
    from repro.common.params import SystemParams
    from repro.experiments.runner import run_design_on_events
    from repro.kernel import BatchKernel, EventTape
    from repro.kernel.engine import WINDOW

    assert 24 == WINDOW  # the ids above encode the window size
    names, build_design = _tape_edge_designs()
    params = SystemParams()
    tape = EventTape.from_events(_edge_stream(length), params.l1)
    assert tape.n == length
    designs = [build_design(n, bus_model=b) for n, b in names]
    kernel = BatchKernel(designs, params)
    kernel.run(tape, 0)
    for index, (name, bus) in enumerate(names):
        fresh = build_design(name, bus_model=bus)
        _, stats = run_design_on_events(fresh, _edge_stream(length), 0)
        assert kernel.lane_stats(index).fingerprint() == stats.fingerprint(), (
            f"{name}/{bus} diverged on a {length}-event tape"
        )


def test_event_tape_warmup_beyond_tape_identical():
    """warmup_events past the end of the tape: both engines measure
    nothing and agree on the (all-zero) statistics."""
    from repro.common.params import SystemParams
    from repro.experiments.runner import run_design_on_events
    from repro.kernel import BatchKernel, EventTape

    names, build_design = _tape_edge_designs()
    params = SystemParams()
    tape = EventTape.from_events(_edge_stream(10), params.l1)
    designs = [build_design(n, bus_model=b) for n, b in names]
    kernel = BatchKernel(designs, params)
    kernel.run(tape, 10)
    for index, (name, bus) in enumerate(names):
        fresh = build_design(name, bus_model=bus)
        _, stats = run_design_on_events(fresh, _edge_stream(10), 10)
        assert kernel.lane_stats(index).fingerprint() == stats.fingerprint()


# ---------------------------------------------------------------------------
# L2Pool round trip: the NuRAPID mirror is lossless.


def test_l2_pool_from_designs_write_back_round_trip():
    """from_designs -> write_back restores tag arrays and data arrays
    bit for bit after real traffic has mutated every field."""
    from repro.experiments.runner import build_design, run_design_on_events
    from repro.kernel import L2Pool
    from repro.workloads.multithreaded import make_workload

    names = ("cmp-nurapid", "cmp-nurapid-cr")
    designs = [build_design(name) for name in names]
    for design in designs:
        events = make_workload("oltp", seed=7).events(accesses_per_core=300)
        run_design_on_events(design, events, 0)

    def plain(value):
        # state_dicts pack entry columns as numpy arrays; make the
        # whole tree plain-python so == compares values, not identity.
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, dict):
            return {k: plain(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [plain(v) for v in value]
        return value

    def snapshot(design):
        return plain((
            [tags.state_dict() for tags in design.tags],
            design.data.state_dict(),
        ))

    want = [snapshot(design) for design in designs]
    pool = L2Pool.from_designs(designs)
    fresh = [build_design(name) for name in names]
    pool.write_back(fresh)
    assert [snapshot(design) for design in fresh] == want


def test_l2_pool_rejects_empty_and_wrong_arity():
    from repro.experiments.runner import build_design
    from repro.kernel import L2Pool

    with pytest.raises(ValueError):
        L2Pool.from_designs([])
    pool = L2Pool.from_designs([build_design("cmp-nurapid")])
    with pytest.raises(ValueError):
        pool.write_back([build_design("cmp-nurapid")] * 2)
