"""Versioned checkpoint format: round-trips, migrations, corruption.

Four contracts of :mod:`repro.harness.checkpoint`:

* **round-trip** — save → load → resume equals the uninterrupted run
  event-for-event (Hypothesis drives random design/workload/seed/cut/
  bus-model combinations, including runs with a race fault armed);
* **migration** — a v1 (legacy whole-object pickle) checkpoint written
  by the current build loads through the migration registry and resumes
  bit-identically;
* **refactor survival** — a v2 checkpoint references no internal
  classes, so it loads even after the design class is renamed;
* **diagnostics** — every corruption mode (truncated tail, flipped
  magic, unknown version, mismatched array shape, interrupted write,
  stale class reference) raises :class:`CheckpointError` naming the
  failing field, never a bare pickle exception.
"""

import gzip
import itertools
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.private import PrivateCaches
from repro.caches.shared import SharedCache
from repro.cli import main as cli_main
from repro.common.params import (
    KB,
    CacheGeometry,
    L1Params,
    NurapidParams,
    PrivateCacheParams,
    SharedCacheParams,
    SystemParams,
)
from repro.common.types import Access, AccessType
from repro.core.nurapid import NurapidCache
from repro.cpu.system import CmpSystem, TimedAccess
from repro.experiments.runner import DESIGN_FACTORIES
from repro.harness import (
    FORMAT_VERSION,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.interconnect.eventq import attach_eventq
from repro.workloads.multithreaded import make_workload

SMALL_L1 = SystemParams(l1=L1Params(geometry=CacheGeometry(4 * KB, 2, 64)))

SMALL_DESIGNS = {
    "cmp-nurapid": lambda: NurapidCache(
        NurapidParams(dgroup_capacity_bytes=4 * KB, tag_associativity=2)
    ),
    "private": lambda: PrivateCaches(
        PrivateCacheParams(geometry=CacheGeometry(4 * KB, 2, 128))
    ),
    "uniform-shared": lambda: SharedCache(
        SharedCacheParams(geometry=CacheGeometry(16 * KB, 4, 128))
    ),
}


def small_system(design_name, bus_model):
    design = SMALL_DESIGNS[design_name]()
    if bus_model == "eventq":
        attach_eventq(design)
    return CmpSystem(design, SMALL_L1), design


def workload_events(name, seed, count):
    workload = make_workload(name, seed=seed)
    return list(
        itertools.islice(workload.events(accesses_per_core=count), count * 4)
    )


def write_v2(tmp_path, design_name="cmp-nurapid", bus_model="eventq",
             steps=200, name="fixture.ck"):
    """A short prefix run saved as v2; returns (path, system, events)."""
    system, _ = small_system(design_name, bus_model)
    events = workload_events("oltp", 9, 100)
    for event in events[:steps]:
        system.step(event)
    path = tmp_path / name
    save_checkpoint(system, steps, path, {"design": design_name, "seed": 9})
    return path, system, events


def rewrite_v2(path, mutate):
    """Unpickle a v2 envelope, apply ``mutate(payload)``, re-write it."""
    payload = pickle.loads(gzip.decompress(path.read_bytes()))
    mutate(payload)
    path.write_bytes(gzip.compress(pickle.dumps(payload), mtime=0))


# ----------------------------------------------------------------------
# Round-trip property (Hypothesis)


@settings(max_examples=12, deadline=None)
@given(
    design_name=st.sampled_from(sorted(SMALL_DESIGNS)),
    workload=st.sampled_from(["oltp", "apache"]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    cut=st.integers(min_value=1, max_value=399),
    bus_model=st.sampled_from(["atomic", "eventq"]),
    arm_race=st.booleans(),
)
def test_roundtrip_equals_uninterrupted_run(
    tmp_path_factory, design_name, workload, seed, cut, bus_model, arm_race
):
    """save → load → resume == never-interrupted, event for event.

    When ``arm_race`` holds (eventq only), a race-reorder fault is
    armed before the cut, so the checkpoint may carry the sticky arm,
    the open race window, or a pending deferred snoop delivery —
    resume must reproduce all three cases exactly.
    """
    path = tmp_path_factory.mktemp("ck") / "round.ck"
    system, design = small_system(design_name, bus_model)
    events = workload_events(workload, seed, 100)
    racing = arm_race and bus_model == "eventq" and design_name == "private"
    for index, event in enumerate(events[:cut]):
        if racing and index == cut // 2:
            design.bus.race_pending = "race-reorder"
        system.step(event)
    save_checkpoint(
        system, cut, path, {"design": design_name, "seed": seed}
    )
    resumed = load_checkpoint(path).system
    for event in events[cut:]:
        system.step(event)
        resumed.step(event)
    assert system.stats().fingerprint() == resumed.stats().fingerprint()
    queue = getattr(design, "queue", None)
    if queue is not None:
        resumed_queue = resumed.design.queue
        assert (queue.now, queue.fired, queue.pending) == (
            resumed_queue.now, resumed_queue.fired, resumed_queue.pending
        )


def test_checkpoint_carries_pending_deferred_event(tmp_path):
    """A cut inside an open race window round-trips the late delivery."""
    system, design = small_system("private", "eventq")
    system.step(TimedAccess(Access(0, 0x1000, AccessType.READ)))
    design.bus.race_pending = "race-reorder"
    system.step(TimedAccess(Access(1, 0x1000, AccessType.WRITE)))
    queue = design.queue
    pending = [
        (e.time, e.priority, e.seq, e.label, e.track)
        for e in queue.pending_events()
    ]
    assert pending, "race-reorder did not defer a snoop delivery"
    path = tmp_path / "race.ck"
    save_checkpoint(system, 2, path, {"design": "private"})
    resumed = load_checkpoint(path).system
    restored_queue = resumed.design.queue
    assert [
        (e.time, e.priority, e.seq, e.label, e.track)
        for e in restored_queue.pending_events()
    ] == pending
    for step_system in (system, resumed):
        for core, address in ((2, 0x1000), (0, 0x2000), (1, 0x3000)):
            step_system.step(TimedAccess(Access(core, address, AccessType.READ)))
    assert system.stats().fingerprint() == resumed.stats().fingerprint()
    assert queue.fired == restored_queue.fired
    assert queue.pending == restored_queue.pending


# ----------------------------------------------------------------------
# v1 migration and v2 refactor survival (acceptance criteria)


@pytest.mark.parametrize("bus_model", ["atomic", "eventq"])
def test_v1_checkpoint_migrates_and_resumes_bit_identically(
    tmp_path, bus_model
):
    system, _ = small_system("cmp-nurapid", bus_model)
    events = workload_events("oltp", 21, 100)
    for event in events[:250]:
        system.step(event)
    path = tmp_path / "legacy.ck"
    save_checkpoint(
        system, 250, path, {"design": "cmp-nurapid", "seed": 21},
        format_version=1,
    )
    checkpoint = load_checkpoint(path)
    assert checkpoint.version == 1
    resumed = checkpoint.system
    for event in events[250:]:
        system.step(event)
        resumed.step(event)
    assert system.stats().fingerprint() == resumed.stats().fingerprint()


class RenamedNurapidCache(NurapidCache):
    """Stand-in for a post-refactor rename of the design class."""


def test_v2_checkpoint_survives_class_rename(tmp_path, monkeypatch):
    """v2 stores no class references: loading instantiates whatever
    class the factory registry *currently* maps the design name to."""
    path, system, events = write_v2(tmp_path)
    monkeypatch.setitem(
        DESIGN_FACTORIES,
        "cmp-nurapid",
        lambda **kwargs: RenamedNurapidCache(
            NurapidParams(**kwargs) if kwargs else NurapidParams()
        ),
    )
    checkpoint = load_checkpoint(path)
    resumed = checkpoint.system
    assert type(resumed.design) is RenamedNurapidCache
    for event in events[200:]:
        system.step(event)
        resumed.step(event)
    assert system.stats().fingerprint() == resumed.stats().fingerprint()


def test_v1_checkpoint_with_stale_class_reference_is_diagnosed(tmp_path):
    """The legacy format *does* reference classes; a rename shows up as
    a CheckpointError, not a raw AttributeError (the historical bug)."""
    path = tmp_path / "stale.ck"
    # GLOBAL opcode referencing a module attribute that does not exist.
    path.write_bytes(b"cos\nno_such_attribute_xyz\n.")
    with pytest.raises(CheckpointError, match="AttributeError"):
        load_checkpoint(path)


def test_v1_checkpoint_with_missing_module_is_diagnosed(tmp_path):
    path = tmp_path / "gone.ck"
    path.write_bytes(b"cno_such_module_xyz\nSomeClass\n.")
    with pytest.raises(CheckpointError, match="ModuleNotFoundError"):
        load_checkpoint(path)


# ----------------------------------------------------------------------
# Corruption fuzz: every failure is a named CheckpointError


def test_missing_file_is_diagnosed(tmp_path):
    with pytest.raises(CheckpointError, match="does not exist"):
        load_checkpoint(tmp_path / "nope.ck")


def test_interrupted_write_leaves_diagnosable_temp_file(tmp_path):
    """A mid-write kill leaves ``x.ck.tmp`` and no ``x.ck``."""
    path, _, _ = write_v2(tmp_path)
    partial = path.read_bytes()[: path.stat().st_size // 2]
    target = tmp_path / "killed.ck"
    (tmp_path / "killed.ck.tmp").write_bytes(partial)
    with pytest.raises(CheckpointError, match="killed mid-checkpoint"):
        load_checkpoint(target)


@pytest.mark.parametrize("keep", [10, 100, 1000])
def test_truncated_tail_is_diagnosed(tmp_path, keep):
    path, _, _ = write_v2(tmp_path)
    data = path.read_bytes()
    assert keep < len(data)
    path.write_bytes(data[:keep])
    with pytest.raises(CheckpointError, match="truncated|unreadable"):
        load_checkpoint(path)


def test_flipped_magic_is_diagnosed(tmp_path):
    path, _, _ = write_v2(tmp_path)
    rewrite_v2(path, lambda payload: payload.update(magic="repro-chkpoint"))
    with pytest.raises(CheckpointError, match="'magic'"):
        load_checkpoint(path)


def test_foreign_pickle_is_diagnosed(tmp_path):
    path = tmp_path / "foreign.ck"
    path.write_bytes(pickle.dumps({"hello": "world"}))
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        load_checkpoint(path)


def test_unknown_version_without_migration_path_is_diagnosed(tmp_path):
    path, _, _ = write_v2(tmp_path)
    rewrite_v2(path, lambda payload: payload.update(version=99))
    with pytest.raises(CheckpointError, match="no migration path"):
        load_checkpoint(path)


def test_unknown_design_is_diagnosed(tmp_path):
    path, _, _ = write_v2(tmp_path)
    rewrite_v2(path, lambda payload: payload.update(design="cmp-nurapid-v9"))
    with pytest.raises(CheckpointError, match="'design'.*cmp-nurapid-v9"):
        load_checkpoint(path)


def test_mismatched_array_shape_names_the_field(tmp_path):
    path, _, _ = write_v2(tmp_path)

    def chop_tag_column(payload):
        entries = payload["state"]["design"]["tags"][0]["entries"]
        entries["set_index"] = entries["set_index"][:-1]

    rewrite_v2(path, chop_tag_column)
    with pytest.raises(
        CheckpointError, match=r"tags\[0\]\.entries\..*column length"
    ):
        load_checkpoint(path)


def test_eventq_state_against_atomic_rebuild_is_diagnosed(tmp_path):
    """An envelope edited to claim the wrong bus model cannot inject
    event-queue state into a queueless system."""
    path, _, _ = write_v2(tmp_path)
    rewrite_v2(path, lambda payload: payload.update(bus_model="atomic"))
    with pytest.raises(CheckpointError, match="eventq"):
        load_checkpoint(path)


def test_garbage_bytes_are_diagnosed(tmp_path):
    path = tmp_path / "noise.ck"
    path.write_bytes(b"\x00\x01\x02 this is not a checkpoint \xff" * 7)
    with pytest.raises(CheckpointError, match="unreadable"):
        load_checkpoint(path)


def test_unwritable_format_version_is_rejected(tmp_path):
    system, _ = small_system("private", "atomic")
    with pytest.raises(CheckpointError, match="format version 3"):
        save_checkpoint(system, 0, tmp_path / "x.ck", format_version=3)


# ----------------------------------------------------------------------
# CLI surface


def run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.mark.parametrize("fmt", ["1", "2"])
def test_cli_checkpoint_format_writes_and_resumes(tmp_path, capsys, fmt):
    path = tmp_path / "run.ck"
    code, _, _ = run_cli(
        capsys,
        "run", "--design", "private", "--workload", "oltp",
        "--accesses", "300", "--warmup", "0",
        "--checkpoint", str(path), "--checkpoint-format", fmt,
    )
    assert code == 0
    head = path.read_bytes()[:2]
    assert (head == b"\x1f\x8b") == (fmt == "2")
    code, out, _ = run_cli(capsys, "run", "--resume", str(path))
    assert code == 0
    assert "design: private" in out


def test_cli_rejects_unknown_checkpoint_format(tmp_path, capsys):
    with pytest.raises(SystemExit):
        run_cli(
            capsys,
            "run", "--checkpoint", str(tmp_path / "x.ck"),
            "--checkpoint-format", "7",
        )


def test_cli_reports_corrupt_resume_as_usage_error(tmp_path, capsys):
    path = tmp_path / "bad.ck"
    path.write_bytes(b"cno_such_module_xyz\nSomeClass\n.")
    code, _, err = run_cli(capsys, "run", "--resume", str(path))
    assert code == 2
    assert "ModuleNotFoundError" in err


def test_default_format_version_is_two():
    assert FORMAT_VERSION == 2
