"""Tests for the uniform-shared, ideal, and SNUCA L2 designs."""

from repro.caches.ideal import IdealCache
from repro.caches.shared import SharedCache
from repro.caches.snuca import SnucaCache
from repro.common.params import KB, CacheGeometry, IdealCacheParams, SharedCacheParams, SnucaParams
from repro.common.types import Access, AccessType, MissClass


def read(core, address):
    return Access(core, address, AccessType.READ)


def write(core, address):
    return Access(core, address, AccessType.WRITE)


def small_shared() -> SharedCache:
    return SharedCache(SharedCacheParams(geometry=CacheGeometry(32 * KB, 4, 128)))


class TestSharedCache:
    def test_cold_miss_then_hit(self):
        cache = small_shared()
        first = cache.access(read(0, 0x1000))
        assert first.miss_class is MissClass.CAPACITY
        assert first.latency == 59 + 300
        second = cache.access(read(0, 0x1000))
        assert second.is_hit
        assert second.latency == 59

    def test_one_copy_shared_by_all_cores(self):
        cache = small_shared()
        cache.access(read(0, 0x1000))
        for core in range(1, 4):
            assert cache.access(read(core, 0x1000)).is_hit

    def test_no_sharing_misses_ever(self):
        """Figure 5a: shared caches have only hits and capacity misses."""
        cache = small_shared()
        cache.access(write(0, 0x1000))
        cache.access(read(1, 0x1000))
        cache.access(write(2, 0x1000))
        for miss_class, count in cache.stats.counts.items():
            assert miss_class in (MissClass.HIT, MissClass.CAPACITY)

    def test_eviction_invalidates_all_l1s(self):
        cache = small_shared()
        invalidated = []
        cache.set_l1_invalidate_hook(lambda core, addr: invalidated.append((core, addr)))
        geometry = cache.params.geometry
        step = geometry.num_sets * geometry.block_size
        for i in range(geometry.associativity + 1):
            cache.access(read(0, i * step))
        evicted = [pair for pair in invalidated if pair[1] == 0]
        assert len(evicted) == 4  # all four cores

    def test_reset_stats(self):
        cache = small_shared()
        cache.access(read(0, 0x100))
        cache.reset_stats()
        assert cache.stats.total == 0


class TestIdealCache:
    def test_private_latency_with_shared_capacity(self):
        cache = IdealCache(
            IdealCacheParams(geometry=CacheGeometry(32 * KB, 4, 128))
        )
        miss = cache.access(read(0, 0x2000))
        assert miss.latency == 10 + 300
        hit = cache.access(read(1, 0x2000))
        assert hit.latency == 10


class TestSnucaCache:
    def make(self) -> SnucaCache:
        return SnucaCache(
            SnucaParams(geometry=CacheGeometry(64 * KB, 4, 128), num_banks=16)
        )

    def test_bank_mapping_is_stable_and_in_range(self):
        cache = self.make()
        for address in (0, 128, 4096, 1 << 30):
            bank = cache.bank_of(address)
            assert 0 <= bank < 16
            assert cache.bank_of(address) == bank

    def test_consecutive_blocks_interleave(self):
        cache = self.make()
        banks = [cache.bank_of(i * 128) for i in range(16)]
        assert sorted(banks) == list(range(16))

    def test_local_global_address_roundtrip(self):
        cache = self.make()
        for address in (0, 128, 12800, (1 << 25) + 128 * 7):
            bank = cache.bank_of(address)
            local = cache._local_address(address)
            assert cache._global_address(bank, local) == address & ~127

    def test_latency_depends_on_bank_distance(self):
        cache = self.make()
        latencies = set()
        for block in range(16):
            result = cache.access(read(0, block * 128))
            latencies.add(result.latency - 300)
        assert len(latencies) > 1  # non-uniform

    def test_hit_after_fill(self):
        cache = self.make()
        cache.access(read(0, 0x4000))
        result = cache.access(read(2, 0x4000))
        assert result.is_hit
        expected = cache.params.bank_latencies[2][cache.bank_of(0x4000)]
        assert result.latency == expected

    def test_no_aliasing_across_banks(self):
        """Blocks mapping to different banks never evict each other."""
        cache = self.make()
        for i in range(64):
            cache.access(read(0, i * 128))
        hits = sum(
            1 for i in range(64) if cache.access(read(0, i * 128)).is_hit
        )
        assert hits == 64
