"""Arc-by-arc tests of the MESI protocol engine against Figure 4a."""

import pytest

from repro.coherence import mesi
from repro.coherence.states import MESI_STATES, CoherenceState
from repro.interconnect.bus import BusOp

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741
C = CoherenceState.COMMUNICATION


class TestProcessorRead:
    @pytest.mark.parametrize("state", [M, E, S])
    def test_read_hits_self_loop(self, state):
        action = mesi.processor_read(state)
        assert action.next_state is state
        assert action.bus_op is None

    def test_read_miss_no_copy_goes_exclusive(self):
        action = mesi.processor_read(I, shared_signal=False)
        assert action.next_state is E
        assert action.bus_op is BusOp.BUS_RD

    def test_read_miss_with_copy_goes_shared(self):
        action = mesi.processor_read(I, shared_signal=True)
        assert action.next_state is S
        assert action.bus_op is BusOp.BUS_RD

    def test_rejects_communication_state(self):
        with pytest.raises(ValueError):
            mesi.processor_read(C)


class TestProcessorWrite:
    def test_write_hit_modified(self):
        action = mesi.processor_write(M)
        assert action.next_state is M
        assert action.bus_op is None

    def test_silent_exclusive_upgrade(self):
        action = mesi.processor_write(E)
        assert action.next_state is M
        assert action.bus_op is None

    def test_shared_upgrade_uses_bus_upg(self):
        action = mesi.processor_write(S)
        assert action.next_state is M
        assert action.bus_op is BusOp.BUS_UPG

    def test_write_miss_uses_bus_rdx(self):
        action = mesi.processor_write(I)
        assert action.next_state is M
        assert action.bus_op is BusOp.BUS_RDX

    def test_rejects_communication_state(self):
        with pytest.raises(ValueError):
            mesi.processor_write(C)


class TestSnoop:
    def test_invalid_ignores_everything(self):
        for op in BusOp:
            action = mesi.snoop(I, op)
            assert action.next_state is I
            assert not action.flush

    def test_busrd_downgrades_modified_with_flush(self):
        action = mesi.snoop(M, BusOp.BUS_RD)
        assert action.next_state is S
        assert action.flush

    def test_busrd_downgrades_exclusive(self):
        action = mesi.snoop(E, BusOp.BUS_RD)
        assert action.next_state is S
        assert action.flush

    def test_busrd_keeps_shared(self):
        action = mesi.snoop(S, BusOp.BUS_RD)
        assert action.next_state is S

    @pytest.mark.parametrize("state", [M, E, S])
    def test_busrdx_invalidates(self, state):
        action = mesi.snoop(state, BusOp.BUS_RDX)
        assert action.next_state is I

    def test_busupg_invalidates_shared(self):
        action = mesi.snoop(S, BusOp.BUS_UPG)
        assert action.next_state is I
        assert not action.flush

    @pytest.mark.parametrize("state", [M, E])
    def test_busupg_while_exclusive_is_protocol_error(self, state):
        with pytest.raises(RuntimeError):
            mesi.snoop(state, BusOp.BUS_UPG)

    @pytest.mark.parametrize("state", [M, E, S])
    def test_busrepl_and_wrthru_ignored(self, state):
        for op in (BusOp.BUS_REPL, BusOp.WR_THRU):
            assert mesi.snoop(state, op).next_state is state


class TestClosure:
    def test_all_mesi_states_covered(self):
        """Every (state, event) pair resolves to a MESI state."""
        for state in MESI_STATES:
            if state is not I:
                assert mesi.processor_write(state).next_state in MESI_STATES
            assert mesi.processor_read(state).next_state in MESI_STATES
            for op in (BusOp.BUS_RD, BusOp.BUS_RDX):
                assert mesi.snoop(state, op).next_state in MESI_STATES
