"""Tests for the CmpSystem hierarchy wiring and the timing model."""

from repro.caches.shared import SharedCache
from repro.common.params import KB, CacheGeometry, SharedCacheParams, SystemParams
from repro.common.types import Access, AccessType
from repro.core.nurapid import NurapidCache
from repro.common.params import NurapidParams
from repro.cpu.core import InOrderCore
from repro.cpu.system import CmpSystem, TimedAccess, run_workload


def read(core, address):
    return Access(core, address, AccessType.READ)


def write(core, address):
    return Access(core, address, AccessType.WRITE)


def small_system(blocking_stores=False) -> CmpSystem:
    design = SharedCache(SharedCacheParams(geometry=CacheGeometry(32 * KB, 4, 128)))
    return CmpSystem(design, SystemParams(blocking_stores=blocking_stores))


class TestInOrderCore:
    def test_gap_instructions_one_cycle_each(self):
        core = InOrderCore(0, l1_latency=3)
        core.execute_gap(10)
        assert core.instructions == 10
        assert core.cycles == 10

    def test_memory_charges_l1_latency_plus_stall(self):
        core = InOrderCore(0, l1_latency=3)
        core.execute_memory(stall_cycles=59)
        assert core.instructions == 1
        assert core.cycles == 62

    def test_colocated_accesses_are_l1_hits(self):
        core = InOrderCore(0, l1_latency=3)
        core.execute_colocated(4)
        assert core.instructions == 4
        assert core.cycles == 12

    def test_ipc(self):
        core = InOrderCore(0)
        core.execute_gap(7)
        core.execute_memory(0)
        assert core.ipc == 8 / 10


class TestL1Filtering:
    def test_l1_hit_avoids_l2(self):
        system = small_system()
        system.access(read(0, 0x1000))  # miss, fills L1
        l2_before = system.design.stats.total
        stall = system.access(read(0, 0x1000))
        assert stall == 0
        assert system.design.stats.total == l2_before

    def test_l1_miss_goes_to_l2(self):
        system = small_system()
        stall = system.access(read(0, 0x1000))
        assert stall == 59 + 300
        assert system.design.stats.total == 1


class TestStoreSemantics:
    def test_nonblocking_store_returns_zero_stall(self):
        system = small_system(blocking_stores=False)
        stall = system.access(write(0, 0x1000))
        assert stall == 0
        assert system.design.stats.total == 1  # L2 still saw it

    def test_blocking_store_stalls(self):
        system = small_system(blocking_stores=True)
        stall = system.access(write(0, 0x1000))
        assert stall == 59 + 300

    def test_store_grants_write_permission(self):
        system = small_system()
        system.access(write(0, 0x1000))
        l2_before = system.design.stats.total
        system.access(write(0, 0x1000))  # completes in L1
        assert system.design.stats.total == l2_before

    def test_store_invalidates_other_l1_copies(self):
        system = small_system()
        system.access(read(1, 0x1000))  # core 1 caches it
        assert system.l1s[1].probe(0x1000)
        system.access(write(0, 0x1000))
        assert not system.l1s[1].probe(0x1000)

    def test_load_revokes_remote_write_permission(self):
        system = small_system()
        system.access(write(0, 0x1000))   # core 0 writable
        system.access(read(1, 0x1000))    # downgrade
        l2_before = system.design.stats.total
        system.access(write(0, 0x1000))   # must re-request
        assert system.design.stats.total == l2_before + 1


class TestWriteThroughBlocks:
    def test_c_block_stores_always_reach_l2(self):
        from repro.common.params import KB as KiB

        design = NurapidCache(
            NurapidParams(dgroup_capacity_bytes=16 * KiB, tag_associativity=4)
        )
        system = CmpSystem(design)
        system.access(write(0, 0x2000))
        system.access(read(1, 0x2000))  # block enters C
        l2_before = design.stats.total
        system.access(write(0, 0x2000))
        system.access(write(0, 0x2000))
        assert design.stats.total == l2_before + 2  # every store went down


class TestInclusion:
    def test_l2_eviction_invalidates_l1(self):
        system = small_system()
        design = system.design
        geometry = design.params.geometry
        step = geometry.num_sets * geometry.block_size
        system.access(read(0, 0))
        assert system.l1s[0].probe(0)
        for i in range(1, geometry.associativity + 1):
            system.access(read(0, i * step))
        assert not system.l1s[0].probe(0)  # inclusion enforced


class TestRunAndStats:
    def test_run_accumulates_timing(self):
        system = small_system()
        events = [
            TimedAccess(read(0, 0x1000), gap=5, colocated=2),
            TimedAccess(read(0, 0x1000), gap=5, colocated=2),
        ]
        system.run(events)
        stats = system.stats()
        core = stats.per_core[0]
        assert core.instructions == 2 * (5 + 2 + 1)
        # First access stalls 359, second hits L1.
        assert core.cycles == 2 * (5 + 2 * 3 + 3) + 359

    def test_reset_stats_keeps_cache_state(self):
        system = small_system()
        system.access(read(0, 0x1000))
        system.reset_stats()
        assert system.design.stats.total == 0
        stall = system.access(read(0, 0x1000))
        assert stall == 0  # still warm

    def test_run_workload_wrapper(self):
        design = SharedCache(
            SharedCacheParams(geometry=CacheGeometry(32 * KB, 4, 128))
        )
        events = [TimedAccess(read(0, i * 128), gap=1) for i in range(10)]
        stats = run_workload(design, events)
        assert stats.accesses.total == 10
        assert stats.total_instructions == 20
