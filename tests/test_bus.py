"""Unit tests for the snoopy split-transaction bus."""

import pytest

from repro.interconnect.bus import (
    BusOp,
    BusTransaction,
    SnoopBus,
    SnoopReply,
)


class RecordingSnooper:
    """Snooper returning a canned reply and logging what it saw."""

    def __init__(self, reply=None):
        self.reply = reply or SnoopReply()
        self.seen = []

    def snoop(self, txn):
        self.seen.append(txn)
        return self.reply


class TestAttach:
    def test_attach_and_count(self):
        bus = SnoopBus(latency=32)
        bus.attach(0, RecordingSnooper())
        bus.attach(1, RecordingSnooper())
        assert bus.num_agents == 2

    def test_rejects_duplicate_core(self):
        bus = SnoopBus(latency=32)
        bus.attach(0, RecordingSnooper())
        with pytest.raises(ValueError):
            bus.attach(0, RecordingSnooper())


class TestIssue:
    def make_bus(self, replies):
        bus = SnoopBus(latency=32)
        snoopers = [RecordingSnooper(reply) for reply in replies]
        for core, snooper in enumerate(snoopers):
            bus.attach(core, snooper)
        return bus, snoopers

    def test_issuer_does_not_snoop_itself(self):
        bus, snoopers = self.make_bus([SnoopReply(), SnoopReply()])
        bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, issuer=0))
        assert snoopers[0].seen == []
        assert len(snoopers[1].seen) == 1

    def test_latency_charged(self):
        bus, _ = self.make_bus([SnoopReply(), SnoopReply()])
        result = bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, issuer=0))
        assert result.latency == 32

    def test_shared_and_dirty_are_wired_or(self):
        bus, _ = self.make_bus(
            [SnoopReply(), SnoopReply(shared=True), SnoopReply(dirty=True)]
        )
        result = bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, issuer=0))
        assert result.shared
        assert result.dirty

    def test_no_signals_when_no_copies(self):
        bus, _ = self.make_bus([SnoopReply(), SnoopReply()])
        result = bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, issuer=0))
        assert not result.shared
        assert not result.dirty
        assert result.supplier is None

    def test_single_supplier_identified(self):
        bus, _ = self.make_bus(
            [SnoopReply(), SnoopReply(supplies_data=True, dirty=True)]
        )
        result = bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, issuer=0))
        assert result.supplier == 1

    def test_two_suppliers_is_protocol_error(self):
        bus, _ = self.make_bus(
            [
                SnoopReply(),
                SnoopReply(supplies_data=True),
                SnoopReply(supplies_data=True),
            ]
        )
        with pytest.raises(RuntimeError):
            bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, issuer=0))

    def test_pointer_return_on_pointer_wires(self):
        """Controlled replication returns a pointer, not data."""
        pointer = ("dgroup-a", 7)
        bus, _ = self.make_bus([SnoopReply(), SnoopReply(pointer=pointer)])
        result = bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, issuer=0))
        assert result.pointer == pointer

    def test_stats_record_transaction_kinds(self):
        bus, _ = self.make_bus([SnoopReply(), SnoopReply()])
        bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, issuer=0))
        bus.issue(BusTransaction(BusOp.BUS_REPL, 0x200, issuer=1))
        assert bus.stats.transactions["BusRd"] == 1
        assert bus.stats.transactions["BusRepl"] == 1
        assert bus.stats.total == 2
