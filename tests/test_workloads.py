"""Tests for the synthetic workload generators."""

import itertools

import pytest

from repro.common.rng import stream
from repro.common.types import AccessType, SharingClass
from repro.workloads.base import (
    BLOCK,
    EventShaper,
    HotSet,
    RegionSpec,
    SyntheticWorkload,
    WorkloadSpec,
    private_block_address,
    shared_ro_block_address,
    shared_rw_block_address,
)
from repro.workloads.multiprogrammed import MIXES, SPEC_APPS, make_mix
from repro.workloads.multithreaded import (
    COMMERCIAL,
    MULTITHREADED,
    make_workload,
    workload_spec,
)


def tiny_spec(**overrides) -> WorkloadSpec:
    defaults = dict(
        name="tiny",
        mem_ratio=0.4,
        p_private=0.5,
        p_shared_ro=0.25,
        p_shared_rw=0.25,
        private=RegionSpec(blocks=100, hot_blocks=20),
        shared_ro=RegionSpec(blocks=80, hot_blocks=16),
        shared_rw=RegionSpec(blocks=60, hot_blocks=12),
        p_recent=0.5,
        recent_window=8,
        spatial_factor=2.0,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestSpecValidation:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            tiny_spec(p_private=0.9)

    def test_missing_region_rejected(self):
        with pytest.raises(ValueError):
            tiny_spec(shared_rw=None)

    def test_bad_mem_ratio(self):
        with pytest.raises(ValueError):
            tiny_spec(mem_ratio=0.0)

    def test_bad_spatial_factor(self):
        with pytest.raises(ValueError):
            tiny_spec(spatial_factor=0.5)

    def test_hot_set_cannot_exceed_footprint(self):
        with pytest.raises(ValueError):
            RegionSpec(blocks=10, hot_blocks=11)


class TestAddresses:
    def test_regions_are_disjoint(self):
        privates = {private_block_address(c, b) for c in range(4) for b in range(100)}
        ro = {shared_ro_block_address(b) for b in range(100)}
        rw = {shared_rw_block_address(b) for b in range(100)}
        assert not privates & ro
        assert not privates & rw
        assert not ro & rw

    def test_per_core_private_spaces_disjoint(self):
        a = {private_block_address(0, b) for b in range(1000)}
        b = {private_block_address(1, b) for b in range(1000)}
        assert not a & b

    def test_block_alignment_within_l2_block(self):
        for block in range(200):
            address = shared_ro_block_address(block)
            assert (address // BLOCK) * BLOCK in (address, address - 64)


class TestEventShaper:
    def test_long_run_average_matches_spec(self):
        spec = tiny_spec(mem_ratio=0.25, spatial_factor=3.0)
        shaper = EventShaper(spec)
        total_gap = total_colocated = 0
        n = 10_000
        for _ in range(n):
            gap, colocated = shaper.next_shape()
            total_gap += gap
            total_colocated += colocated
        mem_instructions = n * 1 + total_colocated
        all_instructions = mem_instructions + total_gap
        assert mem_instructions / all_instructions == pytest.approx(0.25, rel=0.01)
        assert (total_colocated + n) / n == pytest.approx(3.0, rel=0.01)


class TestHotSet:
    def test_initial_blocks_within_footprint(self):
        region = RegionSpec(blocks=50, hot_blocks=10)
        hot = HotSet(region, stream("test.hot"))
        assert len(hot.blocks) == 10
        assert all(0 <= b < 50 for b in hot.blocks)
        assert len(set(hot.blocks)) == 10  # sampled without replacement

    def test_draw_uniform_in_range(self):
        region = RegionSpec(blocks=50, hot_blocks=10)
        hot = HotSet(region, stream("test.hot"))
        draws = {hot.draw(u / 100.0) for u in range(100)}
        assert draws <= set(hot.blocks)

    def test_rotation_changes_membership(self):
        region = RegionSpec(blocks=1000, hot_blocks=10, rotate_prob=1.0)
        hot = HotSet(region, stream("test.hot"))
        before = list(hot.blocks)
        for _ in range(50):
            hot.maybe_rotate(0.0)
        assert hot.blocks != before

    def test_no_rotation_above_probability(self):
        region = RegionSpec(blocks=1000, hot_blocks=10, rotate_prob=0.01)
        hot = HotSet(region, stream("test.hot"))
        before = list(hot.blocks)
        hot.maybe_rotate(0.5)  # 0.5 >= 0.01: no rotation
        assert hot.blocks == before


class TestStreamProperties:
    def test_deterministic_for_same_seed(self):
        events_a = list(
            SyntheticWorkload(tiny_spec(), seed=5).events(accesses_per_core=50)
        )
        events_b = list(
            SyntheticWorkload(tiny_spec(), seed=5).events(accesses_per_core=50)
        )
        assert [(e.access.core, e.access.address, e.access.type) for e in events_a] == [
            (e.access.core, e.access.address, e.access.type) for e in events_b
        ]

    def test_different_seeds_differ(self):
        events_a = list(
            SyntheticWorkload(tiny_spec(), seed=1).events(accesses_per_core=100)
        )
        events_b = list(
            SyntheticWorkload(tiny_spec(), seed=2).events(accesses_per_core=100)
        )
        assert [e.access.address for e in events_a] != [
            e.access.address for e in events_b
        ]

    def test_round_robin_core_order(self):
        events = list(SyntheticWorkload(tiny_spec()).events(accesses_per_core=3))
        cores = [event.access.core for event in events]
        assert cores == [0, 1, 2, 3] * 3

    def test_sharing_classes_match_regions(self):
        events = list(SyntheticWorkload(tiny_spec()).events(accesses_per_core=200))
        for event in events:
            access = event.access
            if access.sharing is SharingClass.PRIVATE:
                assert access.address >= (1 << 32)
                assert access.address < (1 << 40)
            elif access.sharing is SharingClass.READ_ONLY_SHARED:
                assert (1 << 40) <= access.address < (1 << 41)
            else:
                assert access.address >= (1 << 41)

    def test_read_only_region_never_written(self):
        events = list(SyntheticWorkload(tiny_spec()).events(accesses_per_core=500))
        for event in events:
            if event.access.sharing is SharingClass.READ_ONLY_SHARED:
                assert event.access.type is AccessType.READ

    def test_rws_writes_come_from_writer_core(self):
        events = list(SyntheticWorkload(tiny_spec()).events(accesses_per_core=500))
        for event in events:
            access = event.access
            if (
                access.sharing is SharingClass.READ_WRITE_SHARED
                and access.type is AccessType.WRITE
            ):
                block = (access.address - (1 << 41)) // BLOCK
                assert block % 4 == access.core


class TestTable3Workloads:
    def test_all_five_defined(self):
        names = [spec.name for spec in MULTITHREADED]
        assert names == ["oltp", "apache", "specjbb", "ocean", "barnes"]

    def test_commercial_share_more_than_scientific(self):
        for commercial in COMMERCIAL:
            sharing = commercial.p_shared_ro + commercial.p_shared_rw
            assert sharing > 0.3
        for scientific in ("ocean", "barnes"):
            spec = workload_spec(scientific)
            assert spec.p_shared_ro + spec.p_shared_rw < 0.15

    def test_oltp_is_rws_dominated(self):
        oltp = workload_spec("oltp")
        assert oltp.p_shared_rw > oltp.p_shared_ro

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            workload_spec("tpc-h")

    def test_make_workload_produces_events(self):
        workload = make_workload("barnes")
        events = list(itertools.islice(workload.events(10), 40))
        assert len(events) == 40


class TestTable2Mixes:
    def test_mixes_match_table2(self):
        assert MIXES["MIX1"] == ("apsi", "art", "equake", "mesa")
        assert MIXES["MIX2"] == ("ammp", "swim", "mesa", "vortex")
        assert MIXES["MIX3"] == ("apsi", "mcf", "gzip", "mesa")
        assert MIXES["MIX4"] == ("ammp", "gzip", "vortex", "wupwise")

    def test_all_ten_apps_modelled(self):
        used = {app for mix in MIXES.values() for app in mix}
        assert used == set(SPEC_APPS)

    def test_capacity_demands_are_nonuniform(self):
        """Streaming apps exceed 2 MB (16384 blocks); small apps fit."""
        for big in ("art", "mcf", "swim"):
            assert SPEC_APPS[big].hot_blocks > 16384
        for small in ("mesa", "gzip", "wupwise", "vortex"):
            assert SPEC_APPS[small].hot_blocks < 8192

    def test_mix_events_are_private_only(self):
        mix = make_mix("MIX2")
        events = list(itertools.islice(mix.events(20), 80))
        assert all(e.access.sharing is SharingClass.PRIVATE for e in events)

    def test_unknown_mix_rejected(self):
        with pytest.raises(KeyError):
            make_mix("MIX9")

    def test_mix_deterministic(self):
        a = [e.access.address for e in make_mix("MIX1", seed=4).events(30)]
        b = [e.access.address for e in make_mix("MIX1", seed=4).events(30)]
        assert a == b
