"""Differential layer: the parallel sweep executor vs the serial path.

The executor claims bit-identity: fanning a sweep's cells across a
process pool must produce exactly the statistics the serial loop
produces, for every design, both interconnect backends, and the
multiprogrammed mixes — and a crashed worker must degrade to a serial
retry, never a dropped cell.  These tests pin each claim with
:meth:`SimulationStats.fingerprint` comparisons.
"""

import multiprocessing
import os
import pickle
import zlib

import pytest

from repro.common.stats import SimulationStats
from repro.experiments import parallel
from repro.experiments.parallel import (
    Cell,
    SupervisorConfig,
    resolve_jobs,
    run_cells,
)
from repro.experiments.runner import (
    DESIGN_FACTORIES,
    ExperimentConfig,
    StatsCache,
    build_design,
    sweep,
)

#: Small but non-trivial: long enough to exercise every miss class.
CONFIG = ExperimentConfig(warmup_per_core=1_500, measure_per_core=1_500)

ALL_DESIGNS = sorted(DESIGN_FACTORIES)


def run_both(cells, bus_model=None, jobs=4, config=CONFIG):
    """Run ``cells`` serially and with a pool; return the two caches."""
    serial = StatsCache()
    run_cells(cells, config, serial, jobs=1, bus_model=bus_model)
    pooled = StatsCache()
    run_cells(cells, config, pooled, jobs=jobs, bus_model=bus_model)
    return serial, pooled


def assert_identical(cells, serial, pooled, config=CONFIG):
    for cell in cells:
        left = serial._cache[cell.key(config)].fingerprint()
        right = pooled._cache[cell.key(config)].fingerprint()
        assert left == right, f"fingerprint diverged for {cell.label}"


class TestBitIdentity:
    def test_all_designs_atomic(self):
        cells = [Cell("oltp", design) for design in ALL_DESIGNS]
        serial, pooled = run_both(cells, bus_model="atomic")
        assert_identical(cells, serial, pooled)

    def test_all_designs_eventq(self):
        cells = [Cell("ocean", design) for design in ALL_DESIGNS]
        serial, pooled = run_both(cells, bus_model="eventq")
        assert_identical(cells, serial, pooled)

    def test_multiprogrammed_mix(self):
        cells = [
            Cell("MIX1", design, multiprogrammed=True)
            for design in ("uniform-shared", "private", "cmp-nurapid")
        ]
        serial, pooled = run_both(cells)
        assert_identical(cells, serial, pooled)

    def test_sweep_entrypoint_parallel(self):
        """sweep(jobs=4) returns the same stats objects the serial
        sweep computes, through the normal figure-module entry point."""
        workloads = ("oltp", "ocean")
        designs = ("uniform-shared", "private")
        serial = sweep(workloads, designs, CONFIG, jobs=1)
        pooled = sweep(workloads, designs, CONFIG, jobs=4)
        for workload in workloads:
            for design in designs:
                assert (
                    serial.stats[workload][design].fingerprint()
                    == pooled.stats[workload][design].fingerprint()
                )


class TestCrashRecovery:
    def test_crashed_worker_cell_is_retried_not_dropped(self, monkeypatch):
        cells = [Cell("oltp", "private"), Cell("oltp", "uniform-shared")]
        monkeypatch.setenv(parallel.CRASH_ENV, "oltp/private")
        cache = StatsCache()
        report = run_cells(cells, CONFIG, cache, jobs=2)
        # Every cell has a result despite the dead worker...
        for cell in cells:
            assert cell.key(CONFIG) in cache
        # ...and the degradation is reported, not silent.
        assert Cell("oltp", "private") in report.retried
        # The retried results match a clean serial run bit-for-bit.
        clean = StatsCache()
        monkeypatch.delenv(parallel.CRASH_ENV)
        run_cells(cells, CONFIG, clean, jobs=1)
        assert_identical(cells, clean, cache)

    def test_report_summary_mentions_retries(self, monkeypatch):
        monkeypatch.setenv(parallel.CRASH_ENV, "oltp/private")
        cache = StatsCache()
        report = run_cells([Cell("oltp", "private")], CONFIG, cache, jobs=2)
        assert "retried serially" in report.summary()
        assert "oltp/private" in report.summary()


class TestJournalSharding:
    def test_workers_journal_to_pid_shards_and_parent_merges(self, tmp_path):
        path = str(tmp_path / "stats.cache")
        cells = [Cell("oltp", "private"), Cell("oltp", "ideal")]
        cache = StatsCache(path=path)
        run_cells(cells, CONFIG, cache, jobs=2)
        # Shards are merged and removed; the main journal has the runs.
        assert not list(tmp_path.glob("stats.cache.shard.*"))
        reloaded = StatsCache(path=path)
        for cell in cells:
            assert cell.key(CONFIG) in reloaded

    def test_orphaned_shard_is_rescued(self, tmp_path):
        path = str(tmp_path / "stats.cache")
        StatsCache(path=path)  # create an empty journal home
        cell = Cell("oltp", "private")
        stats = SimulationStats()
        StatsCache.append_record(
            f"{path}.shard.12345", cell.key(CONFIG), stats
        )
        cache = StatsCache(path=path)
        report = run_cells([cell], CONFIG, cache, jobs=2)
        # The orphan satisfied the cell: no simulation ran.
        assert report.ran == [] and report.retried == []
        assert report.cached == [cell]
        assert not os.path.exists(f"{path}.shard.12345")

    def test_append_record_is_readable_journal(self, tmp_path):
        path = str(tmp_path / "j.cache")
        key = ("oltp", "private", CONFIG, False)
        StatsCache.append_record(path, key, SimulationStats())
        loaded, dirty = StatsCache._load(path)
        assert key in loaded and not dirty

    def test_insert_skips_duplicates(self, tmp_path):
        path = str(tmp_path / "j.cache")
        cache = StatsCache(path=path)
        key = ("oltp", "private", CONFIG, False)
        assert cache.insert(key, SimulationStats())
        assert not cache.insert(key, SimulationStats())
        with open(path, "rb") as handle:
            records = 0
            while True:
                try:
                    pickle.load(handle)
                except EOFError:
                    break
                records += 1
        assert records == 1


#: Supervision knobs sized for tests: fast polls, quick backoff.
def fast_supervision(cell_timeout=0.0, heartbeat_grace=30.0):
    return SupervisorConfig(
        cell_timeout=cell_timeout,
        max_retries=2,
        backoff_base=0.01,
        backoff_cap=0.05,
        heartbeat_interval=0.1,
        heartbeat_grace=heartbeat_grace,
        poll_interval=0.01,
    )


class TestSupervision:
    CELLS = [Cell("oltp", "private"), Cell("oltp", "uniform-shared")]

    def _serial(self):
        clean = StatsCache()
        run_cells(self.CELLS, CONFIG, clean, jobs=1)
        return clean

    def test_hung_worker_is_killed_at_the_cell_timeout(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(parallel.CHAOS_HANG_ENV, "oltp/private")
        monkeypatch.setenv(parallel.CHAOS_MARK_DIR_ENV, str(tmp_path))
        cache = StatsCache()
        report = run_cells(
            self.CELLS, CONFIG, cache, jobs=2,
            supervision=fast_supervision(cell_timeout=2.0),
        )
        assert report.counters.get("sweep.timeout", 0) >= 1
        assert Cell("oltp", "private") in report.recovered
        monkeypatch.delenv(parallel.CHAOS_HANG_ENV)
        assert_identical(self.CELLS, self._serial(), cache)

    def test_frozen_worker_outed_by_stale_heartbeat(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(parallel.CHAOS_FREEZE_ENV, "oltp/private")
        monkeypatch.setenv(parallel.CHAOS_MARK_DIR_ENV, str(tmp_path))
        cache = StatsCache()
        report = run_cells(
            self.CELLS, CONFIG, cache, jobs=2,
            supervision=fast_supervision(heartbeat_grace=1.5),
        )
        # No cell timeout is configured: only the heartbeat can have
        # distinguished the frozen worker from a slow one.
        assert report.counters.get("sweep.worker_death", 0) >= 1
        monkeypatch.delenv(parallel.CHAOS_FREEZE_ENV)
        assert_identical(self.CELLS, self._serial(), cache)

    def test_killed_worker_retries_in_a_worker_not_the_parent(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(parallel.CHAOS_KILL_ENV, "oltp/private")
        monkeypatch.setenv(parallel.CHAOS_MARK_DIR_ENV, str(tmp_path))
        cache = StatsCache()
        report = run_cells(
            self.CELLS, CONFIG, cache, jobs=2,
            supervision=fast_supervision(),
        )
        # First attempt SIGKILLed, second succeeded in a worker: the
        # cell is recovered, not parent-rescued and not quarantined.
        assert Cell("oltp", "private") in report.recovered
        assert report.retried == [] and report.quarantined == []
        assert report.counters.get("sweep.retry", 0) >= 1
        monkeypatch.delenv(parallel.CHAOS_KILL_ENV)
        assert_identical(self.CELLS, self._serial(), cache)

    def test_poison_cell_is_quarantined_with_traceback(
        self, monkeypatch, tmp_path
    ):
        path = str(tmp_path / "stats.cache")
        monkeypatch.setenv(parallel.CHAOS_POISON_ENV, "oltp/private")
        cache = StatsCache(path=path)
        report = run_cells(
            self.CELLS, CONFIG, cache, jobs=2,
            supervision=fast_supervision(),
        )
        assert [r.cell for r in report.quarantined] == [Cell("oltp", "private")]
        record = report.quarantined[0]
        assert record.attempts == 3  # initial + max_retries
        assert all(f.kind == "exception" for f in record.failures)
        assert "RuntimeError" in record.failures[-1].traceback
        # The healthy cell still ran and the poison cell is absent.
        assert Cell("oltp", "uniform-shared").key(CONFIG) in cache
        assert Cell("oltp", "private").key(CONFIG) not in cache
        # The quarantine journal persists next to the stats cache.
        journal = parallel.load_quarantine(parallel.quarantine_path(path))
        assert len(journal) == 1 and journal[0]["label"] == "oltp/private"
        assert report.counters.get("sweep.quarantine", 0) == 1
        assert "quarantined" in report.summary()

    def test_sweep_raises_quarantined_cell_error_after_journaling(
        self, monkeypatch, tmp_path
    ):
        path = str(tmp_path / "stats.cache")
        monkeypatch.setenv(parallel.CHAOS_POISON_ENV, "oltp/private")
        with pytest.raises(parallel.QuarantinedCellError) as excinfo:
            sweep(
                ("oltp",), ("private", "uniform-shared"), CONFIG,
                cache=StatsCache(path=path), jobs=2, max_retries=0,
            )
        assert "oltp/private" in str(excinfo.value)
        assert excinfo.value.journal == parallel.quarantine_path(path)
        # The healthy cell was journaled before the raise: a rerun
        # (faults cleared) resumes instead of re-simulating.
        survivors = StatsCache(path=path)
        assert Cell("oltp", "uniform-shared").key(CONFIG) in survivors

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        def refuse(self):
            raise OSError("fork refused")

        monkeypatch.setattr(multiprocessing.Process, "start", refuse)
        cache = StatsCache()
        report = run_cells(
            self.CELLS, CONFIG, cache, jobs=2,
            supervision=fast_supervision(),
        )
        assert report.fallback_reason is not None
        assert report.counters.get("sweep.fallback_serial", 0) >= 1
        for cell in self.CELLS:
            assert cell.key(CONFIG) in cache
        monkeypatch.undo()
        assert_identical(self.CELLS, self._serial(), cache)

    def test_resumable_sweep_skips_journaled_cells(self, tmp_path):
        path = str(tmp_path / "stats.cache")
        first = StatsCache(path=path)
        run_cells(self.CELLS, CONFIG, first, jobs=2)
        resumed = StatsCache(path=path)
        report = run_cells(self.CELLS, CONFIG, resumed, jobs=2)
        assert report.ran == [] and sorted(
            c.label for c in report.cached
        ) == sorted(c.label for c in self.CELLS)


class TestSupervisionResolution:
    def test_cell_timeout_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(parallel.CELL_TIMEOUT_ENV, "9")
        assert parallel.resolve_cell_timeout(3.5) == 3.5

    def test_cell_timeout_env_fallback(self, monkeypatch):
        monkeypatch.setenv(parallel.CELL_TIMEOUT_ENV, "120")
        assert parallel.resolve_cell_timeout() == 120.0
        monkeypatch.delenv(parallel.CELL_TIMEOUT_ENV)
        assert parallel.resolve_cell_timeout() == 0.0

    def test_max_retries_env_fallback(self, monkeypatch):
        monkeypatch.setenv(parallel.MAX_RETRIES_ENV, "5")
        assert parallel.resolve_max_retries() == 5
        monkeypatch.delenv(parallel.MAX_RETRIES_ENV)
        assert parallel.resolve_max_retries() == 2

    def test_rejects_garbage(self, monkeypatch):
        with pytest.raises(ValueError):
            parallel.resolve_cell_timeout(-1.0)
        with pytest.raises(ValueError):
            parallel.resolve_max_retries(-1)
        monkeypatch.setenv(parallel.CELL_TIMEOUT_ENV, "soon")
        with pytest.raises(ValueError):
            parallel.resolve_cell_timeout()
        monkeypatch.setenv(parallel.MAX_RETRIES_ENV, "lots")
        with pytest.raises(ValueError):
            parallel.resolve_max_retries()


def _journal_keys(path):
    """Raw (possibly duplicated) keys of a journal, in record order."""
    keys = []
    with open(path, "rb") as handle:
        while True:
            try:
                record = pickle.load(handle)
            except EOFError:
                break
            assert record[0] == "run2"
            key, _ = pickle.loads(record[2])
            keys.append(key)
    return keys


class TestJournalIntegrity:
    def _write(self, path, count=3):
        keys = [("w", f"d{i}", CONFIG, False) for i in range(count)]
        for key in keys:
            StatsCache.append_record(path, key, SimulationStats())
        return keys

    def test_truncated_journal_salvages_valid_prefix(self, tmp_path):
        path = str(tmp_path / "j.cache")
        keys = self._write(path)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 17)
        loaded, dirty = StatsCache._load(path)
        assert dirty
        assert list(loaded) == keys[:2]

    def test_bitflipped_record_is_dropped_by_crc(self, tmp_path):
        path = str(tmp_path / "j.cache")
        keys = self._write(path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            data = bytearray(handle.read())
            data[size // 2] ^= 0xFF
            handle.seek(0)
            handle.write(data)
        loaded, dirty = StatsCache._load(path)
        assert dirty
        # At most one record lost, and never a corrupt stats object.
        assert len(loaded) >= len(keys) - 1
        for stats in loaded.values():
            stats.fingerprint()

    def test_legacy_run_records_migrate_on_load(self, tmp_path):
        path = str(tmp_path / "j.cache")
        key = ("oltp", "private", CONFIG, False)
        with open(path, "wb") as handle:
            pickle.dump(("run", key, SimulationStats()), handle)
        loaded, dirty = StatsCache._load(path)
        assert key in loaded and dirty
        # Opening the cache compacts the journal to CRC-framed records.
        cache = StatsCache(path=path)
        assert key in cache
        assert _journal_keys(path) == [key]

    def test_crc_matches_zlib(self, tmp_path):
        path = str(tmp_path / "j.cache")
        key = ("oltp", "private", CONFIG, False)
        StatsCache.append_record(path, key, SimulationStats())
        with open(path, "rb") as handle:
            tag, crc, blob = pickle.load(handle)
        assert tag == "run2" and crc == zlib.crc32(blob)

    def test_midwrite_killed_shard_adopts_prefix_then_deletes(
        self, tmp_path
    ):
        # Regression: merge_shards used to delete a shard even when
        # loading raised partway, losing the valid prefix.
        path = str(tmp_path / "stats.cache")
        shard = f"{path}.shard.777"
        good = ("oltp", "private", CONFIG, False)
        StatsCache.append_record(shard, good, SimulationStats())
        StatsCache.append_record(
            shard, ("oltp", "ideal", CONFIG, False), SimulationStats()
        )
        with open(shard, "r+b") as handle:
            handle.truncate(os.path.getsize(shard) - 9)
        cache = StatsCache(path=path)
        parallel.merge_shards(cache)
        assert good in cache
        assert not os.path.exists(shard)

    def test_garbage_shard_is_quarantined_not_deleted(self, tmp_path):
        path = str(tmp_path / "stats.cache")
        shard = f"{path}.shard.778"
        with open(shard, "wb") as handle:
            handle.write(b"\x80\x05not a pickle stream at all")
        cache = StatsCache(path=path)
        parallel.merge_shards(cache)
        assert not os.path.exists(shard)
        assert os.path.exists(shard + parallel.CORRUPT_SUFFIX)
        # The quarantined shard is not re-examined on the next merge.
        parallel.merge_shards(cache)
        assert os.path.exists(shard + parallel.CORRUPT_SUFFIX)


def _merge_worker(path, barrier):
    barrier.wait()
    cache = StatsCache(path=path)
    parallel.merge_shards(cache)


class TestConcurrentMerge:
    def test_two_parents_merge_orphans_without_double_adopt(self, tmp_path):
        path = str(tmp_path / "stats.cache")
        StatsCache(path=path)
        keys = [("w", f"d{i}", CONFIG, False) for i in range(8)]
        for i, key in enumerate(keys):
            StatsCache.append_record(
                f"{path}.shard.{1000 + i}", key, SimulationStats()
            )
        barrier = multiprocessing.Barrier(2)
        parents = [
            multiprocessing.Process(
                target=_merge_worker, args=(path, barrier)
            )
            for _ in range(2)
        ]
        for proc in parents:
            proc.start()
        for proc in parents:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        # Every record was adopted exactly once — no loss, no dupes.
        merged = _journal_keys(path)
        assert sorted(map(repr, merged)) == sorted(map(repr, keys))
        assert not list(tmp_path.glob("stats.cache.shard.*"))


class TestJobsResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "8")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "6")
        assert resolve_jobs() == 6

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_jobs()
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestCellRegistry:
    def test_experiment_cells_match_figure_grids(self):
        from repro.experiments import fig10_performance as fig10

        cells = parallel.experiment_cells("fig10")
        assert cells == [
            Cell(workload, design)
            for workload in fig10.WORKLOADS
            for design in fig10.DESIGNS
        ]

    def test_mp_figures_flag_multiprogrammed(self):
        assert all(c.multiprogrammed for c in parallel.experiment_cells("fig12"))
        assert not any(c.multiprogrammed for c in parallel.experiment_cells("fig8"))

    def test_suite_cells_unique_and_cover_figures(self):
        cells = parallel.suite_cells()
        assert len(cells) == len(set(cells))
        for name in ("fig5", "fig7", "fig10", "fig11", "fig12"):
            for cell in parallel.experiment_cells(name):
                assert cell in cells

    def test_unknown_experiment_has_no_cells(self):
        assert parallel.experiment_cells("table1") == []
