"""Differential layer: the parallel sweep executor vs the serial path.

The executor claims bit-identity: fanning a sweep's cells across a
process pool must produce exactly the statistics the serial loop
produces, for every design, both interconnect backends, and the
multiprogrammed mixes — and a crashed worker must degrade to a serial
retry, never a dropped cell.  These tests pin each claim with
:meth:`SimulationStats.fingerprint` comparisons.
"""

import os
import pickle

import pytest

from repro.common.stats import SimulationStats
from repro.experiments import parallel
from repro.experiments.parallel import Cell, resolve_jobs, run_cells
from repro.experiments.runner import (
    DESIGN_FACTORIES,
    ExperimentConfig,
    StatsCache,
    build_design,
    sweep,
)

#: Small but non-trivial: long enough to exercise every miss class.
CONFIG = ExperimentConfig(warmup_per_core=1_500, measure_per_core=1_500)

ALL_DESIGNS = sorted(DESIGN_FACTORIES)


def run_both(cells, bus_model=None, jobs=4, config=CONFIG):
    """Run ``cells`` serially and with a pool; return the two caches."""
    serial = StatsCache()
    run_cells(cells, config, serial, jobs=1, bus_model=bus_model)
    pooled = StatsCache()
    run_cells(cells, config, pooled, jobs=jobs, bus_model=bus_model)
    return serial, pooled


def assert_identical(cells, serial, pooled, config=CONFIG):
    for cell in cells:
        left = serial._cache[cell.key(config)].fingerprint()
        right = pooled._cache[cell.key(config)].fingerprint()
        assert left == right, f"fingerprint diverged for {cell.label}"


class TestBitIdentity:
    def test_all_designs_atomic(self):
        cells = [Cell("oltp", design) for design in ALL_DESIGNS]
        serial, pooled = run_both(cells, bus_model="atomic")
        assert_identical(cells, serial, pooled)

    def test_all_designs_eventq(self):
        cells = [Cell("ocean", design) for design in ALL_DESIGNS]
        serial, pooled = run_both(cells, bus_model="eventq")
        assert_identical(cells, serial, pooled)

    def test_multiprogrammed_mix(self):
        cells = [
            Cell("MIX1", design, multiprogrammed=True)
            for design in ("uniform-shared", "private", "cmp-nurapid")
        ]
        serial, pooled = run_both(cells)
        assert_identical(cells, serial, pooled)

    def test_sweep_entrypoint_parallel(self):
        """sweep(jobs=4) returns the same stats objects the serial
        sweep computes, through the normal figure-module entry point."""
        workloads = ("oltp", "ocean")
        designs = ("uniform-shared", "private")
        serial = sweep(workloads, designs, CONFIG, jobs=1)
        pooled = sweep(workloads, designs, CONFIG, jobs=4)
        for workload in workloads:
            for design in designs:
                assert (
                    serial.stats[workload][design].fingerprint()
                    == pooled.stats[workload][design].fingerprint()
                )


class TestCrashRecovery:
    def test_crashed_worker_cell_is_retried_not_dropped(self, monkeypatch):
        cells = [Cell("oltp", "private"), Cell("oltp", "uniform-shared")]
        monkeypatch.setenv(parallel.CRASH_ENV, "oltp/private")
        cache = StatsCache()
        report = run_cells(cells, CONFIG, cache, jobs=2)
        # Every cell has a result despite the dead worker...
        for cell in cells:
            assert cell.key(CONFIG) in cache
        # ...and the degradation is reported, not silent.
        assert Cell("oltp", "private") in report.retried
        # The retried results match a clean serial run bit-for-bit.
        clean = StatsCache()
        monkeypatch.delenv(parallel.CRASH_ENV)
        run_cells(cells, CONFIG, clean, jobs=1)
        assert_identical(cells, clean, cache)

    def test_report_summary_mentions_retries(self, monkeypatch):
        monkeypatch.setenv(parallel.CRASH_ENV, "oltp/private")
        cache = StatsCache()
        report = run_cells([Cell("oltp", "private")], CONFIG, cache, jobs=2)
        assert "retried serially" in report.summary()
        assert "oltp/private" in report.summary()


class TestJournalSharding:
    def test_workers_journal_to_pid_shards_and_parent_merges(self, tmp_path):
        path = str(tmp_path / "stats.cache")
        cells = [Cell("oltp", "private"), Cell("oltp", "ideal")]
        cache = StatsCache(path=path)
        run_cells(cells, CONFIG, cache, jobs=2)
        # Shards are merged and removed; the main journal has the runs.
        assert not list(tmp_path.glob("stats.cache.shard.*"))
        reloaded = StatsCache(path=path)
        for cell in cells:
            assert cell.key(CONFIG) in reloaded

    def test_orphaned_shard_is_rescued(self, tmp_path):
        path = str(tmp_path / "stats.cache")
        StatsCache(path=path)  # create an empty journal home
        cell = Cell("oltp", "private")
        stats = SimulationStats()
        StatsCache.append_record(
            f"{path}.shard.12345", cell.key(CONFIG), stats
        )
        cache = StatsCache(path=path)
        report = run_cells([cell], CONFIG, cache, jobs=2)
        # The orphan satisfied the cell: no simulation ran.
        assert report.ran == [] and report.retried == []
        assert report.cached == [cell]
        assert not os.path.exists(f"{path}.shard.12345")

    def test_append_record_is_readable_journal(self, tmp_path):
        path = str(tmp_path / "j.cache")
        key = ("oltp", "private", CONFIG, False)
        StatsCache.append_record(path, key, SimulationStats())
        loaded, dirty = StatsCache._load(path)
        assert key in loaded and not dirty

    def test_insert_skips_duplicates(self, tmp_path):
        path = str(tmp_path / "j.cache")
        cache = StatsCache(path=path)
        key = ("oltp", "private", CONFIG, False)
        assert cache.insert(key, SimulationStats())
        assert not cache.insert(key, SimulationStats())
        with open(path, "rb") as handle:
            records = 0
            while True:
                try:
                    pickle.load(handle)
                except EOFError:
                    break
                records += 1
        assert records == 1


class TestJobsResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "8")
        assert resolve_jobs(2) == 2

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "6")
        assert resolve_jobs() == 6

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_jobs()
        with pytest.raises(ValueError):
            resolve_jobs(0)


class TestCellRegistry:
    def test_experiment_cells_match_figure_grids(self):
        from repro.experiments import fig10_performance as fig10

        cells = parallel.experiment_cells("fig10")
        assert cells == [
            Cell(workload, design)
            for workload in fig10.WORKLOADS
            for design in fig10.DESIGNS
        ]

    def test_mp_figures_flag_multiprogrammed(self):
        assert all(c.multiprogrammed for c in parallel.experiment_cells("fig12"))
        assert not any(c.multiprogrammed for c in parallel.experiment_cells("fig8"))

    def test_suite_cells_unique_and_cover_figures(self):
        cells = parallel.suite_cells()
        assert len(cells) == len(set(cells))
        for name in ("fig5", "fig7", "fig10", "fig11", "fig12"):
            for cell in parallel.experiment_cells(name):
                assert cell in cells

    def test_unknown_experiment_has_no_cells(self):
        assert parallel.experiment_cells("table1") == []
