"""Tests for the deterministic RNG plumbing."""

from repro.common.rng import DEFAULT_SEED, derive_seed, stream


class TestStream:
    def test_same_name_same_sequence(self):
        a = stream("component.x").random(10)
        b = stream("component.x").random(10)
        assert (a == b).all()

    def test_different_names_independent(self):
        a = stream("component.x").random(10)
        b = stream("component.y").random(10)
        assert not (a == b).all()

    def test_seed_changes_sequence(self):
        a = stream("component.x", seed=1).random(10)
        b = stream("component.x", seed=2).random(10)
        assert not (a == b).all()

    def test_default_seed_is_stable(self):
        """Changing the default seed silently breaks all calibrations."""
        assert DEFAULT_SEED == 20050604


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("abc") == derive_seed("abc")

    def test_positive_int(self):
        for name in ("a", "b", "longer.name"):
            value = derive_seed(name)
            assert isinstance(value, int)
            assert 0 <= value < 2**31
