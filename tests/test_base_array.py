"""Unit and property tests for the generic set-associative array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.base import Entry, SetAssociativeArray
from repro.coherence.states import CoherenceState
from repro.common.params import CacheGeometry

S = CoherenceState.SHARED
E = CoherenceState.EXCLUSIVE
I = CoherenceState.INVALID  # noqa: E741


def small_array(capacity=4096, assoc=4, block=64) -> SetAssociativeArray:
    return SetAssociativeArray(CacheGeometry(capacity, assoc, block))


class TestLookupInstall:
    def test_miss_on_empty(self):
        array = small_array()
        assert array.lookup(0x1000) is None

    def test_install_then_hit(self):
        array = small_array()
        victim = array.victim(0x1000)
        array.install(victim, 0x1000, S)
        assert array.lookup(0x1000) is victim

    def test_same_set_different_tags_coexist(self):
        array = small_array()
        # Same set index, different tags.
        step = array.geometry.num_sets * array.geometry.block_size
        addresses = [0x0, step, 2 * step, 3 * step]
        for address in addresses:
            array.install(array.victim(address), address, S)
        for address in addresses:
            assert array.lookup(address) is not None

    def test_lookup_ignores_invalid_entries_with_matching_tag(self):
        array = small_array()
        victim = array.victim(0x40)
        array.install(victim, 0x40, S)
        victim.invalidate()
        assert array.lookup(0x40) is None

    def test_block_address_roundtrip(self):
        array = small_array()
        address = 0xABCDEF00 & ~(array.geometry.block_size - 1)
        entry = array.victim(address)
        array.install(entry, address, E)
        set_index = array.geometry.set_index(address)
        assert array.block_address(set_index, entry) == address


class TestVictimSelection:
    def test_prefers_invalid(self):
        array = small_array()
        step = array.geometry.num_sets * array.geometry.block_size
        array.install(array.victim(0), 0, S)
        victim = array.victim(step)
        assert not victim.valid

    def test_lru_when_full(self):
        array = small_array(capacity=1024, assoc=2, block=64)
        step = array.geometry.num_sets * array.geometry.block_size
        array.install(array.victim(0), 0, S)
        array.install(array.victim(step), step, S)
        array.lookup(0)  # touch block 0; block at `step` becomes LRU
        victim = array.victim(2 * step)
        set_index = array.geometry.set_index(step)
        assert array.block_address(set_index, victim) == step

    def test_category_overrides_lru(self):
        array = small_array(capacity=1024, assoc=2, block=64)
        step = array.geometry.num_sets * array.geometry.block_size
        array.install(array.victim(0), 0, E)       # private, older
        array.install(array.victim(step), step, S)  # shared, newer
        # Category: private (0) before shared (1), despite LRU order.
        category = {E: 0, S: 1}
        victim = array.victim(2 * step, lambda e: category[e.state])
        assert victim.state is E


class TestOccupancy:
    def test_occupancy_counts_valid(self):
        array = small_array()
        assert array.occupancy == 0
        array.install(array.victim(0), 0, S)
        assert array.occupancy == 1

    def test_way_of_finds_entry(self):
        array = small_array()
        entry = array.victim(0x80)
        array.install(entry, 0x80, S)
        set_index = array.geometry.set_index(0x80)
        way = array.way_of(set_index, entry)
        assert array.entry_at(set_index, way) is entry


@settings(max_examples=60, deadline=None)
@given(
    addresses=st.lists(
        st.integers(min_value=0, max_value=255).map(lambda b: b * 64),
        min_size=1,
        max_size=300,
    )
)
def test_matches_reference_model(addresses):
    """The array agrees with a brute-force LRU reference model."""
    geometry = CacheGeometry(2048, 2, 64)  # 32 blocks, 16 sets
    array = SetAssociativeArray(geometry)
    reference: "dict[int, list[int]]" = {}  # set -> blocks, LRU order

    for address in addresses:
        block = address & ~63
        set_index = geometry.set_index(block)
        blocks = reference.setdefault(set_index, [])
        entry = array.lookup(block)
        if block in blocks:
            assert entry is not None, f"array missed resident block {block:#x}"
            blocks.remove(block)
            blocks.append(block)
        else:
            assert entry is None, f"array hit non-resident block {block:#x}"
            victim = array.victim(block)
            array.install(victim, block, S)
            if len(blocks) == geometry.associativity:
                blocks.pop(0)
            blocks.append(block)

    for set_index, blocks in reference.items():
        for block in blocks:
            assert array.lookup(block, touch=False) is not None
