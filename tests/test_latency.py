"""Tests for the latency tables and the Cacti-style derivation."""

import math

import pytest

from repro.common.params import MB, CacheGeometry
from repro.experiments.table1_latencies import check_derivation
from repro.latency import cacti, tables


class TestTable1Constants:
    def test_published_totals(self):
        assert tables.SHARED_TOTAL_LATENCY == 59
        assert tables.PRIVATE_TOTAL_LATENCY == 10
        assert tables.NURAPID_TAG_LATENCY == 5
        assert tables.NURAPID_DGROUP_LATENCIES_SORTED == (6, 20, 20, 33)
        assert tables.BUS_LATENCY == 32

    def test_table1_rows_complete(self):
        rows = tables.table1_rows()
        components = [row.component for row in rows]
        assert any("bus" in c for c in components)
        assert sum(1 for c in components if "d-group" in c) == 4


class TestDgroupPreferences:
    def test_matches_figure1_for_four_cores(self):
        prefs = tables.dgroup_preferences(4, 4)
        assert prefs == (
            (0, 1, 2, 3),
            (1, 3, 0, 2),
            (2, 0, 3, 1),
            (3, 2, 1, 0),
        )

    def test_every_rank_level_is_a_permutation(self):
        """Staggering: at each rank, cores prefer distinct d-groups."""
        prefs = tables.dgroup_preferences(4, 4)
        for rank in range(4):
            assert sorted(prefs[core][rank] for core in range(4)) == [0, 1, 2, 3]

    def test_own_dgroup_first(self):
        prefs = tables.dgroup_preferences(4, 4)
        for core in range(4):
            assert prefs[core][0] == core

    def test_generalized_latin_square(self):
        prefs = tables.dgroup_preferences(8, 8)
        for rank in range(8):
            assert sorted(p[rank] for p in prefs) == list(range(8))

    def test_rejects_mismatched_counts(self):
        with pytest.raises(ValueError):
            tables.dgroup_preferences(4, 8)


class TestNurapidLatencies:
    def test_matches_table1_per_core(self):
        matrix = tables.nurapid_dgroup_latencies(4, 4)
        for core in range(4):
            assert sorted(matrix[core]) == [6, 20, 20, 33]

    def test_own_dgroup_is_closest(self):
        matrix = tables.nurapid_dgroup_latencies(4, 4)
        for core in range(4):
            assert matrix[core][core] == 6

    def test_diagonal_partner_is_farthest(self):
        matrix = tables.nurapid_dgroup_latencies(4, 4)
        for core in range(4):
            assert matrix[core][3 - core] == 33

    def test_farthest_matches_least_preferred(self):
        """Figure 1's last-preference column is the 33-cycle d-group."""
        matrix = tables.nurapid_dgroup_latencies(4, 4)
        prefs = tables.dgroup_preferences(4, 4)
        for core in range(4):
            assert matrix[core][prefs[core][-1]] == 33


class TestSnucaLatencies:
    def test_shape(self):
        matrix = tables.snuca_bank_latencies(4, 16)
        assert len(matrix) == 4
        assert all(len(row) == 16 for row in matrix)

    def test_nonuniform_and_bounded(self):
        matrix = tables.snuca_bank_latencies(4, 16)
        for row in matrix:
            assert min(row) < max(row)  # genuinely non-uniform
            assert min(row) >= 10
            assert max(row) <= tables.SHARED_TOTAL_LATENCY

    def test_average_between_private_and_shared(self):
        """SNUCA sits between the private and uniform-shared latencies."""
        matrix = tables.snuca_bank_latencies(4, 16)
        average = sum(sum(row) for row in matrix) / (4 * 16)
        assert tables.PRIVATE_TOTAL_LATENCY < average < tables.SHARED_TOTAL_LATENCY

    def test_rejects_non_square_bank_count(self):
        with pytest.raises(ValueError):
            tables.snuca_bank_latencies(4, 8)


class TestCactiModel:
    def test_derivation_matches_table1(self):
        check_derivation(tolerance_cycles=2)

    def test_access_time_cycles_round_up(self):
        access = cacti.AccessTime(array_ps=150.0, wire_ps=100.0)
        assert access.total_ps == 250.0
        assert access.cycles == 2  # 250 ps at 200 ps/cycle

    def test_bigger_arrays_are_slower(self):
        small = cacti.best_array_delay_ps(1 * MB * 8)
        large = cacti.best_array_delay_ps(8 * MB * 8)
        assert large > small

    def test_tag_arrays_pay_comparator(self):
        bits = 64 * 1024 * 8
        assert cacti.best_array_delay_ps(bits, is_tag=True) > (
            cacti.best_array_delay_ps(bits, is_tag=False)
        )

    def test_wire_delay_proportional_to_route(self):
        geometry = CacheGeometry(2 * MB, 8, 128)
        near = cacti.data_array_access(geometry, route_mm=1.0)
        far = cacti.data_array_access(geometry, route_mm=10.0)
        assert far.wire_ps == pytest.approx(10 * near.wire_ps)
        assert far.array_ps == near.array_ps

    def test_area_scales_linearly(self):
        assert cacti.array_area_mm2(2_000_000) == pytest.approx(
            2 * cacti.array_area_mm2(1_000_000)
        )

    def test_structure_side_is_sqrt_of_area(self):
        side = cacti.structure_side_mm(2 * MB)
        assert side == pytest.approx(math.sqrt(cacti.array_area_mm2(2 * MB * 8)))

    def test_rejects_empty_array(self):
        with pytest.raises(ValueError):
            cacti.best_array_delay_ps(0)
