"""Smoke and structure tests for the experiment harnesses.

A module-scoped suite run with a tiny configuration exercises every
figure's pipeline once; individual tests check each report's structure
and basic sanity (fractions in range, baselines normalized to 1.0).
Statistical *shape* assertions against the paper belong to the
benchmark harness, which runs much longer traces.
"""

import pytest

from repro.experiments import (
    ablations,
    fig5_access_distribution,
    fig6_opportunity,
    fig7_reuse,
    fig8_tag_distribution,
    fig9_data_distribution,
    fig10_performance,
    fig11_mp_distribution,
    fig12_mp_performance,
    table1_latencies,
)
from repro.experiments.report import Comparison, ExperimentReport, format_table, pct
from repro.experiments.runner import (
    DESIGN_FACTORIES,
    ExperimentConfig,
    StatsCache,
    build_design,
)

TINY = ExperimentConfig(warmup_per_core=2500, measure_per_core=2500)


@pytest.fixture(scope="module")
def cache():
    return StatsCache()


class TestReportPrimitives:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [["x", "y"], ["longer", "z"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_pct(self):
        assert pct(0.1234) == "12.3%"

    def test_comparison_row_with_missing_paper_value(self):
        row = Comparison("m", None, 0.5).row()
        assert row == ["m", "-", "50.0%"]

    def test_report_render_contains_notes(self):
        report = ExperimentReport("T")
        report.add("x", 0.1, 0.2)
        report.notes.append("a note")
        text = report.render()
        assert "T" in text and "note: a note" in text


class TestRunner:
    def test_build_design_known_names(self):
        for name in DESIGN_FACTORIES:
            design = build_design(name)
            assert hasattr(design, "access")

    def test_build_design_unknown_name(self):
        with pytest.raises(KeyError):
            build_design("magic-cache")

    def test_stats_cache_memoizes(self, cache):
        first = cache.get(
            "barnes", "uniform-shared", DESIGN_FACTORIES["uniform-shared"], TINY
        )
        second = cache.get(
            "barnes", "uniform-shared", DESIGN_FACTORIES["uniform-shared"], TINY
        )
        assert first is second

    def test_stats_cache_persists_across_processes(self, tmp_path):
        """A killed sweep resumes from the on-disk cache, not a re-run."""
        path = str(tmp_path / "stats.cache")
        first = StatsCache(path=path)
        stats = first.get(
            "barnes", "uniform-shared", DESIGN_FACTORIES["uniform-shared"], TINY
        )
        assert len(first) == 1

        def exploding_factory():
            raise AssertionError("resumed sweep must not re-simulate")

        fresh = StatsCache(path=path)  # simulates a new process
        assert len(fresh) == 1
        reloaded = fresh.get("barnes", "uniform-shared", exploding_factory, TINY)
        assert reloaded.accesses.counts == stats.accesses.counts

    def test_stats_cache_ignores_corrupt_file(self, tmp_path):
        path = tmp_path / "stats.cache"
        path.write_bytes(b"\x00not a pickle")
        assert len(StatsCache(path=str(path))) == 0


class TestTable1:
    def test_report_rows(self):
        result = table1_latencies.run()
        labels = [c.label for c in result.report.comparisons]
        assert "shared 8MB total" in labels
        assert "d-group farthest" in labels

    def test_derivation_check_passes(self):
        table1_latencies.check_derivation(tolerance_cycles=2)

    def test_derivation_check_fails_with_zero_tolerance(self):
        # The model is calibrated to +/-1 cycle on two rows, so a zero
        # tolerance must trip (guarding against a vacuous check).
        with pytest.raises(AssertionError):
            table1_latencies.check_derivation(tolerance_cycles=0)


class TestFigureRuns:
    def test_fig5(self, cache):
        result = fig5_access_distribution.run(TINY, cache=cache)
        for workload, by_design in result.distributions.items():
            for design, dist in by_design.items():
                assert sum(dist.values()) == pytest.approx(1.0)
        assert "oltp" in fig5_access_distribution.render_full(result)

    def test_fig5_shared_has_no_sharing_misses(self, cache):
        result = fig5_access_distribution.run(TINY, cache=cache)
        for workload in result.distributions:
            shared = result.distributions[workload]["uniform-shared"]
            assert shared["ros"] == 0.0
            assert shared["rws"] == 0.0

    def test_fig6(self, cache):
        result = fig6_opportunity.run(TINY, cache=cache)
        for workload, by_design in result.relative.items():
            assert by_design["uniform-shared"] == pytest.approx(1.0)

    def test_fig7(self, cache):
        result = fig7_reuse.run(TINY, cache=cache)
        for workload in result.ros:
            total = sum(result.ros[workload].values())
            assert total == 0.0 or total == pytest.approx(1.0)

    def test_fig8(self, cache):
        result = fig8_tag_distribution.run(TINY, cache=cache)
        for workload, by_design in result.distributions.items():
            assert set(by_design) == {
                "uniform-shared",
                "private",
                "cmp-nurapid-cr",
                "cmp-nurapid-isc",
            }

    def test_fig9(self, cache):
        result = fig9_data_distribution.run(TINY, cache=cache)
        for workload, by_design in result.distributions.items():
            for dist in by_design.values():
                assert sum(dist.values()) == pytest.approx(1.0)

    def test_fig10(self, cache):
        result = fig10_performance.run(TINY, cache=cache)
        assert set(result.averages) == set(fig10_performance.DESIGNS)
        assert result.averages["uniform-shared"] == pytest.approx(1.0)

    def test_fig11(self, cache):
        result = fig11_mp_distribution.run(TINY, cache=cache)
        for mix, rates in result.miss_rates.items():
            for rate in rates.values():
                assert 0.0 <= rate <= 1.0
        assert 0.0 <= result.closest_of_hits <= 1.0

    def test_fig12(self, cache):
        result = fig12_mp_performance.run(TINY, cache=cache)
        for mix, by_design in result.relative.items():
            assert by_design["uniform-shared"] == pytest.approx(1.0)

    def test_reports_render(self, cache):
        for module in (
            fig5_access_distribution,
            fig6_opportunity,
            fig7_reuse,
            fig8_tag_distribution,
            fig9_data_distribution,
            fig10_performance,
            fig11_mp_distribution,
            fig12_mp_performance,
        ):
            result = module.run(TINY, cache=cache)
            text = result.report.render()
            assert "paper" in text and "measured" in text


class TestAblations:
    def test_promotion_ablation(self):
        result = ablations.run_promotion(TINY)
        assert "fastest" in result.raw and "next-fastest" in result.raw

    def test_tag_capacity_ablation(self):
        result = ablations.run_tag_capacity(TINY)
        assert set(result.raw) == {"1x", "2x", "4x"}

    def test_replication_use_ablation(self):
        result = ablations.run_replication_use(TINY)
        assert set(result.raw) == {"use1", "use2", "use3"}

    def test_ranking_ablation(self):
        result = ablations.run_ranking(TINY)
        assert set(result.raw) == {"staggered", "naive"}

    def test_update_protocol_ablation(self):
        result = ablations.run_update_protocol(TINY)
        assert set(result.raw) == {"cmp-nurapid", "private-update"}

    def test_naive_preferences_start_with_own_group(self):
        prefs = ablations._naive_preferences(4)
        for core in range(4):
            assert prefs[core][0] == core
            assert sorted(prefs[core]) == [0, 1, 2, 3]
