"""End-to-end integration tests across designs and workloads.

These run moderately sized traces (tens of thousands of accesses) and
assert the *qualitative* relationships the paper's mechanisms create.
Thresholds are deliberately loose — the benchmark harness, not the test
suite, checks quantitative agreement with the paper.
"""

import itertools

import pytest

from repro.common.types import MissClass
from repro.core.nurapid import NurapidCache
from repro.cpu.system import CmpSystem
from repro.experiments.runner import DESIGN_FACTORIES, build_design
from repro.workloads.multiprogrammed import make_mix
from repro.workloads.multithreaded import make_workload


def run(design_name, workload, per_core=15_000):
    design = build_design(design_name)
    system = CmpSystem(design)
    events = workload.events(accesses_per_core=2 * per_core)
    system.run(itertools.islice(events, per_core * 4))
    system.reset_stats()
    system.run(events)
    return design, system.stats()


@pytest.fixture(scope="module")
def oltp_stats():
    workload_for = lambda: make_workload("oltp")  # noqa: E731
    return {
        name: run(name, workload_for())[1]
        for name in (
            "uniform-shared",
            "private",
            "cmp-nurapid",
            "ideal",
            "non-uniform-shared",
        )
    }


class TestOltpRelationships:
    def test_all_designs_see_identical_demand(self, oltp_stats):
        """Same trace, same L1s: every design sees about the same
        number of L2 *load* accesses (write-through designs add store
        traffic)."""
        shared = oltp_stats["uniform-shared"].accesses.total
        private = oltp_stats["private"].accesses.total
        assert private == shared

    def test_shared_cache_has_no_sharing_misses(self, oltp_stats):
        acc = oltp_stats["uniform-shared"].accesses
        assert acc.fraction(MissClass.ROS) == 0.0
        assert acc.fraction(MissClass.RWS) == 0.0

    def test_private_pays_sharing_misses(self, oltp_stats):
        acc = oltp_stats["private"].accesses
        assert acc.fraction(MissClass.ROS) > 0.0
        assert acc.fraction(MissClass.RWS) > 0.0

    def test_cr_reduces_ros_misses(self, oltp_stats):
        nurapid = oltp_stats["cmp-nurapid"].accesses
        private = oltp_stats["private"].accesses
        assert nurapid.fraction(MissClass.ROS) < private.fraction(MissClass.ROS)

    def test_isc_reduces_rws_misses(self, oltp_stats):
        nurapid = oltp_stats["cmp-nurapid"].accesses
        private = oltp_stats["private"].accesses
        assert nurapid.fraction(MissClass.RWS) < private.fraction(MissClass.RWS)

    def test_ideal_is_fastest(self, oltp_stats):
        ideal = oltp_stats["ideal"].throughput
        for name, stats in oltp_stats.items():
            assert ideal >= stats.throughput * 0.999

    def test_every_design_beats_uniform_shared(self, oltp_stats):
        base = oltp_stats["uniform-shared"].throughput
        for name in ("non-uniform-shared", "private", "cmp-nurapid"):
            assert oltp_stats[name].throughput > base

    def test_nurapid_invariants_after_full_run(self):
        design, _ = run("cmp-nurapid", make_workload("oltp"), per_core=8_000)
        assert isinstance(design, NurapidCache)
        design.check_invariants()


class TestScientificWorkloads:
    def test_barnes_private_close_to_nurapid(self):
        """Little sharing: private caches and CMP-NuRAPID converge."""
        _, private = run("private", make_workload("barnes"))
        _, nurapid = run("cmp-nurapid", make_workload("barnes"))
        ratio = nurapid.throughput / private.throughput
        assert 0.9 < ratio < 1.15


class TestMultiprogrammed:
    def test_capacity_stealing_beats_private_on_skewed_demand(self):
        """A scaled-down MIX1: one core's working set overflows its
        private share while a neighbour's is tiny.  Capacity stealing
        must turn the overflow into neighbour-d-group hits instead of
        off-chip misses."""
        from repro.caches.private import PrivateCaches
        from repro.common.params import KB, CacheGeometry, NurapidParams, PrivateCacheParams
        from repro.common.types import Access, AccessType

        private = PrivateCaches(
            PrivateCacheParams(geometry=CacheGeometry(16 * KB, 4, 128))
        )
        # Same per-core share: 16 KB d-groups (128 frames).
        nurapid = NurapidCache(
            NurapidParams(dgroup_capacity_bytes=16 * KB, tag_associativity=4)
        )
        big, small = 200, 16  # core 0 overflows 128 frames; core 1 idles
        for _ in range(3):
            for i in range(big):
                for design in (private, nurapid):
                    design.access(Access(0, 0x100000 + i * 128, AccessType.READ))
                    design.access(
                        Access(1, 0x900000 + (i % small) * 128, AccessType.READ)
                    )
        # Measure a further pass.
        private.reset_stats()
        nurapid.reset_stats()
        for i in range(big):
            for design in (private, nurapid):
                design.access(Access(0, 0x100000 + i * 128, AccessType.READ))
        assert nurapid.stats.miss_rate < private.stats.miss_rate
        nurapid.check_invariants()

    def test_no_sharing_misses_in_mixes(self):
        _, stats = run("private", make_mix("MIX4"), per_core=10_000)
        acc = stats.accesses
        assert acc.fraction(MissClass.ROS) == 0.0
        assert acc.fraction(MissClass.RWS) == 0.0


class TestAllDesignsRunAllWorkloads:
    @pytest.mark.parametrize("design_name", sorted(DESIGN_FACTORIES))
    def test_design_completes_apache(self, design_name):
        _, stats = run(design_name, make_workload("apache"), per_core=4_000)
        assert stats.accesses.total > 0
        assert stats.throughput > 0
