"""Regenerate the golden scaled-mesh fingerprint grid.

Run from the repository root::

    PYTHONPATH=src python tests/data/mesh/generate.py

The script runs the scaled CMP-NuRAPID communication cells (CS, CR,
ISC, and the private baseline) at 8 and 16 cores on the mesh NoC
(``--bus-model mesh``) and records every cell's
:meth:`~repro.common.stats.SimulationStats.fingerprint` in
``expected.json``.  ``test_mesh_golden.py`` then asserts that the
current build still reproduces every committed fingerprint bit for
bit.

The 4-core differential suite proves mesh == bus where both exist;
beyond four cores there is no bus to compare against, so this corpus
is the anchor: a failure here means the mesh NoC, the directory, or
the scaled workload generator changed simulated behaviour since the
fixtures were committed.  Regenerate only for a legitimate model
change, and commit the refreshed ``expected.json`` with the change
that caused it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.runner import (
    ExperimentConfig,
    build_design,
    run_multithreaded,
)

HERE = Path(__file__).resolve().parent

#: (workload, design, num_cores) cells, each run on the mesh NoC.
CELLS = (
    ("oltp", "private", 8),
    ("oltp", "cmp-nurapid-cs", 8),
    ("oltp", "cmp-nurapid-cr", 8),
    ("oltp", "cmp-nurapid-isc", 8),
    ("ocean", "private", 16),
    ("ocean", "cmp-nurapid-cs", 16),
    ("ocean", "cmp-nurapid-cr", 16),
    ("ocean", "cmp-nurapid-isc", 16),
)

SEEDS = (42, 7)

ACCESSES = 600
WARMUP = 300


def cell_key(workload, design, num_cores, seed):
    return f"{workload}/{design}/c{num_cores}/mesh/seed={seed}"


def run_cell(workload, design_name, num_cores, seed):
    config = ExperimentConfig(
        warmup_per_core=WARMUP, measure_per_core=ACCESSES, seed=seed
    )
    design = build_design(design_name, bus_model="mesh", num_cores=num_cores)
    _, stats = run_multithreaded(design, workload, config,
                                 num_cores=num_cores)
    return stats


def main() -> None:
    expected = {}
    for workload, design, num_cores in CELLS:
        for seed in SEEDS:
            stats = run_cell(workload, design, num_cores, seed)
            expected[cell_key(workload, design, num_cores, seed)] = (
                stats.fingerprint()
            )
    out = HERE / "expected.json"
    out.write_text(json.dumps(expected, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(expected)} fingerprints)")


if __name__ == "__main__":
    main()
