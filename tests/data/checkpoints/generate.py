"""Regenerate the golden checkpoint corpus.

Run from the repository root::

    PYTHONPATH=src python tests/data/checkpoints/generate.py

For each (design, bus model) pair below this script runs a short
deterministic workload prefix on a small-geometry system (state dicts
carry their construction params, so a snapshot of a small system
restores faithfully onto a default-built design), writes the cut as
both a v1 (legacy whole-object pickle) and a v2 (state-dict envelope)
fixture, finishes the run uninterrupted, and records the final
:meth:`~repro.common.stats.SimulationStats.fingerprint` in
``expected.json``.  ``test_checkpoint_golden.py`` then asserts that
every committed fixture still loads under the current build and that
resuming it reproduces the recorded fingerprint bit-identically.

Regenerate only when the *model* legitimately changes behaviour (the
fixtures exist to catch accidental drift); commit the new fixtures and
``expected.json`` together.
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path

from repro.caches.private import PrivateCaches
from repro.caches.shared import SharedCache
from repro.common.params import (
    KB,
    CacheGeometry,
    L1Params,
    NurapidParams,
    PrivateCacheParams,
    SharedCacheParams,
    SystemParams,
)
from repro.core.nurapid import NurapidCache
from repro.cpu.system import CmpSystem
from repro.harness.checkpoint import save_checkpoint
from repro.interconnect.eventq import attach_eventq
from repro.workloads.multithreaded import make_workload

HERE = Path(__file__).resolve().parent

#: Small L1s keep the v1 whole-object pickles at committed-fixture size.
SMALL_L1 = SystemParams(l1=L1Params(geometry=CacheGeometry(4 * KB, 2, 64)))

SMALL_DESIGNS = {
    "cmp-nurapid": lambda: NurapidCache(
        NurapidParams(dgroup_capacity_bytes=4 * KB, tag_associativity=2)
    ),
    "private": lambda: PrivateCaches(
        PrivateCacheParams(geometry=CacheGeometry(4 * KB, 2, 128))
    ),
    "uniform-shared": lambda: SharedCache(
        SharedCacheParams(geometry=CacheGeometry(16 * KB, 4, 128))
    ),
}

#: (design, bus_model, workload, seed, accesses per core, cut in events).
CASES = (
    ("cmp-nurapid", "eventq", "oltp", 42, 150, 400),
    ("private", "eventq", "apache", 42, 150, 400),
    ("uniform-shared", "atomic", "oltp", 42, 150, 400),
)


def run_case(design_name, bus_model, workload_name, seed, accesses, cut):
    design = SMALL_DESIGNS[design_name]()
    if bus_model == "eventq":
        attach_eventq(design)
    system = CmpSystem(design, SMALL_L1)
    workload = make_workload(workload_name, seed=seed)
    events = list(
        itertools.islice(
            workload.events(accesses_per_core=accesses),
            accesses * workload.num_cores,
        )
    )
    meta = {
        "design": design_name,
        "workload": workload_name,
        "mix": None,
        "seed": seed,
        "accesses": accesses,
        "warmup": 0,
        "bus_model": bus_model,
        "total_events": len(events),
        "stats_reset": False,
    }
    for event in events[:cut]:
        system.step(event)
    stem = f"{design_name}-{bus_model}"
    for version in (1, 2):
        save_checkpoint(
            system, cut, HERE / f"{stem}.v{version}.ck", meta,
            format_version=version,
        )
    for event in events[cut:]:
        system.step(event)
    return stem, system.stats().fingerprint()


def main() -> None:
    expected = {}
    for case in CASES:
        stem, fingerprint = run_case(*case)
        expected[stem] = fingerprint
        print(f"{stem}: fixtures written, final fingerprint recorded")
    out = HERE / "expected.json"
    out.write_text(json.dumps(expected, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
