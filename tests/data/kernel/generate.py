"""Regenerate the golden batch-kernel fingerprint grid.

Run from the repository root::

    PYTHONPATH=src python tests/data/kernel/generate.py

The script runs a small but representative cell grid (multithreaded and
multiprogrammed workloads, replication-sensitive designs, both bus
models, two seeds) through :func:`repro.kernel.run_batch` in ONE batch
per seed and records every cell's
:meth:`~repro.common.stats.SimulationStats.fingerprint` in
``expected.json``.  ``test_kernel_golden.py`` then asserts that the
current build's batch engine still reproduces every committed
fingerprint bit for bit.

Because the differential suite separately proves batch == scalar, this
corpus pins the *shared* trajectory: a failure here means the model (or
the kernel) changed simulated behaviour since the fixtures were
committed.  Regenerate only for a legitimate model change, and commit
the refreshed ``expected.json`` with the change that caused it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.runner import ExperimentConfig
from repro.kernel import run_batch

HERE = Path(__file__).resolve().parent

#: (workload, design, multiprogrammed, bus_model) lanes, one batch/seed.
CELLS = (
    ("oltp", "uniform-shared", False, "atomic"),
    ("oltp", "private", False, "atomic"),
    ("oltp", "cmp-nurapid", False, "eventq"),
    ("apache", "cmp-nurapid-cr", False, "eventq"),
    ("ocean", "cmp-nurapid-isc", False, "atomic"),
    ("MIX1", "private", True, "atomic"),
    ("MIX3", "cmp-nurapid", True, "eventq"),
)

#: warmup=0 lanes: the L2 fast tier's cold-start trajectory (mirror
#: enrolls, goes loud on the all-miss prefix, sleeps, and may re-wake)
#: is behaviour worth pinning across builds too.
COLD_CELLS = (
    ("oltp", "cmp-nurapid", False, "atomic"),
    ("apache", "cmp-nurapid-cs", False, "atomic"),
    ("ocean", "cmp-nurapid-cr", False, "eventq"),
    ("MIX2", "cmp-nurapid-isc", True, "atomic"),
)

SEEDS = (42, 7)

ACCESSES = 600
WARMUP = 300


def cell_key(workload, design, multiprogrammed, bus_model, seed, cold=False):
    kind = "mix" if multiprogrammed else "mt"
    key = f"{workload}/{design}/{kind}/{bus_model}/seed={seed}"
    return key + "/cold" if cold else key


def main() -> None:
    expected = {}
    for seed in SEEDS:
        config = ExperimentConfig(
            warmup_per_core=WARMUP, measure_per_core=ACCESSES, seed=seed
        )
        results = run_batch(list(CELLS), config)
        for (workload, design, mp, bus), stats in sorted(results.items()):
            expected[cell_key(workload, design, mp, bus, seed)] = (
                stats.fingerprint()
            )
        cold_config = ExperimentConfig(
            warmup_per_core=0, measure_per_core=ACCESSES, seed=seed
        )
        results = run_batch(list(COLD_CELLS), cold_config)
        for (workload, design, mp, bus), stats in sorted(results.items()):
            expected[cell_key(workload, design, mp, bus, seed, cold=True)] = (
                stats.fingerprint()
            )
    out = HERE / "expected.json"
    out.write_text(json.dumps(expected, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(expected)} fingerprints)")


if __name__ == "__main__":
    main()
