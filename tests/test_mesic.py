"""Arc-by-arc tests of the MESIC protocol engine against Figure 4b."""

import pytest

from repro.coherence import mesic
from repro.coherence.mesic import DataAction, GlobalStateChecker
from repro.coherence.states import MESIC_STATES, CoherenceState
from repro.interconnect.bus import BusOp

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741
C = CoherenceState.COMMUNICATION


class TestProcessorRead:
    @pytest.mark.parametrize("state", [M, E, S, C])
    def test_read_hits_self_loop(self, state):
        action = mesic.processor_read(state)
        assert action.next_state is state
        assert action.bus_ops == ()
        assert action.data_action is DataAction.NONE

    def test_miss_no_copy_fills_closest_exclusive(self):
        action = mesic.processor_read(I)
        assert action.next_state is E
        assert action.bus_ops == (BusOp.BUS_RD,)
        assert action.data_action is DataAction.FILL_CLOSEST

    def test_miss_clean_copy_takes_pointer_only(self):
        """Controlled replication: tag copy, no data copy (Figure 3b)."""
        action = mesic.processor_read(I, shared_signal=True)
        assert action.next_state is S
        assert action.data_action is DataAction.POINTER_ONLY

    def test_miss_dirty_copy_relocates_and_enters_c(self):
        """ISC: the I->C arc; dirty signal wins over shared."""
        action = mesic.processor_read(I, shared_signal=True, dirty_signal=True)
        assert action.next_state is C
        assert action.data_action is DataAction.RELOCATE


class TestProcessorWrite:
    def test_modified_write_in_place(self):
        action = mesic.processor_write(M)
        assert action.next_state is M
        assert action.bus_ops == ()

    def test_exclusive_silent_upgrade(self):
        assert mesic.processor_write(E).next_state is M

    def test_shared_upgrade(self):
        action = mesic.processor_write(S)
        assert action.next_state is M
        assert action.bus_ops == (BusOp.BUS_UPG,)
        assert action.data_action is DataAction.WRITE_IN_PLACE

    def test_c_write_hits_stay_in_c_with_wrthru_and_busrdx(self):
        """Section 3.2: write-through + BusRdX, no coherence miss."""
        action = mesic.processor_write(C)
        assert action.next_state is C
        assert action.bus_ops == (BusOp.WR_THRU, BusOp.BUS_RDX)
        assert action.data_action is DataAction.WRITE_IN_PLACE

    def test_write_miss_on_dirty_joins_c_in_place(self):
        """Figure 4b's I->C PrWr/BusRd,BusRdX arc: no new copy."""
        action = mesic.processor_write(I, dirty_signal=True)
        assert action.next_state is C
        assert action.bus_ops == (BusOp.BUS_RD, BusOp.BUS_RDX)
        assert action.data_action is DataAction.WRITE_IN_PLACE

    def test_write_miss_on_clean_is_mesi_like(self):
        action = mesic.processor_write(I, shared_signal=True)
        assert action.next_state is M
        assert action.bus_ops == (BusOp.BUS_RDX,)
        assert action.data_action is DataAction.FILL_CLOSEST


class TestSnoop:
    def test_deleted_arc_x_modified_goes_to_c_not_s(self):
        """The M->S arc of MESI does not exist in MESIC (arc x)."""
        action = mesic.snoop(M, BusOp.BUS_RD)
        assert action.next_state is C
        assert action.flush
        assert action.repoint

    def test_c_holder_on_busrd_stays_c_and_repoints(self):
        action = mesic.snoop(C, BusOp.BUS_RD)
        assert action.next_state is C
        assert action.repoint

    @pytest.mark.parametrize("state", [E, S])
    def test_clean_holders_supply_and_share(self, state):
        action = mesic.snoop(state, BusOp.BUS_RD)
        assert action.next_state is S
        assert action.flush

    def test_c_on_busrdx_invalidates_l1_only(self):
        """Repeated writes to a C block: tag copies survive."""
        action = mesic.snoop(C, BusOp.BUS_RDX)
        assert action.next_state is C
        assert action.invalidate_l1

    @pytest.mark.parametrize("state", [E, S])
    def test_clean_on_busrdx_invalidates(self, state):
        assert mesic.snoop(state, BusOp.BUS_RDX).next_state is I

    def test_shared_on_busupg_invalidates(self):
        assert mesic.snoop(S, BusOp.BUS_UPG).next_state is I

    @pytest.mark.parametrize("state", [M, E, C])
    def test_busupg_against_dirty_or_exclusive_is_error(self, state):
        with pytest.raises(RuntimeError):
            mesic.snoop(state, BusOp.BUS_UPG)

    def test_invalid_ignores_everything(self):
        for op in BusOp:
            assert mesic.snoop(I, op).next_state is I

    @pytest.mark.parametrize("state", [M, E, S, C])
    def test_busrepl_state_unchanged(self, state):
        """Pointer-match invalidation is the controller's job."""
        assert mesic.snoop(state, BusOp.BUS_REPL).next_state is state

    def test_no_exit_from_c_except_replacement(self):
        """Section 3.2: there are no transitions out of C other than
        those due to replacements."""
        assert mesic.processor_read(C).next_state is C
        assert mesic.processor_write(C).next_state is C
        for op in (BusOp.BUS_RD, BusOp.BUS_RDX, BusOp.WR_THRU, BusOp.BUS_REPL):
            assert mesic.snoop(C, op).next_state is C


class TestStateProperties:
    def test_dirty_states(self):
        assert M.is_dirty and C.is_dirty
        assert not E.is_dirty and not S.is_dirty and not I.is_dirty

    def test_exclusive_states(self):
        assert M.is_exclusive and E.is_exclusive
        assert not C.is_exclusive

    def test_closure(self):
        for state in MESIC_STATES:
            assert mesic.processor_read(state).next_state in MESIC_STATES
            assert mesic.processor_write(state).next_state in MESIC_STATES


class TestGlobalStateChecker:
    def setup_method(self):
        self.checker = GlobalStateChecker()

    def test_accepts_single_modified(self):
        self.checker.check(0x100, [M, I, I, I])

    def test_accepts_many_shared(self):
        self.checker.check(0x100, [S, S, S, I])

    def test_accepts_communication_group(self):
        self.checker.check(0x100, [C, C, I, C])

    def test_rejects_two_exclusive(self):
        with pytest.raises(AssertionError):
            self.checker.check(0x100, [M, M])

    def test_rejects_exclusive_with_sharers(self):
        with pytest.raises(AssertionError):
            self.checker.check(0x100, [M, S])

    def test_rejects_c_and_s_mix(self):
        with pytest.raises(AssertionError):
            self.checker.check(0x100, [C, S])
