"""Unit tests for repro.common.types."""

import pytest

from repro.common.types import (
    Access,
    AccessResult,
    AccessType,
    MissClass,
    SharingClass,
    block_address,
    log2_exact,
)


class TestAccessType:
    def test_write_flag(self):
        assert AccessType.WRITE.is_write
        assert not AccessType.READ.is_write


class TestMissClass:
    def test_hit_is_not_miss(self):
        assert not MissClass.HIT.is_miss

    @pytest.mark.parametrize(
        "miss", [MissClass.ROS, MissClass.RWS, MissClass.CAPACITY]
    )
    def test_misses_are_misses(self, miss):
        assert miss.is_miss


class TestAccess:
    def test_fields_and_is_write(self):
        access = Access(2, 0x1000, AccessType.WRITE)
        assert access.core == 2
        assert access.address == 0x1000
        assert access.is_write
        assert access.sharing is SharingClass.PRIVATE

    def test_equality_and_hash(self):
        a = Access(0, 64, AccessType.READ, SharingClass.READ_ONLY_SHARED)
        b = Access(0, 64, AccessType.READ, SharingClass.READ_ONLY_SHARED)
        c = Access(1, 64, AccessType.READ, SharingClass.READ_ONLY_SHARED)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_core_and_address(self):
        text = repr(Access(1, 0x80, AccessType.READ))
        assert "core=1" in text
        assert "0x80" in text


class TestAccessResult:
    def test_hit_flag(self):
        assert AccessResult(MissClass.HIT, 10).is_hit
        assert not AccessResult(MissClass.CAPACITY, 300).is_hit

    def test_defaults(self):
        result = AccessResult(MissClass.HIT, 10)
        assert result.dgroup_distance is None
        assert not result.write_through


class TestBlockAddress:
    def test_masks_offset(self):
        assert block_address(0x12345, 128) == 0x12300
        assert block_address(0x12380, 128) == 0x12380

    def test_identity_for_aligned(self):
        assert block_address(0x4000, 64) == 0x4000

    @pytest.mark.parametrize("bad", [0, -1, 3, 100])
    def test_rejects_non_power_of_two(self, bad):
        with pytest.raises(ValueError):
            block_address(0x1000, bad)


class TestLog2Exact:
    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (128, 7), (1 << 20, 20)])
    def test_exact(self, value, expected):
        assert log2_exact(value) == expected

    @pytest.mark.parametrize("bad", [0, -4, 3, 6, 100])
    def test_rejects_non_power_of_two(self, bad):
        with pytest.raises(ValueError):
            log2_exact(bad)
