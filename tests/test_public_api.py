"""Tests for the top-level public API surface."""

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_design_classes_exported(self):
        for cls_name in (
            "NurapidCache",
            "SharedCache",
            "PrivateCaches",
            "SnucaCache",
            "IdealCache",
        ):
            assert hasattr(repro, cls_name)

    def test_workload_builders_exported(self):
        assert callable(repro.make_workload)
        assert callable(repro.make_mix)
        assert callable(repro.run_workload)

    def test_quickstart_docstring_snippet_runs(self):
        """The module docstring's quickstart example must keep working."""
        design = repro.NurapidCache()
        workload = repro.make_workload("barnes")
        stats = repro.run_workload(
            design, workload.events(accesses_per_core=800)
        )
        assert 0.0 <= stats.accesses.miss_rate <= 1.0
        assert stats.throughput > 0

    def test_subpackage_exports(self):
        from repro.experiments import DESIGN_FACTORIES
        from repro.latency import energy
        from repro.workloads import tracefile

        assert "cmp-nurapid" in DESIGN_FACTORIES
        assert hasattr(energy, "estimate_energy_per_access")
        assert hasattr(tracefile, "read_trace")
