"""Tests for the extension features: energy model, trace files,
C-block migration, and the bandwidth report."""

import io

import pytest

from repro.common.params import KB, CacheGeometry, NurapidParams
from repro.common.types import Access, AccessType
from repro.coherence.states import CoherenceState
from repro.core.nurapid import NurapidCache
from repro.cpu.system import TimedAccess
from repro.latency import energy
from repro.workloads import tracefile

C = CoherenceState.COMMUNICATION


def read(core, address):
    return Access(core, address, AccessType.READ)


def write(core, address):
    return Access(core, address, AccessType.WRITE)


class TestEnergyModel:
    def test_sequential_data_access_cheaper_than_parallel(self):
        geometry = CacheGeometry(2 << 20, 8, 128)
        sequential = energy.data_access_energy(geometry, sequential=True)
        parallel = energy.data_access_energy(geometry, sequential=False)
        assert parallel == pytest.approx(8 * sequential)

    def test_pointer_return_is_64x_cheaper_than_block_transfer(self):
        assert energy.pointer_vs_block_transfer_ratio() == pytest.approx(64.0)

    def test_offchip_dominates(self):
        model = energy.shared_cache_model()
        assert model.offchip_miss_energy() > 10 * model.hit_energy()

    def test_private_coherence_miss_beats_nurapid_pointer(self):
        """The energy argument for CR: a pointer return moves 16 bits
        where a cache-to-cache transfer moves 1024."""
        private = energy.private_cache_model()
        nurapid = energy.nurapid_model()
        assert nurapid.pointer_transfer_pj < 0.1 * private.onchip_transfer_pj

    def test_estimate_requires_normalized_mix(self):
        model = energy.shared_cache_model()
        with pytest.raises(ValueError):
            energy.estimate_energy_per_access(model, 0.5, 0.1, 0.1)

    def test_estimate_monotonic_in_offchip_misses(self):
        model = energy.shared_cache_model()
        low = energy.estimate_energy_per_access(model, 0.95, 0.0, 0.05)
        high = energy.estimate_energy_per_access(model, 0.85, 0.0, 0.15)
        assert high > low

    def test_wire_energy_linear(self):
        assert energy.wire_energy(100, 4.0) == pytest.approx(
            2 * energy.wire_energy(100, 2.0)
        )


class TestTraceFile:
    def sample_events(self):
        return [
            TimedAccess(read(0, 0x1000), gap=3, colocated=2),
            TimedAccess(write(2, 0x2040), gap=0, colocated=0),
        ]

    def test_roundtrip(self):
        text = tracefile.trace_to_string(self.sample_events())
        events = list(tracefile.read_trace(io.StringIO(text)))
        assert len(events) == 2
        assert events[0].access.core == 0
        assert events[0].access.address == 0x1000
        assert events[0].gap == 3
        assert events[0].colocated == 2
        assert events[1].access.is_write

    def test_roundtrip_via_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        count = tracefile.write_trace(self.sample_events(), path)
        assert count == 2
        events = list(tracefile.read_trace(path))
        assert [e.access.address for e in events] == [0x1000, 0x2040]

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n0 40 R\n"
        events = list(tracefile.read_trace(io.StringIO(text)))
        assert len(events) == 1

    def test_defaults_for_short_lines(self):
        events = list(tracefile.read_trace(io.StringIO("1 ff W\n")))
        assert events[0].gap == 0
        assert events[0].colocated == 0

    @pytest.mark.parametrize(
        "bad",
        ["0 40", "0 40 X", "x 40 R", "0 zz R", "-1 40 R", "0 40 R -2"],
    )
    def test_malformed_lines_rejected(self, bad):
        with pytest.raises(tracefile.TraceFormatError):
            list(tracefile.read_trace(io.StringIO(bad + "\n")))

    def test_trace_drives_a_design(self):
        """A parsed trace is directly consumable by the system."""
        from repro.cpu.system import run_workload
        from repro.caches.shared import SharedCache
        from repro.common.params import SharedCacheParams

        design = SharedCache(
            SharedCacheParams(geometry=CacheGeometry(32 * KB, 4, 128))
        )
        text = tracefile.trace_to_string(self.sample_events())
        stats = run_workload(design, tracefile.read_trace(io.StringIO(text)))
        assert stats.accesses.total == 2


class TestCMigration:
    X = 0x30000

    def make(self, threshold) -> NurapidCache:
        return NurapidCache(
            NurapidParams(
                dgroup_capacity_bytes=16 * KB,
                tag_associativity=4,
                c_migration_threshold=threshold,
            )
        )

    def _form_c_group(self, cache):
        cache.access(write(0, self.X))
        cache.access(read(1, self.X))  # copy relocates next to core 1
        cache.access(read(2, self.X))  # ...then next to core 2

    def test_disabled_by_default_no_exit_from_c(self):
        cache = self.make(threshold=0)
        self._form_c_group(cache)
        entry = cache.tags[1].lookup(self.X, touch=False)
        location = entry.fwd
        for _ in range(10):
            cache.access(read(1, self.X))  # remote reads forever
        assert cache.tags[1].lookup(self.X, touch=False).fwd == location
        assert cache.counters.c_migrations == 0

    def test_migrates_after_threshold_remote_reads(self):
        cache = self.make(threshold=3)
        self._form_c_group(cache)  # copy now in core 2's d-group
        for _ in range(3):
            cache.access(read(1, self.X))
        entry = cache.tags[1].lookup(self.X, touch=False)
        assert entry.fwd.dgroup == cache.closest(1)
        assert cache.counters.c_migrations == 1
        cache.check_invariants()

    def test_sharers_repointed_and_stay_in_c(self):
        cache = self.make(threshold=2)
        self._form_c_group(cache)
        for _ in range(2):
            cache.access(read(1, self.X))
        pointers = set()
        for core in (0, 1, 2):
            entry = cache.tags[core].lookup(self.X, touch=False)
            assert entry.state is C
            pointers.add(entry.fwd)
        assert len(pointers) == 1
        assert len(list(cache.data.frames_holding(self.X))) == 1

    def test_local_reads_reset_the_counter(self):
        cache = self.make(threshold=3)
        self._form_c_group(cache)
        cache.access(read(1, self.X))
        cache.access(read(1, self.X))
        cache.access(read(2, self.X))  # core 2 reads locally: resets...
        entry1 = cache.tags[1].lookup(self.X, touch=False)
        # ...only core 2's counter; core 1's run continues.
        cache.access(read(1, self.X))
        assert cache.counters.c_migrations == 1 or entry1.remote_reads <= 3


class TestBandwidthReport:
    def test_movements_are_rare_for_fitting_working_sets(self):
        """Section 3.3.2's claim: demotion traffic does not need extra
        ports — with a working set that fits, block movements vanish."""
        cache = NurapidCache(
            NurapidParams(dgroup_capacity_bytes=16 * KB, tag_associativity=4)
        )
        for _ in range(10):
            for i in range(100):  # fits the 128-frame closest d-group
                cache.access(read(0, 0x100000 + i * 128))
        report = cache.bandwidth_report()
        assert report["total_data_accesses"] > 0
        assert report["movement_fraction"] < 0.01
        assert set(report["accesses_per_dgroup"]) == {0, 1, 2, 3}

    def test_report_counts_movements_under_pressure(self):
        cache = NurapidCache(
            NurapidParams(dgroup_capacity_bytes=16 * KB, tag_associativity=4)
        )
        frames = cache.params.frames_per_dgroup
        for i in range(2 * frames):
            cache.access(read(0, 0x100000 + i * 128))
        report = cache.bandwidth_report()
        assert report["block_movements"] > 0
        assert report["block_movements"] == (
            cache.counters.promotions
            + cache.counters.demotions
            + cache.counters.relocations
            + cache.counters.c_migrations
        )
