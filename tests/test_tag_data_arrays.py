"""Tests for CMP-NuRAPID's tag arrays and d-group data array."""

import numpy as np
import pytest

from repro.caches.base import Entry
from repro.coherence.states import CoherenceState
from repro.common.params import KB, CacheGeometry
from repro.core.data_array import DataArray, DGroup
from repro.core.pointers import FramePtr, TagPtr
from repro.core.tag_array import NurapidTagEntry, TagArray, replacement_category

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741
C = CoherenceState.COMMUNICATION


class TestReplacementCategory:
    def test_invalid_first(self):
        entry = Entry()
        assert replacement_category(entry) == 0

    def test_private_before_shared(self):
        private = Entry(state=E)
        modified = Entry(state=M)
        shared = Entry(state=S)
        communication = Entry(state=C)
        assert replacement_category(private) == 1
        assert replacement_category(modified) == 1
        assert replacement_category(shared) == 2
        assert replacement_category(communication) == 2


class TestTagArray:
    def make(self) -> TagArray:
        return TagArray(core=1, geometry=CacheGeometry(32 * KB, 4, 128))

    def test_install_and_lookup(self):
        tags = self.make()
        entry = tags.victim(0x1000)
        tags.install(entry, 0x1000, S, FramePtr(0, 5))
        found = tags.lookup(0x1000)
        assert found is entry
        assert found.fwd == FramePtr(0, 5)

    def test_invalidate_clears_pointer_and_busy(self):
        tags = self.make()
        entry = tags.victim(0x1000)
        tags.install(entry, 0x1000, S, FramePtr(0, 5))
        entry.busy = True
        entry.invalidate()
        assert entry.fwd is None
        assert not entry.busy

    def test_ptr_of_roundtrip(self):
        tags = self.make()
        entry = tags.victim(0x2000)
        tags.install(entry, 0x2000, E, FramePtr(1, 9))
        ptr = tags.ptr_of(0x2000, entry)
        assert ptr.core == 1
        assert tags.entry_at(ptr) is entry

    def test_entry_at_rejects_wrong_core(self):
        tags = self.make()
        with pytest.raises(ValueError):
            tags.entry_at(TagPtr(0, 0, 0))

    def test_victim_prefers_invalid_then_private_then_shared(self):
        tags = self.make()
        step = tags.geometry.num_sets * tags.geometry.block_size
        addresses = [i * step for i in range(4)]
        states = [S, E, S, C]
        for address, state in zip(addresses, states):
            tags.install(tags.victim(address), address, state, FramePtr(0, 0))
        victim = tags.victim(4 * step)
        assert victim.state is E  # the only private entry


class TestDGroup:
    def test_allocate_until_full(self):
        group = DGroup(0, 4)
        indices = {group.allocate() for _ in range(4)}
        assert indices == {0, 1, 2, 3}
        with pytest.raises(RuntimeError):
            group.allocate()

    def test_release_requires_invalid_frame(self):
        group = DGroup(0, 2)
        index = group.allocate()
        group.frames[index].valid = True
        with pytest.raises(RuntimeError):
            group.release(index)

    def test_random_occupied_respects_protection(self):
        group = DGroup(0, 2)
        rng = np.random.default_rng(0)
        for index in (group.allocate(), group.allocate()):
            group.frames[index].valid = True
        protect = frozenset({FramePtr(0, 0)})
        picks = {group.random_occupied(rng, protect) for _ in range(20)}
        assert picks == {1}

    def test_random_occupied_none_when_all_protected(self):
        group = DGroup(0, 1)
        group.frames[group.allocate()].valid = True
        rng = np.random.default_rng(0)
        assert group.random_occupied(rng, frozenset({FramePtr(0, 0)})) is None

    def test_random_occupied_none_when_empty(self):
        group = DGroup(0, 4)
        assert group.random_occupied(np.random.default_rng(0)) is None


class TestDataArray:
    def make(self) -> DataArray:
        return DataArray(num_dgroups=2, frames_per_dgroup=4)

    def test_occupy_and_free(self):
        data = self.make()
        ptr = FramePtr(0, data[0].allocate())
        data.occupy(ptr, 0x1000, TagPtr(0, 0, 0))
        assert data.frame(ptr).valid
        assert data.frame(ptr).address == 0x1000
        data.free(ptr)
        assert not data.frame(ptr).valid
        assert data[0].free_count == 4

    def test_double_occupy_rejected(self):
        data = self.make()
        ptr = FramePtr(0, data[0].allocate())
        data.occupy(ptr, 0x1000, TagPtr(0, 0, 0))
        with pytest.raises(RuntimeError):
            data.occupy(ptr, 0x2000, TagPtr(0, 0, 1))

    def test_double_free_rejected(self):
        data = self.make()
        ptr = FramePtr(0, data[0].allocate())
        data.occupy(ptr, 0x1000, TagPtr(0, 0, 0))
        data.free(ptr)
        with pytest.raises(RuntimeError):
            data.free(ptr)

    def test_move_preserves_contents_and_frees_source(self):
        data = self.make()
        src = FramePtr(0, data[0].allocate())
        data.occupy(src, 0x3000, TagPtr(1, 2, 3), dirty=True)
        dst = FramePtr(1, data[1].allocate())
        data.move(src, dst)
        frame = data.frame(dst)
        assert frame.address == 0x3000
        assert frame.rev == TagPtr(1, 2, 3)
        assert frame.dirty
        assert not data.frame(src).valid
        assert data[0].free_count == 4

    def test_frames_holding_finds_replicas(self):
        data = self.make()
        a = FramePtr(0, data[0].allocate())
        b = FramePtr(1, data[1].allocate())
        data.occupy(a, 0x5000, TagPtr(0, 0, 0))
        data.occupy(b, 0x5000, TagPtr(1, 0, 0))
        assert set(data.frames_holding(0x5000)) == {a, b}

    def test_total_occupied(self):
        data = self.make()
        assert data.total_occupied == 0
        data.occupy(FramePtr(0, data[0].allocate()), 0x0, TagPtr(0, 0, 0))
        assert data.total_occupied == 1
