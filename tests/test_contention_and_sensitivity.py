"""Tests for the bus-contention model and the sensitivity/contrast
experiment modules."""

import pytest

from repro.experiments import energy_report, sensitivity, smp_contrast
from repro.experiments.runner import ExperimentConfig
from repro.interconnect.bus import BusOp, BusTransaction, SnoopBus

TINY = ExperimentConfig(warmup_per_core=2000, measure_per_core=2000)


class TestBusContention:
    def test_no_contention_by_default(self):
        bus = SnoopBus(latency=32)
        first = bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, 0), now=0)
        second = bus.issue(BusTransaction(BusOp.BUS_RD, 0x200, 1), now=0)
        assert first.latency == second.latency == 32

    def test_back_to_back_transactions_queue(self):
        bus = SnoopBus(latency=32, occupancy=8)
        first = bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, 0), now=100)
        assert first.latency == 32  # bus was idle
        second = bus.issue(BusTransaction(BusOp.BUS_RD, 0x200, 1), now=100)
        assert second.latency == 32 + 8  # queued behind the first
        third = bus.issue(BusTransaction(BusOp.BUS_RD, 0x300, 2), now=100)
        assert third.latency == 32 + 16

    def test_spaced_transactions_do_not_queue(self):
        bus = SnoopBus(latency=32, occupancy=8)
        bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, 0), now=100)
        late = bus.issue(BusTransaction(BusOp.BUS_RD, 0x200, 1), now=200)
        assert late.latency == 32

    def test_contention_monotone_in_occupancy(self):
        latencies = []
        for occupancy in (0, 8, 16):
            bus = SnoopBus(latency=32, occupancy=occupancy)
            bus.issue(BusTransaction(BusOp.BUS_RD, 0x100, 0), now=0)
            result = bus.issue(BusTransaction(BusOp.BUS_RD, 0x200, 1), now=0)
            latencies.append(result.latency)
        assert latencies == sorted(latencies)


class TestSmpContrast:
    def test_runs_and_reports_both_regimes(self):
        result = smp_contrast.run(TINY)
        assert ("cmp", "controlled") in result.throughput
        assert ("smp", "eager") in result.throughput
        text = result.report.render()
        assert "on-chip bus" in text and "off-chip" in text

    def test_cr_benefit_shrinks_at_smp_latency(self):
        """The Section 1 claim: trading latency for capacity pays less
        (or negatively) when remote accesses cost like memory."""
        result = smp_contrast.run(
            ExperimentConfig(warmup_per_core=6000, measure_per_core=6000)
        )
        assert result.cr_benefit_smp < result.cr_benefit_cmp + 0.02


class TestSensitivity:
    def test_capacity_sweep_structure(self):
        result = sensitivity.run_capacity_sweep(TINY)
        assert set(result.raw) == {"4MB", "8MB", "16MB"}
        for stats in result.raw.values():
            assert set(stats) == {"uniform-shared", "private", "cmp-nurapid"}

    def test_core_scaling_runs_eight_cores(self):
        result = sensitivity.run_core_scaling(TINY)
        assert set(result.raw) == {"4-core", "8-core"}
        assert result.raw["8-core"].accesses.total > 0

    def test_bus_contention_never_helps_private(self):
        result = sensitivity.run_bus_contention(TINY)
        uncontended = result.raw["uncontended (paper)"].throughput
        contended = result.raw["16-cycle occupancy"].throughput
        assert contended <= uncontended * 1.01


class TestEnergyReport:
    def test_report_prices_three_designs(self):
        result = energy_report.run(TINY)
        assert set(result.per_access_pj) == {
            "uniform-shared",
            "private",
            "cmp-nurapid",
        }
        for value in result.per_access_pj.values():
            assert value > 0

    def test_pointer_ratio_reported(self):
        result = energy_report.run(TINY)
        assert "pointer-return" in result.report.render()
