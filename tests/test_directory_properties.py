"""Property tests: the directory is truthful and the mesh routes XY.

Three families of randomized properties pin the structures the mesh
backend's correctness argument leans on:

* **Writable exclusivity** — random multi-core traffic through
  mesh-attached caches never produces two writable (M/E) copies of a
  block, exactly as on the snooping bus: directory-filtered snoop
  delivery preserves MESI's global invariant.
* **Sharer-vector truth** — after any traffic, every directory entry
  equals the true set of cores holding a valid copy, in both
  directions (no phantom sharers, no untracked holders).  This is the
  premise of the 4-core equivalence argument: forwarding only to
  recorded holders is lossless only if the vector never under-counts.
* **XY routing geometry** — hop counts equal Manhattan distance on
  every supported grid, and the dimension-ordered route has exactly
  that many links, each between grid neighbours.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.private import PrivateCaches
from repro.coherence.states import CoherenceState
from repro.common.params import (
    KB,
    CacheGeometry,
    NurapidParams,
    PrivateCacheParams,
)
from repro.common.types import Access, AccessType
from repro.core.nurapid import NurapidCache
from repro.interconnect.mesh import MeshTopology, attach_mesh, mesh_noc

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE

BASE = 0x10000
LINE = 128
BLOCKS = 48


def mesh_private() -> PrivateCaches:
    design = PrivateCaches(
        PrivateCacheParams(geometry=CacheGeometry(4 * KB, 2, LINE))
    )
    attach_mesh(design)
    return design


def mesh_nurapid() -> NurapidCache:
    design = NurapidCache(
        NurapidParams(dgroup_capacity_bytes=4 * KB, tag_associativity=2)
    )
    attach_mesh(design)
    return design


traffic = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=BLOCKS - 1),
        st.booleans(),
    ),
    min_size=1,
    max_size=300,
)


def drive(design, steps):
    for core, block, is_write in steps:
        access_type = AccessType.WRITE if is_write else AccessType.READ
        design.access(Access(core, BASE + block * LINE, access_type))


@settings(max_examples=40, deadline=None)
@given(steps=traffic)
def test_no_two_writable_copies_under_mesh(steps):
    """At most one M/E copy of any block; M/E never coexist with S."""
    caches = mesh_private()
    drive(caches, steps)
    for block in range(BLOCKS):
        address = BASE + block * LINE
        states = [caches.state_of(core, address) for core in range(4)]
        valid = [state for state in states if state.is_valid]
        writable = [state for state in valid if state in (M, E)]
        assert len(writable) <= 1, f"block {block}: {states}"
        if writable:
            assert len(valid) == 1, f"block {block}: {states}"


@settings(max_examples=40, deadline=None)
@given(steps=traffic)
def test_directory_equals_true_holder_set_private(steps):
    """MESI caches: the sharer vector is the valid-copy set, exactly."""
    caches = mesh_private()
    drive(caches, steps)
    noc = mesh_noc(caches)
    for block in range(BLOCKS):
        address = BASE + block * LINE
        actual = {
            core for core in range(4)
            if caches.state_of(core, address).is_valid
        }
        recorded = set(noc.directory.holders(address))
        assert recorded == actual, (
            f"block {block}: directory {sorted(recorded)} "
            f"vs holders {sorted(actual)}"
        )


@settings(max_examples=40, deadline=None)
@given(steps=traffic)
def test_directory_equals_true_holder_set_nurapid(steps):
    """MESIC tag arrays: same truth condition on the CMP-NuRAPID side."""
    design = mesh_nurapid()
    drive(design, steps)
    noc = mesh_noc(design)
    for block in range(BLOCKS):
        address = BASE + block * LINE
        actual = {
            core for core in range(4)
            if design.tags[core].lookup(address, touch=False) is not None
        }
        recorded = set(noc.directory.holders(address))
        assert recorded == actual, (
            f"block {block}: directory {sorted(recorded)} "
            f"vs tag holders {sorted(actual)}"
        )


@settings(max_examples=40, deadline=None)
@given(steps=traffic)
def test_directory_tracks_no_phantom_blocks(steps):
    """Every tracked block really has at least one live copy."""
    caches = mesh_private()
    drive(caches, steps)
    noc = mesh_noc(caches)
    for _home, address, mask in noc.directory.entries():
        assert mask, f"empty vector left behind for {address:#x}"
        for core in noc.directory.holders(address):
            assert caches.state_of(core, address).is_valid, (
                f"phantom sharer {core} for {address:#x}"
            )


@settings(max_examples=100, deadline=None)
@given(
    num_tiles=st.sampled_from((4, 8, 16, 64)),
    data=st.data(),
)
def test_xy_hops_equal_manhattan_distance(num_tiles, data):
    """hops == Manhattan distance, and the XY route realizes it."""
    topo = MeshTopology(num_tiles)
    a = data.draw(st.integers(min_value=0, max_value=num_tiles - 1))
    b = data.draw(st.integers(min_value=0, max_value=num_tiles - 1))
    row_a, col_a = topo.tile(a)
    row_b, col_b = topo.tile(b)
    manhattan = abs(row_a - row_b) + abs(col_a - col_b)
    assert topo.hops(a, b) == manhattan
    assert topo.hops(b, a) == manhattan  # symmetric
    route = topo.route(a, b)
    assert len(route) == manhattan
    here = a
    for src, dst in route:
        assert src == here, "route must be connected"
        srow, scol = topo.tile(src)
        drow, dcol = topo.tile(dst)
        assert abs(srow - drow) + abs(scol - dcol) == 1, (
            "every link joins grid neighbours"
        )
        here = dst
    if route:
        assert route[-1][1] == b
    else:
        assert a == b
