"""Differential layer: the batch kernel is bit-identical to scalar.

The SoA batch engine (``--engine batch``) claims to be a *re-execution
strategy*, not a remodeling: every statistic a figure could read must
come out bit-identical to the scalar engine for the same (workload,
design, bus model, seed) cell.  These tests pin that claim with
``SimulationStats.fingerprint()`` equality across every registered
design, every workload family (all five multithreaded workloads and
all four multiprogrammed mixes), both interconnect backends, several
seeds, mixed-design batches, and batch sizes 1/2/odd/large.

Sizes are kept small (the kernel's correctness is size-independent;
its fallback boundary is crossed thousands of times even at 800
accesses/core) so the whole suite stays CI-cheap.
"""

import pytest

from repro.common.params import SystemParams
from repro.common.types import Access, AccessType, SharingClass
from repro.cpu.system import TimedAccess
from repro.experiments.runner import (
    DESIGN_FACTORIES,
    ExperimentConfig,
    build_design,
    run_design_on_events,
    run_mix,
    run_multithreaded,
)
from repro.kernel import BATCH_BUS_MODELS, BatchKernel, EventTape, run_batch
from repro.workloads.multiprogrammed import MIXES
from repro.workloads.multithreaded import MULTITHREADED

ALL_DESIGNS = sorted(DESIGN_FACTORIES)
ALL_WORKLOADS = tuple(spec.name for spec in MULTITHREADED)
ALL_MIXES = tuple(sorted(MIXES))

SEEDS = (42, 7, 20260809)


def config_for(seed=42, accesses=800, warmup=400):
    return ExperimentConfig(
        warmup_per_core=warmup, measure_per_core=accesses, seed=seed
    )


def scalar_fingerprint(workload, design_name, bus_model, config,
                       multiprogrammed=False):
    run = run_mix if multiprogrammed else run_multithreaded
    design = build_design(design_name, bus_model=bus_model)
    _, stats = run(design, workload, config)
    return stats.fingerprint()


def batch_fingerprints(cells, config, bus_model=None):
    """Run ``cells`` through one kernel; returns {cell key: fingerprint}."""
    results = run_batch(cells, config, bus_model=bus_model)
    return {key: stats.fingerprint() for key, stats in results.items()}


@pytest.mark.parametrize("design", ALL_DESIGNS)
def test_design_identical_both_buses_three_seeds(design):
    """Each design, both bus lanes in ONE batch, across three seeds."""
    for seed in SEEDS:
        config = config_for(seed=seed)
        cells = [("oltp", design, False, bus) for bus in BATCH_BUS_MODELS]
        got = batch_fingerprints(cells, config)
        for bus in BATCH_BUS_MODELS:
            want = scalar_fingerprint("oltp", design, bus, config)
            assert got[("oltp", design, False, bus)] == want, (
                f"{design}/{bus} diverged at seed {seed}"
            )


@pytest.mark.parametrize("workload", ALL_WORKLOADS)
def test_workload_identical_mixed_design_batch(workload):
    """Every multithreaded workload: a mixed-design, mixed-bus batch."""
    designs = ("uniform-shared", "private", "cmp-nurapid")
    config = config_for()
    cells = [
        (workload, design, False, bus)
        for design in designs
        for bus in BATCH_BUS_MODELS
    ]
    got = batch_fingerprints(cells, config)
    for design in designs:
        for bus in BATCH_BUS_MODELS:
            want = scalar_fingerprint(workload, design, bus, config)
            assert got[(workload, design, False, bus)] == want, (
                f"{workload}/{design}/{bus} diverged"
            )


@pytest.mark.parametrize("mix", ALL_MIXES)
def test_mix_identical_mixed_design_batch(mix):
    """Every multiprogrammed mix, on the replication-sensitive designs."""
    designs = ("private", "cmp-nurapid-cr")
    config = config_for()
    cells = [(mix, design, True, bus)
             for design in designs for bus in BATCH_BUS_MODELS]
    got = batch_fingerprints(cells, config)
    for design in designs:
        for bus in BATCH_BUS_MODELS:
            want = scalar_fingerprint(mix, design, bus, config,
                                      multiprogrammed=True)
            assert got[(mix, design, True, bus)] == want, (
                f"{mix}/{design}/{bus} diverged"
            )


@pytest.mark.parametrize("size", [1, 2, 7, 18])
def test_batch_sizes(size):
    """Batch sizes 1, 2, odd, and large: grouping must not leak state.

    Size 18 spans two workloads x all designs and both workload groups
    share nothing; sizes 1/2/7 exercise the single-lane, pair, and
    odd-lane template paths of the vector kernel.
    """
    config = config_for()
    pool = [
        (workload, design, False, "atomic")
        for workload in ("oltp", "apache")
        for design in ALL_DESIGNS
    ] + [
        ("ocean", "private", False, "eventq"),
        ("ocean", "ideal", False, "eventq"),
        ("barnes", "cmp-nurapid-isc", False, "atomic"),
        ("barnes", "non-uniform-shared", False, "eventq"),
    ]
    cells = pool[:size]
    got = batch_fingerprints(cells, config)
    assert len(got) == size
    for workload, design, mp, bus in cells:
        want = scalar_fingerprint(workload, design, bus, config,
                                  multiprogrammed=mp)
        assert got[(workload, design, mp, bus)] == want, (
            f"{workload}/{design}/{bus} diverged in a batch of {size}"
        )


def test_duplicate_cells_dedupe_to_one_lane():
    """The same cell twice is one lane, one result — and still identical."""
    config = config_for()
    cells = [
        ("oltp", "private", False, "atomic"),
        ("oltp", "private", False, "atomic"),
    ]
    got = batch_fingerprints(cells, config)
    assert len(got) == 1
    want = scalar_fingerprint("oltp", "private", "atomic", config)
    assert got[("oltp", "private", False, "atomic")] == want


def test_default_bus_model_resolves_from_environment(monkeypatch):
    """3-tuple cells resolve their bus from REPRO_BUS_MODEL, like scalar.

    This is the hook the CI kernel-differential matrix leans on: the
    suite runs once per bus model with only the environment changed.
    """
    config = config_for()
    for bus in BATCH_BUS_MODELS:
        monkeypatch.setenv("REPRO_BUS_MODEL", bus)
        got = batch_fingerprints([("oltp", "private", False)], config)
        want = scalar_fingerprint("oltp", "private", bus, config)
        assert got[("oltp", "private", False, bus)] == want


def test_batch_refuses_mesh_cells():
    """The mesh NoC is scalar-engine territory: run_batch says so."""
    config = config_for(accesses=10, warmup=0)
    with pytest.raises(ValueError, match="mesh"):
        run_batch([("oltp", "private", False, "mesh")], config)
    with pytest.raises(ValueError, match="mesh"):
        run_batch([("oltp", "private", False)], config, bus_model="mesh")


def test_batch_refuses_scaled_cells():
    """Scaled (num_cores != 0) cells cannot ride the 4-core kernel."""
    from repro.experiments.parallel import Cell

    config = config_for(accesses=10, warmup=0)
    with pytest.raises(ValueError, match="4-core"):
        run_batch([Cell("oltp", "private", False, 16)], config,
                  bus_model="atomic")


def test_cold_start_grid_identical():
    """warmup=0 across every design and both buses, in one batch.

    Cold caches are where the L2 fast tier's sleep/wake policy sees
    nothing but misses: the mirror enrolls, immediately goes loud, and
    must sleep without ever committing a stale classification.
    """
    config = config_for(accesses=600, warmup=0)
    cells = [
        ("oltp", design, False, bus)
        for design in ALL_DESIGNS
        for bus in BATCH_BUS_MODELS
    ]
    got = batch_fingerprints(cells, config)
    for design in ALL_DESIGNS:
        for bus in BATCH_BUS_MODELS:
            want = scalar_fingerprint("oltp", design, bus, config)
            assert got[("oltp", design, False, bus)] == want, (
                f"{design}/{bus} diverged on a cold start"
            )


def _l2_hit_heavy_stream(num_cores=4, per_core=4000, region_blocks=1536):
    """Per-core private cyclic streams sized to thrash L1 but live in L2.

    region_blocks * 64B = 96 KB per core: 1.5x the 64 KB L1, so after
    the first pass almost every access is an L1 miss that hits its own
    core's L2 copy in M/E — the fast tier's class-2 bread and butter.
    """
    for i in range(per_core):
        for core in range(num_cores):
            address = (core << 24) | ((i % region_blocks) * 64)
            yield TimedAccess(
                Access(core, address, AccessType.READ, SharingClass.PRIVATE),
                gap=2,
                colocated=1,
            )


def test_l2_hit_heavy_engages_fast_tier_and_matches():
    """A stream of private L2 read hits drives the fast L2 commit path.

    The vacuity guard matters as much as the fingerprints: the sampled
    convertible-hit wake must fire (the mirror sleeps during the cold
    first pass), the class-2 vector path must actually commit events,
    and the result must still be bit-identical to scalar — on an atomic
    lane, a CR lane, and an eventq lane (which is batch-eligible but
    never fast-tier-eligible) sharing one tape.
    """
    names = [
        ("cmp-nurapid", "atomic"),
        ("cmp-nurapid-cr", "atomic"),
        ("cmp-nurapid-isc", "eventq"),
    ]
    params = SystemParams()
    tape = EventTape.from_events(_l2_hit_heavy_stream(), params.l1)
    designs = [build_design(n, bus_model=b) for n, b in names]
    kernel = BatchKernel(designs, params)
    kernel.run(tape, 0)
    assert kernel.fast_l2_commits > 0, (
        "the L2 fast tier never engaged on an L2-hit-heavy stream"
    )
    for index, (name, bus) in enumerate(names):
        fresh = build_design(name, bus_model=bus)
        _, stats = run_design_on_events(fresh, _l2_hit_heavy_stream(), 0)
        assert kernel.lane_stats(index).fingerprint() == stats.fingerprint(), (
            f"{name}/{bus} diverged on the L2-hit-heavy stream"
        )


def test_warmup_reset_boundary_identical():
    """The mid-tape stats reset lands on the same event in both engines."""
    for warmup in (0, 1, 333, 800):
        config = config_for(accesses=800, warmup=warmup)
        got = batch_fingerprints(
            [("apache", "cmp-nurapid", False, "atomic")], config
        )
        want = scalar_fingerprint("apache", "cmp-nurapid", "atomic", config)
        assert got[("apache", "cmp-nurapid", False, "atomic")] == want, (
            f"diverged at warmup={warmup}"
        )
