"""Controlled-replication behaviour (Section 3.1, Figure 3)."""

import pytest

from repro.coherence.states import CoherenceState
from repro.common.params import KB, NurapidParams
from repro.common.types import Access, AccessType, MissClass
from repro.core.nurapid import NurapidCache

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741
C = CoherenceState.COMMUNICATION

X = 0x10000  # block address used throughout


def read(core, address=X):
    return Access(core, address, AccessType.READ)


def write(core, address=X):
    return Access(core, address, AccessType.WRITE)


def small_cache(**kwargs) -> NurapidCache:
    params = NurapidParams(
        dgroup_capacity_bytes=16 * KB,  # 128 frames per d-group
        tag_associativity=4,
        **kwargs.pop("params", {}),
    )
    return NurapidCache(params, **kwargs)


class TestFigure3Walkthrough:
    def test_a_first_fill_goes_to_closest_dgroup(self):
        cache = small_cache()
        result = cache.access(read(0))
        assert result.miss_class is MissClass.CAPACITY
        entry = cache.tags[0].lookup(X, touch=False)
        assert entry.state is E
        assert entry.fwd.dgroup == cache.closest(0)

    def test_b_second_core_takes_pointer_not_copy(self):
        """Figure 3b: P1's tag points at P0's copy; no data copy."""
        cache = small_cache()
        cache.access(read(0))
        occupied_before = cache.data.total_occupied
        result = cache.access(read(1))
        assert result.miss_class is MissClass.ROS
        assert cache.data.total_occupied == occupied_before  # no new copy
        p0 = cache.tags[0].lookup(X, touch=False)
        p1 = cache.tags[1].lookup(X, touch=False)
        assert p0.state is S and p1.state is S
        assert p1.fwd == p0.fwd  # both point at the single copy
        assert cache.counters.pointer_returns == 1

    def test_b_pointer_read_latency_uses_remote_dgroup(self):
        cache = small_cache()
        cache.access(read(0))
        result = cache.access(read(1))
        remote = cache.params.dgroup_latencies[1][cache.closest(0)]
        assert result.latency == cache.params.tag_latency + cache.bus_latency + remote

    def test_c_second_use_replicates_into_own_dgroup(self):
        """Figure 3c: on reuse, P1 copies X into its closest d-group."""
        cache = small_cache()
        cache.access(read(0))
        cache.access(read(1))
        occupied_before = cache.data.total_occupied
        result = cache.access(read(1))  # second use
        assert result.is_hit
        assert cache.data.total_occupied == occupied_before + 1
        p1 = cache.tags[1].lookup(X, touch=False)
        assert p1.fwd.dgroup == cache.closest(1)
        # P0's original copy is untouched.
        p0 = cache.tags[0].lookup(X, touch=False)
        assert p0.fwd.dgroup == cache.closest(0)
        assert p0.fwd != p1.fwd
        assert cache.counters.replications == 1

    def test_after_replication_hits_are_local(self):
        cache = small_cache()
        cache.access(read(0))
        cache.access(read(1))
        cache.access(read(1))
        result = cache.access(read(1))
        assert result.dgroup_distance == 0
        assert result.latency == cache.params.tag_latency + 6

    def test_reverse_pointer_stays_with_owner(self):
        """Section 3.1: the reverse pointer keeps naming P0's tag."""
        cache = small_cache()
        cache.access(read(0))
        cache.access(read(1))
        p0 = cache.tags[0].lookup(X, touch=False)
        frame = cache.data.frame(p0.fwd)
        assert frame.rev == cache.tags[0].ptr_of(X, p0)


class TestBusRepl:
    def test_owner_eviction_invalidates_pointing_tags(self):
        cache = small_cache()
        cache.access(read(0))
        cache.access(read(1))  # P1 points at P0's copy
        p0 = cache.tags[0].lookup(X, touch=False)
        cache._evict_frame(p0.fwd)
        assert cache.state_of(0, X) is I
        assert cache.state_of(1, X) is I
        assert cache.bus_stats.transactions["BusRepl"] == 1

    def test_sharer_with_own_replica_survives_busrepl(self):
        """Section 3.1: a sharer whose pointer names its own replica
        does not invalidate on BusRepl."""
        cache = small_cache()
        cache.access(read(0))
        cache.access(read(1))
        cache.access(read(1))  # P1 replicated
        p0 = cache.tags[0].lookup(X, touch=False)
        cache._evict_frame(p0.fwd)
        assert cache.state_of(0, X) is I
        assert cache.state_of(1, X) is S  # replica survives
        cache.check_invariants()

    def test_busy_tag_is_not_invalidated(self):
        """The busy bit inhibits replacement invalidations mid-read."""
        cache = small_cache()
        cache.access(read(0))
        cache.access(read(1))
        p1 = cache.tags[1].lookup(X, touch=False)
        p1.busy = True
        p0 = cache.tags[0].lookup(X, touch=False)
        cache._evict_frame(p0.fwd)
        assert cache.state_of(1, X) is S  # protected by the busy bit
        p1.busy = False


class TestWriteUpgrades:
    def test_upgrade_invalidates_other_tag_copies(self):
        cache = small_cache()
        cache.access(read(0))
        cache.access(read(1))
        result = cache.access(write(1))
        assert result.is_hit
        assert cache.state_of(1, X) is M
        assert cache.state_of(0, X) is I
        cache.check_invariants()

    def test_upgrade_transfers_frame_ownership(self):
        """P1 upgrades while pointing at P0's frame: the reverse
        pointer must move to P1 or the frame would be freed under it."""
        cache = small_cache()
        cache.access(read(0))
        cache.access(read(1))  # pointer only
        cache.access(write(1))
        p1 = cache.tags[1].lookup(X, touch=False)
        frame = cache.data.frame(p1.fwd)
        assert frame.rev == cache.tags[1].ptr_of(X, p1)
        cache.check_invariants()

    def test_upgrade_frees_other_replicas(self):
        cache = small_cache()
        cache.access(read(0))
        cache.access(read(1))
        cache.access(read(1))  # P1 has its own replica now
        occupied = cache.data.total_occupied
        cache.access(write(0))
        # P1's replica frame is freed; only P0's copy remains.
        assert cache.data.total_occupied == occupied - 1
        assert cache.state_of(1, X) is I
        cache.check_invariants()


class TestControlledReplicationDisabled:
    def test_immediate_copy_when_cr_off(self):
        cache = small_cache(enable_cr=False)
        cache.access(read(0))
        occupied = cache.data.total_occupied
        cache.access(read(1))
        assert cache.data.total_occupied == occupied + 1  # eager replica
        assert cache.counters.pointer_returns == 0

    def test_replicate_on_first_use_param(self):
        cache = small_cache(params={"replicate_on_use": 1})
        cache.access(read(0))
        occupied = cache.data.total_occupied
        cache.access(read(1))
        assert cache.data.total_occupied == occupied + 1


class TestReplicationThreshold:
    def test_replicate_on_third_use(self):
        cache = small_cache(params={"replicate_on_use": 3})
        cache.access(read(0))
        cache.access(read(1))  # use 1: pointer only
        occupied = cache.data.total_occupied
        cache.access(read(1))  # use 2: still remote
        assert cache.data.total_occupied == occupied
        cache.access(read(1))  # use 3: replicate
        assert cache.data.total_occupied == occupied + 1
