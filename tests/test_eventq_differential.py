"""Differential layer: eventq @ zero latency is bit-identical to atomic.

The discrete-event interconnect backend claims to be a *refactoring*,
not a remodeling: with no added occupancy the split-phase schedule must
reproduce the synchronous (atomic) backend exactly.  These tests pin
that claim down to the bit — identical statistics fingerprints,
identical per-core hit/miss-class streams, and identical trace event
sequences — across every design registered in the paper's design table
and across both a read-heavy and a write-heavy multithreaded workload.
"""

import pytest

from repro.caches.private import PrivateCaches
from repro.cpu.system import CmpSystem
from repro.experiments.runner import DESIGN_FACTORIES, build_design
from repro.interconnect import EventQueue, attach_eventq
from repro.obs import Tracer
from repro.obs import events as ev
from repro.workloads.multithreaded import make_workload

ACCESSES_PER_CORE = 2_000

#: Every registered design participates in the differential layer; a new
#: design added to the registry is automatically held to the same bar.
ALL_DESIGNS = sorted(DESIGN_FACTORIES)


def run_pair(name, workload_name, accesses_per_core=ACCESSES_PER_CORE,
             trace=False):
    """Run one design under both backends; return the two run records."""
    out = []
    for bus_model in ("atomic", "eventq"):
        design = build_design(name, bus_model=bus_model)
        tracer = Tracer(capacity=200_000) if trace else None
        system = CmpSystem(design, tracer=tracer)
        events = make_workload(workload_name).events(
            accesses_per_core=accesses_per_core
        )
        system.run(events)
        out.append((system, system.stats(), tracer))
    return out


def fingerprint(stats):
    """Every scalar a figure could read, as one comparable structure."""
    return (
        dict(stats.accesses.counts),
        [(core.instructions, core.cycles) for core in stats.per_core],
        stats.bus.transactions if stats.bus is not None else None,
        stats.throughput,
    )


def access_stream(tracer):
    """Per-access (core, miss-class, latency) sequence from the trace."""
    return [
        (event.core, event.data["miss_class"], event.data["latency"])
        for event in tracer.events(ev.ACCESS)
    ]


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_stats_bit_identical_oltp(name):
    (_, atomic_stats, _), (_, eventq_stats, _) = run_pair(name, "oltp")
    assert fingerprint(atomic_stats) == fingerprint(eventq_stats)


@pytest.mark.parametrize("name", ["private", "cmp-nurapid"])
def test_stats_bit_identical_apache(name):
    """A second workload (different sharing mix) for the bus-heavy designs."""
    (_, atomic_stats, _), (_, eventq_stats, _) = run_pair(name, "apache")
    assert fingerprint(atomic_stats) == fingerprint(eventq_stats)


@pytest.mark.parametrize("name", ["private", "cmp-nurapid"])
def test_trace_streams_bit_identical(name):
    """Same trace: every event record, in order, compares equal.

    ``TraceEvent.__eq__`` compares the full serialized record, so equal
    lists mean equal kinds, cycles, cores, addresses, d-groups, and
    payloads — the per-core hit/miss streams fall out as a projection.
    """
    (_, _, atomic_tracer), (_, _, eventq_tracer) = run_pair(
        name, "oltp", accesses_per_core=500, trace=True
    )
    assert atomic_tracer.events() == eventq_tracer.events()
    assert access_stream(atomic_tracer) == access_stream(eventq_tracer)


def test_eventq_actually_schedules():
    """Guard against vacuity: the eventq run must fire real events."""
    design = build_design("private", bus_model="eventq")
    assert isinstance(design.queue, EventQueue)
    system = CmpSystem(design)
    system.run(make_workload("oltp").events(accesses_per_core=500))
    assert design.queue.fired > 0
    assert design.queue.pending == 0


def test_contended_bus_stats_match():
    """With occupancy > 0 the latency math is shared between backends:
    the queueing wait is computed before scheduling, so statistics stay
    equal even when the event schedule is no longer degenerate."""
    results = []
    for use_eventq in (False, True):
        design = PrivateCaches(bus_occupancy=8)
        if use_eventq:
            attach_eventq(design)
        system = CmpSystem(design)
        system.run(make_workload("oltp").events(accesses_per_core=1_000))
        results.append(fingerprint(system.stats()))
    assert results[0] == results[1]


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BUS_MODEL", "eventq")
    design = build_design("private")
    assert design.queue is not None
    monkeypatch.setenv("REPRO_BUS_MODEL", "atomic")
    assert build_design("private").queue is None
    monkeypatch.setenv("REPRO_BUS_MODEL", "wishbone")
    with pytest.raises(ValueError):
        build_design("private")
