"""Property-based tests: CMP-NuRAPID invariants under random traffic.

Hypothesis drives random multi-core access sequences against a small
CMP-NuRAPID instance and checks the controller's global invariants
(pointer integrity, coherence exclusivity, single-dirty-copy) after
the sequence — and, for shorter sequences, after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.states import CoherenceState
from repro.common.params import KB, NurapidParams
from repro.common.types import Access, AccessType
from repro.core.nurapid import NurapidCache


def tiny_cache(enable_cr=True, enable_isc=True, seed=7) -> NurapidCache:
    params = NurapidParams(
        dgroup_capacity_bytes=4 * KB,  # 32 frames per d-group
        tag_associativity=2,
    )
    return NurapidCache(params, enable_cr=enable_cr, enable_isc=enable_isc, seed=seed)


#: (core, block, is_write) triples over a small block universe so the
#: tiny cache sees heavy sharing, replacement, and demotion traffic.
access_steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=96),
        st.booleans(),
    ),
    min_size=1,
    max_size=400,
)


def drive(cache: NurapidCache, steps) -> None:
    for core, block, is_write in steps:
        access_type = AccessType.WRITE if is_write else AccessType.READ
        cache.access(Access(core, 0x40000 + block * 128, access_type))


@settings(max_examples=50, deadline=None)
@given(steps=access_steps)
def test_invariants_after_random_traffic(steps):
    cache = tiny_cache()
    drive(cache, steps)
    cache.check_invariants()


@settings(max_examples=25, deadline=None)
@given(steps=access_steps)
def test_invariants_without_isc(steps):
    cache = tiny_cache(enable_isc=False)
    drive(cache, steps)
    cache.check_invariants()
    # Without ISC the C state must never appear.
    for tag_array in cache.tags:
        for _, _, entry in tag_array.array.valid_entries():
            assert entry.state is not CoherenceState.COMMUNICATION


@settings(max_examples=25, deadline=None)
@given(steps=access_steps)
def test_invariants_without_cr(steps):
    cache = tiny_cache(enable_cr=False)
    drive(cache, steps)
    cache.check_invariants()


@settings(max_examples=20, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=0, max_value=24),
            st.booleans(),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_invariants_at_every_step(steps):
    """Stronger check on shorter sequences: no transient corruption."""
    cache = tiny_cache()
    for core, block, is_write in steps:
        access_type = AccessType.WRITE if is_write else AccessType.READ
        cache.access(Access(core, 0x40000 + block * 128, access_type))
        cache.check_invariants()


@settings(max_examples=30, deadline=None)
@given(steps=access_steps)
def test_determinism(steps):
    """Identical seeds and traffic produce identical state."""
    first = tiny_cache(seed=3)
    second = tiny_cache(seed=3)
    drive(first, steps)
    drive(second, steps)
    assert first.stats.counts == second.stats.counts
    assert first.counters == second.counters
    for core in range(4):
        for (s1, w1, e1), (s2, w2, e2) in zip(
            first.tags[core].array.valid_entries(),
            second.tags[core].array.valid_entries(),
        ):
            assert (s1, w1, e1.tag, e1.state, e1.fwd) == (
                s2,
                w2,
                e2.tag,
                e2.state,
                e2.fwd,
            )


@settings(max_examples=30, deadline=None)
@given(steps=access_steps)
def test_frame_accounting_consistent(steps):
    """Occupied frames + free-list sizes always equal total frames."""
    cache = tiny_cache()
    drive(cache, steps)
    for dgroup in cache.data.dgroups:
        occupied = sum(1 for frame in dgroup.frames if frame.valid)
        assert occupied + dgroup.free_count == dgroup.num_frames


@settings(max_examples=30, deadline=None)
@given(steps=access_steps)
def test_dirty_blocks_have_single_copy(steps):
    """M/E/C blocks never have replicas in the data array."""
    cache = tiny_cache()
    drive(cache, steps)
    seen: "dict[int, CoherenceState]" = {}
    for core in range(4):
        for set_index, _, entry in cache.tags[core].array.valid_entries():
            address = cache.tags[core].array.block_address(set_index, entry)
            seen[address] = entry.state
    for address, state in seen.items():
        copies = len(list(cache.data.frames_holding(address)))
        if state in (
            CoherenceState.MODIFIED,
            CoherenceState.EXCLUSIVE,
            CoherenceState.COMMUNICATION,
        ):
            assert copies == 1, f"{state} block {address:#x} has {copies} copies"
        else:
            assert copies >= 1
