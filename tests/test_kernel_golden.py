"""Golden batch-kernel grid: committed fingerprints must keep holding.

``tests/data/kernel/expected.json`` pins the batch engine's
fingerprint for a small cell grid spanning both workload families,
replication-sensitive designs, both bus models, and two seeds.  The
differential suite proves batch == scalar *within* a build; this
corpus anchors the shared trajectory *across* builds — a failure here
means simulated behaviour drifted since the fixtures were committed.
Either fix the regression or consciously regenerate with
``tests/data/kernel/generate.py`` alongside the model change.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.kernel import run_batch
from tests.data.kernel.generate import (
    ACCESSES,
    CELLS,
    COLD_CELLS,
    SEEDS,
    WARMUP,
    cell_key,
)

DATA = Path(__file__).resolve().parent / "data" / "kernel"
EXPECTED = json.loads((DATA / "expected.json").read_text())


def test_corpus_is_complete():
    """Every generator cell has a committed fingerprint, and only those."""
    assert EXPECTED, "expected.json is empty — regenerate the corpus"
    want = {
        cell_key(*cell, seed) for cell in CELLS for seed in SEEDS
    } | {
        cell_key(*cell, seed, cold=True)
        for cell in COLD_CELLS
        for seed in SEEDS
    }
    assert set(EXPECTED) == want


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_grid_matches_golden_fingerprints(seed):
    config = ExperimentConfig(
        warmup_per_core=WARMUP, measure_per_core=ACCESSES, seed=seed
    )
    results = run_batch(list(CELLS), config)
    assert len(results) == len(CELLS)
    mismatches = []
    for (workload, design, mp, bus), stats in results.items():
        key = cell_key(workload, design, mp, bus, seed)
        if stats.fingerprint() != EXPECTED[key]:
            mismatches.append(key)
    assert not mismatches, f"fingerprint drift in: {', '.join(mismatches)}"


@pytest.mark.parametrize("seed", SEEDS)
def test_cold_grid_matches_golden_fingerprints(seed):
    """warmup=0 cells: the fast tier's cold-start path, pinned."""
    config = ExperimentConfig(
        warmup_per_core=0, measure_per_core=ACCESSES, seed=seed
    )
    results = run_batch(list(COLD_CELLS), config)
    assert len(results) == len(COLD_CELLS)
    mismatches = []
    for (workload, design, mp, bus), stats in results.items():
        key = cell_key(workload, design, mp, bus, seed, cold=True)
        if stats.fingerprint() != EXPECTED[key]:
            mismatches.append(key)
    assert not mismatches, f"fingerprint drift in: {', '.join(mismatches)}"
