"""Tests for the text chart renderers."""

import pytest

from repro.experiments.charts import (
    BarGroup,
    StackedBar,
    access_mix_chart,
    performance_chart,
    render_grouped_bars,
    render_stacked_bars,
)


class TestStackedBars:
    def test_full_bar_fills_width(self):
        chart = render_stacked_bars([StackedBar("x", {"hit": 1.0})], width=20)
        line = chart.splitlines()[0]
        assert "#" * 20 in line

    def test_half_bar_half_filled(self):
        chart = render_stacked_bars([StackedBar("x", {"hit": 0.5})], width=20)
        body = chart.splitlines()[0].split("|")[1]
        assert body.count("#") == 10
        assert body.count(".") == 10

    def test_segments_use_distinct_characters(self):
        chart = render_stacked_bars(
            [StackedBar("x", {"a": 0.5, "b": 0.5})], width=20
        )
        body = chart.splitlines()[0].split("|")[1]
        assert body.count("#") == 10
        assert body.count("x") == 10

    def test_baseline_truncates_like_the_paper(self):
        """A 50% baseline makes 75% hits render as half a bar."""
        chart = render_stacked_bars(
            [StackedBar("x", {"hit": 0.75})], width=20, baseline=0.5
        )
        body = chart.splitlines()[0].split("|")[1]
        assert body.count("#") == 10
        assert "start at 50%" in chart

    def test_legend_present(self):
        chart = render_stacked_bars([StackedBar("x", {"hit": 1.0})])
        assert "#=hit" in chart

    def test_values_annotated(self):
        chart = render_stacked_bars([StackedBar("x", {"hit": 0.831})])
        assert "hit 83.1%" in chart

    def test_labels_aligned(self):
        chart = render_stacked_bars(
            [
                StackedBar("short", {"a": 1.0}),
                StackedBar("much-longer-label", {"a": 1.0}),
            ]
        )
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty_input(self):
        assert render_stacked_bars([]) == "(no data)"

    def test_bad_baseline_rejected(self):
        with pytest.raises(ValueError):
            render_stacked_bars([StackedBar("x", {"a": 1.0})], baseline=1.0)


class TestGroupedBars:
    def test_reference_tick_rendered(self):
        chart = render_grouped_bars(
            [BarGroup("w", {"a": 1.0, "b": 1.2})], width=24
        )
        assert "|" in chart
        assert "1.000" in chart and "1.200" in chart

    def test_bars_proportional(self):
        chart = render_grouped_bars(
            [BarGroup("w", {"a": 1.0, "b": 2.0})], width=20, reference=None
        )
        lines = [l for l in chart.splitlines() if "#" in l]
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_empty_input(self):
        assert render_grouped_bars([]) == "(no data)"


class TestExperimentAdapters:
    def test_access_mix_chart(self):
        distributions = {
            "oltp": {
                "private": {"hit": 0.8, "ros": 0.05, "rws": 0.1, "capacity": 0.05}
            }
        }
        chart = access_mix_chart(distributions, ("private",))
        assert "oltp/private" in chart
        assert "hit 80.0%" in chart

    def test_performance_chart(self):
        relative = {"oltp": {"shared": 1.0, "cmp-nurapid": 1.13}}
        chart = performance_chart(relative, ("shared", "cmp-nurapid"))
        assert "oltp:" in chart
        assert "1.130" in chart
