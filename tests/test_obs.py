"""Tests for the observability stack: tracer, metrics, Perfetto, profiler.

Covers the acceptance contracts of the observability subsystem:

* the ring buffer overflows by dropping the oldest event (and counts
  drops) while a JSONL sink receives everything;
* JSONL round-trips through the schema bit-identically;
* the Perfetto export validates against the Chrome trace-event schema;
* cumulative interval samples reproduce the run's final
  ``SimulationStats`` (miss counts, miss rate, IPC) and interval
  deltas sum back to the final totals;
* a disabled tracer never constructs a record on the hot path (the
  ``NullTracer`` emit methods are unreachable in an untraced run);
* statistics merge pools counters, not ratios;
* the stats cache journal appends, tolerates truncation, migrates the
  legacy whole-dict format, and compacts duplicates.
"""

import io
import json
import pickle

import pytest

from repro.common.stats import (
    AccessStats,
    BusStats,
    CoreTiming,
    DgroupStats,
    ReuseStats,
    SimulationStats,
)
from repro.common.types import MissClass
from repro.core.nurapid import NurapidCache
from repro.common.params import KB, NurapidParams
from repro.cpu.system import CmpSystem
from repro.obs import events as ev
from repro.obs.events import TraceEvent, read_jsonl, validate_jsonl, validate_record
from repro.obs.metrics import Histogram, MetricsCollector, MetricsRegistry
from repro.obs.perfetto import (
    export_chrome_trace,
    export_jsonl,
    validate_chrome_trace,
)
from repro.obs.profiler import Profiler
from repro.obs.tracer import NO_TRACE, NullTracer, Tracer
from repro.workloads.multithreaded import make_workload


def small_system(tracer=None, metrics=None):
    design = NurapidCache(
        NurapidParams(dgroup_capacity_bytes=4 * KB, tag_associativity=2)
    )
    return CmpSystem(design, tracer=tracer, metrics=metrics)


def run_oltp(system, accesses_per_core=1500):
    workload = make_workload("oltp")
    system.run(workload.events(accesses_per_core=accesses_per_core))


# ---------------------------------------------------------------------------
# Tracer: ring buffer + sink


def test_ring_overflow_drops_oldest_and_counts():
    tracer = Tracer(capacity=4)
    for index in range(10):
        tracer.emit(ev.BUS, cycle=index, op="BusRd")
    assert tracer.emitted == 10
    assert tracer.dropped == 6
    cycles = [event.cycle for event in tracer.events()]
    assert cycles == [6, 7, 8, 9]  # oldest dropped, newest kept


def test_sink_receives_everything_despite_ring_overflow():
    sink = io.StringIO()
    tracer = Tracer(capacity=2, sink=sink)
    for index in range(8):
        tracer.emit(ev.BUS, cycle=index, op="BusRd")
    lines = [line for line in sink.getvalue().splitlines() if line]
    assert len(lines) == 8
    assert len(tracer.events()) == 2


def test_tracer_events_filter_and_tail():
    tracer = Tracer(capacity=16)
    tracer.emit(ev.BUS, cycle=1, op="BusRd")
    tracer.emit(ev.ACCESS, cycle=2, core=0)
    tracer.emit(ev.BUS, cycle=3, op="BusRdX")
    assert [e.cycle for e in tracer.events(ev.BUS)] == [1, 3]
    assert [e.cycle for e in tracer.tail(2)] == [2, 3]
    assert tracer.counts() == {ev.BUS: 2, ev.ACCESS: 1}


def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    with Tracer(capacity=8, sink=path) as tracer:
        tracer.emit(
            ev.ACCESS, cycle=7, core=2, address=0x1F40, dgroup=1,
            miss_class="hit", latency=12,
        )
        tracer.emit(ev.TRANSITION, cycle=9, core=0, address=0x80,
                    **{"from": "E", "to": "S", "trigger": "BusRd"})
    restored = list(read_jsonl(path))
    assert restored == tracer.events()
    count, errors = validate_jsonl(path)
    assert (count, errors) == (2, [])


def test_validate_record_rejects_bad_shapes():
    assert validate_record([]) != []
    assert validate_record({"kind": "nope"}) != []
    assert validate_record({"kind": "bus", "cycle": -1}) != []
    assert validate_record({"kind": "bus", "core": "zero"}) != []
    assert validate_record({"kind": "bus", "extra": 1}) != []
    assert validate_record({"kind": "bus", "cycle": 3, "data": {"op": "BusRd"}}) == []


def test_traced_run_emits_model_events():
    tracer = Tracer(capacity=200_000)
    system = small_system(tracer=tracer)
    run_oltp(system)
    counts = tracer.counts()
    # The small-geometry NuRAPID run must exercise the whole protocol
    # surface: steps, access outcomes, bus traffic, and CMP-NuRAPID's
    # replication/transition machinery.
    for kind in (ev.STEP, ev.ACCESS, ev.BUS, ev.TRANSITION):
        assert counts.get(kind, 0) > 0, (kind, counts)
    steps = tracer.events(ev.STEP)
    accesses = tracer.events(ev.ACCESS)
    assert len(steps) >= len(accesses)  # only L1 misses reach the L2
    assert len(accesses) == system.design.stats.total


def test_disabled_tracer_hot_path_never_emits(monkeypatch):
    """Untraced runs must not reach a NullTracer emit method at all."""

    def boom(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("hot path called emit() on a disabled tracer")

    monkeypatch.setattr(NullTracer, "emit", boom)
    monkeypatch.setattr(NullTracer, "emit_event", boom)
    system = small_system()
    assert system.tracer is NO_TRACE
    run_oltp(system, accesses_per_core=400)
    assert system.design.stats.total > 0


# ---------------------------------------------------------------------------
# Perfetto export


def test_perfetto_export_validates_and_maps_tracks(tmp_path):
    tracer = Tracer(capacity=200_000)
    system = small_system(tracer=tracer)
    run_oltp(system)
    payload = export_chrome_trace(tracer.events())
    assert validate_chrome_trace(payload) == []
    events = payload["traceEvents"]
    phases = {entry["ph"] for entry in events}
    assert {"M", "X", "i"} <= phases
    # Access slices live on core threads; every step record is skipped.
    slices = [entry for entry in events if entry["ph"] == "X"]
    assert slices and all(entry["pid"] == 1 for entry in slices)
    assert payload["otherData"]["skipped_step_records"] == len(
        tracer.events(ev.STEP)
    )
    # Round-trip through a file stays valid JSON that revalidates.
    out = str(tmp_path / "trace.json")
    export_chrome_trace(tracer.events(), out)
    with open(out, "r", encoding="utf-8") as handle:
        assert validate_chrome_trace(json.load(handle)) == []


def test_perfetto_export_from_jsonl(tmp_path):
    jsonl = str(tmp_path / "trace.jsonl")
    with Tracer(capacity=64, sink=jsonl) as tracer:
        tracer.emit(ev.ACCESS, cycle=5, core=1, latency=40, miss_class="capacity")
        tracer.emit(ev.PROMOTION, cycle=6, core=1, dgroup=0, from_dgroup=2)
        tracer.emit(ev.FAULT, cycle=7, fault="drop-bus", applied=True)
    payload = export_jsonl(jsonl, str(tmp_path / "out.json"))
    assert validate_chrome_trace(payload) == []
    pids = {entry["pid"] for entry in payload["traceEvents"] if entry["ph"] != "M"}
    assert pids == {1, 2, 3}  # cores, d-groups, system tracks


def test_validate_chrome_trace_catches_problems():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "Z", "pid": 1}]}) != []
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "pid": 1, "tid": 0, "name": "x", "ts": -1.0}]}
    ) != []


# ---------------------------------------------------------------------------
# Metrics


def test_histogram_buckets_and_mean():
    histogram = Histogram(bounds=(10, 20))
    for value in (5, 15, 25, 100):
        histogram.record(value)
    snap = histogram.snapshot()
    assert snap["buckets"] == {"<=10": 1, "<=20": 1, ">20": 2}
    assert snap["count"] == 4
    assert snap["mean"] == pytest.approx(36.25)
    with pytest.raises(ValueError):
        Histogram(bounds=(20, 10))


def test_histogram_percentiles_from_buckets():
    histogram = Histogram(bounds=(10, 20, 50))
    for value in (5, 5, 15, 25, 40, 45):
        histogram.record(value)
    # 6 samples: 2 in <=10, 1 in <=20, 3 in <=50.  Interpolated within
    # the bucket that crosses the target rank (Prometheus-style).
    assert histogram.percentile(0.0) == 0.0
    assert histogram.percentile(0.5) == pytest.approx(20.0)
    assert histogram.percentile(1.0) == pytest.approx(50.0)
    snap = histogram.snapshot()
    assert snap["p50"] == histogram.percentile(0.50)
    assert snap["p95"] == histogram.percentile(0.95)
    assert snap["p99"] == histogram.percentile(0.99)
    with pytest.raises(ValueError):
        histogram.percentile(1.5)


def test_histogram_percentile_overflow_and_empty():
    empty = Histogram(bounds=(10,))
    assert empty.percentile(0.99) == 0.0
    overflow = Histogram(bounds=(10,))
    overflow.record(500)  # everything past the last edge
    # The overflow bucket has no finite upper edge; report the last one.
    assert overflow.percentile(0.99) == 10.0


def test_registry_rejects_kind_mismatch():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_metrics_final_sample_reproduces_simulation_stats(tmp_path):
    metrics = MetricsCollector(sample_every=500)
    system = small_system(metrics=metrics)
    run_oltp(system)
    series = metrics.finish()
    stats = system.stats()
    assert len(series) >= 2

    final = series.samples[-1]
    # Miss-class counts: the sampled model state equals the aggregate.
    expected = {mc.value: stats.accesses.counts[mc]
                for mc in MissClass if stats.accesses.counts[mc]}
    assert final["accesses"] == expected
    assert final["miss_rate"] == pytest.approx(stats.accesses.miss_rate)
    # The collector's own counters agree with the design's statistics.
    l2_counted = sum(
        value for name, value in final["metrics"].items()
        if name.startswith("l2.") and isinstance(value, int)
    )
    assert l2_counted == stats.accesses.total
    assert final["metrics"]["l2.latency"]["count"] == stats.accesses.total
    # Per-core IPC matches CoreTiming.
    for sampled, timing in zip(final["per_core"], stats.per_core):
        assert sampled["instructions"] == timing.instructions
        assert sampled["cycles"] == timing.cycles
        assert sampled["ipc"] == pytest.approx(timing.ipc)
    assert final["bus"]["total"] == stats.bus.total
    assert "dgroups" in final and "c_blocks" in final

    # Interval deltas of a cumulative column sum back to the final value.
    flat = series.flat_samples()
    key = "metrics.l2.latency.count"
    assert sum(series.deltas(key)) == pytest.approx(flat[-1][key])

    # Exports parse back.
    json_path = str(tmp_path / "metrics.json")
    series.to_json(json_path)
    with open(json_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["sample_every"] == 500
    assert len(payload["samples"]) == len(series)
    csv_path = str(tmp_path / "metrics.csv")
    series.to_csv(csv_path)
    with open(csv_path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert len(lines) == len(series) + 1  # header + one row per sample


def test_metrics_reset_at_warmup_boundary_drops_warmup_samples():
    import itertools

    metrics = MetricsCollector(sample_every=300)
    system = small_system(metrics=metrics)
    workload = make_workload("oltp")
    events = workload.events(accesses_per_core=1200)
    warmup = 600 * workload.num_cores
    system.run(itertools.islice(events, warmup))
    system.reset_stats()
    assert len(metrics.series) == 0  # warm-up samples dropped
    system.run(events)
    series = metrics.finish()
    stats = system.stats()
    final = series.samples[-1]
    assert sum(final["accesses"].values()) == stats.accesses.total


# ---------------------------------------------------------------------------
# Profiler


def test_profiler_sections_nest_without_double_counting():
    profiler = Profiler()
    with profiler.section("outer"):
        with profiler.section("outer"):
            pass
    section = profiler.sections["outer"]
    assert section.calls == 2
    assert section._depth == 0
    assert section.seconds >= 0.0


def test_profiler_instruments_hot_paths():
    profiler = Profiler()
    system = small_system()
    profiler.instrument(system)
    run_oltp(system, accesses_per_core=500)
    snap = profiler.snapshot()
    assert snap["l2-lookup"]["calls"] == system.design.stats.total
    assert "distance-replacement" in snap
    report = profiler.report()
    assert "l2-lookup" in report and "wall clock" in report


# ---------------------------------------------------------------------------
# Statistics merging


def test_simulation_stats_merge_pools_counters():
    first = SimulationStats()
    first.accesses.counts[MissClass.HIT] = 90
    first.accesses.counts[MissClass.CAPACITY] = 10
    first.reuse.ros_replaced["0"] = 3
    first.dgroups.closest_hits = 5
    first.bus.transactions["BusRd"] = 7
    first.per_core = [CoreTiming(100, 200)]

    second = SimulationStats()
    second.accesses.counts[MissClass.HIT] = 10
    second.accesses.counts[MissClass.RWS] = 90
    second.reuse.ros_replaced["0"] = 1
    second.reuse.rws_invalidated[">5"] = 2
    second.dgroups.farther_hits = 4
    second.bus.transactions["BusRd"] = 3
    second.bus.transactions["BusRepl"] = 1
    second.per_core = [CoreTiming(50, 100), CoreTiming(30, 60)]

    first.merge(second)
    assert first.accesses.counts[MissClass.HIT] == 100
    assert first.accesses.total == 200
    # Pooled, access-weighted: (10 + 90) / 200 — not the ratio mean 0.5.
    assert first.accesses.miss_rate == pytest.approx(0.5)
    assert first.reuse.ros_replaced["0"] == 4
    assert first.reuse.rws_invalidated[">5"] == 2
    assert first.dgroups.closest_hits == 5
    assert first.dgroups.farther_hits == 4
    assert first.bus.total == 11
    # Shorter per-core list padded; position-wise sums.
    assert [(c.instructions, c.cycles) for c in first.per_core] == [
        (150, 300), (30, 60)
    ]


def test_component_merges():
    a = AccessStats()
    a.counts[MissClass.HIT] = 1
    b = AccessStats()
    b.counts[MissClass.HIT] = 2
    a.merge(b)
    assert a.counts[MissClass.HIT] == 3

    r = ReuseStats()
    r2 = ReuseStats()
    r2.record_ros_replacement(3)
    r.merge(r2)
    assert r.ros_replaced["2-5"] == 1

    d = DgroupStats(closest_hits=1, farther_hits=2, misses=3)
    d.merge(DgroupStats(closest_hits=10, farther_hits=20, misses=30))
    assert (d.closest_hits, d.farther_hits, d.misses) == (11, 22, 33)

    bus = BusStats()
    other = BusStats()
    other.record("WrThru")
    bus.merge(other)
    assert bus.transactions["WrThru"] == 1


def test_sweep_result_merged_pools_across_workloads():
    from repro.experiments.runner import SweepResult

    result = SweepResult()
    for workload, hits, misses in (("a", 90, 10), ("b", 10, 90)):
        stats = SimulationStats()
        stats.accesses.counts[MissClass.HIT] = hits
        stats.accesses.counts[MissClass.CAPACITY] = misses
        stats.per_core = [CoreTiming(hits, 100)]
        result.stats[workload] = {"design": stats}
    pooled = result.merged("design")
    assert pooled.accesses.total == 200
    assert pooled.accesses.miss_rate == pytest.approx(0.5)
    assert pooled.per_core[0].instructions == 100
    only_a = result.merged("design", workloads=["a"])
    assert only_a.accesses.miss_rate == pytest.approx(0.1)


# ---------------------------------------------------------------------------
# StatsCache append-only journal


def _stats_with(hits):
    stats = SimulationStats()
    stats.accesses.counts[MissClass.HIT] = hits
    return stats


def _journal_records(path):
    records = []
    with open(path, "rb") as handle:
        while True:
            try:
                records.append(pickle.load(handle))
            except EOFError:
                break
    return records


def test_stats_cache_appends_one_record_per_run(tmp_path):
    from repro.experiments.runner import ExperimentConfig, StatsCache

    path = str(tmp_path / "cache.pkl")
    cache = StatsCache(path)
    config = ExperimentConfig.quick()
    calls = []

    def fake_factory():
        calls.append(1)
        raise AssertionError("factory must not run for a warm cache")

    cache._cache[("oltp", "d", config, False)] = _stats_with(1)
    cache._append(("oltp", "d", config, False), _stats_with(1))
    cache._append(("apache", "d", config, False), _stats_with(2))
    records = _journal_records(path)
    assert len(records) == 2
    assert all(record[0] == "run2" for record in records)

    # A fresh cache loads both entries and serves them without simulating.
    warm = StatsCache(path)
    assert len(warm) == 2
    got = warm.get("oltp", "d", fake_factory, config, False)
    assert got.accesses.counts[MissClass.HIT] == 1
    assert not calls


def test_stats_cache_tolerates_truncated_tail(tmp_path):
    from repro.experiments.runner import ExperimentConfig, StatsCache

    path = str(tmp_path / "cache.pkl")
    config = ExperimentConfig.quick()
    cache = StatsCache(path)
    cache._append(("oltp", "d", config, False), _stats_with(5))
    cache._append(("apache", "d", config, False), _stats_with(6))
    with open(path, "ab") as handle:
        handle.write(b"\x80\x05partial")  # a run killed mid-append

    reloaded = StatsCache(path)
    assert len(reloaded) == 2
    # Compaction rewrote a clean journal: it reloads with no junk tail.
    records = _journal_records(path)
    assert len(records) == 2


def test_stats_cache_migrates_legacy_whole_dict_pickle(tmp_path):
    from repro.experiments.runner import ExperimentConfig, StatsCache

    path = str(tmp_path / "cache.pkl")
    config = ExperimentConfig.quick()
    legacy = {("oltp", "d", config, False): _stats_with(9)}
    with open(path, "wb") as handle:
        pickle.dump(legacy, handle)

    cache = StatsCache(path)
    assert len(cache) == 1
    records = _journal_records(path)
    assert len(records) == 1 and records[0][0] == "run2"


def test_stats_cache_duplicate_keys_last_wins_and_compacts(tmp_path):
    from repro.experiments.runner import ExperimentConfig, StatsCache

    path = str(tmp_path / "cache.pkl")
    config = ExperimentConfig.quick()
    scratch = StatsCache(path)
    key = ("oltp", "d", config, False)
    scratch._append(key, _stats_with(1))
    scratch._append(key, _stats_with(2))
    assert len(_journal_records(path)) == 2

    reloaded = StatsCache(path)
    assert len(reloaded) == 1
    assert reloaded._cache[key].accesses.counts[MissClass.HIT] == 2
    assert len(_journal_records(path)) == 1  # compacted


def test_stats_cache_unreadable_file_starts_empty(tmp_path):
    from repro.experiments.runner import StatsCache

    path = tmp_path / "cache.pkl"
    path.write_bytes(b"not a pickle at all")
    cache = StatsCache(str(path))
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# Harness integration: one record type across tracer, faults, and dumps


def test_harness_runner_attaches_ring_tracer_sized_to_window():
    from repro.harness import HarnessConfig, HarnessRunner

    system = small_system()
    runner = HarnessRunner(system, HarnessConfig(window_size=8))
    assert system.tracer.enabled
    assert runner.tracer is system.tracer
    assert runner.tracer.capacity == 8


def test_harness_runner_reuses_an_enabled_tracer():
    from repro.harness import HarnessConfig, HarnessRunner

    tracer = Tracer(capacity=128)
    system = small_system(tracer=tracer)
    runner = HarnessRunner(system, HarnessConfig(window_size=8))
    assert runner.tracer is tracer  # no second tracer created


def test_window_dump_replays_last_steps_from_tracer_ring(tmp_path):
    from repro.harness import HarnessConfig, HarnessRunner
    from repro.workloads import tracefile

    system = small_system()
    config = HarnessConfig(
        window_size=16, dump_path=str(tmp_path / "window.trace")
    )
    runner = HarnessRunner(system, config)
    workload = make_workload("oltp")
    events = list(workload.events(accesses_per_core=200))
    runner.run(iter(events))

    window = runner.window_events()
    assert len(window) == 16
    expected = events[-16:]
    assert [w.access.address for w in window] == [
        e.access.address for e in expected
    ]
    assert [w.gap for w in window] == [e.gap for e in expected]

    path = runner.dump_window()
    assert path == config.dump_path
    replayed = list(tracefile.read_trace(path))
    assert [r.access.address for r in replayed] == [
        e.access.address for e in expected
    ]


def test_fault_injections_are_trace_events():
    from repro.caches.private import PrivateCaches
    from repro.common.params import CacheGeometry, PrivateCacheParams
    from repro.harness import FaultSpec, HarnessConfig, HarnessRunner

    # drop-bus needs a snoopy bus: the private-MESI design has one.
    system = CmpSystem(
        PrivateCaches(PrivateCacheParams(geometry=CacheGeometry(4 * KB, 2, 128)))
    )
    config = HarnessConfig(
        faults=(FaultSpec("drop-bus", 5),), window_size=2048
    )
    runner = HarnessRunner(system, config)
    workload = make_workload("oltp")
    runner.run(workload.events(accesses_per_core=20))

    assert len(runner.injector.log) == 1
    record = runner.injector.log[0]
    assert isinstance(record, TraceEvent)
    assert record.kind == ev.FAULT
    assert record.data["fault"] == "drop-bus"
    assert record.data["applied"] is True
    # The same record object streams through the system's tracer.
    assert record in runner.tracer.events(ev.FAULT)
    assert validate_record(record.to_dict()) == []


def test_invariant_violation_emits_violation_event(tmp_path):
    from repro.harness import FaultSpec, HarnessConfig, HarnessRunner
    from repro.harness.invariants import InvariantViolation

    system = small_system()
    config = HarnessConfig(
        check_every=1,
        faults=(FaultSpec("flip-pointer", 40),),
        window_size=1024,
        dump_path=str(tmp_path / "window.trace"),
    )
    runner = HarnessRunner(system, config)
    workload = make_workload("oltp")
    with pytest.raises(InvariantViolation) as caught:
        runner.run(workload.events(accesses_per_core=500))

    violations = runner.tracer.events(ev.VIOLATION)
    assert len(violations) == 1
    event = violations[0]
    assert event.data["invariant"] == caught.value.invariant
    assert event.data["dump_path"] == caught.value.dump_path
    assert validate_record(event.to_dict()) == []


def test_harness_profiler_times_invariant_checks():
    from repro.harness import HarnessConfig, HarnessRunner

    profiler = Profiler()
    system = small_system()
    runner = HarnessRunner(
        system, HarnessConfig(check_every=10), profiler=profiler
    )
    workload = make_workload("oltp")
    runner.run(workload.events(accesses_per_core=100))
    checks = profiler.snapshot()["invariant-check"]
    assert checks["calls"] == runner.event_index // 10


def test_checkpoint_detaches_observability_and_restores_it(tmp_path):
    from repro.harness.checkpoint import load_checkpoint, save_checkpoint

    sink_path = tmp_path / "sink.jsonl"
    sink = open(sink_path, "w")
    tracer = Tracer(capacity=256, sink=sink)
    metrics = MetricsCollector(sample_every=500)
    system = small_system(tracer=tracer, metrics=metrics)
    profiler = Profiler().instrument(system)
    run_oltp(system, accesses_per_core=200)
    before = tracer.emitted

    # An open sink file and profiler method shadows are unpicklable;
    # save must strip them for the dump and put them back afterwards.
    path = tmp_path / "obs.ck"
    save_checkpoint(system, event_index=800, path=path)

    assert system.tracer is tracer
    assert system.metrics is metrics
    assert "access" in vars(system.design)  # shadow reinstalled
    run_oltp(system, accesses_per_core=50)  # still traced and timed
    assert tracer.emitted > before
    assert profiler.snapshot()["l2-lookup"]["calls"] > 0
    sink.close()

    restored = load_checkpoint(path)
    assert restored.system.tracer is NO_TRACE
    assert restored.system.metrics is None
    assert "access" not in vars(restored.system.design)
    run_oltp(restored.system, accesses_per_core=50)  # runs clean
