"""Differential layer: mesh+directory @ 4 cores is bit-identical to the bus.

The 2D-mesh NoC with directory coherence (``--bus-model mesh``) claims
to be a *refactoring* of the 4-core snooping bus, not a remodeling: at
four cores, with zero link/router occupancy, the calibrated mesh
transaction latency equals the bus latency exactly (the module-level
assert in :mod:`repro.interconnect.mesh` pins ``router + 2 * diameter *
hop == BUS_LATENCY``), snoops are delivered to exactly the
directory-recorded holders in the bus's attach order, and a snooper
without a copy was a no-op on the bus anyway — so every statistic must
come out bit-identical.  These tests pin that claim across every
registered design, both workload families (multithreaded and
multiprogrammed), and three seeds, mirroring the eventq differential
layer one backend up.
"""

import pytest

from repro.cpu.system import CmpSystem
from repro.experiments.runner import DESIGN_FACTORIES, build_design
from repro.harness import check_system
from repro.interconnect import EventQueue
from repro.interconnect.mesh import MeshNoC, mesh_noc
from repro.obs import Tracer
from repro.obs import events as ev
from repro.workloads.multiprogrammed import make_mix
from repro.workloads.multithreaded import make_workload

ACCESSES_PER_CORE = 1_500

#: Every registered design participates in the differential layer; a new
#: design added to the registry is automatically held to the same bar.
ALL_DESIGNS = sorted(DESIGN_FACTORIES)

SEEDS = (42, 7, 20260809)


def run_one(name, workload_name, bus_model, seed=42,
            accesses_per_core=ACCESSES_PER_CORE, multiprogrammed=False,
            trace=False):
    """One (design, workload, backend) run; returns (system, stats, tracer)."""
    design = build_design(name, bus_model=bus_model)
    tracer = Tracer(capacity=200_000) if trace else None
    system = CmpSystem(design, tracer=tracer)
    maker = make_mix if multiprogrammed else make_workload
    events = maker(workload_name, seed=seed).events(
        accesses_per_core=accesses_per_core
    )
    system.run(events)
    return system, system.stats(), tracer


def fingerprint(stats):
    """Every scalar a figure could read, as one comparable structure."""
    return (
        dict(stats.accesses.counts),
        [(core.instructions, core.cycles) for core in stats.per_core],
        stats.bus.transactions if stats.bus is not None else None,
        stats.throughput,
    )


def access_stream(tracer):
    """Per-access (core, miss-class, latency) sequence from the trace."""
    return [
        (event.core, event.data["miss_class"], event.data["latency"])
        for event in tracer.events(ev.ACCESS)
    ]


@pytest.mark.parametrize("name", ALL_DESIGNS)
@pytest.mark.parametrize("seed", SEEDS)
def test_stats_bit_identical_oltp(name, seed):
    """Every design x three seeds: mesh+directory == bus+snoop, bit for bit."""
    _, atomic_stats, _ = run_one(name, "oltp", "atomic", seed=seed)
    _, mesh_stats, _ = run_one(name, "oltp", "mesh", seed=seed)
    assert fingerprint(atomic_stats) == fingerprint(mesh_stats)


@pytest.mark.parametrize("name", ["private", "cmp-nurapid"])
@pytest.mark.parametrize("workload", ["apache", "ocean"])
def test_stats_bit_identical_other_workloads(name, workload):
    """More sharing mixes for the designs with real coherence traffic."""
    _, atomic_stats, _ = run_one(name, workload, "atomic")
    _, mesh_stats, _ = run_one(name, workload, "mesh")
    assert fingerprint(atomic_stats) == fingerprint(mesh_stats)


@pytest.mark.parametrize("name", ["private", "cmp-nurapid-cr"])
def test_stats_bit_identical_multiprogrammed(name):
    """The multiprogrammed family holds to the same bar."""
    _, atomic_stats, _ = run_one(name, "MIX1", "atomic", multiprogrammed=True)
    _, mesh_stats, _ = run_one(name, "MIX1", "mesh", multiprogrammed=True)
    assert fingerprint(atomic_stats) == fingerprint(mesh_stats)


@pytest.mark.parametrize("name", ["private", "cmp-nurapid"])
def test_trace_streams_bit_identical(name):
    """Same trace: every event record, in order, compares equal."""
    _, _, atomic_tracer = run_one(name, "oltp", "atomic",
                                  accesses_per_core=500, trace=True)
    _, _, mesh_tracer = run_one(name, "oltp", "mesh",
                                accesses_per_core=500, trace=True)
    assert atomic_tracer.events() == mesh_tracer.events()
    assert access_stream(atomic_tracer) == access_stream(mesh_tracer)


@pytest.mark.parametrize("name", ["private", "cmp-nurapid"])
def test_mesh_actually_routes(name):
    """Guard against vacuity: the NoC must carry real, multi-hop traffic."""
    design = build_design(name, bus_model="mesh")
    noc = mesh_noc(design)
    assert isinstance(noc, MeshNoC)
    assert isinstance(noc.queue, EventQueue)
    system = CmpSystem(design)
    system.run(make_workload("oltp").events(accesses_per_core=1_500))
    assert noc.queue.fired > 0
    assert noc.queue.pending == 0
    assert noc.mesh_stats.messages > 0
    assert noc.mesh_stats.hops > 0
    assert sum(noc.mesh_stats.link_traffic.values()) > 0


@pytest.mark.parametrize("name", ["private", "cmp-nurapid"])
def test_mesh_run_passes_invariants(name):
    """Full checker (including directory-vs-L1 consistency) stays green."""
    design = build_design(name, bus_model="mesh")
    system = CmpSystem(design)
    events = list(make_workload("oltp").events(accesses_per_core=300))
    for index, event in enumerate(events):
        system.step(event)
        if (index + 1) % 100 == 0:
            check_system(system, access_index=index)
    check_system(system)


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BUS_MODEL", "mesh")
    design = build_design("private")
    assert mesh_noc(design) is not None
    monkeypatch.setenv("REPRO_BUS_MODEL", "atomic")
    assert mesh_noc(build_design("private")) is None
