"""The chaos suite is itself the assertion: every orchestration fault
class must converge to stats bit-identical to a fault-free run (or, for
poison cells, to a quarantine record).  These tests run the real
scenarios end-to-end — no mocks — so they double as the regression net
for the supervision layer.
"""

import pytest

from repro.harness import chaos


class TestRegistry:
    def test_every_fault_class_has_a_scenario(self):
        assert set(chaos.SCENARIOS) == {
            "worker-kill",
            "worker-hang",
            "worker-freeze",
            "shard-truncate",
            "shard-bitflip",
            "orphan-shard",
            "poison-cell",
        }

    def test_descriptions_are_present(self):
        for name, (description, scenario) in chaos.SCENARIOS.items():
            assert description, name
            assert callable(scenario), name

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(ValueError, match="no-such-fault"):
            chaos.run_chaos(names=["no-such-fault"])


class TestConvergence:
    def test_all_scenarios_converge(self):
        report = chaos.run_chaos()
        assert report.passed, "\n" + report.render()
        assert len(report.results) == len(chaos.SCENARIOS)

    def test_report_render_summarizes(self):
        report = chaos.ChaosReport(
            results=[
                chaos.ScenarioResult("worker-kill", True, "ok", 0.1),
                chaos.ScenarioResult("poison-cell", False, "lost cell", 0.2),
            ]
        )
        assert not report.passed
        text = report.render()
        assert "PASS" in text and "FAIL" in text
        assert "1 failed" in text
