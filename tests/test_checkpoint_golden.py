"""Golden checkpoint corpus: committed fixtures must keep loading.

``tests/data/checkpoints/`` holds small checkpoints written in both
format versions (v1 legacy whole-object pickle, v2 state-dict envelope)
for each recorded design, plus ``expected.json`` with the final
statistics fingerprint of each fixture's *uninterrupted* run.  These
tests are the compatibility contract: every committed fixture must load
under the current build and resume to a bit-identical fingerprint.  A
failure here means a model or serialization change broke existing
checkpoints — either fix the regression or consciously regenerate the
corpus with ``tests/data/checkpoints/generate.py``.
"""

import gzip
import itertools
import json
import pickle
from pathlib import Path

import pytest

from repro.harness import load_checkpoint
from repro.workloads.multithreaded import make_workload

DATA = Path(__file__).resolve().parent / "data" / "checkpoints"
FIXTURES = sorted(DATA.glob("*.ck"))
EXPECTED = json.loads((DATA / "expected.json").read_text())


def _stem(path: Path) -> str:
    """``cmp-nurapid-eventq.v2.ck`` -> ``cmp-nurapid-eventq``."""
    return path.name.rsplit(".", 2)[0]


def test_corpus_is_complete():
    """Both format versions committed for every recorded fingerprint."""
    assert EXPECTED, "expected.json is empty — regenerate the corpus"
    stems = {_stem(path) for path in FIXTURES}
    assert stems == set(EXPECTED)
    for stem in EXPECTED:
        versions = {
            path.name.rsplit(".", 2)[1]
            for path in FIXTURES
            if _stem(path) == stem
        }
        assert versions == {"v1", "v2"}, f"{stem}: missing a format version"


def test_fixture_encodings_match_their_version():
    """v2 files are gzip envelopes; v1 files are raw pickles."""
    for path in FIXTURES:
        head = path.read_bytes()[:2]
        if ".v2." in path.name:
            assert head == b"\x1f\x8b", f"{path.name} is not gzip"
        else:
            assert head != b"\x1f\x8b", f"{path.name} is unexpectedly gzip"
            assert head[:1] == b"\x80", f"{path.name} is not a binary pickle"


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.name)
def test_golden_fixture_loads_and_resumes_bit_identically(path):
    checkpoint = load_checkpoint(path)
    meta = checkpoint.meta
    assert checkpoint.version == (2 if ".v2." in path.name else 1)
    workload = make_workload(meta["workload"], seed=meta["seed"])
    events = itertools.islice(
        workload.events(accesses_per_core=meta["accesses"]),
        meta["total_events"],
    )
    system = checkpoint.system
    for event in itertools.islice(events, checkpoint.event_index, None):
        system.step(event)
    assert system.stats().fingerprint() == EXPECTED[_stem(path)]


def test_v1_and_v2_fixtures_restore_identical_state():
    """Both encodings of the same cut must produce the same system."""
    for stem in EXPECTED:
        v1 = load_checkpoint(DATA / f"{stem}.v1.ck")
        v2 = load_checkpoint(DATA / f"{stem}.v2.ck")
        assert v1.event_index == v2.event_index
        assert v1.system.state_dict().keys() == v2.system.state_dict().keys()
        assert (
            v1.system.stats().fingerprint() == v2.system.stats().fingerprint()
        )


def test_v2_fixture_envelope_fields():
    """The envelope schema documented in DESIGN.md stays stable."""
    for path in FIXTURES:
        if ".v2." not in path.name:
            continue
        payload = pickle.loads(gzip.decompress(path.read_bytes()))
        assert payload["magic"] == "repro-checkpoint"
        assert payload["version"] == 2
        assert payload["design"] == payload["meta"]["design"]
        assert payload["bus_model"] in ("atomic", "eventq")
        assert isinstance(payload["event_index"], int)
        assert isinstance(payload["state"], dict)
        assert {"params", "cores", "l1s", "design"} <= payload["state"].keys()
