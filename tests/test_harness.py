"""Tests for the robustness harness: checker, faults, checkpoint, watchdog.

Each structural fault class must be caught by the invariant checker
with a structured diagnostic naming the violated contract; a killed
run must resume from its checkpoint bit-identically; the watchdog
must convert a hung run into a typed exception with a replayable
event-window dump.
"""

import itertools

import pytest

from repro.caches.private import PrivateCaches
from repro.caches.shared import SharedCache
from repro.caches.snuca import SnucaCache
from repro.common.params import (
    KB,
    CacheGeometry,
    NurapidParams,
    PrivateCacheParams,
    SharedCacheParams,
    SnucaParams,
)
from repro.common.params import L1Params, SystemParams
from repro.common.types import Access, AccessType
from repro.core.nurapid import NurapidCache
from repro.cpu.system import CmpSystem, TimedAccess
from repro.harness import (
    CheckpointError,
    FaultInjector,
    FaultSpec,
    HarnessConfig,
    InvariantViolation,
    WatchdogTimeout,
    check_system,
    load_checkpoint,
    run_events,
    save_checkpoint,
)
from repro.workloads.multithreaded import make_workload

READ = AccessType.READ
WRITE = AccessType.WRITE

#: Small-geometry design factories: full-size arrays make every-access
#: checking needlessly slow, and small caches exercise far more
#: replacement/demotion traffic per event.
SMALL_DESIGNS = {
    "uniform-shared": lambda: SharedCache(
        SharedCacheParams(geometry=CacheGeometry(16 * KB, 4, 128))
    ),
    "non-uniform-shared": lambda: SnucaCache(
        SnucaParams(geometry=CacheGeometry(16 * KB, 4, 128), num_banks=4)
    ),
    "private": lambda: PrivateCaches(
        PrivateCacheParams(geometry=CacheGeometry(4 * KB, 2, 128))
    ),
    "cmp-nurapid": lambda: NurapidCache(
        NurapidParams(dgroup_capacity_bytes=4 * KB, tag_associativity=2)
    ),
}


def oltp_events(accesses_per_core: int, seed: int = 11):
    return make_workload("oltp", seed=seed).events(
        accesses_per_core=accesses_per_core
    )


def fresh_system(design: str = "cmp-nurapid") -> CmpSystem:
    # Small L1s too: the inclusion check walks every valid L1 block.
    params = SystemParams(l1=L1Params(geometry=CacheGeometry(4 * KB, 2, 64)))
    return CmpSystem(SMALL_DESIGNS[design](), params)


def inject_now(system: CmpSystem, kind: str) -> FaultInjector:
    """Apply one fault immediately; returns the injector (check .log)."""
    injector = FaultInjector((FaultSpec(kind, 0),))
    injector.maybe_inject(system, 0)
    return injector


# ----------------------------------------------------------------------
# Paranoid mode (acceptance: every design survives check_every=1)

@pytest.mark.parametrize(
    "design",
    ["uniform-shared", "private", "non-uniform-shared", "cmp-nurapid"],
)
def test_paranoid_mode_clean_run(design):
    """A fault-free multithreaded run passes the checker on every access."""
    system = fresh_system(design)
    run_events(
        system,
        oltp_events(300, seed=5),
        warmup_events=400,
        config=HarnessConfig(check_every=1),
    )
    assert system.stats().accesses.total > 0


# ----------------------------------------------------------------------
# Fault detection: one structured diagnostic per corruption class

#: Structural fault kind -> invariant names the checker may report for
#: it (a corruption can legitimately trip more than one contract).
DETECTED_BY = {
    "flip-pointer": {"tag-pointer", "frame-ownership"},
    "flip-reverse": {"frame-ownership"},
    "evict-frame": {"tag-pointer", "frame-ownership", "frame-accounting"},
    "dirty-desync": {"dirty-copy", "single-dirty-copy", "c-state"},
    "l1-orphan": {"l1-inclusion"},
}


@pytest.mark.parametrize("kind", sorted(DETECTED_BY))
def test_fault_class_detected(kind, tmp_path):
    """Each structural corruption raises InvariantViolation naming it."""
    system = fresh_system("cmp-nurapid")
    config = HarnessConfig(
        check_every=1,
        faults=(FaultSpec(kind, 400),),
        dump_path=str(tmp_path / "window.trace"),
    )
    with pytest.raises(InvariantViolation) as caught:
        run_events(system, oltp_events(2000), warmup_events=0, config=config)
    violation = caught.value
    assert violation.invariant in DETECTED_BY[kind], str(violation)
    assert violation.access_index is not None and violation.access_index >= 400
    assert f"[{violation.invariant}]" in str(violation)
    # The minimal repro: the last events are dumped as a replayable trace.
    assert violation.dump_path == str(tmp_path / "window.trace")
    assert (tmp_path / "window.trace").exists()


def test_corrupt_state_detected():
    """Forcing one sharer of a shared block into M breaks exclusivity.

    Injected on a hand-built two-reader state so the fault always has
    an eligible target (random workloads may lack stable sharing).
    """
    system = fresh_system("private")
    system.step(TimedAccess(Access(0, 0x40000, READ)))
    system.step(TimedAccess(Access(1, 0x40000, READ)))
    injector = inject_now(system, "corrupt-state")
    assert injector.log[0].data["applied"], injector.log[0].data["description"]
    with pytest.raises(InvariantViolation) as caught:
        check_system(system)
    assert caught.value.invariant in {"exclusivity", "single-dirty-copy"}


def test_drop_bus_detected():
    """A lost invalidation leaves two writable copies (exclusivity)."""
    system = fresh_system("private")
    system.step(TimedAccess(Access(0, 0x40000, READ)))  # core 0 takes E
    injector = inject_now(system, "drop-bus")
    assert injector.log[0].data["applied"]
    # Core 1's BusRdX is never snooped: core 0 keeps its copy.
    system.step(TimedAccess(Access(1, 0x40000, WRITE)))
    with pytest.raises(InvariantViolation) as caught:
        check_system(system)
    assert caught.value.invariant == "exclusivity"


def test_violation_is_assertion_error():
    """Old callers that caught AssertionError keep working."""
    assert issubclass(InvariantViolation, AssertionError)


def test_delay_bus_perturbs_latency_only():
    """A delayed bus transaction costs 10x latency; state stays legal."""
    plain = fresh_system("private")
    read = Access(0, 0x40000, READ)
    base_latency = plain.design.access(read, now=0).latency

    faulted = fresh_system("private")
    injector = inject_now(faulted, "delay-bus")
    assert injector.log[0].data["applied"]
    slow_latency = faulted.design.access(read, now=0).latency
    assert slow_latency >= base_latency + 10 * faulted.design.bus.latency
    assert faulted.design.bus.fault_next is None  # one-shot
    check_system(faulted)  # timing-only: the model is still legal


def test_dup_bus_keeps_model_legal():
    """A double-snooped transaction never corrupts coherence state."""
    system = fresh_system("private")
    system.step(TimedAccess(Access(0, 0x40000, READ)))
    system.step(TimedAccess(Access(1, 0x40000, READ)))
    injector = inject_now(system, "dup-bus")
    assert injector.log[0].data["applied"]
    system.step(TimedAccess(Access(2, 0x40000, READ)))
    check_system(system)


def test_delay_xbar_perturbs_latency_only():
    """The slowed crossbar adds its penalty to every data access."""
    system = fresh_system("cmp-nurapid")
    cache = system.design
    probe = Access(0, 0x40000, READ)
    cache.access(probe, now=0)  # install the block
    base_latency = cache.access(probe, now=10).latency
    injector = inject_now(system, "delay-xbar")
    assert injector.log[0].data["applied"]
    slow_latency = cache.access(probe, now=20).latency
    assert slow_latency == base_latency + 100
    check_system(system)


def test_timestamp_monotonic_violation(tmp_path):
    """Rewinding a core clock (the old reset_stats bug) is caught."""
    system = fresh_system("private")
    runner_config = HarnessConfig(dump_path=str(tmp_path / "mono.trace"))
    events = iter(oltp_events(200, seed=3))
    from repro.harness import HarnessRunner

    runner = HarnessRunner(system, runner_config)
    runner.run(itertools.islice(events, 100))
    system.cores[0].cycles -= 50
    with pytest.raises(InvariantViolation) as caught:
        runner.run(itertools.islice(events, 100))
    assert caught.value.invariant == "timestamp-monotonic"


# ----------------------------------------------------------------------
# Checkpoint / resume

def _stats_fingerprint(stats):
    return (
        stats.accesses.counts,
        [(t.instructions, t.cycles) for t in stats.per_core],
        stats.bus.transactions,
        stats.throughput,
        stats.aggregate_ipc,
    )


def test_checkpoint_resume_bit_identical(tmp_path):
    """Kill a run mid-measurement; the resumed stats match exactly."""
    path = str(tmp_path / "run.ck")
    warmup_events = 500 * 4  # 2000 events, then 6000 measured

    reference = fresh_system("cmp-nurapid")
    run_events(reference, oltp_events(2000), warmup_events, HarnessConfig())
    want = _stats_fingerprint(reference.stats())

    # "Kill" at event 6000: run only a 6000-event prefix, checkpointing
    # every 3000 events, so the last snapshot is mid-measurement.
    killed = fresh_system("cmp-nurapid")
    meta = {"workload": "oltp", "seed": 11, "accesses": 1500, "warmup": 500}
    run_events(
        killed,
        itertools.islice(oltp_events(2000), 6000),
        warmup_events,
        HarnessConfig(checkpoint_path=path, checkpoint_every=3000),
        meta=meta,
    )

    checkpoint = load_checkpoint(path)
    assert checkpoint.event_index == 6000
    assert checkpoint.meta["stats_reset"] is True
    assert checkpoint.meta["workload"] == "oltp"

    resumed = checkpoint.system
    run_events(
        resumed,
        oltp_events(2000),
        warmup_events,
        HarnessConfig(),
        start_index=checkpoint.event_index,
        stats_reset=checkpoint.meta["stats_reset"],
    )
    assert _stats_fingerprint(resumed.stats()) == want


def test_checkpoint_before_warmup_boundary_resumes(tmp_path):
    """A checkpoint cut during warm-up replays the stats reset on resume."""
    path = str(tmp_path / "warm.ck")
    warmup_events = 500 * 4

    reference = fresh_system("private")
    run_events(reference, oltp_events(1000), warmup_events, HarnessConfig())
    want = _stats_fingerprint(reference.stats())

    killed = fresh_system("private")
    run_events(
        killed,
        itertools.islice(oltp_events(1000), 1000),  # dies inside warm-up
        warmup_events,
        HarnessConfig(checkpoint_path=path, checkpoint_every=1000),
    )
    checkpoint = load_checkpoint(path)
    assert checkpoint.event_index == 1000
    assert checkpoint.meta["stats_reset"] is False

    resumed = checkpoint.system
    run_events(
        resumed,
        oltp_events(1000),
        warmup_events,
        HarnessConfig(),
        start_index=checkpoint.event_index,
        stats_reset=checkpoint.meta["stats_reset"],
    )
    assert _stats_fingerprint(resumed.stats()) == want


def test_load_checkpoint_rejects_garbage(tmp_path):
    bogus = tmp_path / "not-a-checkpoint"
    bogus.write_bytes(b"garbage bytes")
    with pytest.raises(CheckpointError):
        load_checkpoint(str(bogus))


def test_load_checkpoint_missing_file(tmp_path):
    with pytest.raises(CheckpointError):
        load_checkpoint(str(tmp_path / "absent.ck"))


def test_save_checkpoint_is_atomic(tmp_path):
    path = tmp_path / "atomic.ck"
    system = fresh_system("uniform-shared")
    save_checkpoint(system, 0, str(path), {"workload": "oltp"})
    assert path.exists()
    assert not list(tmp_path.glob("*.tmp"))


# ----------------------------------------------------------------------
# Watchdog

def test_watchdog_raises_with_dump(tmp_path):
    system = fresh_system("private")
    config = HarnessConfig(
        timeout_seconds=1e-9, dump_path=str(tmp_path / "hang.trace")
    )
    with pytest.raises(WatchdogTimeout) as caught:
        run_events(system, oltp_events(100, seed=3), 0, config)
    assert caught.value.event_index >= 1
    assert caught.value.dump_path == str(tmp_path / "hang.trace")
    assert (tmp_path / "hang.trace").exists()
