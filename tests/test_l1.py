"""Unit tests for the per-core L1 cache."""

from repro.caches.l1 import L1Cache
from repro.common.params import KB, CacheGeometry, L1Params


def make_l1() -> L1Cache:
    return L1Cache(L1Params(geometry=CacheGeometry(4 * KB, 2, 64), latency=3))


class TestLoads:
    def test_load_miss_then_fill_then_hit(self):
        l1 = make_l1()
        assert not l1.load(0x1000)
        l1.fill(0x1000)
        assert l1.load(0x1000)
        assert l1.stats.load_misses == 1
        assert l1.stats.load_hits == 1

    def test_load_does_not_autofill(self):
        l1 = make_l1()
        l1.load(0x1000)
        assert not l1.probe(0x1000)


class TestStores:
    def test_store_miss(self):
        l1 = make_l1()
        assert not l1.store(0x2000)
        assert l1.stats.store_misses == 1

    def test_store_without_permission_is_upgrade(self):
        l1 = make_l1()
        l1.fill(0x2000, writable=False)
        assert not l1.store(0x2000)
        assert l1.stats.store_upgrades == 1

    def test_store_with_permission_completes_locally(self):
        l1 = make_l1()
        l1.fill(0x2000, writable=True)
        assert l1.store(0x2000)
        assert l1.stats.store_hits == 1

    def test_revoke_writable_forces_next_store_down(self):
        l1 = make_l1()
        l1.fill(0x2000, writable=True)
        assert l1.store(0x2000)
        l1.revoke_writable(0x2000)
        assert not l1.store(0x2000)

    def test_write_through_blocks_never_writable(self):
        """CMP-NuRAPID C blocks: every store must reach the L2."""
        l1 = make_l1()
        l1.fill(0x2000, writable=False)
        for _ in range(3):
            assert not l1.store(0x2000)
        assert l1.stats.store_upgrades == 3


class TestInvalidation:
    def test_invalidate_present_block(self):
        l1 = make_l1()
        l1.fill(0x3000)
        assert l1.invalidate(0x3000)
        assert not l1.probe(0x3000)
        assert l1.stats.invalidations == 1

    def test_invalidate_absent_block_is_noop(self):
        l1 = make_l1()
        assert not l1.invalidate(0x3000)
        assert l1.stats.invalidations == 0

    def test_dirty_invalidation_counts_writeback(self):
        l1 = make_l1()
        l1.fill(0x3000, writable=True)
        l1.store(0x3000)
        l1.invalidate(0x3000)
        assert l1.stats.writebacks == 1

    def test_inclusion_covers_both_halves_of_l2_block(self):
        """A 128 B L2 block spans two 64 B L1 blocks."""
        l1 = make_l1()
        l1.fill(0x4000)
        l1.fill(0x4040)
        count = l1.invalidate_l2_block(0x4000, 128)
        assert count == 2
        assert not l1.probe(0x4000)
        assert not l1.probe(0x4040)

    def test_inclusion_with_misaligned_address(self):
        l1 = make_l1()
        l1.fill(0x4000)
        assert l1.invalidate_l2_block(0x4040, 128) == 1


class TestEviction:
    def test_conflict_eviction_writes_back_dirty(self):
        l1 = make_l1()
        geometry = l1.params.geometry
        step = geometry.num_sets * geometry.block_size
        l1.fill(0, writable=True)
        l1.store(0)
        l1.fill(step)
        l1.fill(2 * step)  # 2-way set now evicts the dirty block
        assert l1.stats.writebacks == 1

    def test_miss_rate(self):
        l1 = make_l1()
        l1.load(0x100)
        l1.fill(0x100)
        l1.load(0x100)
        assert l1.stats.miss_rate == 0.5
