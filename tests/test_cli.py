"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        args_dict = vars(args)
        # Both resolve at use time: design to cmp-nurapid, workload to
        # oltp.  (No argparse defaults so --resume can detect conflicts.)
        assert args_dict["design"] is None
        assert args_dict["workload"] is None
        assert args_dict["check_invariants"] == 0
        assert args_dict["inject_fault"] is None

    def test_mix_and_workload_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workload", "oltp", "--mix", "MIX1"]
            )

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--design", "no-such-cache"])


class TestCommands:
    def test_latency_prints_table1(self, capsys):
        code, out = run_cli(capsys, "latency")
        assert code == 0
        assert "shared 8MB 32-way total" in out
        assert "59" in out

    def test_run_small(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--design",
            "uniform-shared",
            "--accesses",
            "1500",
            "--warmup",
            "1500",
        )
        assert code == 0
        assert "throughput" in out

    def test_run_with_chart(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--design",
            "cmp-nurapid",
            "--accesses",
            "1500",
            "--warmup",
            "0",
            "--chart",
        )
        assert code == 0
        assert "legend" in out
        assert "d-group accesses" in out

    def test_compare_two_designs(self, capsys):
        code, out = run_cli(
            capsys,
            "compare",
            "--designs",
            "uniform-shared",
            "ideal",
            "--accesses",
            "1500",
            "--warmup",
            "0",
        )
        assert code == 0
        assert "uniform-shared" in out and "ideal" in out

    def test_compare_on_mix(self, capsys):
        code, out = run_cli(
            capsys,
            "compare",
            "--designs",
            "uniform-shared",
            "private",
            "--mix",
            "MIX4",
            "--accesses",
            "1500",
            "--warmup",
            "0",
        )
        assert code == 0
        assert "MIX4" in out

    def test_experiment_table1(self, capsys):
        code, out = run_cli(capsys, "experiment", "table1")
        assert code == 0
        assert "Table 1" in out

    def test_experiment_unknown(self, capsys):
        code = main(["experiment", "fig99"])
        assert code == 2

    def test_trace_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "t.txt"
        code, out = run_cli(
            capsys,
            "trace",
            "generate",
            "--workload",
            "barnes",
            "--accesses",
            "400",
            "--warmup",
            "0",
            "--out",
            str(trace),
        )
        assert code == 0
        assert "wrote" in out
        code, out = run_cli(
            capsys, "trace", "run", str(trace), "--design", "private"
        )
        assert code == 0
        assert "throughput" in out


def run_cli_err(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestHarnessFlags:
    """The robustness flags: validation, faults, checkpoint/resume."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "--accesses", "-5"],
            ["run", "--warmup", "-1"],
            ["run", "--check-invariants", "-2"],
            ["run", "--checkpoint-every", "0"],
            ["run", "--timeout", "-1"],
            ["run", "--inject-fault", "bogus@10"],
            ["run", "--inject-fault", "flip-pointer"],
            ["run", "--inject-fault", "flip-pointer@-3"],
            ["run", "--inject-fault", "flip-pointer@ten"],
            ["run", "--resume", "x.ck", "--workload", "oltp"],
            ["run", "--resume", "x.ck", "--mix", "MIX1"],
            ["run", "--resume", "x.ck", "--design", "private"],
            ["run", "--resume", "/nonexistent/x.ck"],
            ["trace", "generate", "--accesses", "-1", "--out", "t.txt"],
            ["compare", "--accesses", "-1"],
        ],
    )
    def test_malformed_arguments_exit_2_one_line(self, capsys, argv):
        code, out, err = run_cli_err(capsys, *argv)
        assert code == 2
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_paranoid_run_passes(self, capsys):
        code, out = run_cli(
            capsys,
            "run", "--design", "private", "--accesses", "800",
            "--warmup", "200", "--check-invariants", "100",
        )
        assert code == 0
        assert "invariants checked every 100 event(s)" in out

    def test_injected_fault_exits_3_with_diagnostic(self, tmp_path, capsys):
        checkpoint = tmp_path / "fault.ck"
        code, out, err = run_cli_err(
            capsys,
            "run", "--design", "cmp-nurapid", "--accesses", "2000",
            "--warmup", "0", "--check-invariants", "1",
            "--inject-fault", "flip-pointer@500",
            "--checkpoint", str(checkpoint),
        )
        assert code == 3
        assert "invariant violation: [" in err
        assert "replayable event window" in err
        assert (tmp_path / "fault.ck.window").exists()

    def test_watchdog_exits_4(self, tmp_path, capsys):
        checkpoint = tmp_path / "hang.ck"
        code, out, err = run_cli_err(
            capsys,
            "run", "--design", "private", "--accesses", "100000",
            "--warmup", "0", "--timeout", "0.01",
            "--checkpoint", str(checkpoint),
        )
        assert code == 4
        assert "watchdog timeout" in err

    def test_checkpoint_then_resume_matches(self, tmp_path, capsys):
        checkpoint = tmp_path / "run.ck"
        argv = [
            "run", "--design", "uniform-shared", "--accesses", "1000",
            "--warmup", "500", "--checkpoint", str(checkpoint),
            "--checkpoint-every", "2000",
        ]
        code, full = run_cli(capsys, *argv)
        assert code == 0
        assert checkpoint.exists()
        code, resumed = run_cli(capsys, "run", "--resume", str(checkpoint))
        assert code == 0

        def numbers(text):
            return [
                line for line in text.splitlines()
                if "throughput" in line or "IPC" in line or "%" in line
            ]

        assert numbers(resumed) == numbers(full)

    def test_resume_rejects_garbage_checkpoint(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.ck"
        bogus.write_bytes(b"not a checkpoint")
        code, out, err = run_cli_err(capsys, "run", "--resume", str(bogus))
        assert code == 2
        assert "error:" in err


class TestObservabilityFlags:
    RUN = ("run", "--design", "cmp-nurapid", "--accesses", "800",
           "--warmup", "800")

    def test_trace_flag_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.obs.events import validate_jsonl

        trace = tmp_path / "run.jsonl"
        code, out = run_cli(capsys, *self.RUN, "--trace", str(trace))
        assert code == 0
        assert "trace:" in out
        count, errors = validate_jsonl(str(trace))
        assert errors == []
        assert count > 0

    def test_metrics_flag_json_and_csv(self, tmp_path, capsys):
        import json as json_module

        metrics = tmp_path / "m.json"
        code, out = run_cli(
            capsys, *self.RUN, "--metrics", str(metrics),
            "--metrics-every", "1k",
        )
        assert code == 0
        payload = json_module.loads(metrics.read_text())
        assert payload["sample_every"] == 1000
        assert payload["samples"]

        csv_path = tmp_path / "m.csv"
        code, _ = run_cli(
            capsys, *self.RUN, "--metrics", str(csv_path),
            "--metrics-every", "1k",
        )
        assert code == 0
        lines = csv_path.read_text().splitlines()
        assert len(lines) >= 2  # header + samples

    def test_profile_flag_prints_report(self, capsys):
        code, out = run_cli(capsys, *self.RUN, "--profile")
        assert code == 0
        assert "l2-lookup" in out
        assert "wall clock" in out

    def test_count_suffix_parsing(self):
        args = build_parser().parse_args(
            ["run", "--metrics-every", "10k", "--trace-buffer", "2m"]
        )
        assert args.metrics_every == 10_000
        assert args.trace_buffer == 2_000_000
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--metrics-every", "ten"])

    def test_trace_flags_compose_with_harness(self, tmp_path, capsys):
        from repro.obs.events import read_jsonl

        trace = tmp_path / "harness.jsonl"
        code, out = run_cli(
            capsys, *self.RUN, "--trace", str(trace),
            "--inject-fault", "delay-xbar@100",
        )
        assert code == 0
        kinds = {event.kind for event in read_jsonl(str(trace))}
        assert "fault" in kinds  # injections stream through the tracer

    def test_trace_export_and_validate(self, tmp_path, capsys):
        import json as json_module

        from repro.obs.perfetto import validate_chrome_trace

        trace = tmp_path / "run.jsonl"
        code, _ = run_cli(capsys, *self.RUN, "--trace", str(trace))
        assert code == 0

        code, out = run_cli(capsys, "trace", "validate", str(trace))
        assert code == 0
        assert "all valid" in out

        exported = tmp_path / "run.perfetto.json"
        code, out = run_cli(
            capsys, "trace", "export", str(trace), "--out", str(exported)
        )
        assert code == 0
        assert "perfetto" in out
        payload = json_module.loads(exported.read_text())
        assert validate_chrome_trace(payload) == []

    def test_trace_validate_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "nope"}\nnot json\n')
        code, out, err = run_cli_err(capsys, "trace", "validate", str(bad))
        assert code == 2
        assert "problem" in err

    def test_trace_export_rejects_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "nope"}\n')
        code, out, err = run_cli_err(
            capsys, "trace", "export", str(bad), "--out",
            str(tmp_path / "out.json"),
        )
        assert code == 2
        assert "error:" in err


class TestSupervisionFlags:
    """--cell-timeout/--max-retries plumbing and the chaos/quarantine
    subcommands."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["experiment", "fig5", "--cell-timeout", "-1"],
            ["experiment", "fig5", "--max-retries", "-2"],
            ["bench", "--cell-timeout", "-0.5", "--no-sweep", "--quick"],
            ["bench", "--max-retries", "-1", "--no-sweep", "--quick"],
        ],
    )
    def test_malformed_supervision_flags_exit_2(self, capsys, argv):
        code, out, err = run_cli_err(capsys, *argv)
        assert code == 2
        assert "Traceback" not in err

    def test_env_garbage_is_a_usage_error(self, capsys, monkeypatch):
        from repro.experiments import parallel

        monkeypatch.setenv(parallel.CELL_TIMEOUT_ENV, "soon")
        code, out, err = run_cli_err(capsys, "experiment", "fig5", "--quick")
        assert code == 2
        assert parallel.CELL_TIMEOUT_ENV in err

    def test_parser_accepts_supervision_flags(self):
        args = build_parser().parse_args(
            ["experiment", "fig5", "--cell-timeout", "600",
             "--max-retries", "3"]
        )
        assert args.cell_timeout == 600.0 and args.max_retries == 3
        args = build_parser().parse_args(["bench", "--cell-timeout", "30"])
        assert args.cell_timeout == 30.0 and args.max_retries is None

    def test_poisoned_experiment_exits_6_and_is_inspectable(
        self, capsys, monkeypatch, tmp_path
    ):
        from repro.experiments import parallel

        cache = tmp_path / "stats.cache"
        monkeypatch.setenv(parallel.CHAOS_POISON_ENV, "oltp/private")
        code, out, err = run_cli_err(
            capsys, "experiment", "fig5", "--quick", "--jobs", "2",
            "--cache", str(cache), "--max-retries", "0",
        )
        assert code == parallel.QUARANTINE_EXIT == 6
        assert "quarantined" in err and "oltp/private" in err
        monkeypatch.delenv(parallel.CHAOS_POISON_ENV)

        code, out = run_cli(capsys, "quarantine", str(cache))
        assert code == 0
        assert "oltp/private" in out and "RuntimeError" in out

        code, out = run_cli(capsys, "quarantine", str(cache), "--traceback")
        assert code == 0
        assert "Traceback" in out

    def test_quarantine_missing_journal_exits_2(self, capsys, tmp_path):
        code, out, err = run_cli_err(
            capsys, "quarantine", str(tmp_path / "nope.cache")
        )
        assert code == 2
        assert "no quarantine journal" in err

    def test_chaos_list(self, capsys):
        code, out = run_cli(capsys, "chaos", "--list")
        assert code == 0
        assert "worker-kill" in out and "poison-cell" in out

    def test_chaos_unknown_scenario_exits_2(self, capsys):
        code, out, err = run_cli_err(
            capsys, "chaos", "--scenario", "meteor-strike"
        )
        assert code == 2
        assert "meteor-strike" in err

    def test_chaos_scenario_runs_and_traces(self, capsys, tmp_path):
        trace = tmp_path / "chaos.jsonl"
        code, out = run_cli(
            capsys, "chaos", "--scenario", "poison-cell",
            "--trace", str(trace),
        )
        assert code == 0
        assert "PASS" in out
        from repro.obs.events import read_jsonl

        kinds = {event.kind for event in read_jsonl(str(trace))}
        assert "quarantine" in kinds


class TestMeshCli:
    """The mesh NoC's CLI surface: engine guards and the scale grid."""

    def test_batch_engine_refuses_mesh_exit_2(self, capsys):
        code, out, err = run_cli_err(
            capsys, "run", "--engine", "batch", "--bus-model", "mesh",
            "--accesses", "100", "--warmup", "0",
        )
        assert code == 2
        assert "mesh" in err
        assert "scalar" in err
        assert "Traceback" not in err

    def test_batch_mesh_refusal_names_supported_models(self, capsys):
        """The refusal says which bus models the batch engine DOES take."""
        code, out, err = run_cli_err(
            capsys, "run", "--engine", "batch", "--bus-model", "mesh",
            "--accesses", "100", "--warmup", "0",
        )
        assert code == 2
        assert "atomic" in err and "eventq" in err
        assert "--bus-model mesh" in err

    def test_batch_harness_refusal_names_offending_flag(self, capsys):
        """One incompatible flag -> that flag, by name, in the error."""
        code, out, err = run_cli_err(
            capsys, "run", "--engine", "batch", "--accesses", "100",
            "--warmup", "0", "--checkpoint", "ckpt.json",
        )
        assert code == 2
        assert "--checkpoint" in err
        assert "--trace" not in err and "--timeout" not in err

    def test_batch_instrumentation_refusal_names_each_flag(self, capsys, tmp_path):
        code, out, err = run_cli_err(
            capsys, "run", "--engine", "batch", "--accesses", "100",
            "--warmup", "0", "--profile",
            "--metrics", str(tmp_path / "m.json"),
        )
        assert code == 2
        assert "--metrics" in err and "--profile" in err
        assert "--checkpoint" not in err

    def test_scale_refuses_batch_engine_exit_2(self, capsys):
        code, out, err = run_cli_err(
            capsys, "experiment", "scale", "--engine", "batch",
        )
        assert code == 2
        assert "Traceback" not in err

    def test_scale_rejects_unsupported_core_count_exit_2(self, capsys):
        code, out, err = run_cli_err(
            capsys, "experiment", "scale", "--cores", "7",
        )
        assert code == 2
        assert "7" in err

    def test_scalar_run_accepts_mesh(self, capsys):
        code, out = run_cli(
            capsys, "run", "--design", "private", "--bus-model", "mesh",
            "--accesses", "1500", "--warmup", "0",
        )
        assert code == 0
        assert "throughput" in out
