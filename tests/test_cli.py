"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        args_dict = vars(args)
        assert args_dict["design"] == "cmp-nurapid"
        assert args_dict["workload"] is None  # resolved to oltp at use time

    def test_mix_and_workload_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--workload", "oltp", "--mix", "MIX1"]
            )

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--design", "no-such-cache"])


class TestCommands:
    def test_latency_prints_table1(self, capsys):
        code, out = run_cli(capsys, "latency")
        assert code == 0
        assert "shared 8MB 32-way total" in out
        assert "59" in out

    def test_run_small(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--design",
            "uniform-shared",
            "--accesses",
            "1500",
            "--warmup",
            "1500",
        )
        assert code == 0
        assert "throughput" in out

    def test_run_with_chart(self, capsys):
        code, out = run_cli(
            capsys,
            "run",
            "--design",
            "cmp-nurapid",
            "--accesses",
            "1500",
            "--warmup",
            "0",
            "--chart",
        )
        assert code == 0
        assert "legend" in out
        assert "d-group accesses" in out

    def test_compare_two_designs(self, capsys):
        code, out = run_cli(
            capsys,
            "compare",
            "--designs",
            "uniform-shared",
            "ideal",
            "--accesses",
            "1500",
            "--warmup",
            "0",
        )
        assert code == 0
        assert "uniform-shared" in out and "ideal" in out

    def test_compare_on_mix(self, capsys):
        code, out = run_cli(
            capsys,
            "compare",
            "--designs",
            "uniform-shared",
            "private",
            "--mix",
            "MIX4",
            "--accesses",
            "1500",
            "--warmup",
            "0",
        )
        assert code == 0
        assert "MIX4" in out

    def test_experiment_table1(self, capsys):
        code, out = run_cli(capsys, "experiment", "table1")
        assert code == 0
        assert "Table 1" in out

    def test_experiment_unknown(self, capsys):
        code = main(["experiment", "fig99"])
        assert code == 2

    def test_trace_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "t.txt"
        code, out = run_cli(
            capsys,
            "trace",
            "generate",
            "--workload",
            "barnes",
            "--accesses",
            "400",
            "--warmup",
            "0",
            "--out",
            str(trace),
        )
        assert code == 0
        assert "wrote" in out
        code, out = run_cli(
            capsys, "trace", "run", str(trace), "--design", "private"
        )
        assert code == 0
        assert "throughput" in out
