"""Property tests: protocol invariants of the baseline designs.

Random multi-core traffic against small private-MESI caches must
always satisfy MESI's global invariants; the L1 must track a
brute-force reference model; and every design must produce identical
access classifications for identical traffic (determinism).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.l1 import L1Cache
from repro.caches.private import PrivateCaches
from repro.coherence.states import CoherenceState
from repro.common.params import KB, CacheGeometry, L1Params, PrivateCacheParams
from repro.common.types import Access, AccessType

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED


def small_private() -> PrivateCaches:
    return PrivateCaches(
        PrivateCacheParams(geometry=CacheGeometry(4 * KB, 2, 128))
    )


traffic = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=60),
        st.booleans(),
    ),
    min_size=1,
    max_size=300,
)


def drive(design, steps):
    for core, block, is_write in steps:
        access_type = AccessType.WRITE if is_write else AccessType.READ
        design.access(Access(core, 0x10000 + block * 128, access_type))


@settings(max_examples=40, deadline=None)
@given(steps=traffic)
def test_mesi_global_exclusivity(steps):
    """At most one M/E copy of a block; M/E never coexist with S."""
    caches = small_private()
    drive(caches, steps)
    for block in range(61):
        address = 0x10000 + block * 128
        states = [
            caches.state_of(core, address)
            for core in range(4)
        ]
        valid = [state for state in states if state.is_valid]
        exclusive = [state for state in valid if state in (M, E)]
        assert len(exclusive) <= 1, f"block {block}: {states}"
        if exclusive:
            assert len(valid) == 1, f"block {block}: {states}"


@settings(max_examples=40, deadline=None)
@given(steps=traffic)
def test_mesi_never_produces_communication_state(steps):
    caches = small_private()
    drive(caches, steps)
    for block in range(61):
        address = 0x10000 + block * 128
        for core in range(4):
            assert caches.state_of(core, address) is not (
                CoherenceState.COMMUNICATION
            )


@settings(max_examples=30, deadline=None)
@given(steps=traffic)
def test_private_caches_deterministic(steps):
    a, b = small_private(), small_private()
    drive(a, steps)
    drive(b, steps)
    assert a.stats.counts == b.stats.counts
    assert a.bus.stats.transactions == b.bus.stats.transactions


@settings(max_examples=40, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=80),
            st.booleans(),
        ),
        min_size=1,
        max_size=250,
    )
)
def test_l1_matches_reference_model(steps):
    """The L1 (with fills) agrees with a brute-force per-set LRU model."""
    l1 = L1Cache(L1Params(geometry=CacheGeometry(2 * KB, 2, 64)))
    geometry = l1.params.geometry
    reference: "dict[int, list[int]]" = {}

    for block, is_write in steps:
        address = 0x4000 + block * 64
        set_index = geometry.set_index(address)
        resident = reference.setdefault(set_index, [])
        hit = l1.load(address) if not is_write else l1.store(address)
        model_hit = address in resident
        if is_write:
            # Stores complete locally only with write permission, which
            # this test never grants — they always report a miss/upgrade.
            assert not hit
        else:
            assert hit == model_hit, f"block {block}: L1 {hit} vs model {model_hit}"
        if model_hit:
            resident.remove(address)
            resident.append(address)
        else:
            l1.fill(address)
            if len(resident) == geometry.associativity:
                resident.pop(0)
            resident.append(address)
