"""Property tests: protocol invariants of the baseline designs.

Random multi-core traffic against small private-MESI caches must
always satisfy MESI's global invariants; the L1 must track a
brute-force reference model; and every design must produce identical
access classifications for identical traffic (determinism).

The harness-backed tests at the bottom drive seeded stdlib-random
streams through full systems — private/MESI and CMP-NuRAPID/MESIC —
with the structured invariant checker after *every* access (paranoid
mode), so any illegal intermediate state is pinned to the access that
created it.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.l1 import L1Cache
from repro.caches.private import PrivateCaches
from repro.coherence.states import CoherenceState
from repro.common.params import (
    KB,
    CacheGeometry,
    L1Params,
    NurapidParams,
    PrivateCacheParams,
    SystemParams,
)
from repro.common.types import Access, AccessType
from repro.core.nurapid import NurapidCache
from repro.cpu.system import CmpSystem, TimedAccess
from repro.harness import check_system

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED


def small_private() -> PrivateCaches:
    return PrivateCaches(
        PrivateCacheParams(geometry=CacheGeometry(4 * KB, 2, 128))
    )


traffic = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=60),
        st.booleans(),
    ),
    min_size=1,
    max_size=300,
)


def drive(design, steps):
    for core, block, is_write in steps:
        access_type = AccessType.WRITE if is_write else AccessType.READ
        design.access(Access(core, 0x10000 + block * 128, access_type))


@settings(max_examples=40, deadline=None)
@given(steps=traffic)
def test_mesi_global_exclusivity(steps):
    """At most one M/E copy of a block; M/E never coexist with S."""
    caches = small_private()
    drive(caches, steps)
    for block in range(61):
        address = 0x10000 + block * 128
        states = [
            caches.state_of(core, address)
            for core in range(4)
        ]
        valid = [state for state in states if state.is_valid]
        exclusive = [state for state in valid if state in (M, E)]
        assert len(exclusive) <= 1, f"block {block}: {states}"
        if exclusive:
            assert len(valid) == 1, f"block {block}: {states}"


@settings(max_examples=40, deadline=None)
@given(steps=traffic)
def test_mesi_never_produces_communication_state(steps):
    caches = small_private()
    drive(caches, steps)
    for block in range(61):
        address = 0x10000 + block * 128
        for core in range(4):
            assert caches.state_of(core, address) is not (
                CoherenceState.COMMUNICATION
            )


@settings(max_examples=30, deadline=None)
@given(steps=traffic)
def test_private_caches_deterministic(steps):
    a, b = small_private(), small_private()
    drive(a, steps)
    drive(b, steps)
    assert a.stats.counts == b.stats.counts
    assert a.bus.stats.transactions == b.bus.stats.transactions


@settings(max_examples=40, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=80),
            st.booleans(),
        ),
        min_size=1,
        max_size=250,
    )
)
def test_l1_matches_reference_model(steps):
    """The L1 (with fills) agrees with a brute-force per-set LRU model."""
    l1 = L1Cache(L1Params(geometry=CacheGeometry(2 * KB, 2, 64)))
    geometry = l1.params.geometry
    reference: "dict[int, list[int]]" = {}

    for block, is_write in steps:
        address = 0x4000 + block * 64
        set_index = geometry.set_index(address)
        resident = reference.setdefault(set_index, [])
        hit = l1.load(address) if not is_write else l1.store(address)
        model_hit = address in resident
        if is_write:
            # Stores complete locally only with write permission, which
            # this test never grants — they always report a miss/upgrade.
            assert not hit
        else:
            assert hit == model_hit, f"block {block}: L1 {hit} vs model {model_hit}"
        if model_hit:
            resident.remove(address)
            resident.append(address)
        else:
            l1.fill(address)
            if len(resident) == geometry.associativity:
                resident.pop(0)
            resident.append(address)


# ----------------------------------------------------------------------
# Paranoid-mode streams: MESI vs MESIC under the structured checker.
# Plain seeded stdlib randomness (not hypothesis): these runs are long
# enough that shrinking would be useless, and the seeds make failures
# exactly reproducible from the test id alone.

def _small_system(design_factory) -> CmpSystem:
    params = SystemParams(l1=L1Params(geometry=CacheGeometry(4 * KB, 2, 64)))
    return CmpSystem(design_factory(), params)


def _mesi_system() -> CmpSystem:
    return _small_system(
        lambda: PrivateCaches(
            PrivateCacheParams(geometry=CacheGeometry(4 * KB, 2, 128))
        )
    )


def _mesic_system() -> CmpSystem:
    return _small_system(
        lambda: NurapidCache(
            NurapidParams(dgroup_capacity_bytes=4 * KB, tag_associativity=2)
        )
    )


def _random_stream(seed: int, length: int = 600, blocks: int = 48):
    """A seeded multi-core access stream with heavy block sharing."""
    rng = random.Random(seed)
    for _ in range(length):
        core = rng.randrange(4)
        block = rng.randrange(blocks)
        access_type = AccessType.WRITE if rng.random() < 0.4 else AccessType.READ
        yield TimedAccess(Access(core, 0x40000 + block * 128, access_type))


def _drive_checked(system: CmpSystem, seed: int) -> None:
    for index, event in enumerate(_random_stream(seed)):
        system.step(event)
        check_system(system, access_index=index)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_mesi_legal_under_paranoid_checking(seed):
    """Random traffic never drives MESI private caches illegal."""
    _drive_checked(_mesi_system(), seed)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_mesic_legal_under_paranoid_checking(seed):
    """The same traffic never drives CMP-NuRAPID's MESIC illegal."""
    _drive_checked(_mesic_system(), seed)


@pytest.mark.parametrize("seed", [10, 11])
def test_mesi_vs_mesic_same_stream_both_legal(seed):
    """One identical stream through both protocols; both stay legal and
    both hierarchies answer every access (identical totals)."""
    mesi, mesic = _mesi_system(), _mesic_system()
    for index, event in enumerate(_random_stream(seed)):
        mesi.step(event)
        mesic.step(event)
        check_system(mesi, access_index=index)
        check_system(mesic, access_index=index)
    # Both systems retired the identical instruction stream; only the
    # memory-system timing (and L2 classification) may differ.
    assert [core.instructions for core in mesi.cores] == [
        core.instructions for core in mesic.cores
    ]
