"""Golden scaled-mesh grid: committed fingerprints must keep holding.

``tests/data/mesh/expected.json`` pins the mesh NoC's fingerprint for
the scaled CMP-NuRAPID communication cells (CS, CR, ISC, and the
private baseline) at 8 and 16 cores, two seeds each.  The 4-core
differential suite proves mesh == bus where both exist; beyond four
cores there is no bus to compare against, so this corpus anchors the
scaled trajectory across builds — a failure here means the mesh, the
directory, or the scaled workload generator drifted since the
fixtures were committed.  Either fix the regression or consciously
regenerate with ``tests/data/mesh/generate.py`` alongside the model
change.
"""

import json
from pathlib import Path

import pytest

from tests.data.mesh.generate import CELLS, SEEDS, cell_key, run_cell

DATA = Path(__file__).resolve().parent / "data" / "mesh"
EXPECTED = json.loads((DATA / "expected.json").read_text())


def test_corpus_is_complete():
    """Every generator cell has a committed fingerprint, and only those."""
    assert EXPECTED, "expected.json is empty — regenerate the corpus"
    want = {cell_key(*cell, seed) for cell in CELLS for seed in SEEDS}
    assert set(EXPECTED) == want


@pytest.mark.parametrize("seed", SEEDS)
def test_scaled_mesh_grid_matches_golden_fingerprints(seed):
    mismatches = []
    for workload, design, num_cores in CELLS:
        stats = run_cell(workload, design, num_cores, seed)
        key = cell_key(workload, design, num_cores, seed)
        if stats.fingerprint() != EXPECTED[key]:
            mismatches.append(key)
    assert not mismatches, f"fingerprint drift in: {', '.join(mismatches)}"
