"""Tests for the shared L2Design interface contract."""

import pytest

from repro.caches.design import L2Design
from repro.common.types import Access, AccessResult, AccessType, MissClass
from repro.experiments.runner import DESIGN_FACTORIES


class _StubDesign(L2Design):
    """Minimal concrete design for exercising the base class."""

    name = "stub"

    def __init__(self):
        super().__init__(block_size=128)
        self.invalidation_requests = []

    def _access(self, access):
        return AccessResult(MissClass.HIT, 1)

    def invalidate_everywhere(self, address, cores):
        self._invalidate_all_l1(address, cores)

    def invalidate_one(self, core, address):
        self._invalidate_l1(core, address)


class TestBaseClass:
    def test_access_records_stats(self):
        design = _StubDesign()
        design.access(Access(0, 0x100, AccessType.READ))
        assert design.stats.total == 1
        assert design.stats.hits == 1

    def test_access_stores_virtual_time(self):
        design = _StubDesign()
        design.access(Access(0, 0x100, AccessType.READ), now=777)
        assert design.current_time == 777

    def test_reset_stats_clears_counts(self):
        design = _StubDesign()
        design.access(Access(0, 0x100, AccessType.READ))
        design.reset_stats()
        assert design.stats.total == 0

    def test_l1_hook_optional(self):
        design = _StubDesign()
        design.invalidate_one(0, 0x100)  # no hook registered: no crash

    def test_l1_hook_receives_block_aligned_addresses(self):
        design = _StubDesign()
        calls = []
        design.set_l1_invalidate_hook(lambda core, addr: calls.append((core, addr)))
        design.invalidate_one(2, 0x1234)
        assert calls == [(2, 0x1200)]

    def test_invalidate_all_skips_excepted_core(self):
        design = _StubDesign()
        calls = []
        design.set_l1_invalidate_hook(lambda core, addr: calls.append(core))
        design.invalidate_everywhere(0x100, 4)
        assert calls == [0, 1, 2, 3]


class TestRegistryContract:
    """Every registered design obeys the interface conventions."""

    @pytest.mark.parametrize("name", sorted(DESIGN_FACTORIES))
    def test_name_and_block_size(self, name):
        design = DESIGN_FACTORIES[name]()
        assert design.block_size == 128
        assert design.name
        assert design.stats.total == 0

    @pytest.mark.parametrize("name", sorted(DESIGN_FACTORIES))
    def test_read_then_reread_hits(self, name):
        design = DESIGN_FACTORIES[name]()
        address = 0x7000
        first = design.access(Access(0, address, AccessType.READ))
        assert first.miss_class is MissClass.CAPACITY
        second = design.access(Access(0, address, AccessType.READ))
        assert second.is_hit
        assert second.latency < first.latency

    @pytest.mark.parametrize("name", sorted(DESIGN_FACTORIES))
    def test_reset_stats_everywhere(self, name):
        design = DESIGN_FACTORIES[name]()
        design.access(Access(0, 0x7000, AccessType.READ))
        design.reset_stats()
        assert design.stats.total == 0
