"""Unit tests for repro.common.params configuration dataclasses."""

import pytest

from repro.common.params import (
    BUS_LATENCY,
    KB,
    MB,
    MEMORY_LATENCY,
    CacheGeometry,
    IdealCacheParams,
    L1Params,
    NurapidParams,
    PrivateCacheParams,
    SharedCacheParams,
    SnucaParams,
    SystemParams,
)


class TestCacheGeometry:
    def test_paper_l1(self):
        geo = CacheGeometry(64 * KB, 2, 64)
        assert geo.num_blocks == 1024
        assert geo.num_sets == 512
        assert geo.offset_bits == 6
        assert geo.index_bits == 9

    def test_paper_shared_l2(self):
        geo = CacheGeometry(8 * MB, 32, 128)
        assert geo.num_blocks == 65536
        assert geo.num_sets == 2048

    def test_set_index_and_tag_partition_address(self):
        geo = CacheGeometry(2 * MB, 8, 128)
        address = 0xDEADBEEF00
        set_index = geo.set_index(address)
        tag = geo.tag(address)
        reconstructed = (
            (tag << (geo.offset_bits + geo.index_bits))
            | (set_index << geo.offset_bits)
        )
        assert reconstructed == address & ~(geo.block_size - 1)

    def test_set_index_in_range(self):
        geo = CacheGeometry(1 * MB, 4, 128)
        for address in (0, 128, 1 << 30, 0xFFFFFFFF):
            assert 0 <= geo.set_index(address) < geo.num_sets

    def test_rejects_non_power_of_two_capacity(self):
        with pytest.raises(ValueError):
            CacheGeometry(3 * MB, 8, 128)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError):
            CacheGeometry(1 * MB, 0, 128)

    def test_rejects_indivisible_ways(self):
        with pytest.raises(ValueError):
            CacheGeometry(1 * MB, 3, 128)


class TestDefaultParams:
    def test_table1_latencies(self):
        assert SharedCacheParams().hit_latency == 59
        assert PrivateCacheParams().hit_latency == 10
        assert NurapidParams().tag_latency == 5
        assert BUS_LATENCY == 32
        assert MEMORY_LATENCY == 300

    def test_l1_defaults(self):
        params = L1Params()
        assert params.geometry.capacity_bytes == 64 * KB
        assert params.geometry.associativity == 2
        assert params.latency == 3

    def test_ideal_has_private_latency_and_shared_capacity(self):
        params = IdealCacheParams()
        assert params.hit_latency == PrivateCacheParams().hit_latency
        assert params.geometry.capacity_bytes == 8 * MB


class TestSnucaParams:
    def test_default_bank_latencies_filled(self):
        params = SnucaParams()
        assert len(params.bank_latencies) == 4
        assert all(len(row) == params.num_banks for row in params.bank_latencies)

    def test_rejects_non_power_of_two_banks(self):
        with pytest.raises(ValueError):
            SnucaParams(num_banks=12)


class TestNurapidParams:
    def test_frame_counts(self):
        params = NurapidParams()
        assert params.frames_per_dgroup == 16384
        assert params.total_frames == 65536

    def test_tag_geometry_doubles_sets(self):
        params = NurapidParams()
        single = CacheGeometry(2 * MB, 8, 128)
        assert params.tag_geometry.num_sets == 2 * single.num_sets
        assert params.tag_geometry.associativity == single.associativity

    def test_tag_capacity_factor(self):
        quadrupled = NurapidParams(tag_capacity_factor=4)
        doubled = NurapidParams(tag_capacity_factor=2)
        assert quadrupled.tag_geometry.num_sets == 2 * doubled.tag_geometry.num_sets

    def test_default_dgroup_latencies_match_table1(self):
        params = NurapidParams()
        for core in range(4):
            assert sorted(params.dgroup_latencies[core]) == [6, 20, 20, 33]

    def test_rejects_bad_promotion_policy(self):
        with pytest.raises(ValueError):
            NurapidParams(promotion_policy="slowest")

    def test_rejects_bad_replicate_threshold(self):
        with pytest.raises(ValueError):
            NurapidParams(replicate_on_use=0)


class TestSystemParams:
    def test_defaults(self):
        params = SystemParams()
        assert params.num_cores == 4
        assert params.bus_latency == 32
        assert params.memory_latency == 300
        assert not params.blocking_stores
