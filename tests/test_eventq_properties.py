"""Property-based tests: EventQueue scheduling guarantees.

Hypothesis drives random schedules (times, priorities, tracks, delays,
cancellations) against the discrete-event scheduler and checks the
contracts the interconnect rebase leans on: every scheduled event fires
exactly once, fire times are globally monotonic, same-track events are
never reordered (under both tie-break policies), and the seeded
tie-break is a pure function of the seed.  A final property closes the
loop at the system level: random bus latencies and occupancies keep the
atomic and eventq backends statistically identical.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.private import PrivateCaches
from repro.cpu.system import CmpSystem
from repro.interconnect import EventQueue, attach_eventq
from repro.workloads.multithreaded import make_workload

#: One schedule entry: (time, priority, track id, cancel this one?).
schedule_entries = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=-2, max_value=2),
        st.integers(min_value=0, max_value=4),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)

tiebreaks = st.sampled_from(["fifo", "seeded"])


class Recorder:
    """Collects (marker, args) pairs; picklable-action stand-in."""

    def __init__(self):
        self.calls = []

    def hit(self, *args):
        self.calls.append(args)


def build_queue(entries, tiebreak, seed=7):
    """Schedule every entry; returns (queue, recorder, cancelled ids)."""
    queue = EventQueue(seed=seed, tiebreak=tiebreak, record_history=True)
    recorder = Recorder()
    cancelled = set()
    for ident, (time, priority, track, cancel) in enumerate(entries):
        event = queue.at(
            time,
            recorder.hit,
            (ident,),
            priority=priority,
            label=f"e{ident}",
            track=track,
        )
        if cancel:
            queue.cancel(event)
            cancelled.add(ident)
    return queue, recorder, cancelled


@settings(max_examples=100, deadline=None)
@given(entries=schedule_entries, tiebreak=tiebreaks)
def test_every_event_fires_exactly_once(entries, tiebreak):
    queue, recorder, cancelled = build_queue(entries, tiebreak)
    queue.drain()
    fired = [args[0] for args in recorder.calls]
    assert sorted(fired) == sorted(
        ident for ident in range(len(entries)) if ident not in cancelled
    )
    assert len(fired) == len(set(fired))  # no double-fire
    assert queue.pending == 0
    assert queue.fired == len(fired)


@settings(max_examples=100, deadline=None)
@given(entries=schedule_entries, tiebreak=tiebreaks)
def test_timestamps_monotonic(entries, tiebreak):
    queue, _, _ = build_queue(entries, tiebreak)
    queue.drain()
    times = [time for time, _, _, _ in queue.history]
    assert times == sorted(times)


@settings(max_examples=100, deadline=None)
@given(entries=schedule_entries, tiebreak=tiebreaks)
def test_same_track_never_reordered(entries, tiebreak):
    """Per-track FIFO: within one track, schedule order is fire order.

    Holds under *both* tie-breaks — the seeded shuffle only permutes
    ties between different tracks.
    """
    queue, recorder, cancelled = build_queue(entries, tiebreak)
    queue.drain()
    fired = [args[0] for args in recorder.calls]
    by_track = {}
    for ident in fired:
        by_track.setdefault(entries[ident][2], []).append(ident)
    for track, idents in by_track.items():
        # Same-time+priority entries on one track must keep schedule
        # order; differing times already sort — so the full per-track
        # sequence must be ordered by (time, priority, schedule index).
        keyed = [(entries[i][0], entries[i][1], i) for i in idents]
        assert keyed == sorted(keyed), f"track {track} reordered"


@settings(max_examples=50, deadline=None)
@given(entries=schedule_entries, seed=st.integers(min_value=0, max_value=2**31))
def test_seeded_tiebreak_deterministic(entries, seed):
    """Same seed -> identical fire order; the shuffle is replayable."""
    orders = []
    for _ in range(2):
        queue, recorder, _ = build_queue(entries, "seeded", seed=seed)
        queue.drain()
        orders.append([args[0] for args in recorder.calls])
    assert orders[0] == orders[1]


@settings(max_examples=50, deadline=None)
@given(
    times=st.lists(
        st.integers(min_value=0, max_value=30), min_size=1, max_size=40
    ),
    advance=st.integers(min_value=0, max_value=40),
)
def test_past_scheduling_clamps_forward(times, advance):
    """An event scheduled before ``now`` fires at ``now``, never earlier."""
    queue = EventQueue(record_history=True)
    recorder = Recorder()
    queue.run_until(advance)
    assert queue.now == advance
    for time in times:
        queue.at(time, recorder.hit, (time,))
    queue.drain()
    assert len(recorder.calls) == len(times)
    for fired_time, _, _, _ in queue.history:
        assert fired_time >= advance


@settings(max_examples=100, deadline=None)
@given(entries=schedule_entries)
def test_fifo_ties_fire_in_schedule_order(entries):
    """The fifo policy is globally FIFO among (time, priority) ties."""
    queue, recorder, cancelled = build_queue(entries, "fifo")
    queue.drain()
    fired = [args[0] for args in recorder.calls]
    keyed = [(entries[i][0], entries[i][1], i) for i in fired]
    assert keyed == sorted(keyed)


@settings(max_examples=15, deadline=None)
@given(
    latency=st.integers(min_value=1, max_value=40),
    occupancy=st.integers(min_value=0, max_value=16),
    seed=st.integers(min_value=0, max_value=999),
)
def test_backends_match_under_random_bus_parameters(latency, occupancy, seed):
    """System-level closure: any (latency, occupancy, workload seed)
    keeps atomic and eventq statistics identical."""
    fingerprints = []
    for use_eventq in (False, True):
        design = PrivateCaches(bus_latency=latency, bus_occupancy=occupancy)
        if use_eventq:
            attach_eventq(design)
        system = CmpSystem(design)
        events = make_workload("oltp", seed=seed).events(accesses_per_core=150)
        system.run(events)
        stats = system.stats()
        fingerprints.append(
            (
                dict(stats.accesses.counts),
                [(c.instructions, c.cycles) for c in stats.per_core],
                stats.bus.transactions if stats.bus is not None else None,
            )
        )
    assert fingerprints[0] == fingerprints[1]
