"""The scale experiment: N-core mesh cells, checkpoints, and resume.

The acceptance bar for ``repro experiment scale`` is that the 8/16-core
CR/ISC/CS grid runs end-to-end *under the harness*: incremental
invariant checking, periodic checkpoints next to a persistent stats
cache, and bit-identical resume whether the rerun replays the stats
journal, the per-cell snapshots, or nothing at all.  These tests pin
that contract at CI-cheap sizes (8 cores, a few hundred accesses per
core) — the trajectory logic is size-independent.
"""

import os

import pytest

from repro.experiments import scale
from repro.experiments.runner import ExperimentConfig, StatsCache

CONFIG = ExperimentConfig(warmup_per_core=100, measure_per_core=200, seed=42)


def tiny_run(cache, **kwargs):
    return scale.run(
        CONFIG, cache=cache, cores=(8,), jobs=1,
        check_every=500, checkpoint_every=1_000, **kwargs
    )


def fingerprints(result):
    return {
        (count, workload, design): stats.fingerprint()
        for count, by_workload in result.stats.items()
        for workload, by_design in by_workload.items()
        for design, stats in by_design.items()
    }


def test_unsupported_core_count_rejected():
    with pytest.raises(ValueError, match="32"):
        scale.run(CONFIG, cores=(32,))


def test_scale_run_fills_grid_and_checkpoints(tmp_path):
    """One serial pass: full grid, relative table, one snapshot per cell."""
    journal = str(tmp_path / "stats.cache")
    result = tiny_run(StatsCache(journal))
    grid = fingerprints(result)
    assert len(grid) == len(scale.WORKLOADS) * len(scale.DESIGNS)
    for workload in scale.WORKLOADS:
        by_design = result.relative[8][workload]
        assert by_design[scale.BASELINE] == pytest.approx(1.0)
        assert set(by_design) == set(scale.DESIGNS)
    snapshots = os.listdir(f"{journal}.scale-ckpt")
    assert len(snapshots) == len(grid)
    assert f"oltp-{scale.BASELINE}-c8.ckpt" in snapshots
    rendered = result.report.render() + scale.render_full(result)
    for design in scale.DESIGNS:
        assert design in rendered


def test_rerun_replays_journal_without_resimulating(tmp_path, monkeypatch):
    """A cached rerun is bit-identical and never touches the simulator."""
    journal = str(tmp_path / "stats.cache")
    first = fingerprints(tiny_run(StatsCache(journal)))

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("cache miss forced a re-simulation")

    monkeypatch.setattr(scale, "run_scaled_cell", boom)
    second = fingerprints(tiny_run(StatsCache(journal)))
    assert first == second


def test_lost_journal_resumes_from_snapshots(tmp_path):
    """Journal gone, snapshots intact: the rerun resumes bit-identically."""
    journal = str(tmp_path / "stats.cache")
    first = fingerprints(tiny_run(StatsCache(journal)))
    os.remove(journal)
    assert os.path.isdir(f"{journal}.scale-ckpt")
    second = fingerprints(tiny_run(StatsCache(journal)))
    assert first == second


def test_mismatched_snapshot_meta_starts_fresh(tmp_path):
    """A snapshot from a different cell configuration is ignored."""
    path = str(tmp_path / "cell.ckpt")
    scale.run_scaled_cell("private", "oltp", 8, CONFIG,
                          check_every=500, checkpoint_path=path,
                          checkpoint_every=1_000)
    other = ExperimentConfig(warmup_per_core=100, measure_per_core=200,
                             seed=7)
    resumed = scale.run_scaled_cell("private", "oltp", 8, other,
                                    check_every=500, checkpoint_path=path,
                                    checkpoint_every=1_000)
    fresh = scale.run_scaled_cell("private", "oltp", 8, other,
                                  check_every=500)
    assert resumed.fingerprint() == fresh.fingerprint()
