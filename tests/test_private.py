"""Tests for the private-cache MESI baseline."""

from repro.caches.private import PrivateCaches, UpdateProtocolCaches
from repro.coherence.states import CoherenceState
from repro.common.params import KB, CacheGeometry, PrivateCacheParams
from repro.common.types import Access, AccessType, MissClass

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741


def read(core, address):
    return Access(core, address, AccessType.READ)


def write(core, address):
    return Access(core, address, AccessType.WRITE)


def make_caches(capacity=16 * KB) -> PrivateCaches:
    return PrivateCaches(
        PrivateCacheParams(geometry=CacheGeometry(capacity, 4, 128))
    )


class TestBasicMesi:
    def test_first_read_fills_exclusive(self):
        caches = make_caches()
        result = caches.access(read(0, 0x1000))
        assert result.miss_class is MissClass.CAPACITY
        assert caches.state_of(0, 0x1000) is E

    def test_second_reader_classified_ros(self):
        caches = make_caches()
        caches.access(read(0, 0x1000))
        result = caches.access(read(1, 0x1000))
        assert result.miss_class is MissClass.ROS
        assert caches.state_of(0, 0x1000) is S
        assert caches.state_of(1, 0x1000) is S

    def test_read_of_dirty_copy_classified_rws(self):
        caches = make_caches()
        caches.access(write(0, 0x1000))
        assert caches.state_of(0, 0x1000) is M
        result = caches.access(read(1, 0x1000))
        assert result.miss_class is MissClass.RWS
        assert caches.state_of(0, 0x1000) is S  # flushed and downgraded

    def test_write_miss_invalidates_all_copies(self):
        caches = make_caches()
        caches.access(read(0, 0x1000))
        caches.access(read(1, 0x1000))
        caches.access(write(2, 0x1000))
        assert caches.state_of(0, 0x1000) is I
        assert caches.state_of(1, 0x1000) is I
        assert caches.state_of(2, 0x1000) is M

    def test_upgrade_from_shared_invalidates_sharers(self):
        caches = make_caches()
        caches.access(read(0, 0x1000))
        caches.access(read(1, 0x1000))
        result = caches.access(write(0, 0x1000))
        assert result.is_hit  # tag hit; upgrade, not a miss
        assert caches.state_of(0, 0x1000) is M
        assert caches.state_of(1, 0x1000) is I
        assert caches.counters.upgrades == 1

    def test_silent_e_to_m_upgrade(self):
        caches = make_caches()
        caches.access(read(0, 0x1000))
        bus_before = caches.bus.stats.total
        caches.access(write(0, 0x1000))
        assert caches.state_of(0, 0x1000) is M
        assert caches.bus.stats.total == bus_before


class TestLatencies:
    def test_local_hit_is_ten_cycles(self):
        caches = make_caches()
        caches.access(read(0, 0x1000))
        assert caches.access(read(0, 0x1000)).latency == 10

    def test_cache_to_cache_pays_bus_twice(self):
        """Request over the bus, data back over the bus."""
        caches = make_caches()
        caches.access(read(0, 0x1000))
        result = caches.access(read(1, 0x1000))
        assert result.latency == 4 + 32 + 10 + 32

    def test_memory_miss_latency(self):
        caches = make_caches()
        result = caches.access(read(0, 0x1000))
        assert result.latency == 4 + 32 + 300 + 32


class TestReplication:
    def test_uncontrolled_replication_copies_everywhere(self):
        """Every reader makes a full copy — the paper's capacity waste."""
        caches = make_caches()
        for core in range(4):
            caches.access(read(core, 0x1000))
        copies = sum(
            1 for core in range(4) if caches.state_of(core, 0x1000).is_valid
        )
        assert copies == 4


class TestReuseHistograms:
    def test_rws_invalidation_recorded(self):
        caches = make_caches()
        caches.access(write(0, 0x1000))
        caches.access(read(1, 0x1000))      # RWS fill at core 1
        caches.access(read(1, 0x1000))      # one L2 reuse
        caches.access(write(0, 0x1000))     # upgrade invalidates core 1
        assert caches.reuse.rws_invalidated["1"] == 1

    def test_ros_replacement_recorded(self):
        caches = make_caches(capacity=2 * KB)  # 16 blocks, 4 sets
        caches.access(read(0, 0x0))
        caches.access(read(1, 0x0))  # core 1 fills by ROS miss
        geometry = caches.params.geometry
        step = geometry.num_sets * geometry.block_size
        for i in range(1, geometry.associativity + 1):
            caches.access(read(1, i * step))  # evict the ROS block
        assert sum(caches.reuse.ros_replaced.values()) == 1

    def test_inclusion_hook_called_on_invalidation(self):
        caches = make_caches()
        invalidated = []
        caches.set_l1_invalidate_hook(lambda core, addr: invalidated.append((core, addr)))
        caches.access(read(1, 0x1000))
        caches.access(write(0, 0x1000))
        assert (1, 0x1000) in invalidated


class TestUpdateProtocol:
    def test_shared_write_keeps_copies(self):
        caches = UpdateProtocolCaches(
            PrivateCacheParams(geometry=CacheGeometry(16 * KB, 4, 128))
        )
        caches.access(read(0, 0x1000))
        caches.access(read(1, 0x1000))
        caches.access(write(0, 0x1000))
        # Under an update protocol the reader's copy survives the write.
        assert caches.state_of(1, 0x1000).is_valid
        assert caches.state_of(0, 0x1000).is_valid

    def test_shared_write_broadcasts_on_bus(self):
        caches = UpdateProtocolCaches(
            PrivateCacheParams(geometry=CacheGeometry(16 * KB, 4, 128))
        )
        caches.access(read(0, 0x1000))
        caches.access(read(1, 0x1000))
        before = caches.bus.stats.transactions["WrThru"]
        caches.access(write(0, 0x1000))
        caches.access(write(0, 0x1000))
        assert caches.bus.stats.transactions["WrThru"] == before + 2

    def test_reader_never_rws_misses_after_update(self):
        caches = UpdateProtocolCaches(
            PrivateCacheParams(geometry=CacheGeometry(16 * KB, 4, 128))
        )
        caches.access(read(0, 0x1000))
        caches.access(read(1, 0x1000))
        caches.access(write(0, 0x1000))
        result = caches.access(read(1, 0x1000))
        assert result.is_hit
