"""Protocol race faults: schedule perturbations the checker must catch.

Unlike the structural faults (which corrupt state directly), the race
classes perturb the *event schedule* — a bus grant reordered past a
transaction's completion, a ``BusRepl``'s invalidations delivered late,
a stale snoop reply excluded from aggregation.  Each test engineers the
minimal sharing pattern for its race, arms the fault, and asserts:

* the race reproduces deterministically from the seed;
* the invariant checker names the violated contract (exclusivity for
  the bus races, tag-pointer for the late ``BusRepl``);
* the perturbation is a *legal-schedule* anomaly, not corruption:
  draining the deferred delivery heals the model;
* a checkpoint taken inside the race window round-trips the pending
  deferred event;
* the CLI surfaces each race as exit code 3 with a diagnostic.
"""

import pytest

from repro.caches.private import PrivateCaches
from repro.cli import main as cli_main
from repro.common.params import (
    KB,
    CacheGeometry,
    L1Params,
    NurapidParams,
    PrivateCacheParams,
    SystemParams,
)
from repro.common.types import Access, AccessType
from repro.core.nurapid import NurapidCache
from repro.cpu.system import CmpSystem, TimedAccess
from repro.harness import (
    FAULT_KINDS,
    RACE_FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    InvariantViolation,
    check_system,
    load_checkpoint,
    save_checkpoint,
)
from repro.interconnect.eventq import attach_eventq

READ = AccessType.READ
WRITE = AccessType.WRITE

SMALL_L1 = SystemParams(l1=L1Params(geometry=CacheGeometry(4 * KB, 2, 64)))


def private_system():
    design = PrivateCaches(
        PrivateCacheParams(geometry=CacheGeometry(4 * KB, 2, 128))
    )
    attach_eventq(design)
    return CmpSystem(design, SMALL_L1), design


def nurapid_system():
    design = NurapidCache(
        NurapidParams(dgroup_capacity_bytes=4 * KB, tag_associativity=2)
    )
    attach_eventq(design)
    return CmpSystem(design, SMALL_L1), design


def step(system, core, address, access_type=READ):
    system.step(TimedAccess(Access(core, address, access_type)))


# ----------------------------------------------------------------------
# Engineered minimal races (library level)


def provoke_bus_race(kind):
    """Arm ``kind`` on a two-core sharing pattern; return (system, design)."""
    system, design = private_system()
    step(system, 0, 0x1000, READ)  # core 0 takes the block Exclusive
    design.bus.race_pending = kind
    # The racing transaction: a write (BusRdX) for reorder, a read
    # (BusRd with one holder) for stale-snoop.
    racing_type = WRITE if kind == "race-reorder" else READ
    step(system, 1, 0x1000, racing_type)
    return system, design


@pytest.mark.parametrize("kind", ["race-reorder", "race-stale-snoop"])
def test_bus_race_breaks_exclusivity(kind):
    system, design = provoke_bus_race(kind)
    assert design.bus.last_race is not None
    assert kind in design.bus.last_race
    with pytest.raises(InvariantViolation) as caught:
        check_system(system)
    assert caught.value.invariant == "exclusivity"


def test_reorder_heals_when_deferred_snoop_delivers():
    """The reorder victim's snoop is deferred, not dropped: delivering
    it closes the race window and the model is legal again."""
    system, design = provoke_bus_race("race-reorder")
    assert design.queue.pending > 0
    design.queue.drain()
    check_system(system)


def test_stale_snoop_heals_on_third_core_rdx():
    """The stale reply leaves a persistent extra copy (no deferred
    event to drain); a third core's BusRdX snoops and invalidates
    *both* divergent holders, restoring a legal single-owner state."""
    system, design = provoke_bus_race("race-stale-snoop")
    assert design.queue.pending == 0
    step(system, 2, 0x1000, WRITE)
    check_system(system)


def test_stale_snoop_trips_protocol_on_stale_upgrade():
    """If instead the *stale* S holder writes, its BusUpg reaches the
    other copy still in E — a transition the MESI model rejects
    outright: the race is caught even without the invariant checker."""
    system, _ = provoke_bus_race("race-stale-snoop")
    with pytest.raises(RuntimeError, match="BusUpg"):
        step(system, 0, 0x1000, WRITE)


def provoke_delay_repl():
    """Arm race-delay-repl and drive evictions until it triggers."""
    system, design = nurapid_system()
    step(system, 0, 0x10000, READ)
    step(system, 1, 0x10000, READ)  # both cores share the block
    design.race_delay_repl = True
    block = design.block_size
    for offset in range(4096):
        if design.last_race is not None:
            break
        step(system, 0, 0x40000 + offset * block, READ)
    assert design.last_race is not None, "eviction pressure never hit the shared block"
    return system, design


def test_delay_repl_breaks_tag_pointer_then_heals():
    system, design = provoke_delay_repl()
    assert "race-delay-repl" in design.last_race
    assert design.queue.pending == 1  # the late BusRepl delivery
    with pytest.raises(InvariantViolation) as caught:
        check_system(system)
    assert caught.value.invariant == "tag-pointer"
    design.queue.drain()
    check_system(system)  # delivery invalidates the stale sharers


@pytest.mark.parametrize("kind", ["race-reorder", "race-stale-snoop"])
def test_bus_race_deterministic_from_seed(kind):
    descriptions, messages = set(), set()
    for _ in range(2):
        system, design = provoke_bus_race(kind)
        descriptions.add(design.bus.last_race)
        with pytest.raises(InvariantViolation) as caught:
            check_system(system)
        messages.add(str(caught.value))
    assert len(descriptions) == 1
    assert len(messages) == 1


def test_delay_repl_deterministic_from_seed():
    descriptions = set()
    for _ in range(2):
        _, design = provoke_delay_repl()
        descriptions.add(design.last_race)
    assert len(descriptions) == 1


def test_checkpoint_roundtrips_pending_deferred_event(tmp_path):
    """A snapshot inside the race window must carry the pending event."""
    system, design = provoke_delay_repl()
    path = tmp_path / "race.ck"
    save_checkpoint(system, 0, str(path), {"race": design.last_race})
    restored = load_checkpoint(str(path)).system
    queue = restored.design.queue
    assert queue.pending == 1
    with pytest.raises(InvariantViolation):
        check_system(restored)  # the window is still open after resume
    queue.drain()
    check_system(restored)  # and the deferred delivery still heals it


# ----------------------------------------------------------------------
# FaultInjector integration


def test_race_kinds_registered():
    assert set(RACE_FAULT_KINDS) <= set(FAULT_KINDS)
    assert set(RACE_FAULT_KINDS) == {
        "race-reorder", "race-delay-repl", "race-stale-snoop"
    }


@pytest.mark.parametrize("kind", ["race-reorder", "race-stale-snoop"])
def test_injector_arms_bus_race(kind):
    system, design = private_system()
    injector = FaultInjector((FaultSpec(kind, 0),))
    injector.maybe_inject(system, 0)
    assert injector.log[0].data["applied"] is True
    assert design.bus.race_pending == kind


def test_injector_arms_delay_repl():
    system, design = nurapid_system()
    injector = FaultInjector((FaultSpec("race-delay-repl", 0),))
    injector.maybe_inject(system, 0)
    assert injector.log[0].data["applied"] is True
    assert design.race_delay_repl is True


@pytest.mark.parametrize(
    "kind,design_factory",
    [
        ("race-reorder", PrivateCaches),  # atomic bus: no event queue
        ("race-delay-repl", NurapidCache),
        ("race-delay-repl", PrivateCaches),  # wrong design entirely
    ],
)
def test_injector_skips_race_without_eventq(kind, design_factory):
    system = CmpSystem(design_factory())
    injector = FaultInjector((FaultSpec(kind, 0),))
    injector.maybe_inject(system, 0)
    assert injector.log[0].data["applied"] is False


# ----------------------------------------------------------------------
# CLI surface (exit code 3 + diagnostic, flag validation)


def run_cli(capsys, *argv):
    code = cli_main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.mark.parametrize("kind", ["race-reorder", "race-stale-snoop"])
def test_cli_race_exits_3(tmp_path, kind, capsys):
    code, _, err = run_cli(
        capsys,
        "run", "--design", "private", "--bus-model", "eventq",
        "--accesses", "3000", "--warmup", "0",
        "--check-invariants", "1",
        "--inject-fault", f"{kind}@100",
        "--checkpoint", str(tmp_path / "race.ck"),
    )
    assert code == 3
    assert "invariant violation: [exclusivity]" in err


def test_cli_race_requires_eventq(capsys, monkeypatch):
    # The env can also select the backend (the CI eventq leg does);
    # this test is about the *rejection* path, so force atomic.
    monkeypatch.delenv("REPRO_BUS_MODEL", raising=False)
    code, _, err = run_cli(
        capsys,
        "run", "--design", "private",
        "--inject-fault", "race-reorder@100",
        "--accesses", "500", "--warmup", "0",
    )
    assert code == 2
    assert "eventq" in err


def test_cli_delay_repl_accepted_under_eventq(capsys):
    """Armed but never triggered (the full-size cache never evicts a
    shared block in a short run): the run must still complete cleanly —
    arming is a perturbation, not corruption."""
    code, out, _ = run_cli(
        capsys,
        "run", "--design", "cmp-nurapid", "--bus-model", "eventq",
        "--accesses", "2000", "--warmup", "0",
        "--check-invariants", "1",
        "--inject-fault", "race-delay-repl@100",
    )
    assert code == 0
    assert "throughput" in out
