"""Data- and distance-replacement behaviour (Section 3.3.2).

These tests engineer tag-set conflicts with same-set addresses to walk
the replacement cases the paper enumerates: invalid victims, private
victims pointing to the closest/farther d-groups, shared owners, and
shared non-owners.
"""

from repro.coherence.states import CoherenceState
from repro.common.params import KB, NurapidParams
from repro.common.types import Access, AccessType
from repro.core.nurapid import NurapidCache

E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741


def small_cache(**kwargs) -> NurapidCache:
    return NurapidCache(
        NurapidParams(dgroup_capacity_bytes=16 * KB, tag_associativity=4),
        **kwargs,
    )


def read(core, address):
    return Access(core, address, AccessType.READ)


def set_step(cache: NurapidCache) -> int:
    geometry = cache.params.tag_geometry
    return geometry.num_sets * geometry.block_size


class TestTagConflicts:
    def test_private_victim_in_closest_frees_tag_and_data(self):
        cache = small_cache()
        step = set_step(cache)
        base = 0x100000
        ways = cache.params.tag_geometry.associativity
        for i in range(ways):
            cache.access(read(0, base + i * step))
        occupied = cache.data.total_occupied
        cache.access(read(0, base + ways * step))  # conflict eviction
        # One block evicted, one filled: occupancy unchanged.
        assert cache.data.total_occupied == occupied
        assert cache.tags[0].lookup(base, touch=False) is None
        cache.check_invariants()

    def test_conflict_victims_follow_category_order(self):
        """A private block is evicted before shared blocks, even if the
        shared blocks are older (Section 3.3.2's BusRepl avoidance)."""
        cache = small_cache()
        step = set_step(cache)
        base = 0x200000
        ways = cache.params.tag_geometry.associativity
        # Fill the set: first entry stays private (E), rest become
        # shared by a second core reading them.
        for i in range(ways):
            cache.access(read(0, base + i * step))
        for i in range(1, ways):
            cache.access(read(1, base + i * step))
        cache.access(read(0, base + ways * step))
        # The private entry (oldest AND only private) was the victim.
        assert cache.tags[0].lookup(base, touch=False) is None
        for i in range(1, ways):
            assert cache.tags[0].lookup(base + i * step, touch=False) is not None
        cache.check_invariants()

    def test_shared_nonowner_victim_leaves_data_for_sharers(self):
        """Dropping a pointer-only tag copy must not disturb the data."""
        cache = small_cache()
        step = set_step(cache)
        base = 0x300000
        ways = cache.params.tag_geometry.associativity
        # Core 1 takes pointer-only copies of core 0's blocks.
        for i in range(ways):
            cache.access(read(0, base + i * step))
            cache.access(read(1, base + i * step))
        occupied = cache.data.total_occupied
        # Force a conflict in core 1's set; all its entries are shared
        # non-owners, so the eviction must not free any frame...
        cache.access(read(1, 0xF00000 + (base % step)))
        # ...beyond the one allocated for the new fill's data.
        assert cache.data.total_occupied >= occupied
        # Core 0 still hits all its blocks.
        for i in range(ways):
            assert cache.tags[0].lookup(base + i * step, touch=False) is not None
        cache.check_invariants()

    def test_shared_owner_victim_sends_busrepl(self):
        cache = small_cache()
        step = set_step(cache)
        base = 0x400000
        ways = cache.params.tag_geometry.associativity
        for i in range(ways):
            cache.access(read(0, base + i * step))
            cache.access(read(1, base + i * step))  # all shared, core 0 owns
        busrepl_before = cache.bus_stats.transactions["BusRepl"]
        cache.access(read(0, base + ways * step))
        assert cache.bus_stats.transactions["BusRepl"] == busrepl_before + 1
        cache.check_invariants()


class TestDistanceReplacement:
    def test_demotion_chain_never_loops(self):
        """Random-stop demotions terminate even under extreme pressure."""
        cache = small_cache()
        frames = cache.params.frames_per_dgroup
        total = cache.params.total_frames
        # Far more blocks than the whole data array from one core.
        for i in range(2 * total):
            cache.access(read(0, 0x500000 + i * 128))
        assert cache.data.total_occupied <= total
        cache.check_invariants()

    def test_all_cores_under_pressure_simultaneously(self):
        cache = small_cache()
        frames = cache.params.frames_per_dgroup
        for i in range(frames + frames // 2):
            for core in range(4):
                cache.access(read(core, 0x600000 + (core << 30) + i * 128))
        cache.check_invariants()
        # Every d-group is fully used — no stranded capacity.
        for dgroup in cache.data.dgroups:
            assert dgroup.occupied_count > 0.9 * dgroup.num_frames

    def test_reset_stats_preserves_contents(self):
        cache = small_cache()
        cache.access(read(0, 0x700000))
        cache.reset_stats()
        assert cache.stats.total == 0
        assert cache.counters.demotions == 0
        result = cache.access(read(0, 0x700000))
        assert result.is_hit  # contents survived the reset
