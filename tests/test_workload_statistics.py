"""Statistical tests on the synthetic workload generators.

These verify that the generated streams actually carry the properties
the specs declare — sharing mix, write fractions, instruction shaping —
within sampling tolerance, so that calibration parameters mean what
they say.
"""

import itertools
from collections import Counter

from repro.common.types import AccessType, SharingClass
from repro.workloads.base import RegionSpec, SyntheticWorkload, WorkloadSpec
from repro.workloads.multiprogrammed import make_mix
from repro.workloads.multithreaded import make_workload, workload_spec


def spec_for_stats() -> WorkloadSpec:
    return WorkloadSpec(
        name="stats",
        mem_ratio=0.4,
        p_private=0.6,
        p_shared_ro=0.25,
        p_shared_rw=0.15,
        private=RegionSpec(blocks=500, hot_blocks=100, write_fraction=0.2),
        shared_ro=RegionSpec(blocks=400, hot_blocks=80),
        shared_rw=RegionSpec(blocks=300, hot_blocks=60),
        p_recent=0.0,  # raw region draws, no recency layer
        recent_window=8,
        spatial_factor=3.0,
    )


class TestSharingMix:
    def test_region_fractions_match_spec(self):
        workload = SyntheticWorkload(spec_for_stats(), seed=11)
        counts = Counter(
            event.access.sharing
            for event in workload.events(accesses_per_core=4000)
        )
        total = sum(counts.values())
        assert abs(counts[SharingClass.PRIVATE] / total - 0.6) < 0.03
        assert abs(counts[SharingClass.READ_ONLY_SHARED] / total - 0.25) < 0.03
        assert abs(counts[SharingClass.READ_WRITE_SHARED] / total - 0.15) < 0.03

    def test_private_write_fraction(self):
        workload = SyntheticWorkload(spec_for_stats(), seed=11)
        reads = writes = 0
        for event in workload.events(accesses_per_core=4000):
            if event.access.sharing is SharingClass.PRIVATE:
                if event.access.is_write:
                    writes += 1
                else:
                    reads += 1
        assert abs(writes / (reads + writes) - 0.2) < 0.03

    def test_recency_raises_repeat_rate(self):
        base = spec_for_stats()
        sticky = WorkloadSpec(
            **{
                **{f: getattr(base, f) for f in (
                    "name", "mem_ratio", "p_private", "p_shared_ro",
                    "p_shared_rw", "private", "shared_ro", "shared_rw",
                    "recent_window", "rw_writer_write_fraction",
                    "spatial_factor",
                )},
                "p_recent": 0.9,
            }
        )

        def distinct_fraction(spec):
            workload = SyntheticWorkload(spec, seed=3)
            addresses = [
                e.access.address
                for e in itertools.islice(workload.events(2000), 4000)
            ]
            return len(set(addresses)) / len(addresses)

        assert distinct_fraction(sticky) < 0.5 * distinct_fraction(base)


class TestInstructionShaping:
    def test_event_stream_matches_mem_ratio(self):
        workload = SyntheticWorkload(spec_for_stats(), seed=5)
        gap = colocated = events = 0
        for event in workload.events(accesses_per_core=3000):
            gap += event.gap
            colocated += event.colocated
            events += 1
        memory = events + colocated
        assert abs(memory / (memory + gap) - 0.4) < 0.01
        assert abs((events + colocated) / events - 3.0) < 0.01


class TestWorkloadContrast:
    def test_commercial_streams_have_more_shared_traffic(self):
        def shared_fraction(name):
            workload = make_workload(name)
            counts = Counter(
                e.access.sharing for e in workload.events(accesses_per_core=1500)
            )
            total = sum(counts.values())
            return 1.0 - counts[SharingClass.PRIVATE] / total

        assert shared_fraction("oltp") > 2 * shared_fraction("ocean")

    def test_mix_cores_have_disjoint_footprints(self):
        workload = make_mix("MIX1")
        per_core = {}
        for event in workload.events(accesses_per_core=1200):
            per_core.setdefault(event.access.core, set()).add(
                event.access.address
            )
        for a in range(4):
            for b in range(a + 1, 4):
                assert not per_core[a] & per_core[b]

    def test_streaming_apps_touch_more_blocks(self):
        """art (streaming) covers far more distinct blocks than mesa."""
        workload = make_mix("MIX1")  # P1=art, P3=mesa
        per_core = {}
        for event in workload.events(accesses_per_core=4000):
            per_core.setdefault(event.access.core, set()).add(
                event.access.address
            )
        assert len(per_core[1]) > 2 * len(per_core[3])

    def test_rw_write_fraction_controlled_by_spec(self):
        oltp = workload_spec("oltp")
        assert oltp.rw_writer_write_fraction == 0.6
