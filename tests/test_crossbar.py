"""Unit tests for the tag-to-d-group crossbar."""

import pytest

from repro.interconnect.crossbar import Crossbar
from repro.latency.tables import nurapid_dgroup_latencies


def make_crossbar() -> Crossbar:
    return Crossbar(nurapid_dgroup_latencies(4, 4))


class TestAccess:
    def test_returns_table1_latency(self):
        crossbar = make_crossbar()
        assert crossbar.access(0, 0) == 6
        assert crossbar.access(0, 3) == 33

    def test_latency_symmetry(self):
        """Each core sees the Table 1 latency profile (6, 20, 20, 33)."""
        crossbar = make_crossbar()
        for core in range(4):
            latencies = sorted(crossbar.access(core, g) for g in range(4))
            assert latencies == [6, 20, 20, 33]

    def test_traffic_counting(self):
        crossbar = make_crossbar()
        crossbar.access(1, 2)
        crossbar.access(1, 2)
        crossbar.access(3, 2)
        assert crossbar.link_traffic(1, 2) == 2
        assert crossbar.dgroup_traffic(2) == 3
        assert crossbar.dgroup_traffic(0) == 0

    def test_bounds_checking(self):
        crossbar = make_crossbar()
        with pytest.raises(IndexError):
            crossbar.access(4, 0)
        with pytest.raises(IndexError):
            crossbar.access(0, 4)

    def test_shape_properties(self):
        crossbar = make_crossbar()
        assert crossbar.num_cores == 4
        assert crossbar.num_dgroups == 4
