"""Tests for the statistics containers."""

import pytest

from repro.common.stats import (
    AccessStats,
    BusStats,
    CoreTiming,
    DgroupStats,
    ReuseStats,
    SimulationStats,
    reuse_bucket,
)
from repro.common.types import MissClass


class TestReuseBucket:
    @pytest.mark.parametrize(
        "count,bucket",
        [(0, "0"), (1, "1"), (2, "2-5"), (5, "2-5"), (6, ">5"), (100, ">5")],
    )
    def test_buckets(self, count, bucket):
        assert reuse_bucket(count) == bucket

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            reuse_bucket(-1)


class TestAccessStats:
    def test_fractions(self):
        stats = AccessStats()
        for _ in range(8):
            stats.record(MissClass.HIT)
        stats.record(MissClass.ROS)
        stats.record(MissClass.CAPACITY)
        assert stats.total == 10
        assert stats.fraction(MissClass.HIT) == 0.8
        assert stats.miss_rate == pytest.approx(0.2)

    def test_empty_is_zero(self):
        stats = AccessStats()
        assert stats.miss_rate == 0.0
        assert stats.fraction(MissClass.HIT) == 0.0

    def test_distribution_sums_to_one(self):
        stats = AccessStats()
        for miss_class in MissClass:
            stats.record(miss_class)
        assert sum(stats.distribution().values()) == pytest.approx(1.0)

    def test_merge(self):
        a, b = AccessStats(), AccessStats()
        a.record(MissClass.HIT)
        b.record(MissClass.RWS)
        a.merge(b)
        assert a.total == 2


class TestReuseStats:
    def test_fractions_per_histogram(self):
        stats = ReuseStats()
        stats.record_ros_replacement(0)
        stats.record_ros_replacement(0)
        stats.record_ros_replacement(3)
        stats.record_rws_invalidation(2)
        ros = stats.ros_fractions()
        assert ros["0"] == pytest.approx(2 / 3)
        assert ros["2-5"] == pytest.approx(1 / 3)
        assert stats.rws_fractions()["2-5"] == 1.0

    def test_empty_fractions(self):
        stats = ReuseStats()
        assert all(v == 0.0 for v in stats.ros_fractions().values())


class TestDgroupStats:
    def test_distribution(self):
        stats = DgroupStats()
        stats.record(0, is_hit=True)
        stats.record(0, is_hit=True)
        stats.record(1, is_hit=True)
        stats.record(None, is_hit=False)
        dist = stats.distribution()
        assert dist["closest"] == 0.5
        assert dist["farther"] == 0.25
        assert dist["miss"] == 0.25
        assert stats.closest_fraction_of_hits == pytest.approx(2 / 3)

    def test_empty(self):
        stats = DgroupStats()
        assert stats.distribution() == {"closest": 0.0, "farther": 0.0, "miss": 0.0}
        assert stats.closest_fraction_of_hits == 0.0


class TestSimulationStats:
    def test_throughput_uses_slowest_core(self):
        stats = SimulationStats()
        stats.per_core = [CoreTiming(100, 200), CoreTiming(100, 400)]
        assert stats.total_instructions == 200
        assert stats.max_cycles == 400
        assert stats.throughput == 0.5

    def test_aggregate_ipc_sums_cores(self):
        stats = SimulationStats()
        stats.per_core = [CoreTiming(100, 200), CoreTiming(100, 400)]
        assert stats.aggregate_ipc == pytest.approx(0.5 + 0.25)

    def test_empty(self):
        stats = SimulationStats()
        assert stats.throughput == 0.0
        assert stats.aggregate_ipc == 0.0


class TestBusStats:
    def test_counts(self):
        stats = BusStats()
        stats.record("BusRd")
        stats.record("BusRd")
        stats.record("BusRepl")
        assert stats.total == 3
        assert stats.transactions["BusRd"] == 2
