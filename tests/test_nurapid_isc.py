"""In-situ communication behaviour (Section 3.2, Figure 4b)."""

from repro.coherence.states import CoherenceState
from repro.common.params import KB, NurapidParams
from repro.common.types import Access, AccessType, MissClass
from repro.core.nurapid import NurapidCache

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741
C = CoherenceState.COMMUNICATION

X = 0x20000


def read(core, address=X):
    return Access(core, address, AccessType.READ)


def write(core, address=X):
    return Access(core, address, AccessType.WRITE)


def small_cache(**kwargs) -> NurapidCache:
    params = NurapidParams(
        dgroup_capacity_bytes=16 * KB,
        tag_associativity=4,
        **kwargs.pop("params", {}),
    )
    return NurapidCache(params, **kwargs)


class TestRelocationOnReadMiss:
    def test_reader_relocates_dirty_copy(self):
        """Read miss on a dirty block: the single copy moves next to
        the reader and everyone enters C."""
        cache = small_cache()
        cache.access(write(0))
        assert cache.state_of(0, X) is M
        result = cache.access(read(1))
        assert result.miss_class is MissClass.RWS
        assert cache.state_of(0, X) is C
        assert cache.state_of(1, X) is C
        p1 = cache.tags[1].lookup(X, touch=False)
        assert p1.fwd.dgroup == cache.closest(1)
        assert cache.counters.relocations == 1

    def test_single_copy_after_relocation(self):
        cache = small_cache()
        cache.access(write(0))
        cache.access(read(1))
        assert len(list(cache.data.frames_holding(X))) == 1
        p0 = cache.tags[0].lookup(X, touch=False)
        p1 = cache.tags[1].lookup(X, touch=False)
        assert p0.fwd == p1.fwd  # everyone repointed
        cache.check_invariants()

    def test_new_reader_relocates_again(self):
        cache = small_cache()
        cache.access(write(0))
        cache.access(read(1))
        cache.access(read(2))
        p2 = cache.tags[2].lookup(X, touch=False)
        assert p2.fwd.dgroup == cache.closest(2)
        for core in range(3):
            assert cache.state_of(core, X) is C
        assert len(list(cache.data.frames_holding(X))) == 1
        cache.check_invariants()


class TestCStateHits:
    def test_no_coherence_miss_after_write(self):
        """The whole point of ISC: reads after writes hit in the tag."""
        cache = small_cache()
        cache.access(write(0))
        cache.access(read(1))   # joins C
        cache.access(write(0))  # write in place
        result = cache.access(read(1))
        assert result.is_hit   # no RWS miss!

    def test_c_write_is_in_place_and_write_through(self):
        cache = small_cache()
        cache.access(write(0))
        cache.access(read(1))
        occupied = cache.data.total_occupied
        result = cache.access(write(0))
        assert result.is_hit
        assert result.write_through  # L1 must write through C blocks
        assert cache.data.total_occupied == occupied  # no new copy
        assert cache.state_of(0, X) is C

    def test_c_write_invalidates_other_l1_copies(self):
        """BusRdX on every C write: sharers drop stale L1 copies but
        keep their tag copies in C."""
        cache = small_cache()
        invalidated = []
        cache.set_l1_invalidate_hook(lambda core, a: invalidated.append((core, a)))
        cache.access(write(0))
        cache.access(read(1))
        invalidated.clear()
        cache.access(write(0))
        assert (1, X) in invalidated
        assert cache.state_of(1, X) is C  # tag copy survives

    def test_writer_reaches_into_farther_dgroup(self):
        """Figure 9: the copy stays close to the reader; the writer
        pays a farther d-group access on every write."""
        cache = small_cache()
        cache.access(write(0))
        cache.access(read(1))  # copy relocated next to P1
        result = cache.access(write(0))
        assert result.dgroup_distance == 1
        expected = cache.params.tag_latency + cache.params.dgroup_latencies[0][
            cache.closest(1)
        ]
        assert result.latency == expected

    def test_no_exits_from_c(self):
        """Section 3.2: reads, writes, and snoops never leave C."""
        cache = small_cache()
        cache.access(write(0))
        cache.access(read(1))
        for access in (read(0), write(0), read(1), write(1)):
            cache.access(access)
            assert cache.state_of(access.core, X) is C
        cache.check_invariants()


class TestWriteMissJoinsC:
    def test_writer_joins_without_copying(self):
        """Figure 4b's I->C write arc: write the existing copy in
        place so it stays close to the readers."""
        cache = small_cache()
        cache.access(write(0))
        cache.access(read(1))   # copy now next to P1
        occupied = cache.data.total_occupied
        result = cache.access(write(2))
        assert result.miss_class is MissClass.RWS
        assert cache.data.total_occupied == occupied  # no new copy
        p1 = cache.tags[1].lookup(X, touch=False)
        p2 = cache.tags[2].lookup(X, touch=False)
        assert p2.fwd == p1.fwd  # copy stayed close to the reader
        assert cache.state_of(2, X) is C
        cache.check_invariants()

    def test_m_holder_joins_c_on_write_miss(self):
        cache = small_cache()
        cache.access(write(0))
        cache.access(write(1))
        assert cache.state_of(0, X) is C
        assert cache.state_of(1, X) is C
        assert len(list(cache.data.frames_holding(X))) == 1


class TestIscDisabled:
    def test_read_of_dirty_flushes_to_shared(self):
        """Without ISC the MESI arc x returns: M -> S on BusRd."""
        cache = small_cache(enable_isc=False)
        cache.access(write(0))
        result = cache.access(read(1))
        assert result.miss_class is MissClass.RWS
        assert cache.state_of(0, X) is S
        assert cache.state_of(1, X) is S
        assert cache.counters.relocations == 0

    def test_write_miss_invalidates_dirty_holder(self):
        cache = small_cache(enable_isc=False)
        cache.access(write(0))
        cache.access(write(1))
        assert cache.state_of(0, X) is I
        assert cache.state_of(1, X) is M
        assert len(list(cache.data.frames_holding(X))) == 1
        cache.check_invariants()

    def test_repeated_communication_keeps_missing(self):
        """Without ISC, write-then-read ping-pongs through misses —
        the pathology ISC removes."""
        cache = small_cache(enable_isc=False)
        cache.access(write(0))
        cache.access(read(1))
        cache.access(write(0))  # upgrade invalidates P1
        result = cache.access(read(1))
        assert result.miss_class is MissClass.RWS


class TestSharedDataArrayCapacity:
    def test_communication_uses_one_frame_not_four(self):
        """With 4 sharers, ISC still holds exactly one data copy;
        private caches would hold four."""
        cache = small_cache()
        cache.access(write(0))
        for core in (1, 2, 3):
            cache.access(read(core))
        assert len(list(cache.data.frames_holding(X))) == 1
        for core in range(4):
            assert cache.state_of(core, X) is C
        cache.check_invariants()
