"""Perf-lab tests: plans, the plan runner, BENCH history, the gate.

Layout mirrors the package: plan parsing/validation, one tiny real
``run_plan`` execution (module-scoped — the record feeds several
tests), v1->v2 history migration pinned by the committed fixture,
rolling-baseline verdicts incl. the injected-regression case CI's
perf-lab-smoke job re-checks end-to-end, the PNG fallback renderer,
and the bench satellites (single-CPU sweep gating, collision-safe
output paths).
"""

import json
import os

import pytest

from repro.experiments import bench
from repro.perflab import (
    BenchPlan,
    CapturePolicy,
    GatePolicy,
    PlanError,
    SweepPolicy,
    build_trends,
    default_plan,
    load_history,
    load_plan,
    plan_from_dict,
    run_plan,
    stats_digest,
    upgrade_record,
    write_record,
)
from repro.perflab import chartpng, report as trend_report
from repro.perflab.history import HistoryError, discover_history, env_key
from repro.perflab.plan import parse_plan_toml
from repro.perflab.runner import environment_fingerprint

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PLANS = os.path.join(REPO, "plans")
V1_FIXTURE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "data", "bench",
    "BENCH_20260806.json",
)

TINY_PLAN = BenchPlan(
    name="tiny",
    designs=("private", "cmp-nurapid"),
    workloads=("oltp",),
    bus_models=("atomic",),
    accesses_per_core=2_000,
    repeats=1,
    sweep=SweepPolicy(enabled=False),
)


# ---------------------------------------------------------------------------
# Plans


class TestPlanValidation:
    def test_bundled_plans_load(self):
        for name in ("default.toml", "ci-smoke.toml"):
            plan = load_plan(os.path.join(PLANS, name))
            assert plan.cells()
            assert plan.path and plan.path.endswith(name)

    def test_default_plan_matches_legacy_bench_grid(self):
        plan = load_plan(os.path.join(PLANS, "default.toml"))
        assert tuple(plan.designs) == bench.DEFAULT_DESIGNS
        assert tuple(plan.workloads) == ("oltp",)
        assert plan.accesses_per_core == 40_000
        assert plan.repeats == 3
        assert plan.sweep.enabled
        twin = default_plan()
        assert tuple(twin.designs) == tuple(plan.designs)
        assert twin.accesses_per_core == plan.accesses_per_core

    def test_minimal_plan_is_name_only(self):
        plan = plan_from_dict({"plan": {"name": "mini"}})
        assert plan.name == "mini"
        assert [c.label for c in plan.cells()] == [
            "oltp/uniform-shared/atomic",
            "oltp/private/atomic",
            "oltp/cmp-nurapid/atomic",
        ]

    def test_json_plans_load(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text(json.dumps({
            "plan": {"name": "j"},
            "grid": {"designs": ["private"], "workloads": ["MIX1"]},
        }))
        plan = load_plan(str(path))
        assert plan.cells()[0].multiprogrammed

    @pytest.mark.parametrize("raw, fragment", [
        ({}, "name"),
        ({"plan": {"name": "x"}, "typo": {}}, "typo"),
        ({"plan": {"name": "x", "bogus": 1}}, "bogus"),
        ({"plan": {"name": "x"},
          "grid": {"designs": ["no-such-design"]}}, "no-such-design"),
        ({"plan": {"name": "x"},
          "grid": {"workloads": ["oltp", "oltp"]}}, "duplicates"),
        ({"plan": {"name": "x"}, "run": {"repeats": 0}}, "repeats"),
        ({"plan": {"name": "x"}, "run": {"accesses_per_core": -5}},
         "accesses_per_core"),
        ({"plan": {"name": "x"}, "gate": {"threshold": 1.5}}, "threshold"),
        ({"plan": {"name": "x"}, "sweep": {"enabled": "yes"}}, "enabled"),
        ({"plan": {"name": "x"},
          "gate": {"cells": {"oltp/ideal/atomic": 0.1}}}, "ideal"),
    ])
    def test_invalid_plans_name_the_key(self, raw, fragment):
        with pytest.raises(PlanError, match=fragment):
            plan_from_dict(raw)

    def test_gate_cell_override_applies(self):
        plan = plan_from_dict({
            "plan": {"name": "g"},
            "gate": {"threshold": 0.3,
                     "cells": {"oltp/cmp-nurapid/atomic": 0.1}},
        })
        assert plan.gate.threshold_for("oltp/cmp-nurapid/atomic") == 0.1
        assert plan.gate.threshold_for("oltp/private/atomic") == 0.3


class TestMiniTomlParser:
    def test_matches_tomllib_on_bundled_plans(self):
        tomllib = pytest.importorskip("tomllib")
        for name in ("default.toml", "ci-smoke.toml"):
            with open(os.path.join(PLANS, name), encoding="utf-8") as handle:
                text = handle.read()
            assert parse_plan_toml(text) == tomllib.loads(text)

    def test_values_and_comments(self):
        raw = parse_plan_toml(
            '[plan]\nname = "x"  # trailing comment\n'
            '[gate]\nthreshold = 0.25\nwindow = 7\n'
            '[gate.cells]\n"a/b/c" = 0.1\n'
            '[grid]\ndesigns = ["private", "ideal"]\nempty = []\n'
            '[sweep]\nenabled = false\n'
        )
        assert raw["plan"]["name"] == "x"
        assert raw["gate"]["threshold"] == 0.25
        assert raw["gate"]["window"] == 7
        assert raw["gate"]["cells"] == {"a/b/c": 0.1}
        assert raw["grid"]["designs"] == ["private", "ideal"]
        assert raw["grid"]["empty"] == []
        assert raw["sweep"]["enabled"] is False

    @pytest.mark.parametrize("text", [
        "[unclosed\n", "novalue\n", "x = \n", "x = [1,\n2]\n",
        'x = "unterminated\n', "x = {inline = 1}\n",
    ])
    def test_rejects_unsupported_toml(self, text):
        with pytest.raises(PlanError):
            parse_plan_toml(text)


# ---------------------------------------------------------------------------
# The plan runner


@pytest.fixture(scope="module")
def tiny_record(tmp_path_factory):
    out = tmp_path_factory.mktemp("perflab") / "BENCH_19990101.json"
    record = run_plan(TINY_PLAN, out=str(out))
    write_record(record, str(out))
    return record, str(out)


class TestRunPlan:
    def test_v2_record_shape(self, tiny_record):
        record, path = tiny_record
        assert record["schema"] == "repro-bench-v2"
        assert set(record["cells"]) == {
            "oltp/private/atomic", "oltp/cmp-nurapid/atomic",
        }
        for cell in record["cells"].values():
            assert cell["throughput_accesses_per_sec"] > 0
            assert 0.0 <= cell["miss_rate"] <= 1.0
            assert len(cell["fingerprint"]) == 16
        env = record["environment"]
        assert env["cpus"] >= 1 and env["python"] and env["numpy"]
        # The legacy per-design view chains onto v1 baselines.
        assert set(record["throughput_accesses_per_sec"]) == {
            "private", "cmp-nurapid",
        }
        on_disk = json.load(open(path, encoding="utf-8"))
        assert on_disk == record

    def test_bit_consistent_with_direct_run(self, tiny_record):
        # The acceptance check: the plan runner's deterministic metrics
        # equal a direct serial simulation of the same cell.
        from repro.experiments.runner import build_design, run_multithreaded

        record, _ = tiny_record
        _, stats = run_multithreaded(
            build_design("cmp-nurapid"), "oltp", TINY_PLAN.config()
        )
        cell = record["cells"]["oltp/cmp-nurapid/atomic"]
        assert cell["fingerprint"] == stats_digest(stats)
        assert cell["miss_rate"] == round(stats.accesses.miss_rate, 6)

    def test_capture_bundle(self, tmp_path):
        plan = BenchPlan(
            name="cap",
            designs=("private",),
            accesses_per_core=1_500,
            repeats=1,
            sweep=SweepPolicy(enabled=False),
            capture=CapturePolicy(profile=True, trace=True, metrics=True,
                                  metrics_every=500),
        )
        out = tmp_path / "BENCH_19990102.json"
        record = run_plan(plan, out=str(out))
        cell = record["cells"]["oltp/private/atomic"]
        bundle = tmp_path / "BENCH_19990102.capture" / "oltp-private-atomic"
        assert cell["capture"]["dir"] == os.path.join(
            "BENCH_19990102.capture", "oltp-private-atomic"
        )
        for name in ("profile.json", "metrics.json", "trace.jsonl",
                     "trace.perfetto.json"):
            assert (bundle / name).is_file(), name
        assert cell["latency"]["p95"] >= cell["latency"]["p50"] > 0

    def test_environment_fingerprint_keys(self):
        env = environment_fingerprint()
        assert set(env) == {"cpus", "python", "numpy", "platform", "git_sha"}


# ---------------------------------------------------------------------------
# History and migration


class TestHistory:
    def test_v1_fixture_upgrades_to_single_point_trend(self):
        runs = load_history([V1_FIXTURE])
        assert len(runs) == 1
        run = runs[0]
        assert run.schema == "repro-bench-v1"
        assert set(run.cells) == {
            "oltp/uniform-shared/atomic", "oltp/private/atomic",
            "oltp/cmp-nurapid/atomic",
        }
        # Pinned against the committed fixture.
        assert run.cells["oltp/cmp-nurapid/atomic"][
            "throughput_accesses_per_sec"] == 172658.0
        assert run.cells["oltp/private/atomic"]["miss_rate"] is None
        assert run.accesses == 40_000
        trends = build_trends(runs)
        for trend in trends.values():
            assert len(trend.points) == 1
            assert trend.points[0].env == "cpus=1/py=?"

    def test_v1_fixture_report_is_clean(self, tmp_path):
        runs = load_history([V1_FIXTURE])
        result = trend_report.write_report(runs, str(tmp_path))
        assert not result.regressions
        assert all(v.status == trend_report.SKIPPED for v in result.verdicts)
        assert os.path.isfile(result.markdown_path)

    def test_unknown_schema_rejected(self):
        with pytest.raises(HistoryError, match="unknown BENCH schema"):
            upgrade_record({"schema": "repro-bench-v9"}, "BENCH_x")

    def test_run_ordering_same_day_suffixes(self, tmp_path):
        base = {"schema": "repro-bench-v1",
                "throughput_accesses_per_sec": {"private": 1.0},
                "workload": "oltp"}
        paths = []
        for name in ("BENCH_20260103-2.json", "BENCH_20260103.json",
                     "BENCH_20260102.json"):
            path = tmp_path / name
            path.write_text(json.dumps(base))
            paths.append(str(path))
        runs = load_history(paths)
        assert [run.run_id for run in runs] == [
            "BENCH_20260102", "BENCH_20260103", "BENCH_20260103-2",
        ]

    def test_discover_history_dedupes(self, tmp_path):
        path = tmp_path / "BENCH_20260101.json"
        path.write_text("{}")
        found = discover_history([str(tmp_path / "BENCH_*.json"), str(path)])
        assert found == [str(path)]

    def test_env_key(self):
        assert env_key({"cpus": 4, "python": "3.11.7"}) == "cpus=4/py=3.11"
        assert env_key({}) == "cpus=?/py=?"


# ---------------------------------------------------------------------------
# The gate


def _v2_run(run_id, throughput, miss_rate=0.2, cpus=4, sweep=None,
            accesses=2_000):
    cells = {
        label: {
            "workload": "oltp", "design": label.split("/")[1],
            "bus_model": "atomic", "multiprogrammed": False,
            "throughput_accesses_per_sec": value,
            "miss_rate": miss_rate, "fingerprint": "0" * 16,
        }
        for label, value in throughput.items()
    }
    record = {
        "schema": "repro-bench-v2",
        "created": f"2026-01-{int(run_id[-2:]):02d}T00:00:00Z",
        "environment": {"cpus": cpus, "python": "3.11.7"},
        "accesses_per_core": accesses,
        "cells": cells,
    }
    if sweep is not None:
        record["sweep"] = sweep
    return upgrade_record(record, run_id)


LABEL = "oltp/private/atomic"


class TestGate:
    def test_healthy_history_passes(self):
        runs = [_v2_run(f"BENCH_202601{i:02d}", {LABEL: 100.0 + i})
                for i in range(1, 5)]
        verdicts = trend_report.evaluate(runs, build_trends(runs))
        assert [v.status for v in verdicts] == [trend_report.OK]

    def test_thirty_percent_drop_trips(self):
        runs = [
            _v2_run("BENCH_20260101", {LABEL: 100.0}),
            _v2_run("BENCH_20260102", {LABEL: 102.0}),
            _v2_run("BENCH_20260103", {LABEL: 70.0}),
        ]
        verdicts = trend_report.evaluate(runs, build_trends(runs))
        assert verdicts[0].status == trend_report.REGRESSION
        assert LABEL in verdicts[0].line()
        assert "below the rolling baseline" in verdicts[0].reason

    def test_per_cell_threshold_override(self):
        runs = [
            _v2_run("BENCH_20260101", {LABEL: 100.0}),
            _v2_run("BENCH_20260102", {LABEL: 85.0}),
        ]
        trends = build_trends(runs)
        loose = trend_report.evaluate(runs, trends, GatePolicy(threshold=0.2))
        strict = trend_report.evaluate(
            runs, trends, GatePolicy(threshold=0.2, cells={LABEL: 0.1})
        )
        assert loose[0].status == trend_report.OK
        assert strict[0].status == trend_report.REGRESSION

    def test_environment_mismatch_skips(self):
        runs = [
            _v2_run("BENCH_20260101", {LABEL: 100.0}, cpus=8),
            _v2_run("BENCH_20260102", {LABEL: 10.0}, cpus=1),
        ]
        verdicts = trend_report.evaluate(runs, build_trends(runs))
        assert verdicts[0].status == trend_report.SKIPPED
        assert "no comparable history" in verdicts[0].reason

    def test_run_length_mismatch_skips(self):
        runs = [
            _v2_run("BENCH_20260101", {LABEL: 100.0}, accesses=40_000),
            _v2_run("BENCH_20260102", {LABEL: 10.0}, accesses=2_000),
        ]
        verdicts = trend_report.evaluate(runs, build_trends(runs))
        assert verdicts[0].status == trend_report.SKIPPED

    def test_miss_rate_increase_trips(self):
        runs = [
            _v2_run("BENCH_20260101", {LABEL: 100.0}, miss_rate=0.20),
            _v2_run("BENCH_20260102", {LABEL: 100.0}, miss_rate=0.25),
        ]
        verdicts = trend_report.evaluate(runs, build_trends(runs))
        assert verdicts[0].status == trend_report.REGRESSION
        assert "miss rate rose" in verdicts[0].reason
        tolerant = trend_report.evaluate(
            runs, build_trends(runs), GatePolicy(miss_rate_increase=0.1)
        )
        assert tolerant[0].status == trend_report.OK

    def test_rolling_baseline_is_median_of_window(self):
        # One outlier run must not drag the baseline: 100, 5, 100 -> the
        # median is 100, so a healthy 98 passes.
        runs = [
            _v2_run("BENCH_20260101", {LABEL: 100.0}),
            _v2_run("BENCH_20260102", {LABEL: 5.0}),
            _v2_run("BENCH_20260103", {LABEL: 100.0}),
            _v2_run("BENCH_20260104", {LABEL: 98.0}),
        ]
        verdicts = trend_report.evaluate(runs, build_trends(runs))
        assert verdicts[0].status == trend_report.OK
        assert verdicts[0].baseline == 100.0

    def test_single_cpu_sweep_speedup_not_gated(self):
        sweep = {"identical": True, "speedup": 0.8, "cells": 4, "jobs": 2,
                 "serial_seconds": 1.0, "parallel_seconds": 1.25,
                 **bench.sweep_gate_fields(1)}
        runs = [_v2_run("BENCH_20260101", {LABEL: 100.0}, cpus=1,
                        sweep=sweep)]
        verdicts = trend_report.evaluate(
            runs, build_trends(runs), GatePolicy(min_speedup=1.2)
        )
        sweep_verdicts = [v for v in verdicts if v.label == "sweep/speedup"]
        assert sweep_verdicts[0].status == trend_report.SKIPPED
        assert "single-CPU" in sweep_verdicts[0].reason

    def test_multi_cpu_sweep_speedup_gated(self):
        sweep = {"identical": True, "speedup": 0.8, "cells": 4, "jobs": 2,
                 "serial_seconds": 1.0, "parallel_seconds": 1.25,
                 **bench.sweep_gate_fields(4)}
        runs = [_v2_run("BENCH_20260101", {LABEL: 100.0}, sweep=sweep)]
        verdicts = trend_report.evaluate(
            runs, build_trends(runs), GatePolicy(min_speedup=1.2)
        )
        sweep_verdicts = [v for v in verdicts if v.label == "sweep/speedup"]
        assert sweep_verdicts[0].status == trend_report.REGRESSION

    def test_sweep_divergence_is_always_a_regression(self):
        sweep = {"identical": False, "mismatches": ["oltp/private"],
                 "speedup": 1.5, "cells": 4, "jobs": 2,
                 "serial_seconds": 1.0, "parallel_seconds": 0.66}
        runs = [_v2_run("BENCH_20260101", {LABEL: 100.0}, sweep=sweep)]
        verdicts = trend_report.evaluate(runs, build_trends(runs))
        assert any(
            v.label == "sweep/bit-identity"
            and v.status == trend_report.REGRESSION
            for v in verdicts
        )


# ---------------------------------------------------------------------------
# Reports and charts


class TestReportRendering:
    def test_write_report_renders_markdown_and_pngs(self, tmp_path):
        runs = [
            _v2_run("BENCH_20260101", {LABEL: 100.0}),
            _v2_run("BENCH_20260102", {LABEL: 60.0}),
        ]
        result = trend_report.write_report(runs, str(tmp_path))
        assert result.regressions and result.regressions[0].label == LABEL
        text = open(result.markdown_path, encoding="utf-8").read()
        assert "| oltp/private/atomic |" in text
        assert "**regression**" in text
        assert "1 regression(s)" in text
        for chart in result.chart_paths:
            width, height = chartpng.read_png_size(chart)
            assert width > 0 and height > 0
        names = {os.path.basename(p) for p in result.chart_paths}
        assert {"throughput.png", "miss_rate.png"} <= names

    def test_empty_history_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            trend_report.write_report([], str(tmp_path))


class TestChartPng:
    def test_png_roundtrip(self, tmp_path):
        canvas = chartpng.line_chart(
            {"a": [(0, 1.0), (1, 2.0), (2, 1.5)],
             "b": [(0, 3.0), (1, 2.5)]},
            size=(320, 200),
        )
        assert canvas.shape == (200, 320, 3)
        path = str(tmp_path / "chart.png")
        chartpng.write_png(path, canvas)
        assert chartpng.read_png_size(path) == (320, 200)
        # Both series actually left ink on the canvas.
        assert (canvas != 255).any(axis=2).sum() > 100

    def test_read_png_size_rejects_non_png(self, tmp_path):
        path = tmp_path / "not.png"
        path.write_bytes(b"definitely not a png")
        with pytest.raises(ValueError):
            chartpng.read_png_size(str(path))

    def test_format_tick(self):
        assert chartpng.format_tick(0) == "0"
        assert chartpng.format_tick(226_000) == "226k"
        assert chartpng.format_tick(1_500_000) == "1.5M"
        assert chartpng.format_tick(0.25) == "0.25"


# ---------------------------------------------------------------------------
# Bench satellites


class TestBenchSatellites:
    def test_sweep_gate_fields_single_cpu(self):
        fields = bench.sweep_gate_fields(1)
        assert fields["speedup_gate_eligible"] is False
        assert "single-CPU" in fields["speedup_gate_note"]

    def test_sweep_gate_fields_multi_cpu(self):
        fields = bench.sweep_gate_fields(8)
        assert fields["speedup_gate_eligible"] is True
        assert "speedup_gate_note" not in fields

    def test_default_output_path_collision_safe(self, tmp_path):
        first = bench.default_output_path("20260101", str(tmp_path))
        assert os.path.basename(first) == "BENCH_20260101.json"
        open(first, "w").close()
        second = bench.default_output_path("20260101", str(tmp_path))
        assert os.path.basename(second) == "BENCH_20260101-2.json"
        open(second, "w").close()
        third = bench.default_output_path("20260101", str(tmp_path))
        assert os.path.basename(third) == "BENCH_20260101-3.json"
        # The suffixed names still sort and parse as same-day history.
        runs = []
        for path in (first, second):
            json.dump({"schema": "repro-bench-v1",
                       "throughput_accesses_per_sec": {"private": 1.0},
                       "workload": "oltp"}, open(path, "w"))
        runs = load_history([second, first])
        assert [r.run_id for r in runs] == [
            "BENCH_20260101", "BENCH_20260101-2",
        ]


def _engine_run(run_id, throughput, engine=None):
    run = _v2_run(run_id, throughput)
    if engine is not None:
        run.environment["engine"] = engine
    return run


class TestEngineAlignment:
    """Same-day batch-vs-scalar runs must not mix paths or baselines."""

    def test_env_key_distinguishes_batch_engine(self):
        scalar = {"cpus": 4, "python": "3.11.7"}
        assert env_key({**scalar, "engine": "batch"}) == (
            "cpus=4/py=3.11/engine=batch"
        )
        # Scalar and pre-engine records keep the historical key, so the
        # accumulated BENCH history keeps aligning unchanged.
        assert env_key({**scalar, "engine": "scalar"}) == "cpus=4/py=3.11"
        assert env_key(scalar) == "cpus=4/py=3.11"
        assert env_key({**scalar, "engine": None}) == "cpus=4/py=3.11"

    def test_environment_fingerprint_same_day_engines_stay_distinct(
            self, tmp_path):
        """The scalar-then-batch same-day workflow end to end.

        Both runs land on the same date: the second gets a collision
        suffix (distinct run_id), and the engine-aware env key keeps
        the pair in separate baseline groups.
        """
        scalar_path = bench.default_output_path("20260809", str(tmp_path))
        open(scalar_path, "w").close()
        batch_path = bench.default_output_path("20260809", str(tmp_path))
        assert os.path.basename(batch_path) == "BENCH_20260809-2.json"

        environment = environment_fingerprint()
        scalar_env = dict(environment, engine="scalar")
        batch_env = dict(environment, engine="batch")
        assert env_key(scalar_env) == env_key(environment)
        assert env_key(batch_env) != env_key(scalar_env)
        assert env_key(batch_env).endswith("/engine=batch")

    def test_batch_run_never_gates_against_scalar_baseline(self):
        """A slow batch run after fast scalar history must SKIP, not FAIL."""
        runs = [
            _engine_run(f"BENCH_202601{i:02d}", {LABEL: 100.0})
            for i in range(1, 5)
        ]
        runs.append(
            _engine_run("BENCH_20260105", {LABEL: 10.0}, engine="batch")
        )
        verdicts = trend_report.evaluate(runs, build_trends(runs))
        assert [v.status for v in verdicts] == [trend_report.SKIPPED]
        assert "no comparable history" in verdicts[0].reason

    def test_batch_runs_form_their_own_rolling_baseline(self):
        """Batch history gates batch runs: a real drop still fails."""
        runs = [
            _engine_run(f"BENCH_202601{i:02d}", {LABEL: 200.0},
                        engine="batch")
            for i in range(1, 5)
        ]
        runs.append(
            _engine_run("BENCH_20260105", {LABEL: 100.0}, engine="batch")
        )
        verdicts = trend_report.evaluate(runs, build_trends(runs))
        assert [v.status for v in verdicts] == [trend_report.REGRESSION]


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_bench_plan_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "--plan", "plans/default.toml", "--quick"]
        )
        assert args.plan == "plans/default.toml"
        assert args.func.__name__ == "cmd_bench"

    def test_bench_report_subcommand_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "report", "--history", "a.json", "b.json",
             "--out-dir", "rpt"]
        )
        assert args.func.__name__ == "cmd_bench_report"
        assert args.history == ["a.json", "b.json"]
        assert args.out_dir == "rpt"

    def test_legacy_bench_flags_still_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "--quick", "--jobs", "2",
             "--baseline", "benchmarks/baseline.json"]
        )
        assert args.func.__name__ == "cmd_bench"
        assert args.plan is None

    def test_malformed_plan_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.toml"
        path.write_text('[plan]\nname = "x"\n[grid]\ndesigns = ["nope"]\n')
        assert main(["bench", "--plan", str(path)]) == 2
        assert "nope" in capsys.readouterr().err

    def test_report_without_history_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        missing = str(tmp_path / "BENCH_*.json")
        assert main(["bench", "report", "--history", missing,
                     "--out-dir", str(tmp_path / "rpt")]) == 2
        assert "no BENCH history" in capsys.readouterr().err

    def test_report_exit_5_names_cells(self, tmp_path, capsys):
        from repro.cli import main

        healthy = _v2_record({LABEL: 100.0})
        regressed = _v2_record({LABEL: 65.0})
        path_a = tmp_path / "BENCH_20260101.json"
        path_b = tmp_path / "BENCH_20260102.json"
        path_a.write_text(json.dumps(healthy))
        path_b.write_text(json.dumps(regressed))
        code = main([
            "bench", "report",
            "--history", str(path_a), str(path_b),
            "--out-dir", str(tmp_path / "rpt"),
        ])
        captured = capsys.readouterr()
        assert code == bench.REGRESSION_EXIT
        assert LABEL in captured.err
        assert os.path.isfile(tmp_path / "rpt" / "trend.md")


def _v2_record(throughput):
    """A raw v2 record dict (what _v2_run parses) for CLI round-trips."""
    return {
        "schema": "repro-bench-v2",
        "environment": {"cpus": 4, "python": "3.11.7"},
        "accesses_per_core": 2_000,
        "cells": {
            label: {
                "workload": "oltp", "design": label.split("/")[1],
                "bus_model": "atomic", "multiprogrammed": False,
                "throughput_accesses_per_sec": value,
                "miss_rate": 0.2, "fingerprint": "0" * 16,
            }
            for label, value in throughput.items()
        },
    }
