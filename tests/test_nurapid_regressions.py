"""Regression tests for subtle pointer-integrity bugs.

Each test reconstructs a specific interleaving that once corrupted the
forward/reverse pointer web, so the exact scenario stays covered.
"""

from repro.coherence.states import CoherenceState
from repro.common.params import KB, NurapidParams
from repro.common.types import Access, AccessType
from repro.core.nurapid import NurapidCache

E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED


def read(core, address):
    return Access(core, address, AccessType.READ)


def write(core, address):
    return Access(core, address, AccessType.WRITE)


def small_cache(**kwargs) -> NurapidCache:
    return NurapidCache(
        NurapidParams(dgroup_capacity_bytes=16 * KB, tag_associativity=4),
        **kwargs,
    )


class TestReplicationByFrameOwner:
    """An S-state tag that *owns* its (remote) frame replicates.

    Chain: core 0's private block is demoted into a farther d-group;
    core 1 then reads it (E -> S, pointer-only); core 0 keeps reading
    its now-shared block remotely and CR replicates it home.  The old
    frame's reverse pointer named core 0's tag, whose forward pointer
    just moved — ownership must pass to core 1 (still pointing there)
    or the frame must be freed.
    """

    def _demote_block_of_core0(self, cache):
        target = 0x100000
        cache.access(read(0, target))
        frames = cache.params.frames_per_dgroup
        filler = 0x800000
        i = 0
        # Fill until the target block leaves core 0's closest d-group.
        while True:
            cache.access(read(0, filler + i * 128))
            i += 1
            entry = cache.tags[0].lookup(target, touch=False)
            if entry is None:
                # Evicted by tag conflict: restart with the next base.
                cache.access(read(0, target))
            elif entry.fwd.dgroup != cache.closest(0):
                return target
            assert i < 20 * frames, "block never demoted"

    def test_replicate_from_owned_remote_frame_hands_off_ownership(self):
        cache = small_cache()
        target = self._demote_block_of_core0(cache)
        entry0 = cache.tags[0].lookup(target, touch=False)
        assert entry0.state is E
        old_frame_ptr = entry0.fwd

        cache.access(read(1, target))  # E -> S; core 1 takes a pointer
        assert cache.tags[0].lookup(target, touch=False).state is S

        # Core 0 reads until CR replicates the block home.
        for _ in range(3):
            cache.access(read(0, target))
        entry0 = cache.tags[0].lookup(target, touch=False)
        assert entry0.fwd.dgroup == cache.closest(0)

        # The old frame either belongs to core 1 now or has been freed.
        old_frame = cache.data.frame(old_frame_ptr)
        if old_frame.valid:
            entry1 = cache.tags[1].lookup(target, touch=False)
            assert old_frame.rev == cache.tags[1].ptr_of(target, entry1)
        cache.check_invariants()

    def test_replicate_from_owned_remote_frame_with_no_other_sharer(self):
        """Same chain, but the other sharer's tag has already been
        dropped — the orphaned frame must be freed, not leaked."""
        cache = small_cache()
        target = self._demote_block_of_core0(cache)
        entry0 = cache.tags[0].lookup(target, touch=False)
        old_frame_ptr = entry0.fwd

        cache.access(read(1, target))
        entry1 = cache.tags[1].lookup(target, touch=False)
        cache._invalidate_tag(1, entry1, target)  # drop the other sharer

        for _ in range(3):
            cache.access(read(0, target))
        assert not cache.data.frame(old_frame_ptr).valid  # freed, not leaked
        cache.check_invariants()


class TestHeavySharedPressure:
    def test_mixed_demotion_and_sharing_traffic(self):
        """Demotion pressure interleaved with CR sharing of the same
        blocks — the pattern that exposed the original corruption."""
        cache = small_cache(enable_isc=False)
        frames = cache.params.frames_per_dgroup
        base = 0x200000
        for i in range(2 * frames):
            cache.access(read(0, base + i * 128))
            if i % 3 == 0:
                cache.access(read(1, base + i * 128))
            if i % 7 == 0:
                cache.access(read(0, base + (i // 2) * 128))
            if i % 11 == 0:
                cache.access(write(1, base + (i // 3) * 128))
        cache.check_invariants()
