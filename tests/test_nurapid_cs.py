"""Capacity-stealing behaviour (Section 3.3)."""

from repro.coherence.states import CoherenceState
from repro.common.params import KB, NurapidParams
from repro.common.types import Access, AccessType
from repro.core.nurapid import NurapidCache

E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741


def read(core, address):
    return Access(core, address, AccessType.READ)


def write(core, address):
    return Access(core, address, AccessType.WRITE)


def small_cache(**kwargs) -> NurapidCache:
    params_kwargs = {
        "dgroup_capacity_bytes": 16 * KB,  # 128 frames per d-group
        "tag_associativity": 4,
    }
    params_kwargs.update(kwargs.pop("params", {}))
    return NurapidCache(NurapidParams(**params_kwargs), **kwargs)


def fill_private(cache, core, count, base=0x100000):
    """Touch ``count`` distinct private blocks from ``core``."""
    for i in range(count):
        cache.access(read(core, base + (core << 28) + i * 128))


class TestPlacement:
    def test_private_blocks_placed_closest(self):
        cache = small_cache()
        fill_private(cache, 2, 10)
        for i in range(10):
            entry = cache.tags[2].lookup(0x100000 + (2 << 28) + i * 128, touch=False)
            assert entry.fwd.dgroup == cache.closest(2)


class TestCapacityStealing:
    def test_overflow_demotes_into_neighbour_dgroups(self):
        """A core exceeding its d-group steals neighbours' frames
        instead of evicting off-chip."""
        cache = small_cache()
        frames = cache.params.frames_per_dgroup
        fill_private(cache, 0, frames + 40)
        assert cache.counters.demotions > 0
        # Core 0's blocks now also live in other d-groups.
        used_groups = set()
        for i in range(frames + 40):
            entry = cache.tags[0].lookup(0x100000 + i * 128, touch=False)
            if entry is not None:
                used_groups.add(entry.fwd.dgroup)
        assert len(used_groups) > 1

    def test_demotion_follows_preference_ranking(self):
        """First demotions go to the core's second-preference d-group."""
        cache = small_cache()
        frames = cache.params.frames_per_dgroup
        fill_private(cache, 0, frames + 10)
        second_pref = cache.prefs[0][1]
        demoted = sum(
            1
            for i in range(frames + 10)
            if (
                entry := cache.tags[0].lookup(0x100000 + i * 128, touch=False)
            )
            is not None
            and entry.fwd.dgroup == second_pref
        )
        assert demoted > 0

    def test_demoted_blocks_still_hit(self):
        """Stolen capacity still serves hits — no off-chip miss."""
        cache = small_cache()
        frames = cache.params.frames_per_dgroup
        fill_private(cache, 0, frames + 20)
        hits = 0
        for i in range(frames + 20):
            entry = cache.tags[0].lookup(0x100000 + i * 128, touch=False)
            if entry is not None:
                hits += 1
        # Tag capacity is 2x one d-group, so most blocks stay resident.
        assert hits > frames

    def test_invariants_hold_under_heavy_pressure(self):
        cache = small_cache()
        frames = cache.params.frames_per_dgroup
        fill_private(cache, 0, 3 * frames)
        fill_private(cache, 1, frames // 2, base=0x900000)
        cache.check_invariants()


class TestPromotion:
    def _demoted_block(self, cache, core=0):
        """Fill past capacity and return a block demoted off-closest."""
        frames = cache.params.frames_per_dgroup
        fill_private(cache, core, frames + 30)
        for i in range(frames + 30):
            address = 0x100000 + i * 128
            entry = cache.tags[core].lookup(address, touch=False)
            if entry is not None and entry.fwd.dgroup != cache.closest(core):
                return address
        raise AssertionError("no demoted block found")

    def test_fastest_promotes_straight_to_closest(self):
        cache = small_cache()
        address = self._demoted_block(cache)
        promotions_before = cache.counters.promotions
        cache.access(read(0, address))
        entry = cache.tags[0].lookup(address, touch=False)
        assert entry.fwd.dgroup == cache.closest(0)
        assert cache.counters.promotions == promotions_before + 1
        cache.check_invariants()

    def test_next_fastest_promotes_one_step(self):
        cache = small_cache(params={"promotion_policy": "next-fastest"})
        address = self._demoted_block(cache)
        entry = cache.tags[0].lookup(address, touch=False)
        rank_before = cache.prefs[0].index(entry.fwd.dgroup)
        cache.access(read(0, address))
        entry = cache.tags[0].lookup(address, touch=False)
        rank_after = cache.prefs[0].index(entry.fwd.dgroup)
        assert rank_after == rank_before - 1
        cache.check_invariants()

    def test_write_hit_also_promotes_private_block(self):
        cache = small_cache()
        address = self._demoted_block(cache)
        cache.access(write(0, address))
        entry = cache.tags[0].lookup(address, touch=False)
        assert entry.fwd.dgroup == cache.closest(0)
        cache.check_invariants()


class TestSharedBlocksNeverDemoted:
    def test_shared_victims_are_evicted(self):
        """Section 3.3.2: demoting shared blocks would leave dangling
        reverse pointers, so they are evicted instead."""
        cache = small_cache()
        shared_base = 0x500000
        # Create shared blocks resident in core 1's closest d-group.
        for i in range(20):
            cache.access(read(1, shared_base + i * 128))
            cache.access(read(0, shared_base + i * 128))
            cache.access(read(0, shared_base + i * 128))  # replicate into a
        # Now blast core 0 with private fills to force replacement.
        frames = cache.params.frames_per_dgroup
        fill_private(cache, 0, 2 * frames)
        assert cache.counters.shared_evictions > 0
        cache.check_invariants()

    def test_shared_blocks_do_not_move(self):
        """Shared blocks are never promoted (they are never demoted),
        so sharers cannot read moving data."""
        cache = small_cache()
        cache.access(read(1, 0x500000))
        cache.access(read(0, 0x500000))  # pointer into d-group b
        entry = cache.tags[0].lookup(0x500000, touch=False)
        location_before = entry.fwd
        cache.access(read(0, 0x500000))  # CR replication is allowed...
        entry = cache.tags[0].lookup(0x500000, touch=False)
        # ...but the original copy did not move.
        p1 = cache.tags[1].lookup(0x500000, touch=False)
        assert p1.fwd == location_before


class TestDeterminism:
    def test_same_seed_same_counters(self):
        results = []
        for _ in range(2):
            cache = small_cache(seed=99)
            fill_private(cache, 0, 400)
            fill_private(cache, 1, 100, base=0x700000)
            results.append(
                (
                    cache.counters.demotions,
                    cache.counters.shared_evictions,
                    cache.stats.counts.copy(),
                )
            )
        assert results[0] == results[1]

    def test_different_seeds_may_differ(self):
        """Random-stop demotions draw from the seeded stream."""
        caches = []
        for seed in (1, 2):
            cache = small_cache(seed=seed)
            fill_private(cache, 0, 600)
            caches.append(cache.counters.demotions)
        # Not asserting inequality (could coincide), just that both ran.
        assert all(count >= 0 for count in caches)
