"""Benchmark: regenerate Table 1 (cache and bus latencies)."""

from repro.experiments import table1_latencies


def test_bench_table1(benchmark):
    result = benchmark(table1_latencies.run)
    # Shape: the derivation lands within 2 cycles of every published row.
    table1_latencies.check_derivation(tolerance_cycles=2)
    derived = result.derived
    # Shape: private << SNUCA-ish d-groups << shared, as in the paper.
    assert derived["private_total"] < derived["shared_total"]
    assert derived["dgroup_closest"] < derived["dgroup_mid"] <= derived["dgroup_farthest"]
    print()
    print(result.report.render())
