"""Benchmark: Figure 11 — multiprogrammed cache access distribution."""

from repro.experiments import fig11_mp_distribution as fig11


def test_bench_fig11(benchmark, bench_config):
    result = benchmark.pedantic(
        fig11.run, args=(bench_config,), rounds=1, iterations=1
    )

    def avg(design):
        return sum(result.miss_rates[m][design] for m in fig11.WORKLOADS) / len(
            fig11.WORKLOADS
        )

    # Shape: private caches miss the most (no capacity sharing);
    # CMP-NuRAPID lands near the shared cache.
    assert avg("private") >= avg("cmp-nurapid") - 0.005
    assert avg("cmp-nurapid") <= avg("uniform-shared") + 0.03
    # Shape: capacity stealing keeps most hits in the closest d-group.
    assert result.closest_of_hits > 0.8
    print()
    print(result.report.render())
    print()
    print(fig11.render_full(result))
