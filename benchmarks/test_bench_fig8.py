"""Benchmark: Figure 8 — tag-array access distributions for CR and ISC."""

from repro.experiments import fig8_tag_distribution as fig8


def test_bench_fig8(benchmark, bench_config):
    result = benchmark.pedantic(
        fig8.run, args=(bench_config,), rounds=1, iterations=1
    )
    commercial = ("oltp", "apache", "specjbb")

    def avg(design, key):
        return sum(
            result.distributions[w][design][key] for w in commercial
        ) / len(commercial)

    # Shape: CR never pays more ROS or capacity misses than private
    # caches.  (The strict reduction — the paper's -50% ROS / -40%
    # capacity — needs steady-state capacity pressure and shows up in
    # the full-length runs recorded in EXPERIMENTS.md; at the default
    # benchmark scale the cold first-touch misses every design shares
    # dominate and the two converge.)
    assert avg("cmp-nurapid-cr", "ros") <= avg("private", "ros") + 0.002
    assert avg("cmp-nurapid-cr", "capacity") <= avg("private", "capacity") + 0.005
    # Shape: ISC slashes RWS misses relative to private caches — this
    # is invalidation-driven and shows at any scale.  At the default
    # benchmark scale each sharer's one-time C-join still counts as an
    # RWS miss, so the reduction is smaller than the paper's
    # steady-state -80% (reached in the EXPERIMENTS.md runs).
    assert avg("cmp-nurapid-isc", "rws") < 0.8 * avg("private", "rws")
    print()
    print(result.report.render())
    print()
    print(fig8.render_full(result))
