"""Benchmarks: ablation studies for CMP-NuRAPID design choices."""

from repro.experiments import ablations


def test_bench_ablation_promotion(benchmark, bench_config):
    result = benchmark.pedantic(
        ablations.run_promotion, args=(bench_config,), rounds=1, iterations=1
    )
    fastest = result.raw["fastest"]
    next_fastest = result.raw["next-fastest"]
    # Shape: fastest keeps at least as many accesses in the closest
    # d-group as next-fastest (Section 3.3.1's CMP argument).
    assert (
        fastest.dgroups.distribution()["closest"]
        >= next_fastest.dgroups.distribution()["closest"] - 0.02
    )
    print()
    print(result.report.render())


def test_bench_ablation_tag_capacity(benchmark, bench_config):
    result = benchmark.pedantic(
        ablations.run_tag_capacity, args=(bench_config,), rounds=1, iterations=1
    )
    one, two, four = (result.raw[k] for k in ("1x", "2x", "4x"))
    # Shape: more tag capacity never hurts the miss rate…
    assert two.accesses.miss_rate <= one.accesses.miss_rate + 0.01
    # …and 2x captures most of 4x's benefit (Section 2.2.2).
    assert abs(two.accesses.miss_rate - four.accesses.miss_rate) < 0.5 * max(
        one.accesses.miss_rate - four.accesses.miss_rate, 0.002
    ) + 0.01
    print()
    print(result.report.render())


def test_bench_ablation_replication_use(benchmark, bench_config):
    result = benchmark.pedantic(
        ablations.run_replication_use, args=(bench_config,), rounds=1, iterations=1
    )
    print()
    print(result.report.render())


def test_bench_ablation_ranking(benchmark, bench_config):
    result = benchmark.pedantic(
        ablations.run_ranking, args=(bench_config,), rounds=1, iterations=1
    )
    print()
    print(result.report.render())


def test_bench_ablation_update_protocol(benchmark, bench_config):
    result = benchmark.pedantic(
        ablations.run_update_protocol, args=(bench_config,), rounds=1, iterations=1
    )
    nurapid = result.raw["cmp-nurapid"]
    update = result.raw["private-update"]
    # Shape: the update protocol floods the bus relative to ISC
    # (a data broadcast on every shared write).
    nurapid_rate = nurapid.bus.total / max(nurapid.total_instructions, 1)
    update_rate = update.bus.total / max(update.total_instructions, 1)
    assert update_rate > nurapid_rate
    print()
    print(result.report.render())
