"""Benchmark: Figure 9 — data-array access distributions for CR and ISC."""

from repro.experiments import fig9_data_distribution as fig9


def test_bench_fig9(benchmark, bench_config):
    result = benchmark.pedantic(
        fig9.run, args=(bench_config,), rounds=1, iterations=1
    )
    commercial = ("oltp", "apache", "specjbb")

    def closest(design):
        return sum(
            result.distributions[w][design]["closest"] for w in commercial
        ) / len(commercial)

    def farther(design):
        return sum(
            result.distributions[w][design]["farther"] for w in commercial
        ) / len(commercial)

    # Shape: both serve most accesses from the closest d-group…
    assert closest("cmp-nurapid-cr") > 0.5
    assert closest("cmp-nurapid-isc") > 0.4
    # …but ISC reaches into farther d-groups more (writers access the
    # copy kept close to the readers on every write).
    assert farther("cmp-nurapid-isc") > farther("cmp-nurapid-cr")
    print()
    print(result.report.render())
    print()
    print(fig9.render_full(result))
