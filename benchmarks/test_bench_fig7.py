"""Benchmark: Figure 7 — block reuse patterns in private caches."""

from repro.experiments import fig7_reuse as fig7


def test_bench_fig7(benchmark, bench_config):
    result = benchmark.pedantic(
        fig7.run, args=(bench_config,), rounds=1, iterations=1
    )
    for workload in ("oltp", "apache", "specjbb"):
        ros = result.ros[workload]
        rws = result.rws[workload]
        if sum(v for v in ros.values()):
            # Shape: some ROS blocks are replaced without any reuse —
            # the waste controlled replication's first-use policy
            # avoids.  At the default benchmark scale the caches are
            # only lightly pressured, so the fraction is far below the
            # paper's steady-state 42%; the full-length runs recorded
            # in EXPERIMENTS.md are the quantitative comparison.
            assert ros["0"] > 0.0
        if sum(v for v in rws.values()):
            # Shape (Section 5.1.2, verbatim): "most of the blocks are
            # invalidated before five or fewer reuses" — long-lived
            # dirty blocks are rare, so keeping the single copy next to
            # the readers is safe.  (Our L1's recency layer absorbs
            # re-reads the paper's thrashier L1s sent to the L2, which
            # shifts mass from the 2-5 bucket toward 0-1; see
            # EXPERIMENTS.md.)
            assert rws[">5"] < 0.25
            assert rws["0"] + rws["1"] + rws["2-5"] > 0.75
    print()
    print(result.report.render())
    print()
    print(fig7.render_full(result))
