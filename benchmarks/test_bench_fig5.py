"""Benchmark: Figure 5 — L2 access mix, shared vs private."""

from repro.common.types import MissClass  # noqa: F401 - documentation aid
from repro.experiments import fig5_access_distribution as fig5


def test_bench_fig5(benchmark, bench_config):
    result = benchmark.pedantic(
        fig5.run, args=(bench_config,), rounds=1, iterations=1
    )
    commercial = ("oltp", "apache", "specjbb")
    for workload in fig5.WORKLOADS:
        shared = result.distributions[workload]["uniform-shared"]
        private = result.distributions[workload]["private"]
        # Shape: shared caches have only hits and capacity misses.
        assert shared["ros"] == 0.0 and shared["rws"] == 0.0
        # Shape: private caches pay sharing misses wherever sharing exists.
        if workload in commercial:
            assert private["ros"] > 0.0
            assert private["rws"] > 0.0
    # Shape: commercial workloads share more than scientific ones.
    def sharing_misses(workload):
        dist = result.distributions[workload]["private"]
        return dist["ros"] + dist["rws"]

    commercial_avg = sum(sharing_misses(w) for w in commercial) / 3
    scientific_avg = (sharing_misses("ocean") + sharing_misses("barnes")) / 2
    assert commercial_avg > scientific_avg
    print()
    print(result.report.render())
    print()
    print(fig5.render_full(result))
