"""Benchmarks: extension studies beyond the paper's figures.

The SMP-contrast experiment quantifies the paper's Section 1 argument;
the sensitivity sweeps probe robustness to machine parameters; the
energy report prices each design's measured access mix.
"""

from repro.experiments import energy_report, sensitivity, smp_contrast


def test_bench_smp_contrast(benchmark, bench_config):
    result = benchmark.pedantic(
        smp_contrast.run, args=(bench_config,), rounds=1, iterations=1
    )
    # Shape (Section 1): controlled replication's benefit shrinks when
    # remote accesses cost like off-chip SMP transfers.
    assert result.cr_benefit_smp < result.cr_benefit_cmp + 0.02
    print()
    print(result.report.render())


def test_bench_capacity_sensitivity(benchmark, bench_config):
    result = benchmark.pedantic(
        sensitivity.run_capacity_sweep, args=(bench_config,), rounds=1, iterations=1
    )
    # Shape: private caches' extra misses over shared never shrink as
    # capacity drops from 16 MB to 4 MB.
    def extra_misses(budget):
        stats = result.raw[budget]
        return (
            stats["private"].accesses.miss_rate
            - stats["uniform-shared"].accesses.miss_rate
        )

    assert extra_misses("4MB") >= extra_misses("16MB") - 0.01
    print()
    print(result.report.render())


def test_bench_core_scaling(benchmark, bench_config):
    result = benchmark.pedantic(
        sensitivity.run_core_scaling, args=(bench_config,), rounds=1, iterations=1
    )
    # Shape: capacity stealing keeps most accesses local at both scales.
    for stats in result.raw.values():
        assert stats.dgroups.distribution()["closest"] > 0.3
    print()
    print(result.report.render())


def test_bench_bus_contention(benchmark, bench_config):
    result = benchmark.pedantic(
        sensitivity.run_bus_contention, args=(bench_config,), rounds=1, iterations=1
    )
    uncontended = result.raw["uncontended (paper)"].throughput
    contended = result.raw["16-cycle occupancy"].throughput
    assert contended <= uncontended * 1.01
    print()
    print(result.report.render())


def test_bench_energy(benchmark, bench_config):
    result = benchmark.pedantic(
        energy_report.run, args=(bench_config,), rounds=1, iterations=1
    )
    # Shape: every design's energy is dominated by its off-chip misses,
    # so the miss-rate ordering carries over to energy.
    assert result.per_access_pj["cmp-nurapid"] <= (
        result.per_access_pj["private"] * 1.2
    )
    print()
    print(result.report.render())
