"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The
benchmarked callable runs the full simulation pipeline; shape checks
against the paper run on the result.  ``BENCH_CONFIG`` controls trace
length: the default is sized so the whole harness finishes in a few
minutes while still showing the paper's qualitative shape — set
``REPRO_BENCH_SCALE`` (e.g. to ``4``) for longer, sharper runs like the
ones recorded in EXPERIMENTS.md.
"""

import os

import pytest

from repro.experiments.runner import ExperimentConfig
from repro.experiments.runner import StatsCache

_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))

#: Trace length used by every benchmark.
BENCH_CONFIG = ExperimentConfig(
    warmup_per_core=int(40_000 * _SCALE),
    measure_per_core=int(40_000 * _SCALE),
)


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=None,
        help="prewarm the benchmarked sweeps across N worker processes "
        "(default: the REPRO_JOBS environment variable, else serial); "
        "results are bit-identical either way",
    )


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def stats_cache(request) -> StatsCache:
    """One cache for the whole benchmark session: figures sharing the
    same (workload, design) simulations reuse them.

    With ``--jobs N`` (or ``REPRO_JOBS``) the suite's cell union is
    prewarmed through the parallel executor first, so the per-figure
    benchmarks below mostly measure rendering over cache hits.
    """
    from repro.experiments import parallel

    cache = StatsCache()
    jobs = parallel.resolve_jobs(request.config.getoption("--jobs"))
    if jobs > 1:
        parallel.run_cells(
            parallel.suite_cells(), BENCH_CONFIG, cache, jobs=jobs
        )
    return cache
