"""Benchmark: Figure 10 — multithreaded performance (the headline)."""

from repro.experiments import fig10_performance as fig10


def test_bench_fig10(benchmark, bench_config):
    result = benchmark.pedantic(
        fig10.run, args=(bench_config,), rounds=1, iterations=1
    )
    averages = result.averages
    # Shape: CMP-NuRAPID beats the uniform-shared baseline…
    assert averages["cmp-nurapid"] > 1.0
    # …and the non-uniform-shared cache…
    assert averages["cmp-nurapid"] > averages["non-uniform-shared"]
    # …and stays below (or at) the ideal upper bound.
    assert averages["cmp-nurapid"] <= averages["ideal"] + 0.02
    # Shape: on commercial workloads CMP-NuRAPID at least matches the
    # private caches it shares Table 1 latencies with.
    assert averages["cmp-nurapid"] >= averages["private"] - 0.02
    print()
    print(result.report.render())
    print()
    print(fig10.render_full(result))
