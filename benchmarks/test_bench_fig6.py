"""Benchmark: Figure 6 — performance opportunity."""

from repro.experiments import fig6_opportunity as fig6


def test_bench_fig6(benchmark, bench_config):
    result = benchmark.pedantic(
        fig6.run, args=(bench_config,), rounds=1, iterations=1
    )
    for workload, by_design in result.relative.items():
        # Shape: the ideal cache is the upper bound everywhere.
        assert by_design["ideal"] >= by_design["non-uniform-shared"] - 0.01
        assert by_design["ideal"] >= by_design["private"] - 0.01
        # Shape: every alternative at least matches uniform-shared.
        for design in ("non-uniform-shared", "private", "ideal"):
            assert by_design[design] > 0.97
    print()
    print(result.report.render())
    print()
    print(fig6.render_full(result))
