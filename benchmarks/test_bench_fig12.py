"""Benchmark: Figure 12 — multiprogrammed performance."""

from repro.experiments import fig12_mp_performance as fig12


def test_bench_fig12(benchmark, bench_config):
    result = benchmark.pedantic(
        fig12.run, args=(bench_config,), rounds=1, iterations=1
    )
    averages = result.averages
    # Shape: cmp-nurapid > private > non-uniform-shared > shared on
    # average — Figure 12's ordering.
    assert averages["cmp-nurapid"] > 1.0
    assert averages["private"] > averages["non-uniform-shared"] - 0.02
    assert averages["cmp-nurapid"] >= averages["private"] - 0.02
    print()
    print(result.report.render())
    print()
    print(fig12.render_full(result))
