"""Table-driven MESI protocol engine (Figure 4a).

The engine answers two questions for a cache controller:

* :func:`processor_read` / :func:`processor_write` — given the local
  state and the bus signals observed on a miss, what is the new state
  and which bus transaction (if any) must be issued?
* :func:`snoop` — given the local state and an observed bus
  transaction, what is the new state and must the block be flushed
  (sourced) onto the bus?

Each solid arc of Figure 4a corresponds to one entry in the processor
tables; each dotted arc to one entry in the snoop table.  The unit tests
walk the figure arc-by-arc.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.coherence.states import CoherenceState
from repro.interconnect.bus import BusOp

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741 - matches the protocol literature


@dataclass(frozen=True)
class ProtocolAction:
    """Outcome of a processor-side protocol step."""

    next_state: CoherenceState
    bus_op: "Optional[BusOp]" = None


@dataclass(frozen=True)
class SnoopAction:
    """Outcome of a snoop-side protocol step."""

    next_state: CoherenceState
    flush: bool = False


def processor_read(
    state: CoherenceState, shared_signal: bool = False
) -> ProtocolAction:
    """PrRd arcs of Figure 4a.

    ``shared_signal`` is only consulted on a miss (state I): it is the
    wired-OR shared line that selects between I->S (another clean copy
    exists) and I->E (no other copy).
    """
    if state in (M, E, S):
        return ProtocolAction(state)  # PrRd/-- self-loops.
    if state is I:
        next_state = S if shared_signal else E
        return ProtocolAction(next_state, BusOp.BUS_RD)
    raise ValueError(f"MESI does not define state {state}")


def processor_write(state: CoherenceState) -> ProtocolAction:
    """PrWr arcs of Figure 4a."""
    if state is M:
        return ProtocolAction(M)  # PrWr/--
    if state is E:
        return ProtocolAction(M)  # silent E->M upgrade
    if state is S:
        return ProtocolAction(M, BusOp.BUS_UPG)  # S->M via BusUpg
    if state is I:
        return ProtocolAction(M, BusOp.BUS_RDX)  # I->M via BusRdX
    raise ValueError(f"MESI does not define state {state}")


def snoop(state: CoherenceState, op: BusOp) -> SnoopAction:
    """Dotted (snoop-side) arcs of Figure 4a.

    ``flush`` is True when this cache must source the block: a dirty
    flush from M, or a clean cache-to-cache supply (Flush') from E/S.
    """
    if state is I:
        return SnoopAction(I)
    if op is BusOp.BUS_RD:
        if state is M:
            return SnoopAction(S, flush=True)  # M->S, Flush
        if state is E:
            return SnoopAction(S, flush=True)  # E->S, Flush'
        return SnoopAction(S, flush=True)  # S stays S, Flush'
    if op is BusOp.BUS_RDX:
        # Any valid copy is invalidated; dirty data is flushed first.
        return SnoopAction(I, flush=True)
    if op is BusOp.BUS_UPG:
        if state is M or state is E:
            raise RuntimeError(
                "BusUpg observed while holding an exclusive copy: "
                "protocol invariant violated"
            )
        return SnoopAction(I)  # S->I
    if op in (BusOp.BUS_REPL, BusOp.WR_THRU):
        # MESI private caches ignore these CMP-NuRAPID transactions.
        return SnoopAction(state)
    raise ValueError(f"unknown bus op {op}")
