"""Cache coherence protocols: MESI (Figure 4a) and MESIC (Figure 4b)."""

from repro.coherence import mesi, mesic
from repro.coherence.mesic import DataAction, GlobalStateChecker, MesicAction, MesicSnoopAction
from repro.coherence.states import MESI_STATES, MESIC_STATES, CoherenceState

__all__ = [
    "MESIC_STATES",
    "MESI_STATES",
    "CoherenceState",
    "DataAction",
    "GlobalStateChecker",
    "MesicAction",
    "MesicSnoopAction",
    "mesi",
    "mesic",
]
