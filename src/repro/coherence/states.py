"""Coherence states for MESI and the paper's 5-state MESIC protocol."""

from __future__ import annotations

import enum


class CoherenceState(enum.Enum):
    """Per-tag-entry coherence state.

    ``MODIFIED``/``EXCLUSIVE``/``SHARED``/``INVALID`` form the classic
    MESI protocol [21] used by the private-cache baseline (Figure 4a).
    ``COMMUNICATION`` (C) is CMP-NuRAPID's addition (Figure 4b,
    Section 3.2): a *dirty* block with *multiple* tag copies pointing to
    a single data copy, enabling in-situ communication.
    """

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"
    COMMUNICATION = "C"

    @property
    def is_valid(self) -> bool:
        return self is not CoherenceState.INVALID

    @property
    def is_dirty(self) -> bool:
        """States whose holder asserts the dirty signal (Section 3.2)."""
        return self in (CoherenceState.MODIFIED, CoherenceState.COMMUNICATION)

    @property
    def is_exclusive(self) -> bool:
        """States guaranteeing no other tag copy exists."""
        return self in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE)

    @classmethod
    def legend(cls) -> "tuple[str, ...]":
        """Stable value strings in declaration order.

        Checkpoints store coherence state as small integer codes plus
        this legend; decoding maps codes through the *stored* legend, so
        reordering or extending the enum never reinterprets a snapshot
        written by an older build.
        """
        return tuple(state.value for state in cls)


#: The four MESI states (no C), for validating the baseline protocol.
MESI_STATES = (
    CoherenceState.MODIFIED,
    CoherenceState.EXCLUSIVE,
    CoherenceState.SHARED,
    CoherenceState.INVALID,
)

#: All five MESIC states.
MESIC_STATES = MESI_STATES + (CoherenceState.COMMUNICATION,)
