"""Directory-based sharer tracking for the mesh interconnect backend.

At 4 cores the paper's designs keep coherent by broadcasting every
transaction on the snoopy bus and wire-ORing the replies (Section
2.2.2).  Broadcast does not scale: at 16 or 64 cores every miss would
snoop every tile.  This module provides the scalable substitute — a
**directory** of per-block sharer vectors, banked by home tile, that
lets the mesh NoC *forward* each transaction only to the cores that
actually hold a copy.

The protocol itself is unchanged.  The key observation (the 4-core
equivalence argument, DESIGN.md section 14): under the snoopy bus, an
agent without a copy answers a snoop with an empty
:class:`~repro.interconnect.bus.SnoopReply` and transitions nothing —
a no-op.  Delivering the snoop only to the directory's recorded
holders therefore produces the **same per-access state trajectory and
the same wired-OR signals** as broadcasting it, provided the sharer
vector always equals the true holder set.  That invariant is enforced
three ways:

* every tag install/invalidate chokepoint updates the vector
  (``add``/``discard``), and silent evictions send a replacement hint
  (:meth:`~repro.interconnect.mesh.MeshNoC.note_eviction`), so clean
  drops are not silent to the directory;
* the harness invariant checker compares the vector against a full
  tag scan (``check_directory`` in :mod:`repro.harness.invariants`);
* the hypothesis suite drives random interleavings through both
  backends (``tests/test_directory_properties.py``).

MESIC's communication state rides on top unchanged: a C-state write's
WrThru/BusRdX pair, controlled replication's pointer return, and
in-situ communication's downgrade all reach exactly the tag copies
they would have reached by broadcast, so CR/ISC/CS run unmodified on
the directory (the point of the scale experiment).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.interconnect.bus import BusOp, BusTransaction


class Directory:
    """Per-home-bank sharer vectors for one mesh machine.

    One bank per tile; a block's **home** is its block address
    interleaved across tiles (the bank co-located with that tile's L2
    d-group).  Each bank maps block-aligned addresses to a bitmask of
    cores holding a tag copy.  The directory records *presence only* —
    per-copy MESIC state stays in the tag arrays, and the NoC queries
    the recorded holders for their state exactly as a snoop would, so
    the protocol tables in :mod:`repro.coherence.mesic` and
    :mod:`repro.coherence.mesi` are reused verbatim.
    """

    def __init__(self, num_tiles: int, block_size: int) -> None:
        if num_tiles < 1:
            raise ValueError(f"need at least one tile, got {num_tiles}")
        if block_size < 1 or block_size & (block_size - 1):
            raise ValueError(f"block_size must be a power of two, got {block_size}")
        self.num_tiles = num_tiles
        self.block_size = block_size
        self._block_shift = block_size.bit_length() - 1
        self.banks: "List[Dict[int, int]]" = [{} for _ in range(num_tiles)]

    # ------------------------------------------------------------------
    # Addressing

    def block_of(self, address: int) -> int:
        return (address >> self._block_shift) << self._block_shift

    def home(self, address: int) -> int:
        """Home tile of ``address`` (block-interleaved across tiles)."""
        return (address >> self._block_shift) % self.num_tiles

    def _bank(self, address: int) -> "Dict[int, int]":
        return self.banks[self.home(address)]

    # ------------------------------------------------------------------
    # Sharer-vector reads

    def mask(self, address: int) -> int:
        """Bitmask of cores recorded as holding ``address``."""
        return self._bank(address).get(self.block_of(address), 0)

    def holders(self, address: int) -> "Tuple[int, ...]":
        """Recorded holders in ascending core order.

        Ascending order matches the snoopy bus's attach order, so the
        forwarded snoops fire in the same sequence a broadcast would.
        """
        mask = self.mask(address)
        out = []
        core = 0
        while mask:
            if mask & 1:
                out.append(core)
            mask >>= 1
            core += 1
        return tuple(out)

    def entries(self) -> "Iterator[Tuple[int, int, int]]":
        """Yield every (home_tile, block_address, mask) with sharers."""
        for tile, bank in enumerate(self.banks):
            for address, mask in bank.items():
                if mask:
                    yield tile, address, mask

    @property
    def tracked_blocks(self) -> int:
        return sum(1 for _ in self.entries())

    # ------------------------------------------------------------------
    # Sharer-vector updates (the tag chokepoints call these)

    def add(self, address: int, core: int) -> None:
        block = self.block_of(address)
        bank = self._bank(address)
        bank[block] = bank.get(block, 0) | (1 << core)

    def discard(self, address: int, core: int) -> None:
        block = self.block_of(address)
        bank = self._bank(address)
        mask = bank.get(block, 0) & ~(1 << core)
        if mask:
            bank[block] = mask
        else:
            bank.pop(block, None)

    def set_solo(self, address: int, core: int) -> None:
        """Collapse the vector to one holder (invalidating transactions)."""
        self._bank(address)[self.block_of(address)] = 1 << core

    def clear(self, address: int) -> None:
        self._bank(address).pop(self.block_of(address), None)

    def clear_all(self) -> None:
        for bank in self.banks:
            bank.clear()

    def apply(self, txn: BusTransaction) -> None:
        """Presence update for one forwarded transaction.

        Mirrors what each op's snoop does to the *set* of copies under
        broadcast MESI/MESIC: reads and write-through updates add the
        issuer to the sharers, invalidating ops (BusRdX/BusUpg) leave
        the issuer as the only copy, and a data replacement (BusRepl)
        evicts every tag copy.
        """
        if txn.op in (BusOp.BUS_RD, BusOp.WR_THRU):
            self.add(txn.address, txn.issuer)
        elif txn.op in (BusOp.BUS_RDX, BusOp.BUS_UPG):
            self.set_solo(txn.address, txn.issuer)
        elif txn.op is BusOp.BUS_REPL:
            self.clear(txn.address)

    # ------------------------------------------------------------------
    # Checkpointing: the vectors are *derived* state — loads rebuild
    # them from the restored tag arrays (``rebuild``), which guarantees
    # the directory-consistency invariant holds immediately after a
    # resume and keeps snapshots free of redundant encodings.

    def rebuild(self, holders_by_address: "Dict[int, int]") -> None:
        """Replace all vectors with ``{block_address: mask}``."""
        self.clear_all()
        for address, mask in holders_by_address.items():
            if mask:
                self._bank(address)[self.block_of(address)] = int(mask)
