"""Table-driven MESIC protocol engine (Figure 4b, Section 3.2).

MESIC extends MESI with the **communication state C**: a dirty block
with multiple tag copies pointing to one shared data copy.  The engine
mirrors Figure 4b and the surrounding text:

* the **M -> S** arc of MESI (arc ``x``) is deleted — an M block seeing
  a BusRd transitions to **C** instead;
* a read miss that finds a dirty copy (dirty signal) enters **C** and
  *relocates* the single data copy into the reader's closest d-group,
  invalidating the previous copy; every sharer enters (or remains in) C
  and repoints to the new copy;
* a write miss that finds a dirty copy enters **C** and writes the
  existing copy *in place* (no new copy — the copy stays close to the
  readers), announcing itself with BusRd + BusRdX;
* a write hit in C stays in C but write-throughs from L1 and issues a
  BusRdX so other sharers invalidate their stale *L1* copies while
  their L2 tag copies stay in C;
* there are no other exits from C (replacements aside).

Processor-side results carry a :class:`DataAction` telling the
controller what to do with the data array; the coherence-state changes
themselves are pure functions so unit tests can walk every arc.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.coherence.states import CoherenceState
from repro.interconnect.bus import BusOp

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741 - matches the protocol literature
C = CoherenceState.COMMUNICATION


class DataAction(enum.Enum):
    """What the requesting controller does in the data array."""

    #: No data-array change (hit served via the forward pointer).
    NONE = "none"
    #: Allocate a fresh copy in the requestor's closest d-group
    #: (off-chip fill, or a MESI-style write-miss fill).
    FILL_CLOSEST = "fill_closest"
    #: Controlled replication's first use: take only a tag copy that
    #: points at the already-existing on-chip data copy.
    POINTER_ONLY = "pointer_only"
    #: ISC read miss on a dirty block: make a new copy in the
    #: requestor's closest d-group, invalidate the previous copy, and
    #: repoint every sharer at the new copy.
    RELOCATE = "relocate"
    #: ISC write: write the single existing data copy where it is.
    WRITE_IN_PLACE = "write_in_place"


@dataclass(frozen=True)
class MesicAction:
    """Outcome of a processor-side MESIC step."""

    next_state: CoherenceState
    bus_ops: "Tuple[BusOp, ...]" = ()
    data_action: DataAction = DataAction.NONE


@dataclass(frozen=True)
class MesicSnoopAction:
    """Outcome of a snoop-side MESIC step."""

    next_state: CoherenceState
    flush: bool = False
    #: Invalidate this core's L1 copy (BusRdX observed while in C).
    invalidate_l1: bool = False
    #: Repoint this tag's forward pointer at the relocated data copy.
    repoint: bool = False


def processor_read(
    state: CoherenceState, shared_signal: bool = False, dirty_signal: bool = False
) -> MesicAction:
    """PrRd arcs of Figure 4b (hits self-loop; misses consult signals)."""
    if state in (M, E, S, C):
        return MesicAction(state)
    if state is I:
        if dirty_signal:
            # I -> C: relocate the dirty copy close to this reader.
            return MesicAction(C, (BusOp.BUS_RD,), DataAction.RELOCATE)
        if shared_signal:
            # I -> S with controlled replication's pointer return.
            return MesicAction(S, (BusOp.BUS_RD,), DataAction.POINTER_ONLY)
        return MesicAction(E, (BusOp.BUS_RD,), DataAction.FILL_CLOSEST)
    raise ValueError(f"MESIC does not define state {state}")


def processor_write(
    state: CoherenceState, shared_signal: bool = False, dirty_signal: bool = False
) -> MesicAction:
    """PrWr arcs of Figure 4b."""
    if state is M:
        return MesicAction(M, (), DataAction.WRITE_IN_PLACE)
    if state is E:
        return MesicAction(M, (), DataAction.WRITE_IN_PLACE)
    if state is S:
        # Upgrade; other tag copies invalidate.  The single data copy is
        # written wherever it lives (the forward pointer still works).
        return MesicAction(M, (BusOp.BUS_UPG,), DataAction.WRITE_IN_PLACE)
    if state is C:
        # Write hit in C: write-through from L1 + BusRdX so other
        # sharers drop stale L1 copies but keep their C tag copies.
        return MesicAction(
            C, (BusOp.WR_THRU, BusOp.BUS_RDX), DataAction.WRITE_IN_PLACE
        )
    if state is I:
        if dirty_signal:
            # I -> C (PrWr/BusRd,BusRdX): join the communication group,
            # writing the existing copy in place so it stays close to
            # the reader(s).
            return MesicAction(
                C, (BusOp.BUS_RD, BusOp.BUS_RDX), DataAction.WRITE_IN_PLACE
            )
        return MesicAction(M, (BusOp.BUS_RDX,), DataAction.FILL_CLOSEST)
    raise ValueError(f"MESIC does not define state {state}")


def snoop(state: CoherenceState, op: BusOp) -> MesicSnoopAction:
    """Snoop-side arcs of Figure 4b (plus unchanged MESI arcs)."""
    if state is I:
        return MesicSnoopAction(I)
    if op is BusOp.BUS_RD:
        if state is M:
            # Deleted arc x (M->S) replaced by M->C: the reader
            # relocates the data, we flush and repoint.
            return MesicSnoopAction(C, flush=True, repoint=True)
        if state is C:
            return MesicSnoopAction(C, flush=True, repoint=True)
        # Clean copies: stay/enter S and supply via pointer return.
        return MesicSnoopAction(S, flush=True)
    if op is BusOp.BUS_RDX:
        if state is C:
            # Repeated writes to a C block: stay in C, invalidate L1.
            return MesicSnoopAction(C, invalidate_l1=True)
        if state is M:
            # A writer that saw the dirty signal sends BusRd first, so a
            # lone BusRdX against M only happens in the MESI-compatible
            # write-miss-on-clean path; treat as MESI.
            return MesicSnoopAction(I, flush=True)
        return MesicSnoopAction(I)
    if op is BusOp.BUS_UPG:
        if state in (M, E, C):
            raise RuntimeError(
                "BusUpg observed while holding a dirty/exclusive copy: "
                "protocol invariant violated"
            )
        return MesicSnoopAction(I)
    if op is BusOp.WR_THRU:
        return MesicSnoopAction(state)
    if op is BusOp.BUS_REPL:
        # Pointer-match invalidation is the controller's job (it knows
        # which frame is being replaced); the state table is unchanged.
        return MesicSnoopAction(state)
    raise ValueError(f"unknown bus op {op}")


@dataclass
class GlobalStateChecker:
    """Cross-cache invariants of MESIC, for tests and debug assertions.

    For any block address, across all tag arrays:

    * at most one tag copy in M or E (exclusivity);
    * C implies no M/E copy of the same block anywhere;
    * S copies may coexist with each other and (transiently, never
      observably between transactions) nothing dirty.
    """

    states: "dict[int, list[CoherenceState]]" = field(default_factory=dict)

    def check(self, address: int, states: "list[CoherenceState]") -> None:
        valid = [s for s in states if s.is_valid]
        exclusive = [s for s in valid if s.is_exclusive]
        if len(exclusive) > 1:
            raise AssertionError(
                f"block {address:#x}: multiple exclusive copies {exclusive}"
            )
        if exclusive and len(valid) > 1:
            raise AssertionError(
                f"block {address:#x}: exclusive copy coexists with {valid}"
            )
        has_c = any(s is C for s in valid)
        has_s = any(s is S for s in valid)
        if has_c and has_s:
            raise AssertionError(
                f"block {address:#x}: C and S copies coexist"
            )
