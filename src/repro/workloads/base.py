"""Synthetic workload substrate.

The paper drives its caches from Simics full-system traces of
commercial, scientific, and SPEC2K workloads.  Offline we synthesize
block-granularity access streams whose *architecturally relevant*
properties are controlled per workload:

* the **sharing mix** — fractions of references to per-core private
  data, read-only shared data, and read-write shared data (Figure 5);
* a three-tier **locality hierarchy**:

  - a *recent window* of the last few dozen distinct addresses,
    re-referenced with high probability — this produces L1 hit rates
    and the multi-reuse bursts behind Figure 7's histograms;
  - a slowly *rotating hot set* per region — the L2-resident working
    set.  Its size relative to the 2 MB/8 MB capacities is what
    creates (or relieves) capacity pressure, and its rotation rate
    sets the steady-state cold-miss rate every design pays;
  - a Zipf-distributed *cold tail* over the full footprint — blocks
    touched once and rarely again (the paper finds 42% of read-shared
    blocks are replaced with no reuse at all);

* **producer-consumer communication** — each read-write-shared block
  has a writer-affinity core; the writer updates it and other cores
  read it a few times before the next update (Section 5.1.2 finds most
  RWS blocks are reused 2-5 times between invalidations).

Shared regions use *one* hot set across all cores (that is what makes
them shared working sets), so private caches replicate them — the
capacity pathology controlled replication attacks.

Every stream is deterministic given the workload name and seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

import numpy as np

from repro.common.rng import DEFAULT_SEED, stream
from repro.common.types import Access, AccessType, SharingClass
from repro.cpu.system import TimedAccess

#: L2 block size the generators align addresses to.
BLOCK = 128

#: Disjoint address-space bases so regions can never alias.
_PRIVATE_BASE = 1 << 32
_SHARED_RO_BASE = 1 << 40
_SHARED_RW_BASE = 1 << 41

_READ = AccessType.READ
_WRITE = AccessType.WRITE


@dataclass(frozen=True)
class RegionSpec:
    """One data region: hot working set plus a Zipf cold tail.

    Attributes:
        blocks: total footprint in 128 B blocks.
        zipf_alpha: popularity skew of the cold-tail (and rotation)
            draws over the full footprint.
        write_fraction: probability an access to this region writes.
        hot_blocks: size of the L2-resident hot working set (0 disables
            the hot tier; draws are then pure Zipf over the footprint).
        hot_fraction: probability a draw comes from the hot set.
        rotate_prob: per-draw probability of replacing one random hot
            entry with a fresh footprint draw — the steady-state
            working-set turnover every cache design must absorb.
    """

    blocks: int
    zipf_alpha: float = 1.0
    write_fraction: float = 0.0
    hot_blocks: int = 0
    hot_fraction: float = 0.8
    rotate_prob: float = 0.002

    def __post_init__(self) -> None:
        if self.blocks <= 0:
            raise ValueError("region footprint must be positive")
        if self.hot_blocks > self.blocks:
            raise ValueError("hot set cannot exceed the footprint")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")

    def probabilities(self) -> np.ndarray:
        ranks = np.arange(1, self.blocks + 1, dtype=np.float64)
        weights = ranks**-self.zipf_alpha
        return weights / weights.sum()


class HotSet:
    """A slowly rotating working set of blocks within a region.

    Shared regions hold one :class:`HotSet` instance used by every
    core's stream, so all cores reference the same working set.
    """

    _ROTATE_BATCH = 512

    def __init__(self, region: RegionSpec, rng: np.random.Generator) -> None:
        if region.hot_blocks <= 0:
            raise ValueError("HotSet requires hot_blocks > 0")
        self.region = region
        self._rng = rng
        self._probs = region.probabilities()
        self.blocks = rng.choice(
            region.blocks, size=region.hot_blocks, replace=False
        ).tolist()
        self._refill_rotations()

    def _refill_rotations(self) -> None:
        self._rotations = self._rng.choice(
            self.region.blocks, size=self._ROTATE_BATCH, p=self._probs
        ).tolist()
        self._slots = self._rng.integers(
            0, self.region.hot_blocks, size=self._ROTATE_BATCH
        ).tolist()
        self._rot_cursor = 0

    def draw(self, uniform: float) -> int:
        """Uniform pick from the hot set given a U(0,1) sample."""
        index = int(uniform * self.region.hot_blocks)
        return self.blocks[min(index, self.region.hot_blocks - 1)]

    def maybe_rotate(self, uniform: float) -> None:
        """With ``rotate_prob``, swap one hot entry for a fresh block."""
        if uniform >= self.region.rotate_prob:
            return
        if self._rot_cursor >= self._ROTATE_BATCH:
            self._refill_rotations()
        i = self._rot_cursor
        self._rot_cursor += 1
        self.blocks[self._slots[i]] = self._rotations[i]


@dataclass(frozen=True)
class WorkloadSpec:
    """Full parameterization of one synthetic workload.

    ``p_private + p_shared_ro + p_shared_rw`` must equal 1; regions with
    zero probability may be None.
    """

    name: str
    mem_ratio: float
    p_private: float
    p_shared_ro: float
    p_shared_rw: float
    private: RegionSpec
    shared_ro: "Optional[RegionSpec]" = None
    shared_rw: "Optional[RegionSpec]" = None
    #: Probability of re-referencing a recently used address.
    p_recent: float = 0.5
    #: Size of the per-core recent-address window.
    recent_window: int = 32
    #: Write probability for an RWS access by the block's writer core.
    rw_writer_write_fraction: float = 0.6
    #: Average memory instructions per touched cache line (spatial
    #: locality).  The extra ``spatial_factor - 1`` accesses per line
    #: are guaranteed L1 hits and are folded into the event's
    #: ``colocated`` count rather than simulated individually.
    spatial_factor: float = 3.5

    def __post_init__(self) -> None:
        total = self.p_private + self.p_shared_ro + self.p_shared_rw
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"{self.name}: region probabilities sum to {total}")
        if not 0.0 < self.mem_ratio <= 1.0:
            raise ValueError(f"{self.name}: mem_ratio must be in (0, 1]")
        if self.p_shared_ro > 0 and self.shared_ro is None:
            raise ValueError(f"{self.name}: missing shared_ro region")
        if self.p_shared_rw > 0 and self.shared_rw is None:
            raise ValueError(f"{self.name}: missing shared_rw region")
        if self.spatial_factor < 1.0:
            raise ValueError(f"{self.name}: spatial_factor must be >= 1")


class EventShaper:
    """Deterministically shapes events to a spec's instruction mix.

    Per line-touch event it emits ``colocated`` extra memory
    instructions (mean ``spatial_factor - 1``) and ``gap`` non-memory
    instructions (so memory instructions are ``mem_ratio`` of the
    total), using fractional error accumulation instead of randomness.
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        mem_per_event = spec.spatial_factor
        self._colocated_target = mem_per_event - 1.0
        self._gap_target = mem_per_event * (1.0 - spec.mem_ratio) / spec.mem_ratio
        self._colocated_error = 0.0
        self._gap_error = 0.0

    def next_shape(self) -> "tuple[int, int]":
        """Return ``(gap, colocated)`` for the next event."""
        self._colocated_error += self._colocated_target
        colocated = int(self._colocated_error)
        self._colocated_error -= colocated
        self._gap_error += self._gap_target
        gap = int(self._gap_error)
        self._gap_error -= gap
        return gap, colocated


def interleave_streams(
    streams: "List[_CoreStream]", accesses_per_core: int
) -> "Iterator[TimedAccess]":
    """Round-robin the per-core streams into one timed-event stream.

    This is every workload generator's hot loop, so the per-event work
    is flattened: bound ``next_access`` methods instead of attribute
    walks, and :class:`EventShaper`'s error accumulation inlined as
    per-core floats (the arithmetic — and therefore the emitted
    gap/colocated sequence — is identical to ``next_shape``, which
    remains the reference implementation and is pinned against this
    loop by the workload tests).
    """
    shapers = [EventShaper(stream.spec) for stream in streams]
    nexts = [stream.next_access for stream in streams]
    colocated_targets = [shaper._colocated_target for shaper in shapers]
    gap_targets = [shaper._gap_target for shaper in shapers]
    colocated_errors = [0.0] * len(streams)
    gap_errors = [0.0] * len(streams)
    indices = range(len(streams))
    timed = TimedAccess
    for _ in range(accesses_per_core):
        for k in indices:
            error = colocated_errors[k] + colocated_targets[k]
            colocated = int(error)
            colocated_errors[k] = error - colocated
            error = gap_errors[k] + gap_targets[k]
            gap = int(error)
            gap_errors[k] = error - gap
            yield timed(nexts[k](), gap, colocated)


def _half(block: int) -> int:
    """Deterministic 64 B half of the 128 B block a reference touches.

    Using a fixed half per block keeps every reference to a block on the
    same L1 line (so recency produces L1 hits) while spreading blocks
    over both halves so all L1 sets are used.  The half is derived from
    bits *above* the L1 set-index range: a 64 KB 2-way L1 with 64 B
    lines indexes on address bits 6-14, i.e. block bits 0-7 plus the
    half bit — deriving the half from low block bits would collapse the
    set index to 8 bits of entropy and halve the usable L1.
    """
    return (((block >> 8) ^ (block >> 10) ^ (block >> 12)) & 1) * 64


def private_block_address(core: int, block: int) -> int:
    return _PRIVATE_BASE * (core + 1) + block * BLOCK + _half(block)


def shared_ro_block_address(block: int) -> int:
    return _SHARED_RO_BASE + block * BLOCK + _half(block)


def shared_rw_block_address(block: int) -> int:
    return _SHARED_RW_BASE + block * BLOCK + _half(block)


class _Region:
    """Runtime state for one region as seen by one core's stream."""

    def __init__(
        self,
        spec: RegionSpec,
        sharing: SharingClass,
        address_fn: "Callable[[int], int]",
        hot_set: "Optional[HotSet]",
    ) -> None:
        self.spec = spec
        self.sharing = sharing
        self.address_fn = address_fn
        self.hot_set = hot_set


class _CoreStream:
    """Per-core access generator combining the three locality tiers."""

    _BATCH = 8192

    def __init__(
        self,
        spec: WorkloadSpec,
        core: int,
        num_cores: int,
        rng: np.random.Generator,
        regions: "List[_Region]",
        region_probs: "List[float]",
    ) -> None:
        self.spec = spec
        self.core = core
        self.num_cores = num_cores
        self.rng = rng
        self.regions = regions
        self._region_cut = np.cumsum(region_probs)
        # Recent window entries: (address, sharing class, write probability).
        # Kept as a ring buffer once full: ``_recent_start`` points at the
        # logically oldest entry, so logical index ``i`` lives at
        # ``_recent[(_recent_start + i) % len]`` — same ordering as the
        # old append-then-pop(0) list without the O(window) memmove.
        self._recent: "List[tuple[int, SharingClass, float]]" = []
        self._recent_start = 0
        self._tail_probs = [region.spec.probabilities() for region in regions]
        self._refill()

    def _refill(self) -> None:
        n = self._BATCH
        self._choice = self.rng.random(n).tolist()
        self._write = self.rng.random(n).tolist()
        self._hot_draw = self.rng.random(n).tolist()
        self._hot_pick = self.rng.random(n).tolist()
        self._rotate = self.rng.random(n).tolist()
        self._recent_pick = self.rng.integers(
            0, max(self.spec.recent_window, 1), size=n
        ).tolist()
        self._region_index = np.minimum(
            np.searchsorted(self._region_cut, self.rng.random(n)),
            len(self.regions) - 1,
        ).tolist()
        self._tail_blocks = [
            self.rng.choice(region.spec.blocks, size=n, p=probs).tolist()
            for region, probs in zip(self.regions, self._tail_probs)
        ]
        self._cursor = 0

    def _write_prob(self, region: _Region, block: int) -> float:
        if region.sharing is SharingClass.READ_WRITE_SHARED:
            writer = block % self.num_cores
            if self.core == writer:
                return self.spec.rw_writer_write_fraction
            return 0.0
        return region.spec.write_fraction

    def next_access(self) -> Access:
        i = self._cursor
        if i >= self._BATCH:
            self._refill()
            i = 0
        self._cursor = i + 1
        spec = self.spec

        recent = self._recent
        rlen = len(recent)
        if rlen and self._choice[i] < spec.p_recent:
            pos = self._recent_start + self._recent_pick[i] % rlen
            if pos >= rlen:
                pos -= rlen
            address, sharing, write_prob = recent[pos]
            access_type = _WRITE if self._write[i] < write_prob else _READ
            return Access(self.core, address, access_type, sharing)

        region_index = self._region_index[i]
        region = self.regions[region_index]

        hot = region.hot_set
        if hot is not None and self._hot_draw[i] < region.spec.hot_fraction:
            block = hot.draw(self._hot_pick[i])
            hot.maybe_rotate(self._rotate[i])
        else:
            block = self._tail_blocks[region_index][i]

        address = region.address_fn(block)
        write_prob = self._write_prob(region, block)
        is_write = self._write[i] < write_prob
        window = spec.recent_window
        if rlen < window:
            recent.append((address, region.sharing, write_prob))
        elif window:
            start = self._recent_start
            recent[start] = (address, region.sharing, write_prob)
            start += 1
            self._recent_start = 0 if start == window else start
        access_type = _WRITE if is_write else _READ
        return Access(self.core, address, access_type, sharing=region.sharing)


def _build_regions(
    spec: WorkloadSpec,
    core: int,
    shared_hot_sets: "dict[str, Optional[HotSet]]",
    private_spec: "Optional[RegionSpec]",
    seed: int,
) -> "tuple[List[_Region], List[float]]":
    """Assemble the (region, probability) lists for one core."""
    regions: "List[_Region]" = []
    probs: "List[float]" = []
    private_region = private_spec or spec.private
    if spec.p_private > 0:
        private_hot = None
        if private_region.hot_blocks:
            private_hot = HotSet(
                private_region,
                stream(f"hot.{spec.name}.private.core{core}", seed),
            )
        regions.append(
            _Region(
                private_region,
                SharingClass.PRIVATE,
                lambda block, core=core: private_block_address(core, block),
                private_hot,
            )
        )
        probs.append(spec.p_private)
    if spec.p_shared_ro > 0:
        assert spec.shared_ro is not None
        regions.append(
            _Region(
                spec.shared_ro,
                SharingClass.READ_ONLY_SHARED,
                shared_ro_block_address,
                shared_hot_sets.get("ro"),
            )
        )
        probs.append(spec.p_shared_ro)
    if spec.p_shared_rw > 0:
        assert spec.shared_rw is not None
        regions.append(
            _Region(
                spec.shared_rw,
                SharingClass.READ_WRITE_SHARED,
                shared_rw_block_address,
                shared_hot_sets.get("rw"),
            )
        )
        probs.append(spec.p_shared_rw)
    return regions, probs


class SyntheticWorkload:
    """A reproducible multi-core access stream built from a spec.

    For homogeneous multithreaded workloads every core runs the same
    spec; :class:`~repro.workloads.multiprogrammed.MultiprogrammedWorkload`
    overrides the private region per core to model SPEC2K mixes.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        num_cores: int = 4,
        seed: int = DEFAULT_SEED,
    ) -> None:
        self.spec = spec
        self.num_cores = num_cores
        self.seed = seed

    def _shared_hot_sets(self) -> "dict[str, Optional[HotSet]]":
        hot_sets: "dict[str, Optional[HotSet]]" = {}
        if self.spec.shared_ro is not None and self.spec.shared_ro.hot_blocks:
            hot_sets["ro"] = HotSet(
                self.spec.shared_ro, stream(f"hot.{self.spec.name}.ro", self.seed)
            )
        if self.spec.shared_rw is not None and self.spec.shared_rw.hot_blocks:
            hot_sets["rw"] = HotSet(
                self.spec.shared_rw, stream(f"hot.{self.spec.name}.rw", self.seed)
            )
        return hot_sets

    def events(self, accesses_per_core: int) -> "Iterator[TimedAccess]":
        """Round-robin interleaving of the per-core streams."""
        shared_hot = self._shared_hot_sets()
        streams = []
        for core in range(self.num_cores):
            regions, probs = _build_regions(
                self.spec, core, shared_hot, None, self.seed
            )
            rng = stream(f"workload.{self.spec.name}.core{core}", self.seed)
            streams.append(
                _CoreStream(self.spec, core, self.num_cores, rng, regions, probs)
            )
        return interleave_streams(streams, accesses_per_core)
