"""Synthetic workload generators for Table 2 and Table 3 workloads,
plus trace-file I/O for user-supplied traces."""

from repro.workloads import tracefile
from repro.workloads.base import (
    BLOCK,
    RegionSpec,
    SyntheticWorkload,
    WorkloadSpec,
    private_block_address,
    shared_ro_block_address,
    shared_rw_block_address,
)
from repro.workloads.multiprogrammed import (
    MIXES,
    SPEC_APPS,
    AppModel,
    MultiprogrammedWorkload,
    make_mix,
)
from repro.workloads.multithreaded import (
    COMMERCIAL,
    MULTITHREADED,
    SCIENTIFIC,
    make_workload,
    workload_spec,
)

__all__ = [
    "BLOCK",
    "COMMERCIAL",
    "MIXES",
    "MULTITHREADED",
    "SCIENTIFIC",
    "SPEC_APPS",
    "AppModel",
    "MultiprogrammedWorkload",
    "RegionSpec",
    "SyntheticWorkload",
    "WorkloadSpec",
    "make_mix",
    "make_workload",
    "private_block_address",
    "shared_ro_block_address",
    "shared_rw_block_address",
    "tracefile",
    "workload_spec",
]
