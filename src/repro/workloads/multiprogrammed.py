"""Multiprogrammed workloads: SPEC2K application models and Table 2 mixes.

Each core runs an independent application — "negligible sharing"
(Section 5.2.1) — so the sharing mix is 100% private and what matters
is each application's *capacity demand*.  The per-application models
below encode the well-known SPEC CPU2000 L2 behaviour at the paper's
2 MB/core granularity: art, mcf, and swim stream through multi-MB
working sets; mesa, gzip, vortex, and wupwise fit comfortably; apsi,
equake, and ammp sit in between.  The resulting non-uniform demands are
exactly what capacity stealing exploits (Section 3.3): a core whose hot
set overflows its 2 MB share demotes blocks into a neighbour's
under-used d-group instead of evicting them off-chip.

Footprints are in 128 B blocks: 16384 blocks = 2 MB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.rng import DEFAULT_SEED, stream
from repro.cpu.system import TimedAccess
from repro.workloads.base import (
    RegionSpec,
    WorkloadSpec,
    _build_regions,
    _CoreStream,
    interleave_streams,
)


@dataclass(frozen=True)
class AppModel:
    """Capacity/locality model of one SPEC2K application.

    ``hot_blocks`` is the L2-resident working set; ``rotate_prob``
    models streaming turnover (large for array codes like art/swim/mcf,
    small for pointer-chasing codes with stable footprints).
    """

    name: str
    footprint_blocks: int
    hot_blocks: int
    rotate_prob: float
    mem_ratio: float
    write_fraction: float
    zipf_alpha: float = 0.6
    #: Recent-window reuse probability.  Streaming array codes (art,
    #: swim, mcf) have poor temporal locality — lower values — which is
    #: also what lets their large hot sets actually cycle through the
    #: caches.
    p_recent: float = 0.95

    def region(self) -> RegionSpec:
        return RegionSpec(
            blocks=self.footprint_blocks,
            zipf_alpha=self.zipf_alpha,
            write_fraction=self.write_fraction,
            hot_blocks=self.hot_blocks,
            hot_fraction=0.85,
            rotate_prob=self.rotate_prob,
        )


#: SPEC CPU2000 application models (Section 4.3 / Table 2's 10 apps).
SPEC_APPS = {
    "apsi": AppModel("apsi", 24000, 11000, 0.003, 0.30, 0.20, p_recent=0.92),
    "art": AppModel("art", 55000, 24000, 0.005, 0.35, 0.15, p_recent=0.87),
    "equake": AppModel("equake", 28000, 13000, 0.004, 0.33, 0.15, p_recent=0.91),
    "mesa": AppModel("mesa", 8000, 3000, 0.002, 0.28, 0.25, p_recent=0.94),
    "ammp": AppModel("ammp", 26000, 12000, 0.003, 0.32, 0.20, p_recent=0.91),
    "swim": AppModel("swim", 50000, 22000, 0.005, 0.36, 0.25, p_recent=0.87),
    "vortex": AppModel("vortex", 14000, 6500, 0.002, 0.30, 0.20, p_recent=0.93),
    "mcf": AppModel("mcf", 70000, 30000, 0.005, 0.38, 0.15, p_recent=0.86),
    "gzip": AppModel("gzip", 10000, 4500, 0.002, 0.28, 0.25, p_recent=0.94),
    "wupwise": AppModel("wupwise", 12000, 5500, 0.002, 0.30, 0.20, p_recent=0.93),
}

#: Table 2 verbatim.
MIXES = {
    "MIX1": ("apsi", "art", "equake", "mesa"),
    "MIX2": ("ammp", "swim", "mesa", "vortex"),
    "MIX3": ("apsi", "mcf", "gzip", "mesa"),
    "MIX4": ("ammp", "gzip", "vortex", "wupwise"),
}


def _app_spec(app: AppModel) -> WorkloadSpec:
    """A single-application spec: all references private."""
    return WorkloadSpec(
        name=app.name,
        mem_ratio=app.mem_ratio,
        p_private=1.0,
        p_shared_ro=0.0,
        p_shared_rw=0.0,
        private=app.region(),
        p_recent=app.p_recent,
        recent_window=320,
        # SPEC2K array codes have less within-line reuse than the
        # commercial workloads; a lower spatial factor also matches the
        # paper's larger L2-sensitivity for the mixes (Figure 12's
        # gains exceed Figure 10's).
        spatial_factor=3.0,
    )


class MultiprogrammedWorkload:
    """One Table 2 mix: a different application on each core."""

    def __init__(self, mix_name: str, seed: int = DEFAULT_SEED) -> None:
        if mix_name not in MIXES:
            raise KeyError(
                f"unknown mix {mix_name!r}; choose from {sorted(MIXES)}"
            )
        self.name = mix_name
        self.apps = [SPEC_APPS[app] for app in MIXES[mix_name]]
        self.num_cores = len(self.apps)
        self.seed = seed

    def events(self, accesses_per_core: int) -> "Iterator[TimedAccess]":
        streams = []
        for core, app in enumerate(self.apps):
            spec = _app_spec(app)
            regions, probs = _build_regions(spec, core, {}, app.region(), self.seed)
            rng = stream(f"mix.{self.name}.{app.name}.core{core}", self.seed)
            streams.append(
                _CoreStream(spec, core, self.num_cores, rng, regions, probs)
            )
        return interleave_streams(streams, accesses_per_core)


def make_mix(mix_name: str, seed: int = DEFAULT_SEED) -> MultiprogrammedWorkload:
    """Build the trace generator for one Table 2 mix."""
    return MultiprogrammedWorkload(mix_name, seed)
