"""Multithreaded workload models (Table 3).

The paper evaluates three commercial workloads — OLTP (TPC-C-derived
DBT-2 on PostgreSQL), a static web server (Apache + SURGE), and
SPECjbb2000 — plus two SPLASH-2 scientific applications (ocean and
barnes-hut).  The spec parameters below are calibrated to the sharing
characterization the paper itself reports:

* commercial workloads share heavily; OLTP's misses are dominated by
  read-write sharing, while apache and specjbb mix all classes
  (Figure 5);
* scientific workloads share little, so private caches do well there;
* read-write-shared blocks are usually read 2-5 times per update and
  many read-only-shared blocks see no reuse at all (Figure 7);
* per-core working sets (hot sets plus replicated shared data) exceed
  a 2 MB private cache while the deduplicated aggregate fits in 8 MB —
  the regime where uncontrolled replication costs private caches ~2%
  extra capacity misses (Figure 5's 5% vs 3%).

Footprints are in 128 B blocks: 16384 blocks = 2 MB.
"""

from __future__ import annotations

from repro.common.rng import DEFAULT_SEED
from repro.workloads.base import RegionSpec, SyntheticWorkload, WorkloadSpec

OLTP = WorkloadSpec(
    name="oltp",
    mem_ratio=0.35,
    p_private=0.52,
    p_shared_ro=0.20,
    p_shared_rw=0.28,
    private=RegionSpec(
        blocks=30000, zipf_alpha=0.6, write_fraction=0.15,
        hot_blocks=12000, hot_fraction=0.85, rotate_prob=0.003,
    ),
    shared_ro=RegionSpec(
        blocks=20000, zipf_alpha=0.6,
        hot_blocks=6000, hot_fraction=0.9, rotate_prob=0.002,
    ),
    shared_rw=RegionSpec(
        blocks=10000, zipf_alpha=0.6,
        hot_blocks=3000, hot_fraction=0.95, rotate_prob=0.003,
    ),
    p_recent=0.95,
    recent_window=320,
    rw_writer_write_fraction=0.6,
    spatial_factor=5.5,
)

APACHE = WorkloadSpec(
    name="apache",
    mem_ratio=0.33,
    p_private=0.56,
    p_shared_ro=0.28,
    p_shared_rw=0.16,
    private=RegionSpec(
        blocks=28000, zipf_alpha=0.6, write_fraction=0.12,
        hot_blocks=11000, hot_fraction=0.85, rotate_prob=0.003,
    ),
    shared_ro=RegionSpec(
        blocks=30000, zipf_alpha=0.6,
        hot_blocks=8000, hot_fraction=0.9, rotate_prob=0.002,
    ),
    shared_rw=RegionSpec(
        blocks=8000, zipf_alpha=0.6,
        hot_blocks=2500, hot_fraction=0.95, rotate_prob=0.002,
    ),
    p_recent=0.95,
    recent_window=320,
    rw_writer_write_fraction=0.5,
    spatial_factor=5.5,
)

SPECJBB = WorkloadSpec(
    name="specjbb",
    mem_ratio=0.32,
    p_private=0.58,
    p_shared_ro=0.24,
    p_shared_rw=0.18,
    private=RegionSpec(
        blocks=28000, zipf_alpha=0.6, write_fraction=0.15,
        hot_blocks=11500, hot_fraction=0.85, rotate_prob=0.003,
    ),
    shared_ro=RegionSpec(
        blocks=24000, zipf_alpha=0.6,
        hot_blocks=7000, hot_fraction=0.9, rotate_prob=0.002,
    ),
    shared_rw=RegionSpec(
        blocks=8000, zipf_alpha=0.6,
        hot_blocks=2500, hot_fraction=0.95, rotate_prob=0.002,
    ),
    p_recent=0.95,
    recent_window=320,
    rw_writer_write_fraction=0.5,
    spatial_factor=5.5,
)

OCEAN = WorkloadSpec(
    name="ocean",
    mem_ratio=0.38,
    p_private=0.90,
    p_shared_ro=0.04,
    p_shared_rw=0.06,
    private=RegionSpec(
        blocks=26000, zipf_alpha=0.6, write_fraction=0.25,
        hot_blocks=13000, hot_fraction=0.85, rotate_prob=0.004,
    ),
    shared_ro=RegionSpec(
        blocks=4000, zipf_alpha=0.6,
        hot_blocks=1200, hot_fraction=0.9, rotate_prob=0.002,
    ),
    shared_rw=RegionSpec(
        blocks=3000, zipf_alpha=0.6,
        hot_blocks=900, hot_fraction=0.95, rotate_prob=0.002,
    ),
    p_recent=0.95,
    recent_window=320,
    rw_writer_write_fraction=0.5,
    spatial_factor=5.5,
)

BARNES = WorkloadSpec(
    name="barnes",
    mem_ratio=0.36,
    p_private=0.88,
    p_shared_ro=0.08,
    p_shared_rw=0.04,
    private=RegionSpec(
        blocks=22000, zipf_alpha=0.6, write_fraction=0.20,
        hot_blocks=12000, hot_fraction=0.85, rotate_prob=0.003,
    ),
    shared_ro=RegionSpec(
        blocks=6000, zipf_alpha=0.6,
        hot_blocks=1800, hot_fraction=0.9, rotate_prob=0.002,
    ),
    shared_rw=RegionSpec(
        blocks=2500, zipf_alpha=0.6,
        hot_blocks=700, hot_fraction=0.95, rotate_prob=0.002,
    ),
    p_recent=0.95,
    recent_window=320,
    rw_writer_write_fraction=0.5,
    spatial_factor=5.5,
)

#: Table 3's workloads in the paper's decreasing-sharing order.
COMMERCIAL = (OLTP, APACHE, SPECJBB)
SCIENTIFIC = (OCEAN, BARNES)
MULTITHREADED = COMMERCIAL + SCIENTIFIC

_BY_NAME = {spec.name: spec for spec in MULTITHREADED}


def workload_spec(name: str) -> WorkloadSpec:
    """Look up a multithreaded workload spec by its Table 3 name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown multithreaded workload {name!r}; "
            f"choose from {sorted(_BY_NAME)}"
        ) from None


def make_workload(
    name: str, num_cores: int = 4, seed: int = DEFAULT_SEED
) -> SyntheticWorkload:
    """Build the synthetic trace generator for one Table 3 workload."""
    return SyntheticWorkload(workload_spec(name), num_cores, seed)
