"""Reading and writing trace files.

Users with real traces (e.g. converted from Simics, gem5, or Pin) can
drive the simulators from them instead of the synthetic generators.
The format is one event per line::

    <core> <hex-address> <R|W> [gap] [colocated]

Lines starting with ``#`` and blank lines are ignored.  ``gap`` and
``colocated`` default to 0 (pure access trace).  The format is
deliberately trivial so converters are one-liners.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import IO, Iterable, Iterator, Union

from repro.common.types import Access, AccessType
from repro.cpu.system import TimedAccess

PathOrFile = Union[str, Path, IO[str]]


class TraceFormatError(ValueError):
    """A line of the trace file could not be parsed."""


def _parse_line(line: str, line_number: int) -> "TimedAccess | None":
    text = line.strip()
    if not text or text.startswith("#"):
        return None
    fields = text.split()
    if not 3 <= len(fields) <= 5:
        raise TraceFormatError(
            f"line {line_number}: expected 3-5 fields, got {len(fields)}: {text!r}"
        )
    try:
        core = int(fields[0])
        address = int(fields[1], 16)
    except ValueError as error:
        raise TraceFormatError(f"line {line_number}: {error}") from None
    kind = fields[2].upper()
    if kind not in ("R", "W"):
        raise TraceFormatError(
            f"line {line_number}: access type must be R or W, got {fields[2]!r}"
        )
    if core < 0 or address < 0:
        raise TraceFormatError(f"line {line_number}: negative core or address")
    gap = int(fields[3]) if len(fields) > 3 else 0
    colocated = int(fields[4]) if len(fields) > 4 else 0
    if gap < 0 or colocated < 0:
        raise TraceFormatError(f"line {line_number}: negative gap/colocated")
    access_type = AccessType.WRITE if kind == "W" else AccessType.READ
    return TimedAccess(Access(core, address, access_type), gap, colocated)


def read_trace(source: PathOrFile) -> "Iterator[TimedAccess]":
    """Yield events from a trace file (streaming; constant memory)."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from read_trace(handle)
        return
    for line_number, line in enumerate(source, start=1):
        event = _parse_line(line, line_number)
        if event is not None:
            yield event


def write_trace(events: "Iterable[TimedAccess]", destination: PathOrFile) -> int:
    """Write events in the trace format; returns the event count."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return write_trace(events, handle)
    count = 0
    destination.write("# repro trace: core address(hex) R|W gap colocated\n")
    for event in events:
        access = event.access
        kind = "W" if access.is_write else "R"
        destination.write(
            f"{access.core} {access.address:x} {kind} "
            f"{event.gap} {event.colocated}\n"
        )
        count += 1
    return count


def trace_to_string(events: "Iterable[TimedAccess]") -> str:
    """Render events as a trace-format string (tests, small traces)."""
    buffer = io.StringIO()
    write_trace(events, buffer)
    return buffer.getvalue()
