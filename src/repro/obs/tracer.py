"""Structured event tracer: bounded ring buffer plus streaming JSONL sink.

Two cost regimes, chosen so tracing can stay compiled into every hot
path:

* **disabled** (the default) — components hold the :data:`NO_TRACE`
  singleton, whose ``enabled`` flag is ``False``.  Hot paths guard every
  emission with ``if self.tracer.enabled:``, so a disabled tracer costs
  one attribute load and one branch per potential event — no record is
  ever constructed;
* **enabled** — every event is appended to a bounded ring buffer (the
  most recent N events, the harness's crash window) and, when a sink is
  configured, streamed to a JSONL file so arbitrarily long runs can be
  traced without holding them in memory.

The ring buffer *overflows by design*: when full, the oldest event is
dropped (and counted in :attr:`Tracer.dropped`); the JSONL sink still
receives every event.
"""

from __future__ import annotations

import io
from collections import deque
from typing import Any, Dict, List, Optional, Union

from repro.obs.events import TraceEvent

#: Default ring capacity: enough context to diagnose a crash without
#: holding a long run in memory.
DEFAULT_CAPACITY = 65_536


class NullTracer:
    """The disabled tracer: emission is guarded out at every call site.

    ``emit`` methods still exist (and do nothing) so an unguarded call
    site is a bug in *performance*, not correctness; the overhead-guard
    test patches them to assert hot paths never reach one.
    """

    __slots__ = ()

    enabled = False
    dropped = 0
    emitted = 0

    def emit(self, kind: str, cycle: int = 0, core: "Optional[int]" = None,
             address: "Optional[int]" = None, dgroup: "Optional[int]" = None,
             **data: Any) -> None:
        """No-op (call sites must guard with ``if tracer.enabled:``)."""

    def emit_event(self, event: TraceEvent) -> None:
        """No-op (call sites must guard with ``if tracer.enabled:``)."""

    def events(self) -> "List[TraceEvent]":
        return []

    def close(self) -> None:
        pass

    def __reduce__(self):
        # Pickle back to the shared singleton so identity checks
        # (``tracer is NO_TRACE``) survive checkpoint round trips.
        return (_no_trace, ())


def _no_trace() -> "NullTracer":
    return NO_TRACE


#: Shared disabled tracer; every traceable component defaults to it.
NO_TRACE = NullTracer()


class Tracer:
    """Enabled tracer: ring buffer of recent events + optional JSONL sink.

    Args:
        capacity: ring-buffer size (most recent events kept in memory).
        sink: path of a JSONL file to stream every event to, or an open
            text file-like object, or None for ring-only tracing.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sink: "Union[str, io.TextIOBase, None]" = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.ring: "deque[TraceEvent]" = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0
        self.sink_path: "Optional[str]" = None
        self._owns_sink = False
        if isinstance(sink, str):
            self.sink_path = sink
            self._sink: "Optional[io.TextIOBase]" = open(sink, "w", encoding="utf-8")
            self._owns_sink = True
        else:
            self._sink = sink

    # ------------------------------------------------------------------

    def emit(
        self,
        kind: str,
        cycle: int = 0,
        core: "Optional[int]" = None,
        address: "Optional[int]" = None,
        dgroup: "Optional[int]" = None,
        **data: Any,
    ) -> None:
        """Record one event (keyword extras become the ``data`` payload)."""
        self.emit_event(TraceEvent(kind, cycle, core, address, dgroup, data))

    def emit_event(self, event: TraceEvent) -> None:
        """Record an already-constructed event."""
        ring = self.ring
        if len(ring) == self.capacity:
            self.dropped += 1
        ring.append(event)
        self.emitted += 1
        if self._sink is not None:
            self._sink.write(event.to_json_line())
            self._sink.write("\n")

    # ------------------------------------------------------------------

    def events(self, kind: "Optional[str]" = None) -> "List[TraceEvent]":
        """The ring-buffer contents, oldest first (optionally one kind)."""
        if kind is None:
            return list(self.ring)
        return [event for event in self.ring if event.kind == kind]

    def tail(self, count: int) -> "List[TraceEvent]":
        """The most recent ``count`` ring-buffer events, oldest first."""
        if count <= 0:
            return []
        return list(self.ring)[-count:]

    def counts(self) -> "Dict[str, int]":
        """Ring-buffer event counts by kind (diagnostic summaries)."""
        out: "Dict[str, int]" = {}
        for event in self.ring:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and close the sink (ring contents stay readable)."""
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = ["DEFAULT_CAPACITY", "NO_TRACE", "NullTracer", "Tracer"]
