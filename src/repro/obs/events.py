"""Typed trace-event records: the one serialization schema for events.

Every observable occurrence in a run — an L2 access outcome, a
controlled-replication pointer return, a MESIC transition, a capacity-
stealing promotion, a bus broadcast, a harness fault or invariant
violation — is recorded as one :class:`TraceEvent` and serialized as
one JSON object per line (JSONL).  The harness's event-window dumps,
the streaming trace sink, and the Perfetto exporter all read and write
this schema; nothing else in the repository serializes events.

Record schema (one JSON object per ``.jsonl`` line)::

    {
      "kind":    str,          # one of KINDS below
      "cycle":   int,          # issuing core's cycle (virtual clock)
      "core":    int | null,   # issuing/holding core, if any
      "address": int | null,   # block address, if any
      "dgroup":  int | null,   # d-group acted on, if any
      "data":    object        # kind-specific payload (see KINDS)
    }

Kinds and their ``data`` payloads:

================  =====================================================
``step``          one workload event presented to the system —
                  replayable: ``{type, sharing, gap, colocated}``
``access``        L2-reaching access outcome:
                  ``{type, miss_class, latency, distance}``
``pointer-return``  CR first use: tag-only copy; ``dgroup`` names the
                  supplier's d-group
``replication``   CR second use: data copied into ``dgroup``
``transition``    MESIC state change: ``{from, to, trigger}``
``c-write``       ISC write hit in C: in-place write-through
``relocation``    ISC read miss on dirty: copy moved to ``dgroup``;
                  ``{from_dgroup}``
``c-migration``   C-block migration extension: ``{from_dgroup}``
``promotion``     CS promotion into ``dgroup``: ``{from_dgroup}``
``demotion``      CS demotion into ``dgroup``: ``{from_dgroup}``
``eviction``      distance replacement freed a frame in ``dgroup``:
                  ``{shared, dirty}``
``bus``           one bus broadcast: ``{op}`` (BusRd, BusRdX, BusUpg,
                  BusRepl, WrThru)
``fault``         harness fault injection:
                  ``{fault, at_index, applied, description}``
``violation``     invariant violation: ``{invariant, access_index,
                  detail, dump_path}``
``retry``         sweep supervision re-queued a failed cell:
                  ``{cell, attempt, backoff_seconds, after}``
``quarantine``    a cell exhausted its retries and was skipped:
                  ``{cell, attempts, last_failure}``
``worker-death``  a sweep worker process died or was SIGKILLed:
                  ``{cell, reason | exitcode, attempt}``
``shard-corrupt`` an unreadable shard journal was quarantined:
                  ``{shard, quarantined_to}``
================  =====================================================
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Tuple

# Event kind constants (module-level so hot paths avoid enum overhead).
STEP = "step"
ACCESS = "access"
POINTER_RETURN = "pointer-return"
REPLICATION = "replication"
TRANSITION = "transition"
C_WRITE = "c-write"
RELOCATION = "relocation"
C_MIGRATION = "c-migration"
PROMOTION = "promotion"
DEMOTION = "demotion"
EVICTION = "eviction"
BUS = "bus"
FAULT = "fault"
VIOLATION = "violation"
RETRY = "retry"
QUARANTINE = "quarantine"
WORKER_DEATH = "worker-death"
SHARD_CORRUPT = "shard-corrupt"

#: Every recognized event kind, in documentation order.
KINDS = frozenset(
    (
        STEP,
        ACCESS,
        POINTER_RETURN,
        REPLICATION,
        TRANSITION,
        C_WRITE,
        RELOCATION,
        C_MIGRATION,
        PROMOTION,
        DEMOTION,
        EVICTION,
        BUS,
        FAULT,
        VIOLATION,
        RETRY,
        QUARANTINE,
        WORKER_DEATH,
        SHARD_CORRUPT,
    )
)

#: Top-level record fields, in serialization order.
FIELDS = ("kind", "cycle", "core", "address", "dgroup", "data")


class TraceEvent:
    """One structured event record.

    A plain slotted class: tracing-enabled runs construct one of these
    per observable event, so construction cost matters.
    """

    __slots__ = FIELDS

    def __init__(
        self,
        kind: str,
        cycle: int = 0,
        core: "Optional[int]" = None,
        address: "Optional[int]" = None,
        dgroup: "Optional[int]" = None,
        data: "Optional[Dict[str, Any]]" = None,
    ) -> None:
        self.kind = kind
        self.cycle = cycle
        self.core = core
        self.address = address
        self.dgroup = dgroup
        self.data = data if data is not None else {}

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "kind": self.kind,
            "cycle": self.cycle,
            "core": self.core,
            "address": self.address,
            "dgroup": self.dgroup,
            "data": self.data,
        }

    def to_json_line(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @staticmethod
    def from_dict(record: "Dict[str, Any]") -> "TraceEvent":
        errors = validate_record(record)
        if errors:
            raise ValueError("; ".join(errors))
        return TraceEvent(
            record["kind"],
            record.get("cycle", 0),
            record.get("core"),
            record.get("address"),
            record.get("dgroup"),
            record.get("data") or {},
        )

    def __repr__(self) -> str:
        return (
            f"TraceEvent({self.kind!r}, cycle={self.cycle}, core={self.core}, "
            f"address={self.address!r}, dgroup={self.dgroup}, data={self.data!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.to_dict() == other.to_dict()


def validate_record(record: object) -> "List[str]":
    """Return schema violations for one deserialized record (empty = ok)."""
    errors: "List[str]" = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]
    kind = record.get("kind")
    if kind not in KINDS:
        errors.append(f"unknown kind {kind!r}")
    cycle = record.get("cycle", 0)
    if not isinstance(cycle, int) or isinstance(cycle, bool) or cycle < 0:
        errors.append(f"cycle must be a non-negative integer, got {cycle!r}")
    for field in ("core", "address", "dgroup"):
        value = record.get(field)
        if value is not None and (not isinstance(value, int) or isinstance(value, bool)):
            errors.append(f"{field} must be an integer or null, got {value!r}")
    data = record.get("data", {})
    if not isinstance(data, dict):
        errors.append(f"data must be an object, got {type(data).__name__}")
    unknown = set(record) - set(FIELDS)
    if unknown:
        errors.append(f"unknown fields {sorted(unknown)}")
    return errors


def read_jsonl(path: str) -> "Iterator[TraceEvent]":
    """Yield the events of a JSONL trace file (raises on a bad record)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: not JSON: {error}") from None
            try:
                yield TraceEvent.from_dict(record)
            except ValueError as error:
                raise ValueError(f"{path}:{line_number}: {error}") from None


def validate_jsonl(path: str) -> "Tuple[int, List[str]]":
    """Validate every line of a JSONL trace; returns (count, errors).

    Unlike :func:`read_jsonl` this does not stop at the first bad
    record: it collects one message per invalid line so a CI job can
    report everything wrong with an emitted trace at once.
    """
    count = 0
    errors: "List[str]" = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            count += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                errors.append(f"line {line_number}: not JSON: {error}")
                continue
            for problem in validate_record(record):
                errors.append(f"line {line_number}: {problem}")
    return count, errors


def timed_access_from_event(event: TraceEvent):
    """Rebuild the replayable :class:`TimedAccess` behind a ``step`` record.

    The inverse of the ``step`` emission in :meth:`CmpSystem.step`; used
    by the harness to turn its ring-buffer window into a replayable
    trace file.  Imports lazily — :mod:`repro.cpu.system` imports the
    tracer via the design base class, and this module must stay
    importable from there.
    """
    if event.kind != STEP:
        raise ValueError(f"expected a {STEP!r} event, got {event.kind!r}")
    from repro.common.types import Access, AccessType, SharingClass
    from repro.cpu.system import TimedAccess

    data = event.data
    access = Access(
        event.core if event.core is not None else 0,
        event.address if event.address is not None else 0,
        AccessType(data.get("type", "read")),
        SharingClass(data.get("sharing", "private")),
    )
    return TimedAccess(
        access, gap=int(data.get("gap", 0)), colocated=int(data.get("colocated", 0))
    )


__all__ = [
    "ACCESS",
    "BUS",
    "C_MIGRATION",
    "C_WRITE",
    "DEMOTION",
    "EVICTION",
    "FAULT",
    "FIELDS",
    "KINDS",
    "POINTER_RETURN",
    "PROMOTION",
    "QUARANTINE",
    "RELOCATION",
    "REPLICATION",
    "RETRY",
    "SHARD_CORRUPT",
    "STEP",
    "TRANSITION",
    "TraceEvent",
    "VIOLATION",
    "WORKER_DEATH",
    "read_jsonl",
    "timed_access_from_event",
    "validate_jsonl",
    "validate_record",
]
