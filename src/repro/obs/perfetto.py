"""Chrome trace-event exporter: open a simulator run in Perfetto.

Converts a stream of :class:`~repro.obs.events.TraceEvent` records into
the Chrome trace-event JSON format (the ``traceEvents`` array form),
which ``ui.perfetto.dev`` and ``chrome://tracing`` both load directly.

Track mapping:

* **process "cores"** — one thread per core.  L2-reaching accesses
  render as complete ("X") slices whose duration is the access latency
  in cycles, so stalls are visible as slice width; protocol events
  (pointer returns, MESIC transitions, C-state writes) are instants on
  the issuing core's thread.
* **process "d-groups"** — one thread per d-group.  Block-movement
  events (replication, relocation, promotion, demotion, eviction,
  C-migration) are instants on the *destination* (or freed) d-group's
  thread, so capacity pressure and migration churn per d-group are
  visible at a glance.
* **process "system"** — thread 0 carries bus transactions, thread 1
  carries harness events (faults, invariant violations).

Timestamps are simulated cycles reported as microseconds (Perfetto
needs *some* time unit; one cycle = 1 µs keeps the numbers readable).
``step`` records are skipped — they duplicate the ``access`` outcomes
at L1 granularity and exist for replay, not visualization.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.obs import events as ev
from repro.obs.events import TraceEvent, read_jsonl

PID_CORES = 1
PID_DGROUPS = 2
PID_SYSTEM = 3

TID_BUS = 0
TID_HARNESS = 1

#: Kinds rendered as instants on the destination d-group's thread.
_DGROUP_KINDS = frozenset(
    (ev.REPLICATION, ev.RELOCATION, ev.PROMOTION, ev.DEMOTION, ev.EVICTION,
     ev.C_MIGRATION)
)

#: Kinds rendered as instants on the issuing core's thread.
_CORE_KINDS = frozenset((ev.POINTER_RETURN, ev.TRANSITION, ev.C_WRITE))

#: Kinds rendered on the system process's harness thread (sweep
#: supervision events carry no core/d-group; the harness track keeps a
#: chaos run's retries/kills/quarantines on one timeline).
_HARNESS_KINDS = frozenset(
    (ev.FAULT, ev.VIOLATION, ev.RETRY, ev.QUARANTINE, ev.WORKER_DEATH,
     ev.SHARD_CORRUPT)
)


def _metadata(pid: int, name: str, tid: "Optional[int]" = None,
              thread_name: "Optional[str]" = None) -> "Dict[str, Any]":
    if tid is None:
        return {"ph": "M", "pid": pid, "name": "process_name",
                "args": {"name": name}}
    return {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": thread_name or name}}


def _args(event: TraceEvent) -> "Dict[str, Any]":
    args: "Dict[str, Any]" = dict(event.data)
    if event.address is not None:
        args["address"] = f"{event.address:#x}"
    if event.core is not None:
        args["core"] = event.core
    if event.dgroup is not None:
        args["dgroup"] = event.dgroup
    return args


def export_chrome_trace(
    trace_events: "Iterable[TraceEvent]", out_path: "Optional[str]" = None
) -> "Dict[str, Any]":
    """Build (and optionally write) a Chrome trace-event JSON payload."""
    out: "List[Dict[str, Any]]" = []
    cores_seen: "set[int]" = set()
    dgroups_seen: "set[int]" = set()
    bus_seen = harness_seen = False
    skipped = 0

    for event in trace_events:
        ts = float(event.cycle)
        if event.kind == ev.STEP:
            skipped += 1
            continue
        if event.kind == ev.ACCESS:
            core = event.core if event.core is not None else 0
            cores_seen.add(core)
            out.append(
                {
                    "ph": "X",
                    "pid": PID_CORES,
                    "tid": core,
                    "ts": ts,
                    "dur": max(float(event.data.get("latency", 0)), 1.0),
                    "name": f"L2 {event.data.get('miss_class', 'access')}",
                    "cat": "l2",
                    "args": _args(event),
                }
            )
            continue
        if event.kind in _DGROUP_KINDS and event.dgroup is not None:
            dgroups_seen.add(event.dgroup)
            out.append(
                {
                    "ph": "i",
                    "pid": PID_DGROUPS,
                    "tid": event.dgroup,
                    "ts": ts,
                    "s": "t",
                    "name": event.kind,
                    "cat": "movement",
                    "args": _args(event),
                }
            )
            continue
        if event.kind == ev.BUS:
            bus_seen = True
            out.append(
                {
                    "ph": "i",
                    "pid": PID_SYSTEM,
                    "tid": TID_BUS,
                    "ts": ts,
                    "s": "t",
                    "name": str(event.data.get("op", "bus")),
                    "cat": "bus",
                    "args": _args(event),
                }
            )
            continue
        if event.kind in _HARNESS_KINDS:
            harness_seen = True
            out.append(
                {
                    "ph": "i",
                    "pid": PID_SYSTEM,
                    "tid": TID_HARNESS,
                    "ts": ts,
                    "s": "g",
                    "name": event.kind,
                    "cat": "harness",
                    "args": _args(event),
                }
            )
            continue
        # Core-track instants: _CORE_KINDS plus anything unrecognized
        # (forward compatibility — a new kind still renders somewhere).
        core = event.core if event.core is not None else 0
        cores_seen.add(core)
        out.append(
            {
                "ph": "i",
                "pid": PID_CORES,
                "tid": core,
                "ts": ts,
                "s": "t",
                "name": event.kind,
                "cat": "protocol",
                "args": _args(event),
            }
        )

    metadata: "List[Dict[str, Any]]" = [_metadata(PID_CORES, "cores")]
    for core in sorted(cores_seen):
        metadata.append(_metadata(PID_CORES, "cores", core, f"core {core}"))
    if dgroups_seen:
        metadata.append(_metadata(PID_DGROUPS, "d-groups"))
        for dgroup in sorted(dgroups_seen):
            metadata.append(
                _metadata(PID_DGROUPS, "d-groups", dgroup, f"d-group {dgroup}")
            )
    if bus_seen or harness_seen:
        metadata.append(_metadata(PID_SYSTEM, "system"))
        if bus_seen:
            metadata.append(_metadata(PID_SYSTEM, "system", TID_BUS, "bus"))
        if harness_seen:
            metadata.append(
                _metadata(PID_SYSTEM, "system", TID_HARNESS, "harness")
            )

    payload: "Dict[str, Any]" = {
        "traceEvents": metadata + out,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro-sim",
            "time_unit": "1 simulated cycle = 1 us",
            "skipped_step_records": skipped,
        },
    }
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
            handle.write("\n")
    return payload


def export_jsonl(jsonl_path: str, out_path: "Optional[str]" = None) -> "Dict[str, Any]":
    """Convert a recorded JSONL trace file to Chrome trace-event JSON."""
    return export_chrome_trace(read_jsonl(jsonl_path), out_path)


# ----------------------------------------------------------------------

_PHASES = frozenset(("M", "X", "i", "I", "C", "B", "E", "b", "e", "n", "s", "t", "f"))


def validate_chrome_trace(payload: object) -> "List[str]":
    """Check a payload against the Chrome trace-event schema.

    Covers the subset this exporter emits (plus the common phases), so
    tests and CI can assert an exported file will load in Perfetto.
    Returns a list of problems; empty means valid.
    """
    errors: "List[str]" = []
    if not isinstance(payload, dict):
        return [f"payload is {type(payload).__name__}, expected object"]
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["payload.traceEvents must be a list"]
    for index, entry in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = entry.get("ph")
        if phase not in _PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(entry.get("name"), str):
            errors.append(f"{where}: name must be a string")
        pid = entry.get("pid")
        if not isinstance(pid, int) or isinstance(pid, bool):
            errors.append(f"{where}: pid must be an integer")
        if phase == "M":
            if entry.get("name") not in ("process_name", "thread_name",
                                         "process_labels", "process_sort_index",
                                         "thread_sort_index"):
                errors.append(f"{where}: unknown metadata name {entry.get('name')!r}")
            continue
        ts = entry.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: ts must be a non-negative number")
        tid = entry.get("tid")
        if tid is not None and (not isinstance(tid, int) or isinstance(tid, bool)):
            errors.append(f"{where}: tid must be an integer")
        if phase == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                errors.append(f"{where}: X event dur must be a non-negative number")
        if phase in ("i", "I"):
            scope = entry.get("s", "t")
            if scope not in ("t", "p", "g"):
                errors.append(f"{where}: instant scope must be t/p/g, got {scope!r}")
        args = entry.get("args")
        if args is not None and not isinstance(args, dict):
            errors.append(f"{where}: args must be an object")
    return errors


__all__ = [
    "PID_CORES",
    "PID_DGROUPS",
    "PID_SYSTEM",
    "export_chrome_trace",
    "export_jsonl",
    "validate_chrome_trace",
]
