"""Observability: event tracing, time-series metrics, and profiling.

The simulator's window into *mechanisms*, not just end-of-run
aggregates:

* :mod:`repro.obs.events` — the typed event-record schema (JSONL), the
  single source of truth for event serialization;
* :mod:`repro.obs.tracer` — zero-cost-when-disabled structured tracer
  with a bounded ring buffer and a streaming JSONL sink;
* :mod:`repro.obs.perfetto` — Chrome trace-event exporter, so a run
  opens in ``ui.perfetto.dev`` with cores and d-groups as tracks;
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  interval sampling into an exportable time-series;
* :mod:`repro.obs.profiler` — wall-clock timers around the simulator's
  hot paths.
"""

from repro.obs.events import TraceEvent, read_jsonl, validate_jsonl
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    MetricsSeries,
)
from repro.obs.perfetto import export_chrome_trace, export_jsonl, validate_chrome_trace
from repro.obs.profiler import Profiler
from repro.obs.tracer import NO_TRACE, NullTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "MetricsSeries",
    "NO_TRACE",
    "NullTracer",
    "Profiler",
    "TraceEvent",
    "Tracer",
    "export_chrome_trace",
    "export_jsonl",
    "read_jsonl",
    "validate_chrome_trace",
    "validate_jsonl",
]
