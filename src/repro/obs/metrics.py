"""Metrics registry with interval sampling into a time-series.

Three metric primitives — :class:`Counter`, :class:`Gauge`, and
:class:`Histogram` — live in a :class:`MetricsRegistry`.  A
:class:`MetricsCollector` binds the registry to a running
:class:`~repro.cpu.system.CmpSystem`: the system's hot loop calls
:meth:`MetricsCollector.on_step` once per event (one ``is not None``
check when collection is off), per-L2-access observations update the
access counters and the latency histogram, and every ``sample_every``
events the collector snapshots the registry plus sampled model state
(per-d-group occupancy and average hit latency, C-block count, bus
transactions, per-core IPC) into a :class:`MetricsSeries`.

Samples are **cumulative** (each snapshot is the state so far, like
Prometheus counters): the final sample reproduces the run's aggregate
:class:`~repro.common.stats.SimulationStats`, and per-interval rates
are first differences (:meth:`MetricsSeries.deltas`).  The series
exports as JSON or CSV for experiments and dashboards.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.types import AccessResult

#: Latency histogram bucket upper bounds (cycles); the last bucket is
#: unbounded.  Chosen around Table 1's latencies: tag (~4), d-group
#: (8-24), bus (32), memory (300+).
DEFAULT_LATENCY_BOUNDS = (8, 16, 32, 64, 128, 256, 512)

# Sweep-supervision counter names (the parallel executor's registry;
# surfaced in ParallelReport.counters and the chaos harness).
SWEEP_RETRY = "sweep.retry"
SWEEP_QUARANTINE = "sweep.quarantine"
SWEEP_TIMEOUT = "sweep.timeout"
SWEEP_WORKER_DEATH = "sweep.worker_death"
SWEEP_SHARD_CORRUPT = "sweep.shard_corrupt"
SWEEP_FALLBACK = "sweep.fallback_serial"

#: Every supervision counter, in reporting order.
SUPERVISION_COUNTERS = (
    SWEEP_RETRY,
    SWEEP_QUARANTINE,
    SWEEP_TIMEOUT,
    SWEEP_WORKER_DEATH,
    SWEEP_SHARD_CORRUPT,
    SWEEP_FALLBACK,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A value sampled at snapshot time (occupancy, utilization, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """A bucketed distribution with running count and sum.

    ``bounds`` are inclusive upper bucket edges; one extra unbounded
    bucket catches everything above the last edge.
    """

    __slots__ = ("bounds", "buckets", "count", "total")

    def __init__(self, bounds: "Sequence[float]" = DEFAULT_LATENCY_BOUNDS) -> None:
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def record(self, value: float) -> None:
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.buckets[index] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation within the bucket the rank lands in,
        assuming values spread uniformly across it (the Prometheus
        ``histogram_quantile`` model); the first bucket interpolates
        from 0, and a rank landing in the unbounded overflow bucket
        reports the last finite edge — the tightest claim the buckets
        support.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            if cumulative + bucket_count >= target:
                if index >= len(self.bounds):  # overflow bucket
                    return float(self.bounds[-1]) if self.bounds else 0.0
                lo = float(self.bounds[index - 1]) if index else 0.0
                hi = float(self.bounds[index])
                if not bucket_count:
                    return hi
                return lo + (hi - lo) * (target - cumulative) / bucket_count
            cumulative += bucket_count
        return float(self.bounds[-1]) if self.bounds else 0.0

    def snapshot(self) -> "Dict[str, Any]":
        labels = [f"<={bound:g}" for bound in self.bounds] + [
            f">{self.bounds[-1]:g}" if self.bounds else "all"
        ]
        return {
            "buckets": dict(zip(labels, self.buckets)),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named metrics with get-or-create accessors and one-call snapshot."""

    def __init__(self) -> None:
        self._metrics: "Dict[str, Any]" = {}

    def _get(self, name: str, factory, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(
        self, name: str, bounds: "Sequence[float]" = DEFAULT_LATENCY_BOUNDS
    ) -> Histogram:
        return self._get(name, lambda: Histogram(bounds), Histogram)

    def snapshot(self) -> "Dict[str, Any]":
        return {name: metric.snapshot() for name, metric in sorted(self._metrics.items())}


# ----------------------------------------------------------------------


def _flatten(prefix: str, value: object, out: "Dict[str, Any]") -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), sub, out)
    elif isinstance(value, (list, tuple)):
        for index, sub in enumerate(value):
            _flatten(f"{prefix}.{index}", sub, out)
    else:
        out[prefix] = value


class MetricsSeries:
    """The time-series of interval snapshots one collector produced."""

    def __init__(self, sample_every: int) -> None:
        self.sample_every = sample_every
        self.samples: "List[Dict[str, Any]]" = []

    def __len__(self) -> int:
        return len(self.samples)

    def append(self, sample: "Dict[str, Any]") -> None:
        self.samples.append(sample)

    def flat_samples(self) -> "List[Dict[str, Any]]":
        """Samples with nested keys flattened to dotted column names."""
        out = []
        for sample in self.samples:
            flat: "Dict[str, Any]" = {}
            _flatten("", sample, flat)
            out.append(flat)
        return out

    def deltas(self, key: str) -> "List[float]":
        """First differences of one flattened cumulative column."""
        values = [sample.get(key, 0) or 0 for sample in self.flat_samples()]
        previous = 0.0
        out = []
        for value in values:
            out.append(value - previous)
            previous = value
        return out

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {"sample_every": self.sample_every, "samples": self.samples},
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")

    def to_csv(self, path: str) -> None:
        flat = self.flat_samples()
        columns: "List[str]" = []
        seen = set()
        for sample in flat:
            for key in sample:
                if key not in seen:
                    seen.add(key)
                    columns.append(key)
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns, restval="")
            writer.writeheader()
            for sample in flat:
                writer.writerow(sample)


# ----------------------------------------------------------------------


class MetricsCollector:
    """Samples a live system into a :class:`MetricsSeries`.

    Bound to a system by :class:`~repro.cpu.system.CmpSystem` (pass it
    as the ``metrics`` argument, or call :meth:`bind`).  The system
    calls :meth:`on_step` per event and :meth:`observe_l2` per
    L2-reaching access; everything else happens at sample boundaries.
    """

    def __init__(self, sample_every: int = 10_000) -> None:
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.sample_every = sample_every
        self.registry = MetricsRegistry()
        self.series = MetricsSeries(sample_every)
        self.events = 0
        self._system = None
        # Hot-path metric objects, resolved once.
        self._latency = self.registry.histogram("l2.latency")
        self._by_class: "Dict[object, Counter]" = {}

    def bind(self, system) -> "MetricsCollector":
        self._system = system
        return self

    # -- hot-path hooks -------------------------------------------------

    def on_step(self) -> None:
        """Called once per executed workload event."""
        self.events += 1
        if self.events % self.sample_every == 0:
            self.sample()

    def observe_l2(self, result: AccessResult) -> None:
        """Called once per access that reached the L2 design."""
        counter = self._by_class.get(result.miss_class)
        if counter is None:
            counter = self.registry.counter(f"l2.{result.miss_class.value}")
            self._by_class[result.miss_class] = counter
        counter.inc()
        self._latency.record(result.latency)

    # -- sampling -------------------------------------------------------

    def reset(self) -> None:
        """Start a fresh measurement window (after warm-up).

        Counters and the latency histogram restart from zero — mirroring
        :meth:`CmpSystem.reset_stats`, so the series reproduces the
        post-warm-up aggregates — and already-taken warm-up samples are
        dropped.
        """
        self.registry = MetricsRegistry()
        self._latency = self.registry.histogram("l2.latency")
        self._by_class = {}
        self.series = MetricsSeries(self.sample_every)

    def sample(self) -> "Dict[str, Any]":
        """Take one snapshot now and append it to the series."""
        system = self._system
        snapshot: "Dict[str, Any]" = {
            "event_index": self.events,
            "metrics": self.registry.snapshot(),
        }
        if system is not None:
            snapshot.update(self._system_state(system))
        self.series.append(snapshot)
        return snapshot

    def finish(self) -> MetricsSeries:
        """Take a final snapshot (unless one just happened) and return
        the series."""
        if not self.series.samples or (
            self.series.samples[-1]["event_index"] != self.events
        ):
            self.sample()
        return self.series

    # -- model-state sampling (duck-typed across designs) ---------------

    @staticmethod
    def _system_state(system) -> "Dict[str, Any]":
        design = system.design
        state: "Dict[str, Any]" = {
            "cycle": max((core.cycles for core in system.cores), default=0),
            "accesses": {
                miss_class.value: count
                for miss_class, count in sorted(
                    design.stats.counts.items(), key=lambda item: item[0].value
                )
            },
            "miss_rate": design.stats.miss_rate,
            "per_core": [
                {
                    "instructions": core.measured_instructions,
                    "cycles": core.measured_cycles,
                    "ipc": core.ipc,
                }
                for core in system.cores
            ],
        }
        bus_stats = getattr(design, "bus_stats", None)
        if bus_stats is None:
            bus = getattr(design, "bus", None)
            bus_stats = bus.stats if bus is not None else None
        if bus_stats is not None:
            state["bus"] = {
                "total": bus_stats.total,
                "by_op": dict(sorted(bus_stats.transactions.items())),
            }
        data = getattr(design, "data", None)
        if data is not None and hasattr(data, "dgroups"):
            state["dgroups"] = MetricsCollector._dgroup_state(design)
        tags = getattr(design, "tags", None)
        if tags is not None:
            state["c_blocks"] = MetricsCollector._count_c_blocks(tags)
        return state

    @staticmethod
    def _dgroup_state(design) -> "Dict[str, Any]":
        occupancy = {}
        for group in design.data.dgroups:
            occupancy[str(group.index)] = group.occupied_count
        crossbar = getattr(design, "crossbar", None)
        hit_latency = {}
        if crossbar is not None:
            totals: "Dict[int, Tuple[int, int]]" = {}
            for (core, dgroup), count in crossbar.traffic.items():
                accesses, cycles = totals.get(dgroup, (0, 0))
                totals[dgroup] = (
                    accesses + count,
                    cycles + count * crossbar.dgroup_latencies[core][dgroup],
                )
            for dgroup, (accesses, cycles) in sorted(totals.items()):
                hit_latency[str(dgroup)] = cycles / accesses if accesses else 0.0
        return {"occupancy": occupancy, "avg_hit_latency": hit_latency}

    @staticmethod
    def _count_c_blocks(tags) -> int:
        from repro.coherence.states import CoherenceState

        count = 0
        for tag_array in tags:
            for _set, _way, entry in tag_array.array.valid_entries():
                if entry.state is CoherenceState.COMMUNICATION:
                    count += 1
        return count


__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BOUNDS",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "MetricsSeries",
    "SUPERVISION_COUNTERS",
    "SWEEP_FALLBACK",
    "SWEEP_QUARANTINE",
    "SWEEP_RETRY",
    "SWEEP_SHARD_CORRUPT",
    "SWEEP_TIMEOUT",
    "SWEEP_WORKER_DEATH",
]
