"""Wall-clock profiling hooks for the simulator's hot paths.

A :class:`Profiler` accumulates per-section call counts and elapsed
wall-clock time.  Sections nest safely — recursive code (distance
replacement's demotion chain) accumulates elapsed time only at the
outermost frame, so totals never double-count.

Hot paths stay untouched when profiling is off: instead of permanent
timing calls, :meth:`Profiler.instrument` *shadows* the bound methods
of one live system with timed wrappers (an instance attribute hides the
class method), so a run without a profiler executes the original code
with zero overhead.  Instrumented sections:

=======================  =============================================
``l2-lookup``            :meth:`L2Design.access` (tag lookup + design
                         access handling, the simulator's core)
``distance-replacement``  ``_make_room`` (demotion chains), when the
                         design has one
``bus-arbitration``      :meth:`SnoopBus.issue`, when the design owns a
                         snoopy bus
``crossbar``             :meth:`Crossbar.access`, when present
``invariant-check``      the harness's periodic model check (timed by
                         the runner via :meth:`section`)
=======================  =============================================
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List


class Section:
    """Accumulated timings for one named section."""

    __slots__ = ("name", "calls", "seconds", "_depth", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0
        self._depth = 0
        self._started = 0.0

    def enter(self) -> None:
        self.calls += 1
        if self._depth == 0:
            self._started = time.perf_counter()
        self._depth += 1

    def exit(self) -> None:
        self._depth -= 1
        if self._depth == 0:
            self.seconds += time.perf_counter() - self._started

    @property
    def mean_us(self) -> float:
        return 1e6 * self.seconds / self.calls if self.calls else 0.0


class Profiler:
    """Per-section wall-clock accounting with opt-in instrumentation."""

    def __init__(self) -> None:
        self.sections: "Dict[str, Section]" = {}
        self._wall_started = time.perf_counter()

    def _section(self, name: str) -> Section:
        section = self.sections.get(name)
        if section is None:
            section = Section(name)
            self.sections[name] = section
        return section

    @contextmanager
    def section(self, name: str) -> "Iterator[None]":
        """Time one block: ``with profiler.section("invariant-check"):``."""
        section = self._section(name)
        section.enter()
        try:
            yield
        finally:
            section.exit()

    def wrap(self, name: str, fn: "Callable[..., Any]") -> "Callable[..., Any]":
        """A timed wrapper around ``fn`` accumulating into ``name``."""
        section = self._section(name)

        def timed(*args: Any, **kwargs: Any) -> Any:
            section.enter()
            try:
                return fn(*args, **kwargs)
            finally:
                section.exit()

        timed.__wrapped__ = fn  # type: ignore[attr-defined]
        return timed

    # ------------------------------------------------------------------

    def instrument(self, system) -> "Profiler":
        """Shadow one system's hot-path methods with timed wrappers.

        Only this system instance is affected; other systems (and runs
        without a profiler) execute the original, unwrapped methods.
        """
        design = system.design
        design.access = self.wrap("l2-lookup", design.access)
        make_room = getattr(design, "_make_room", None)
        if make_room is not None:
            design._make_room = self.wrap("distance-replacement", make_room)
        bus = getattr(design, "bus", None)
        if bus is not None and hasattr(bus, "issue"):
            bus.issue = self.wrap("bus-arbitration", bus.issue)
        crossbar = getattr(design, "crossbar", None)
        if crossbar is not None and hasattr(crossbar, "access"):
            crossbar.access = self.wrap("crossbar", crossbar.access)
        return self

    # ------------------------------------------------------------------

    def report(self) -> str:
        """Human-readable table: calls, total ms, mean µs, wall share."""
        wall = max(time.perf_counter() - self._wall_started, 1e-12)
        rows: "List[tuple[str, str, str, str, str]]" = []
        for section in sorted(
            self.sections.values(), key=lambda s: s.seconds, reverse=True
        ):
            rows.append(
                (
                    section.name,
                    str(section.calls),
                    f"{1e3 * section.seconds:.2f}",
                    f"{section.mean_us:.2f}",
                    f"{100.0 * section.seconds / wall:.1f}%",
                )
            )
        headers = ("section", "calls", "total ms", "mean us", "wall share")
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
            "  ".join("-" * widths[i] for i in range(len(headers))),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        lines.append(f"wall clock: {wall:.3f}s")
        return "\n".join(lines)

    def snapshot(self) -> "Dict[str, Dict[str, float]]":
        """Machine-readable timings (tests and JSON reports)."""
        return {
            name: {
                "calls": section.calls,
                "seconds": section.seconds,
                "mean_us": section.mean_us,
            }
            for name, section in self.sections.items()
        }


__all__ = ["Profiler", "Section"]
