"""Command-line interface.

Drives the library without writing Python::

    python -m repro.cli compare --workload oltp
    python -m repro.cli run --design cmp-nurapid --mix MIX1 --chart
    python -m repro.cli experiment fig10 --quick
    python -m repro.cli latency
    python -m repro.cli trace generate --workload apache --out trace.txt
    python -m repro.cli trace run trace.txt --design private

Also installed as the ``repro-sim`` console script.
"""

from __future__ import annotations

import argparse
import itertools
import sys
from typing import Iterable, Optional, Sequence

from repro.common.rng import DEFAULT_SEED
from repro.common.types import MissClass
from repro.cpu.system import CmpSystem, TimedAccess
from repro.experiments import ablations, energy_report, sensitivity, smp_contrast, suite
from repro.experiments.charts import BarGroup, StackedBar, render_grouped_bars, render_stacked_bars
from repro.experiments.report import format_table, pct
from repro.experiments.runner import DESIGN_FACTORIES, ExperimentConfig, build_design
from repro.latency import cacti, tables
from repro.workloads import tracefile
from repro.workloads.multiprogrammed import MIXES, make_mix
from repro.workloads.multithreaded import MULTITHREADED, make_workload

_WORKLOAD_NAMES = tuple(spec.name for spec in MULTITHREADED)


def _workload_name(args) -> str:
    """The selected workload/mix label (default: oltp)."""
    return args.mix or args.workload or "oltp"


def _make_events(args) -> "tuple[Iterable[TimedAccess], int, int]":
    """Build the event stream; returns (events, warmup_events, cores)."""
    total = args.warmup + args.accesses
    if args.mix:
        workload = make_mix(args.mix, seed=args.seed)
    else:
        workload = make_workload(args.workload or "oltp", seed=args.seed)
    events = workload.events(accesses_per_core=total)
    return events, args.warmup * workload.num_cores, workload.num_cores


def _run_one(design_name: str, args):
    design = build_design(design_name)
    system = CmpSystem(design)
    events, warmup_events, _ = _make_events(args)
    iterator = iter(events)
    if warmup_events:
        system.run(itertools.islice(iterator, warmup_events))
        system.reset_stats()
    system.run(iterator)
    return design, system.stats()


def _stats_row(name: str, stats, baseline_throughput: "Optional[float]"):
    acc = stats.accesses
    rel = (
        f"{stats.throughput / baseline_throughput:.3f}"
        if baseline_throughput
        else "1.000"
    )
    return [
        name,
        pct(acc.fraction(MissClass.HIT)),
        pct(acc.fraction(MissClass.ROS)),
        pct(acc.fraction(MissClass.RWS)),
        pct(acc.fraction(MissClass.CAPACITY)),
        rel,
    ]


def cmd_run(args) -> int:
    design, stats = _run_one(args.design, args)
    print(f"design: {args.design}")
    print(f"workload: {_workload_name(args)}")
    print()
    print(
        format_table(
            ["design", "hits", "ROS", "RWS", "capacity", "rel. perf"],
            [_stats_row(args.design, stats, None)],
        )
    )
    print()
    print(f"throughput (IPC proxy): {stats.throughput:.4f}")
    print(f"aggregate per-core IPC: {stats.aggregate_ipc:.4f}")
    dgroups = stats.dgroups
    if dgroups.total:
        dist = dgroups.distribution()
        print(
            "d-group accesses: "
            f"closest {pct(dist['closest'])}, farther {pct(dist['farther'])}, "
            f"miss {pct(dist['miss'])}"
        )
    if args.chart:
        bar = StackedBar(
            args.design,
            {
                "hit": stats.accesses.fraction(MissClass.HIT),
                "ros": stats.accesses.fraction(MissClass.ROS),
                "rws": stats.accesses.fraction(MissClass.RWS),
                "capacity": stats.accesses.fraction(MissClass.CAPACITY),
            },
        )
        print()
        print(render_stacked_bars([bar], baseline=0.0))
    return 0


def cmd_compare(args) -> int:
    rows = []
    chart_groups = {}
    baseline = None
    for name in args.designs:
        _, stats = _run_one(name, args)
        if baseline is None:
            baseline = stats.throughput
        rows.append(_stats_row(name, stats, baseline))
        chart_groups[name] = stats.throughput / baseline if baseline else 0.0
    print(f"workload: {_workload_name(args)}")
    print()
    print(
        format_table(
            ["design", "hits", "ROS", "RWS", "capacity", "rel. perf"], rows
        )
    )
    if args.chart:
        print()
        print(
            render_grouped_bars([BarGroup(_workload_name(args), chart_groups)])
        )
    return 0


def cmd_experiment(args) -> int:
    config = ExperimentConfig.quick() if args.quick else ExperimentConfig()
    name = args.name
    if name == "all":
        print(suite.run_suite(config).render())
        return 0
    if name == "energy":
        print(energy_report.run(config).report.render())
        return 0
    if name == "smp-contrast":
        print(smp_contrast.run(config).report.render())
        return 0
    if name in sensitivity.ALL_SENSITIVITIES:
        print(sensitivity.ALL_SENSITIVITIES[name](config).report.render())
        return 0
    if name in ablations.ALL_ABLATIONS:
        print(ablations.ALL_ABLATIONS[name](config).report.render())
        return 0
    if name in suite.EXPERIMENTS:
        run_fn, render_full = suite.EXPERIMENTS[name]
        result = run_fn() if name == "table1" else run_fn(config)
        print(result.report.render())
        if render_full is not None:
            print()
            print(render_full(result))
        return 0
    known = sorted(
        set(suite.EXPERIMENTS)
        | set(ablations.ALL_ABLATIONS)
        | set(sensitivity.ALL_SENSITIVITIES)
        | {"energy", "smp-contrast", "all"}
    )
    print(f"unknown experiment {name!r}; choose from: {', '.join(known)}", file=sys.stderr)
    return 2


def cmd_latency(args) -> int:
    print(
        format_table(
            ["component", "Table 1 (cycles)"],
            [(row.component, row.latency) for row in tables.table1_rows()],
        )
    )
    print()
    derived = cacti.derive_table1()
    print(
        format_table(
            ["structure", "re-derived (cycles)"],
            sorted(derived.items()),
        )
    )
    return 0


def cmd_trace_generate(args) -> int:
    if args.mix:
        workload = make_mix(args.mix, seed=args.seed)
    else:
        workload = make_workload(args.workload or "oltp", seed=args.seed)
    events = workload.events(accesses_per_core=args.accesses)
    count = tracefile.write_trace(events, args.out)
    print(f"wrote {count} events to {args.out}")
    return 0


def cmd_trace_run(args) -> int:
    design = build_design(args.design)
    system = CmpSystem(design)
    system.run(tracefile.read_trace(args.trace))
    stats = system.stats()
    print(
        format_table(
            ["design", "hits", "ROS", "RWS", "capacity", "rel. perf"],
            [_stats_row(args.design, stats, None)],
        )
    )
    print(f"throughput (IPC proxy): {stats.throughput:.4f}")
    return 0


def _add_workload_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    # No argparse default: subparser mutually-exclusive groups do not
    # enforce exclusivity against defaulted members (CPython quirk);
    # the default is resolved in _workload_name instead.
    group.add_argument(
        "--workload",
        choices=_WORKLOAD_NAMES,
        help="Table 3 multithreaded workload (default: oltp)",
    )
    group.add_argument(
        "--mix", choices=sorted(MIXES), help="Table 2 multiprogrammed mix"
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=60_000,
        help="measured accesses per core (default: 60000)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=60_000,
        help="warm-up accesses per core (default: 60000)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="CMP-NuRAPID reproduction (ISCA 2005) simulator CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one design on one workload")
    run_parser.add_argument(
        "--design", choices=sorted(DESIGN_FACTORIES), default="cmp-nurapid"
    )
    _add_workload_options(run_parser)
    run_parser.add_argument("--chart", action="store_true")
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser(
        "compare", help="run several designs on one workload"
    )
    compare_parser.add_argument(
        "--designs",
        nargs="+",
        choices=sorted(DESIGN_FACTORIES),
        default=[
            "uniform-shared",
            "non-uniform-shared",
            "private",
            "ideal",
            "cmp-nurapid",
        ],
    )
    _add_workload_options(compare_parser)
    compare_parser.add_argument("--chart", action="store_true")
    compare_parser.set_defaults(func=cmd_compare)

    experiment_parser = sub.add_parser(
        "experiment", help="reproduce a table/figure/ablation"
    )
    experiment_parser.add_argument(
        "name",
        help="table1, fig5..fig12, an ablation name, 'energy', or 'all'",
    )
    experiment_parser.add_argument("--quick", action="store_true")
    experiment_parser.set_defaults(func=cmd_experiment)

    latency_parser = sub.add_parser("latency", help="print Table 1 latencies")
    latency_parser.set_defaults(func=cmd_latency)

    trace_parser = sub.add_parser("trace", help="trace-file utilities")
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    generate = trace_sub.add_parser("generate", help="write a synthetic trace")
    _add_workload_options(generate)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=cmd_trace_generate)
    run_trace = trace_sub.add_parser("run", help="run a trace file")
    run_trace.add_argument("trace")
    run_trace.add_argument(
        "--design", choices=sorted(DESIGN_FACTORIES), default="cmp-nurapid"
    )
    run_trace.set_defaults(func=cmd_trace_run)

    return parser


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
