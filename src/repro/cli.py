"""Command-line interface.

Drives the library without writing Python::

    python -m repro.cli compare --workload oltp
    python -m repro.cli run --design cmp-nurapid --mix MIX1 --chart
    python -m repro.cli run --design cmp-nurapid --check-invariants 100
    python -m repro.cli run --checkpoint run.ck --checkpoint-every 50000
    python -m repro.cli run --resume run.ck
    python -m repro.cli run --inject-fault flip-pointer@1000
    python -m repro.cli run --design private --bus-model eventq
    python -m repro.cli run --bus-model eventq --inject-fault race-reorder@500
    python -m repro.cli run --trace out.jsonl --metrics m.json --metrics-every 10k
    python -m repro.cli run --profile
    python -m repro.cli experiment fig10 --quick
    python -m repro.cli experiment all --jobs 4 --cell-timeout 600
    python -m repro.cli chaos --list
    python -m repro.cli chaos --scenario worker-kill --scenario poison-cell
    python -m repro.cli quarantine stats.cache
    python -m repro.cli latency
    python -m repro.cli trace generate --workload apache --out trace.txt
    python -m repro.cli trace run trace.txt --design private
    python -m repro.cli trace export out.jsonl --out out.perfetto.json
    python -m repro.cli trace validate out.jsonl

Also installed as the ``repro-sim`` console script.

Exit codes: 0 success; 1 chaos scenario failed; 2 usage error
(malformed or contradictory arguments, unreadable files); 3 invariant
violation detected; 4 watchdog timeout; 5 benchmark regression against
the committed baseline; 6 a sweep finished but quarantined one or more
poison cells (inspect with ``repro quarantine``).
"""

from __future__ import annotations

import argparse
import itertools
import os
import sys
from typing import Iterable, Optional, Sequence

from repro.common.rng import DEFAULT_SEED
from repro.common.types import MissClass
from repro.cpu.system import CmpSystem, TimedAccess
from repro.experiments import ablations, energy_report, sensitivity, smp_contrast, suite
from repro.experiments.charts import BarGroup, StackedBar, render_grouped_bars, render_stacked_bars
from repro.experiments.report import format_table, pct
from repro.experiments.parallel import QUARANTINE_EXIT, QuarantinedCellError
from repro.experiments.runner import (
    BUS_MODELS,
    DESIGN_FACTORIES,
    ExperimentConfig,
    StatsCache,
    build_design,
    resolve_bus_model,
)
from repro.harness import (
    CheckpointError,
    HarnessConfig,
    InvariantViolation,
    WatchdogTimeout,
    load_checkpoint,
    run_events,
)
from repro.kernel import ENGINES
from repro.harness.faults import (
    FAULT_KINDS,
    RACE_FAULT_KINDS,
    FaultSpecError,
    parse_fault_specs,
)
from repro.latency import cacti, tables
from repro.obs.events import validate_jsonl
from repro.perflab.history import HistoryError
from repro.perflab.plan import PlanError
from repro.obs.metrics import MetricsCollector
from repro.obs.perfetto import export_jsonl
from repro.obs.profiler import Profiler
from repro.obs.tracer import DEFAULT_CAPACITY, Tracer
from repro.workloads import tracefile
from repro.workloads.multiprogrammed import MIXES, make_mix
from repro.workloads.multithreaded import MULTITHREADED, make_workload

_WORKLOAD_NAMES = tuple(spec.name for spec in MULTITHREADED)


class CliError(Exception):
    """A usage error reported as one line on stderr with exit code 2."""


def _workload_name(args) -> str:
    """The selected workload/mix label (default: oltp)."""
    return args.mix or args.workload or "oltp"


def _make_events(args) -> "tuple[Iterable[TimedAccess], int, int]":
    """Build the event stream; returns (events, warmup_events, cores)."""
    total = args.warmup + args.accesses
    if args.mix:
        workload = make_mix(args.mix, seed=args.seed)
    else:
        workload = make_workload(args.workload or "oltp", seed=args.seed)
    events = workload.events(accesses_per_core=total)
    return events, args.warmup * workload.num_cores, workload.num_cores


def _check_interval(text: str):
    """--check-invariants value: an event interval, or the word 'full'."""
    if text.strip().lower() == "full":
        return "full"
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'full', got {text!r}"
        ) from None


def _check_invariants_config(args) -> "tuple[int, bool]":
    """Resolve --check-invariants into (check_every, check_full)."""
    value = args.check_invariants
    if value == "full":
        return 1, True
    return value, False


def _count(text: str) -> int:
    """Parse an event count with an optional k/m suffix (``10k``, ``2m``)."""
    raw = text.strip().lower().replace("_", "")
    multiplier = 1
    if raw.endswith("k"):
        multiplier, raw = 1_000, raw[:-1]
    elif raw.endswith("m"):
        multiplier, raw = 1_000_000, raw[:-1]
    try:
        value = int(raw) * multiplier
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer with optional k/m suffix, got {text!r}"
        ) from None
    return value


def _build_obs(args):
    """Construct the run's (tracer, metrics, profiler) from its flags."""
    tracer = (
        Tracer(capacity=args.trace_buffer, sink=args.trace)
        if args.trace
        else None
    )
    metrics = (
        MetricsCollector(sample_every=args.metrics_every)
        if args.metrics
        else None
    )
    profiler = Profiler() if args.profile else None
    return tracer, metrics, profiler


def _finish_obs(tracer, metrics, profiler, args) -> None:
    """Export/close the observability outputs after a completed run."""
    if metrics is not None:
        series = metrics.finish()
        if args.metrics.endswith(".csv"):
            series.to_csv(args.metrics)
        else:
            series.to_json(args.metrics)
        print(f"metrics: {len(series)} sample(s) -> {args.metrics}")
    if tracer is not None:
        tracer.close()
        print(
            f"trace: {tracer.emitted} event(s) -> {args.trace} "
            f"(ring kept last {len(tracer.ring)})"
        )
    if profiler is not None:
        print()
        print(profiler.report())


def _run_one(design_name: str, args, tracer=None, metrics=None, profiler=None):
    design = build_design(design_name, bus_model=getattr(args, "bus_model", None))
    system = CmpSystem(design, tracer=tracer, metrics=metrics)
    if profiler is not None:
        profiler.instrument(system)
    events, warmup_events, _ = _make_events(args)
    iterator = iter(events)
    if warmup_events:
        system.run(itertools.islice(iterator, warmup_events))
        system.reset_stats()
    system.run(iterator)
    return design, system.stats()


def _validate_workload_args(args) -> None:
    """Reject malformed run lengths with a one-line usage error."""
    if getattr(args, "accesses", 0) < 0:
        raise CliError(f"--accesses must be >= 0, got {args.accesses}")
    if getattr(args, "warmup", 0) < 0:
        raise CliError(f"--warmup must be >= 0, got {args.warmup}")


def _validate_run_args(args) -> None:
    _validate_workload_args(args)
    if args.check_invariants != "full" and args.check_invariants < 0:
        raise CliError(
            f"--check-invariants must be >= 0 or 'full', "
            f"got {args.check_invariants}"
        )
    if args.checkpoint_every <= 0:
        raise CliError(
            f"--checkpoint-every must be positive, got {args.checkpoint_every}"
        )
    if args.timeout < 0:
        raise CliError(f"--timeout must be >= 0, got {args.timeout}")
    if args.resume and (args.workload or args.mix):
        raise CliError(
            "--resume restores the checkpoint's workload; "
            "drop --workload/--mix"
        )
    if args.resume and args.design:
        raise CliError(
            "--resume restores the checkpoint's design; drop --design"
        )
    if args.resume and args.bus_model:
        raise CliError(
            "--resume restores the checkpoint's interconnect backend; "
            "drop --bus-model"
        )
    race_kinds = [
        spec.split("@", 1)[0]
        for spec in (args.inject_fault or ())
        if spec.split("@", 1)[0] in RACE_FAULT_KINDS
    ]
    if race_kinds and not args.resume:
        if resolve_bus_model(args.bus_model) != "eventq":
            raise CliError(
                f"race faults ({', '.join(sorted(set(race_kinds)))}) perturb "
                "the event schedule and need '--bus-model eventq'"
            )


def _harness_active(args) -> bool:
    """Whether any flag routed this run through the harness."""
    return bool(
        args.check_invariants
        or args.checkpoint
        or args.resume
        or args.inject_fault
        or args.timeout
    )


def _resolve_engine_arg(args):
    """Resolve --engine (falling back to REPRO_ENGINE) or raise CliError."""
    from repro.kernel import resolve_engine

    try:
        return resolve_engine(getattr(args, "engine", None))
    except ValueError as error:
        raise CliError(str(error)) from None


#: ``repro run`` flags the batch engine cannot honour, and why.  The
#: refusal diagnostics below name the *specific* offending flag so a
#: user with a long command line is not left diffing flag lists.
_BATCH_HARNESS_FLAGS = (
    ("check_invariants", "--check-invariants", "fault-free runs only"),
    ("checkpoint", "--checkpoint", "fault-free runs only"),
    ("resume", "--resume", "fault-free runs only"),
    ("inject_fault", "--inject-fault", "fault-free runs only"),
    ("timeout", "--timeout", "fault-free runs only"),
    ("trace", "--trace", "uninstrumented runs only"),
    ("metrics", "--metrics", "uninstrumented runs only"),
    ("profile", "--profile", "uninstrumented runs only"),
)


def _validate_batch_run_args(args) -> None:
    """The batch engine runs fault-free and uninstrumented only."""
    from repro.kernel import BATCH_BUS_MODELS

    bus = resolve_bus_model(getattr(args, "bus_model", None))
    if bus not in BATCH_BUS_MODELS:
        supported = " and ".join(BATCH_BUS_MODELS)
        raise CliError(
            f"--engine batch does not support '--bus-model {bus}' (the "
            f"mesh NoC is a scalar-engine backend); supported batch bus "
            f"models are {supported} — drop '--bus-model {bus}' or use "
            "'--engine scalar'"
        )
    offending = [
        flag
        for attr, flag, _ in _BATCH_HARNESS_FLAGS
        if getattr(args, attr)
    ]
    if offending:
        reasons = {
            reason
            for attr, _, reason in _BATCH_HARNESS_FLAGS
            if getattr(args, attr)
        }
        raise CliError(
            f"--engine batch supports {' and '.join(sorted(reasons))}; "
            f"drop {', '.join(offending)} or use '--engine scalar'"
        )


def _run_one_batch(design_name: str, args):
    """Run one cell through the batch kernel; returns its stats."""
    from repro.kernel import run_batch

    workload_name = _workload_name(args)
    multiprogrammed = bool(args.mix)
    config = ExperimentConfig(
        warmup_per_core=args.warmup,
        measure_per_core=args.accesses,
        seed=args.seed,
    )
    bus_model = resolve_bus_model(args.bus_model)
    results = run_batch(
        [(workload_name, design_name, multiprogrammed)],
        config,
        bus_model=bus_model,
    )
    return results[(workload_name, design_name, multiprogrammed, bus_model)]


def _events_from_meta(meta: dict):
    """Rebuild the deterministic event stream a checkpoint was cut from."""
    seed = meta.get("seed", DEFAULT_SEED)
    try:
        if meta.get("mix"):
            workload = make_mix(meta["mix"], seed=seed)
        else:
            workload = make_workload(meta.get("workload") or "oltp", seed=seed)
        total = meta["warmup"] + meta["accesses"]
    except KeyError as missing:
        raise CliError(
            f"checkpoint metadata is missing {missing}; was it written by "
            "this CLI?"
        ) from None
    events = workload.events(accesses_per_core=total)
    return events, meta["warmup"] * workload.num_cores


def _run_harnessed(args, tracer=None, metrics=None, profiler=None):
    """Run (or resume) under the harness; returns (design name, label, runner)."""
    faults = parse_fault_specs(args.inject_fault or ())
    check_every, check_full = _check_invariants_config(args)
    if args.resume:
        checkpoint = load_checkpoint(args.resume)
        meta = dict(checkpoint.meta)
        design_name = meta.get("design", "cmp-nurapid")
        system = checkpoint.system
        if metrics is not None:
            system.attach_metrics(metrics)
        if profiler is not None:
            profiler.instrument(system)
        events, warmup_events = _events_from_meta(meta)
        config = HarnessConfig(
            check_every=check_every,
            check_full=check_full,
            checkpoint_path=args.checkpoint or args.resume,
            checkpoint_every=args.checkpoint_every,
            checkpoint_format=args.checkpoint_format,
            timeout_seconds=args.timeout,
            faults=faults,
            seed=meta.get("seed", DEFAULT_SEED),
        )
        runner = run_events(
            system,
            events,
            warmup_events,
            config,
            start_index=checkpoint.event_index,
            meta=meta,
            stats_reset=bool(meta.get("stats_reset")),
            tracer=tracer,
            profiler=profiler,
        )
        label = meta.get("mix") or meta.get("workload") or "oltp"
        return design_name, label, runner
    design_name = args.design or "cmp-nurapid"
    design = build_design(design_name, bus_model=args.bus_model)
    system = CmpSystem(design, metrics=metrics)
    if profiler is not None:
        profiler.instrument(system)
    events, warmup_events, _ = _make_events(args)
    meta = {
        "design": design_name,
        "workload": args.workload,
        "mix": args.mix,
        "seed": args.seed,
        "accesses": args.accesses,
        "warmup": args.warmup,
        "bus_model": resolve_bus_model(args.bus_model),
    }
    config = HarnessConfig(
        check_every=check_every,
        check_full=check_full,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        checkpoint_format=args.checkpoint_format,
        timeout_seconds=args.timeout,
        faults=faults,
        seed=args.seed,
    )
    runner = run_events(
        system, events, warmup_events, config, meta=meta,
        tracer=tracer, profiler=profiler,
    )
    return design_name, _workload_name(args), runner


def _print_harness_summary(runner) -> None:
    config = runner.config
    notes = []
    if config.check_every:
        notes.append(f"invariants checked every {config.check_every} event(s)")
    if runner.injector is not None:
        applied = sum(1 for record in runner.injector.log if record.data["applied"])
        notes.append(
            f"faults applied: {applied}/{len(runner.injector.log)}"
        )
        for record in runner.injector.log:
            data = record.data
            status = "applied" if data["applied"] else "skipped"
            notes.append(
                f"  {data['fault']}@{data['at_index']} "
                f"[{status}] {data['description']}"
            )
    if config.checkpoint_path:
        notes.append(
            f"checkpoint: {config.checkpoint_path} "
            f"(every {config.checkpoint_every} events, "
            f"last at event {runner.event_index})"
        )
    if notes:
        print()
        print("harness:")
        for note in notes:
            print(f"  {note}")


def _stats_row(name: str, stats, baseline_throughput: "Optional[float]"):
    acc = stats.accesses
    rel = (
        f"{stats.throughput / baseline_throughput:.3f}"
        if baseline_throughput
        else "1.000"
    )
    return [
        name,
        pct(acc.fraction(MissClass.HIT)),
        pct(acc.fraction(MissClass.ROS)),
        pct(acc.fraction(MissClass.RWS)),
        pct(acc.fraction(MissClass.CAPACITY)),
        rel,
    ]


def cmd_run(args) -> int:
    _validate_run_args(args)
    engine = _resolve_engine_arg(args)
    if engine == "batch":
        _validate_batch_run_args(args)
        design_name = args.design or "cmp-nurapid"
        stats = _run_one_batch(design_name, args)
        _print_run_report(design_name, _workload_name(args), stats, args)
        return 0
    runner = None
    tracer, metrics, profiler = _build_obs(args)
    try:
        if _harness_active(args):
            design_name, label, runner = _run_harnessed(
                args, tracer=tracer, metrics=metrics, profiler=profiler
            )
            # One final snapshot so a finished run's checkpoint is current.
            runner.checkpoint()
            stats = runner.system.stats()
        else:
            design_name = args.design or "cmp-nurapid"
            _, stats = _run_one(
                design_name, args, tracer=tracer, metrics=metrics,
                profiler=profiler,
            )
            label = _workload_name(args)
    except BaseException:
        # A failed run still flushes the trace sink: the recorded
        # prefix (and the harness's crash-window events) are the repro.
        if tracer is not None:
            tracer.close()
        raise
    _print_run_report(design_name, label, stats, args)
    if runner is not None:
        _print_harness_summary(runner)
    _finish_obs(tracer, metrics, profiler, args)
    return 0


def _print_run_report(design_name: str, label: str, stats, args) -> None:
    """The ``repro run`` stdout block, shared by both engines."""
    print(f"design: {design_name}")
    print(f"workload: {label}")
    print()
    print(
        format_table(
            ["design", "hits", "ROS", "RWS", "capacity", "rel. perf"],
            [_stats_row(design_name, stats, None)],
        )
    )
    print()
    print(f"throughput (IPC proxy): {stats.throughput:.4f}")
    print(f"aggregate per-core IPC: {stats.aggregate_ipc:.4f}")
    dgroups = stats.dgroups
    if dgroups.total:
        dist = dgroups.distribution()
        print(
            "d-group accesses: "
            f"closest {pct(dist['closest'])}, farther {pct(dist['farther'])}, "
            f"miss {pct(dist['miss'])}"
        )
    if args.chart:
        bar = StackedBar(
            design_name,
            {
                "hit": stats.accesses.fraction(MissClass.HIT),
                "ros": stats.accesses.fraction(MissClass.ROS),
                "rws": stats.accesses.fraction(MissClass.RWS),
                "capacity": stats.accesses.fraction(MissClass.CAPACITY),
            },
        )
        print()
        print(render_stacked_bars([bar], baseline=0.0))


def cmd_compare(args) -> int:
    _validate_workload_args(args)
    rows = []
    chart_groups = {}
    baseline = None
    for name in args.designs:
        _, stats = _run_one(name, args)
        if baseline is None:
            baseline = stats.throughput
        rows.append(_stats_row(name, stats, baseline))
        chart_groups[name] = stats.throughput / baseline if baseline else 0.0
    print(f"workload: {_workload_name(args)}")
    print()
    print(
        format_table(
            ["design", "hits", "ROS", "RWS", "capacity", "rel. perf"], rows
        )
    )
    if args.chart:
        print()
        print(
            render_grouped_bars([BarGroup(_workload_name(args), chart_groups)])
        )
    return 0


def _resolve_supervision(args) -> "tuple[float, int]":
    """Validate --cell-timeout/--max-retries (and their env vars)."""
    from repro.experiments import parallel

    try:
        return (
            parallel.resolve_cell_timeout(args.cell_timeout),
            parallel.resolve_max_retries(args.max_retries),
        )
    except ValueError as error:
        raise CliError(str(error)) from None


def cmd_experiment(args) -> int:
    from repro.experiments import parallel

    config = ExperimentConfig.quick() if args.quick else ExperimentConfig()
    name = args.name
    try:
        jobs = parallel.resolve_jobs(args.jobs)
    except ValueError as error:
        raise CliError(str(error)) from None
    cell_timeout, max_retries = _resolve_supervision(args)
    engine = _resolve_engine_arg(args)
    cache = StatsCache(path=args.cache) if args.cache else None
    if name == "all":
        print(
            suite.run_suite(
                config, cache_path=args.cache, jobs=jobs,
                cell_timeout=cell_timeout, max_retries=max_retries,
                engine=engine,
            ).render()
        )
        return 0
    if jobs > 1 or engine == "batch":
        cells = parallel.experiment_cells(name)
        if cells:
            # Prewarm this experiment's grid in one pool (or, with the
            # batch engine, as SoA batches — worthwhile even at one
            # job); the run_fn below then reads every cell out of the
            # shared cache.
            if cache is None:
                cache = StatsCache()
            report = parallel.run_cells(
                cells, config, cache, jobs=jobs,
                cell_timeout=cell_timeout, max_retries=max_retries,
                engine=engine,
            )
            if report.retried or report.quarantined or report.fallback_reason:
                print(f"parallel: {report.summary()}", file=sys.stderr)
            if report.quarantined:
                # Raise only after every healthy cell is journaled, so
                # a rerun resumes instead of re-simulating.
                journal = (
                    parallel.quarantine_path(args.cache) if args.cache else None
                )
                raise QuarantinedCellError(report.quarantined, journal)
    if name == "scale":
        from repro.experiments import scale

        if engine == "batch":
            raise CliError(
                "experiment scale runs on the mesh NoC, which the batch "
                "engine does not model; drop --engine batch"
            )
        cores = tuple(args.cores) if args.cores else scale.DEFAULT_CORES
        for count in cores:
            if count not in scale.SUPPORTED_CORES:
                raise CliError(
                    f"--cores {count} is unsupported; the mesh scales to "
                    f"{', '.join(str(n) for n in scale.SUPPORTED_CORES)}"
                )
        result = scale.run(
            config, cache=cache, cores=cores, jobs=jobs,
            cell_timeout=cell_timeout, max_retries=max_retries,
        )
        print(result.report.render())
        print()
        print(scale.render_full(result))
        return 0
    if name == "energy":
        print(energy_report.run(config).report.render())
        return 0
    if name == "smp-contrast":
        print(smp_contrast.run(config).report.render())
        return 0
    if name in sensitivity.ALL_SENSITIVITIES:
        print(sensitivity.ALL_SENSITIVITIES[name](config).report.render())
        return 0
    if name in ablations.ALL_ABLATIONS:
        print(ablations.ALL_ABLATIONS[name](config).report.render())
        return 0
    if name in suite.EXPERIMENTS:
        run_fn, render_full = suite.EXPERIMENTS[name]
        if name == "table1":
            result = run_fn()
        elif cache is not None:
            result = run_fn(config, cache=cache)
        else:
            result = run_fn(config)
        print(result.report.render())
        if render_full is not None:
            print()
            print(render_full(result))
        return 0
    known = sorted(
        set(suite.EXPERIMENTS)
        | set(ablations.ALL_ABLATIONS)
        | set(sensitivity.ALL_SENSITIVITIES)
        | {"energy", "smp-contrast", "scale", "all"}
    )
    print(f"unknown experiment {name!r}; choose from: {', '.join(known)}", file=sys.stderr)
    return 2


def cmd_bench(args) -> int:
    import json

    from repro.experiments import bench

    if args.threshold < 0 or args.threshold >= 1:
        raise CliError(
            f"--fail-threshold must be in [0, 1), got {args.threshold}"
        )
    cell_timeout, max_retries = _resolve_supervision(args)
    engine = _resolve_engine_arg(args)
    if args.plan:
        return _bench_plan(args, cell_timeout, max_retries, engine)
    if engine == "batch":
        raise CliError(
            "bench --engine batch needs a plan: the plan's [batch] table "
            "defines the batch-kernel grid (try --plan plans/default.toml)"
        )
    result = bench.run_bench(
        designs=args.designs,
        workload=args.workload or "oltp",
        jobs=args.jobs,
        quick=args.quick,
        with_sweep=not args.no_sweep,
        cell_timeout=cell_timeout,
        max_retries=max_retries,
    )
    print(bench.render(result))
    out = args.out or bench.default_output_path()
    bench.write_result(result, out)
    print(f"wrote {out}")
    if result.sweep is not None and not result.sweep["identical"]:
        print(
            "error: parallel sweep results diverged from serial: "
            + ", ".join(result.sweep["mismatches"]),
            file=sys.stderr,
        )
        return bench.REGRESSION_EXIT
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as error:
            raise CliError(f"unreadable baseline {args.baseline}: {error}")
        problems = bench.compare_to_baseline(
            result.throughput, baseline, args.threshold
        )
        if problems:
            for problem in problems:
                print(f"perf regression: {problem}", file=sys.stderr)
            return bench.REGRESSION_EXIT
        print(
            f"baseline {args.baseline}: no design regressed more than "
            f"{args.threshold:.0%}"
        )
    return 0


def _bench_plan(args, cell_timeout, max_retries, engine=None) -> int:
    """The plan-driven bench path: ``repro bench --plan FILE``."""
    import json

    from repro.experiments import bench
    from repro import perflab

    plan = perflab.load_plan(args.plan)
    out = args.out or bench.default_output_path()
    record = perflab.run_plan(
        plan,
        quick=args.quick,
        out=out,
        jobs=args.jobs,
        cell_timeout=cell_timeout,
        max_retries=max_retries,
        engine=engine,
    )
    if args.no_sweep:
        record.pop("sweep", None)
    print(perflab.render_record(record))
    perflab.write_record(record, out)
    print(f"wrote {out}")
    sweep = record.get("sweep")
    if sweep is not None and not sweep["identical"]:
        print(
            "error: parallel sweep results diverged from serial: "
            + ", ".join(sweep["mismatches"]),
            file=sys.stderr,
        )
        return bench.REGRESSION_EXIT
    batch = record.get("batch")
    if batch is not None:
        if not batch["identical"]:
            # Identity is an absolute gate: a diverging kernel is a bug
            # no matter how fast it is.
            print(
                "error: batch-kernel results diverged from scalar: "
                + ", ".join(batch["mismatches"]),
                file=sys.stderr,
            )
            return bench.REGRESSION_EXIT
        floor = batch.get("min_speedup") or 0.0
        if (
            floor
            and batch.get("speedup_gate_eligible", True)
            and batch["speedup"] < floor
        ):
            print(
                f"perf regression: batch-kernel speedup {batch['speedup']}x "
                f"is below the plan floor {floor}x",
                file=sys.stderr,
            )
            return bench.REGRESSION_EXIT
    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as error:
            raise CliError(f"unreadable baseline {args.baseline}: {error}")
        problems = bench.compare_to_baseline(
            record["throughput_accesses_per_sec"], baseline, args.threshold
        )
        if problems:
            for problem in problems:
                print(f"perf regression: {problem}", file=sys.stderr)
            return bench.REGRESSION_EXIT
        print(
            f"baseline {args.baseline}: no design regressed more than "
            f"{args.threshold:.0%}"
        )
    return 0


def cmd_bench_report(args) -> int:
    """Trend engine: ``repro bench report`` over BENCH_*.json history."""
    from repro.experiments import bench
    from repro import perflab

    plan = perflab.load_plan(args.plan) if args.plan else None
    paths = perflab.discover_history(args.history or ["BENCH_*.json"])
    if not paths:
        raise CliError(
            "no BENCH history found; pass files or globs with --history"
        )
    runs = perflab.load_history(paths)
    report = perflab.write_report(runs, args.out_dir, plan=plan)
    print(
        f"trend report over {len(runs)} run(s) "
        f"({runs[0].run_id} .. {runs[-1].run_id}) -> {report.markdown_path}"
    )
    for chart in report.chart_paths:
        print(f"  chart: {chart}")
    for verdict in report.verdicts:
        print(f"  {verdict.line()}")
    if report.regressions:
        names = ", ".join(v.label for v in report.regressions)
        print(
            f"error: {len(report.regressions)} cell(s) regressed against "
            f"their rolling baselines: {names}",
            file=sys.stderr,
        )
        return bench.REGRESSION_EXIT
    return 0


def cmd_chaos(args) -> int:
    from repro.experiments import parallel
    from repro.harness import chaos

    if args.list:
        width = max(len(name) for name in chaos.SCENARIOS)
        for name, (description, _) in chaos.SCENARIOS.items():
            print(f"{name:<{width}}  {description}")
        return 0
    try:
        jobs = max(parallel.resolve_jobs(args.jobs), 2)
    except ValueError as error:
        raise CliError(str(error)) from None
    tracer = Tracer(capacity=args.trace_buffer, sink=args.trace) if args.trace else None
    try:
        report = chaos.run_chaos(
            names=args.scenario or None, jobs=jobs, tracer=tracer, out=print
        )
    except ValueError as error:
        raise CliError(str(error)) from None
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace: {tracer.emitted} supervision event(s) -> {args.trace}")
    print()
    print(report.render().splitlines()[-1])
    return 0 if report.passed else 1


def cmd_quarantine(args) -> int:
    from repro.experiments import parallel

    path = args.path
    if not path.endswith(".quarantine"):
        path = parallel.quarantine_path(path)
    if not os.path.exists(path):
        raise CliError(f"no quarantine journal at {path}")
    records = parallel.load_quarantine(path)
    if not records:
        print(f"{path}: no quarantined cells")
        return 0
    for record in records:
        label = record.get("label", "?")
        attempts = record.get("attempts", "?")
        print(f"{label}: quarantined after {attempts} attempt(s)")
        for failure in record.get("failures", ()):
            print(f"  [{failure.get('kind', '?')}] {failure.get('detail', '')}")
            if args.traceback and failure.get("traceback"):
                for line in failure["traceback"].rstrip().splitlines():
                    print(f"    {line}")
    print(f"{len(records)} quarantined cell(s) in {path}")
    return 0


def cmd_latency(args) -> int:
    print(
        format_table(
            ["component", "Table 1 (cycles)"],
            [(row.component, row.latency) for row in tables.table1_rows()],
        )
    )
    print()
    derived = cacti.derive_table1()
    print(
        format_table(
            ["structure", "re-derived (cycles)"],
            sorted(derived.items()),
        )
    )
    return 0


def cmd_trace_generate(args) -> int:
    _validate_workload_args(args)
    if args.mix:
        workload = make_mix(args.mix, seed=args.seed)
    else:
        workload = make_workload(args.workload or "oltp", seed=args.seed)
    events = workload.events(accesses_per_core=args.accesses)
    count = tracefile.write_trace(events, args.out)
    print(f"wrote {count} events to {args.out}")
    return 0


def cmd_trace_run(args) -> int:
    design = build_design(args.design)
    system = CmpSystem(design)
    system.run(tracefile.read_trace(args.trace))
    stats = system.stats()
    print(
        format_table(
            ["design", "hits", "ROS", "RWS", "capacity", "rel. perf"],
            [_stats_row(args.design, stats, None)],
        )
    )
    print(f"throughput (IPC proxy): {stats.throughput:.4f}")
    return 0


def cmd_trace_export(args) -> int:
    if args.format != "perfetto":
        raise CliError(f"unknown export format {args.format!r}")
    try:
        payload = export_jsonl(args.trace, args.out)
    except ValueError as error:
        raise CliError(str(error)) from None
    count = sum(1 for entry in payload["traceEvents"] if entry.get("ph") != "M")
    print(f"wrote {count} trace event(s) to {args.out} (open in ui.perfetto.dev)")
    return 0


def cmd_trace_validate(args) -> int:
    count, errors = validate_jsonl(args.trace)
    if errors:
        for problem in errors:
            print(f"{args.trace}: {problem}", file=sys.stderr)
        print(
            f"{args.trace}: {len(errors)} problem(s) in {count} record(s)",
            file=sys.stderr,
        )
        return 2
    print(f"{args.trace}: {count} record(s), all valid")
    return 0


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        metavar="PATH",
        help="stream every structured event to PATH as JSONL",
    )
    group.add_argument(
        "--trace-buffer",
        type=_count,
        default=DEFAULT_CAPACITY,
        metavar="N",
        help=f"tracer ring-buffer capacity (default: {DEFAULT_CAPACITY})",
    )
    group.add_argument(
        "--metrics",
        metavar="PATH",
        help="write interval metric samples to PATH "
        "(CSV if it ends in .csv, JSON otherwise)",
    )
    group.add_argument(
        "--metrics-every",
        type=_count,
        default=10_000,
        metavar="N",
        help="events between metric samples; k/m suffixes ok "
        "(default: 10k)",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="time the simulator's hot paths and print a report",
    )


def _add_supervision_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("worker supervision")
    group.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per sweep cell attempt; a worker past "
        "it is SIGKILLed and the cell retried (default: the "
        "REPRO_CELL_TIMEOUT environment variable, else 0 = unbounded)",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts per failing sweep cell before it is "
        "quarantined and skipped (default: the REPRO_MAX_RETRIES "
        "environment variable, else 2)",
    )


def _add_workload_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group()
    # No argparse default: subparser mutually-exclusive groups do not
    # enforce exclusivity against defaulted members (CPython quirk);
    # the default is resolved in _workload_name instead.
    group.add_argument(
        "--workload",
        choices=_WORKLOAD_NAMES,
        help="Table 3 multithreaded workload (default: oltp)",
    )
    group.add_argument(
        "--mix", choices=sorted(MIXES), help="Table 2 multiprogrammed mix"
    )
    parser.add_argument(
        "--accesses",
        type=int,
        default=60_000,
        help="measured accesses per core (default: 60000)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=60_000,
        help="warm-up accesses per core (default: 60000)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="CMP-NuRAPID reproduction (ISCA 2005) simulator CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one design on one workload")
    # No argparse default: --resume restores the design from the
    # checkpoint, and a defaulted --design would be indistinguishable
    # from an explicit (conflicting) one.  cmd_run falls back to
    # cmp-nurapid when neither is given.
    run_parser.add_argument("--design", choices=sorted(DESIGN_FACTORIES))
    # No argparse default: None falls back to the REPRO_BUS_MODEL
    # environment variable and then "atomic" (resolve_bus_model), and
    # --resume must be able to tell "explicit" from "unset".
    run_parser.add_argument(
        "--bus-model",
        choices=BUS_MODELS,
        help="interconnect backend: atomic (synchronous, default) or "
        "eventq (split-phase discrete-event schedule; bit-identical "
        "at zero occupancy, required for race faults)",
    )
    # No argparse default: None falls back to the REPRO_ENGINE
    # environment variable and then "scalar" (resolve_engine).
    run_parser.add_argument(
        "--engine",
        choices=ENGINES,
        help="simulation engine: scalar (the reference path, default) or "
        "batch (SoA kernel, bit-identical stats; fault-free "
        "uninstrumented runs only)",
    )
    _add_workload_options(run_parser)
    _add_obs_options(run_parser)
    run_parser.add_argument("--chart", action="store_true")
    harness_group = run_parser.add_argument_group("robustness harness")
    harness_group.add_argument(
        "--check-invariants",
        type=_check_interval,
        default=0,
        metavar="N|full",
        help="run the model invariant checker every N events "
        "(1 = paranoid mode, 0 = off; checks rescan only entries "
        "touched since the last check).  'full' checks every event "
        "with complete state rescans",
    )
    harness_group.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="periodically snapshot full simulator state to PATH",
    )
    harness_group.add_argument(
        "--checkpoint-every",
        type=int,
        default=50_000,
        metavar="K",
        help="events between checkpoints (default: 50000)",
    )
    harness_group.add_argument(
        "--checkpoint-format",
        type=int,
        choices=(1, 2),
        default=2,
        metavar="V",
        help="snapshot layout: 2 = versioned state-dict envelope "
        "(default, survives refactors), 1 = legacy whole-object pickle. "
        "Both load via --resume regardless of this flag",
    )
    harness_group.add_argument(
        "--resume",
        metavar="PATH",
        help="resume a killed run from its checkpoint (bit-identical)",
    )
    harness_group.add_argument(
        "--inject-fault",
        action="append",
        metavar="KIND@INDEX",
        help="inject a fault, e.g. flip-pointer@1000 (repeatable); "
        f"kinds: {', '.join(FAULT_KINDS)}",
    )
    harness_group.add_argument(
        "--timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="wall-clock watchdog budget (0 = off)",
    )
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser(
        "compare", help="run several designs on one workload"
    )
    compare_parser.add_argument(
        "--designs",
        nargs="+",
        choices=sorted(DESIGN_FACTORIES),
        default=[
            "uniform-shared",
            "non-uniform-shared",
            "private",
            "ideal",
            "cmp-nurapid",
        ],
    )
    _add_workload_options(compare_parser)
    compare_parser.add_argument("--chart", action="store_true")
    compare_parser.set_defaults(func=cmd_compare)

    experiment_parser = sub.add_parser(
        "experiment", help="reproduce a table/figure/ablation"
    )
    experiment_parser.add_argument(
        "name",
        help="table1, fig5..fig12, an ablation name, 'energy', "
        "'scale', or 'all'",
    )
    experiment_parser.add_argument("--quick", action="store_true")
    experiment_parser.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="core counts for 'experiment scale' (default: 8 16; "
        "64 is supported but slow); each N-core cell runs on the "
        "2D-mesh NoC with directory coherence",
    )
    experiment_parser.add_argument(
        "--cache",
        metavar="PATH",
        help="persist per-(workload, design) stats to PATH so an "
        "interrupted sweep resumes instead of re-simulating",
    )
    experiment_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="fan uncached (workload, design) cells across N worker "
        "processes (default: the REPRO_JOBS environment variable, "
        "else 1); results are bit-identical to a serial run",
    )
    experiment_parser.add_argument(
        "--engine",
        choices=ENGINES,
        help="simulation engine for the sweep (default: REPRO_ENGINE, "
        "else scalar); 'batch' runs each workload's designs as lanes "
        "of one SoA kernel — bit-identical results, and it composes "
        "with --jobs (the pool schedules whole batches)",
    )
    _add_supervision_options(experiment_parser)
    experiment_parser.set_defaults(func=cmd_experiment)

    bench_parser = sub.add_parser(
        "bench",
        help="measure simulated accesses/sec and sweep speedup; "
        "optionally gate against a committed baseline.  With --plan, "
        "run a declarative bench plan into a v2 capture bundle; "
        "'bench report' renders trend reports over BENCH_*.json history",
    )
    bench_parser.add_argument(
        "--plan",
        metavar="FILE",
        help="run a declarative bench plan (TOML or JSON; see "
        "plans/default.toml) instead of the hardcoded grid; "
        "--designs/--workload are ignored, --quick/--jobs/--out/"
        "--baseline still apply",
    )
    bench_parser.add_argument(
        "--designs",
        nargs="+",
        choices=sorted(DESIGN_FACTORIES),
        default=["uniform-shared", "private", "cmp-nurapid"],
    )
    bench_parser.add_argument(
        "--workload",
        choices=_WORKLOAD_NAMES,
        help="workload to time (default: oltp)",
    )
    bench_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="workers for the sweep-speedup measurement "
        "(default: REPRO_JOBS, else 2)",
    )
    bench_parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter runs sized for CI smoke jobs",
    )
    bench_parser.add_argument(
        "--no-sweep",
        action="store_true",
        help="skip the serial-vs-parallel sweep timing",
    )
    bench_parser.add_argument(
        "--out",
        metavar="PATH",
        help="result JSON path (default: BENCH_<date>.json)",
    )
    bench_parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="committed BENCH json to gate against; a design more than "
        "--fail-threshold slower fails with exit 5",
    )
    bench_parser.add_argument(
        "--fail-threshold",
        dest="threshold",
        type=float,
        default=0.2,
        metavar="FRACTION",
        help="allowed fractional throughput drop vs the baseline "
        "(default: 0.2)",
    )
    bench_parser.add_argument(
        "--engine",
        choices=ENGINES,
        help="with --plan, 'batch' force-enables the plan's [batch] "
        "leg (batch-kernel aggregate throughput vs scalar, "
        "fingerprint-checked); without --plan it is an error",
    )
    _add_supervision_options(bench_parser)
    bench_parser.set_defaults(func=cmd_bench)
    bench_sub = bench_parser.add_subparsers(dest="bench_command")
    report_parser = bench_sub.add_parser(
        "report",
        help="render a markdown + PNG trend report over accumulated "
        "BENCH_*.json files and gate the latest run per cell (exit 5 "
        "names regressed cells)",
    )
    report_parser.add_argument(
        "--history",
        nargs="+",
        metavar="PATH",
        help="BENCH json files or globs, any mix of v1 and v2 "
        "(default: BENCH_*.json in the current directory)",
    )
    report_parser.add_argument(
        "--out-dir",
        default=os.path.join("benchmarks", "reports"),
        metavar="DIR",
        help="where trend.md and the PNG curves go "
        "(default: benchmarks/reports)",
    )
    report_parser.add_argument(
        "--plan",
        metavar="FILE",
        help="bench plan supplying per-cell gate thresholds "
        "(default: 20%% for every cell)",
    )
    report_parser.set_defaults(func=cmd_bench_report)

    chaos_parser = sub.add_parser(
        "chaos",
        help="inject orchestration faults (worker kills, hangs, journal "
        "corruption, poison cells) into small sweeps and assert they "
        "converge bit-identically",
    )
    chaos_parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="run one scenario (repeatable; default: all). "
        "See --list for names",
    )
    chaos_parser.add_argument(
        "--list",
        action="store_true",
        help="list the chaos scenarios and exit",
    )
    chaos_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="workers per scenario sweep (default: REPRO_JOBS, else 2; "
        "floored at 2 so faults race a healthy worker)",
    )
    chaos_parser.add_argument(
        "--trace",
        metavar="PATH",
        help="stream the supervision events (retry, worker-death, "
        "quarantine, shard-corrupt) to PATH as JSONL for "
        "'trace export'",
    )
    chaos_parser.add_argument(
        "--trace-buffer",
        type=_count,
        default=DEFAULT_CAPACITY,
        metavar="N",
        help=f"tracer ring-buffer capacity (default: {DEFAULT_CAPACITY})",
    )
    chaos_parser.set_defaults(func=cmd_chaos)

    quarantine_parser = sub.add_parser(
        "quarantine",
        help="inspect the poison-cell journal a sweep left next to its "
        "stats cache",
    )
    quarantine_parser.add_argument(
        "path",
        help="stats-cache path (the .quarantine journal is derived) or "
        "the journal itself",
    )
    quarantine_parser.add_argument(
        "--traceback",
        action="store_true",
        help="print each failure's full worker traceback",
    )
    quarantine_parser.set_defaults(func=cmd_quarantine)

    latency_parser = sub.add_parser("latency", help="print Table 1 latencies")
    latency_parser.set_defaults(func=cmd_latency)

    trace_parser = sub.add_parser("trace", help="trace-file utilities")
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    generate = trace_sub.add_parser("generate", help="write a synthetic trace")
    _add_workload_options(generate)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=cmd_trace_generate)
    run_trace = trace_sub.add_parser("run", help="run a trace file")
    run_trace.add_argument("trace")
    run_trace.add_argument(
        "--design", choices=sorted(DESIGN_FACTORIES), default="cmp-nurapid"
    )
    run_trace.set_defaults(func=cmd_trace_run)
    export = trace_sub.add_parser(
        "export", help="convert a recorded JSONL trace for a viewer"
    )
    export.add_argument("trace", help="JSONL trace recorded with run --trace")
    export.add_argument("--out", required=True)
    export.add_argument(
        "--format",
        choices=("perfetto",),
        default="perfetto",
        help="output format (perfetto = Chrome trace-event JSON)",
    )
    export.set_defaults(func=cmd_trace_export)
    validate = trace_sub.add_parser(
        "validate", help="check a JSONL trace against the event schema"
    )
    validate.add_argument("trace")
    validate.set_defaults(func=cmd_trace_validate)

    return parser


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except InvariantViolation as violation:
        print(f"invariant violation: {violation}", file=sys.stderr)
        if violation.dump_path:
            print(
                f"replayable event window: {violation.dump_path}",
                file=sys.stderr,
            )
        return 3
    except WatchdogTimeout as timeout:
        print(f"watchdog timeout: {timeout}", file=sys.stderr)
        if timeout.dump_path:
            print(
                f"replayable event window: {timeout.dump_path}",
                file=sys.stderr,
            )
        return 4
    except QuarantinedCellError as error:
        print(f"error: {error}", file=sys.stderr)
        return QUARANTINE_EXIT
    except (CliError, FaultSpecError, CheckpointError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (PlanError, HistoryError) as error:
        # A malformed plan or unreadable BENCH history is a usage
        # error, same as any other bad input file.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        # Unreadable trace/checkpoint/output paths are usage errors,
        # not tracebacks.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
