"""Dirty-set tracking for incremental invariant checking.

Paranoid-mode invariant checking used to rescan the *entire* cache state
every step — O(full state) per access.  Designs now mark every block
address and data frame they mutate into a :class:`DirtySet`, and the
harness rescans only those entries (falling back to a full scan when
:meth:`DirtySet.mark_all` was called, e.g. after a fault injection whose
blast radius is unknown).
"""

from __future__ import annotations

from typing import Set


class DirtySet:
    """Addresses and frames touched since the last invariant check."""

    __slots__ = ("addresses", "frames", "full")

    def __init__(self) -> None:
        self.addresses: "Set[int]" = set()
        self.frames: "Set[object]" = set()
        self.full = False

    def mark_address(self, address: int) -> None:
        if not self.full:
            self.addresses.add(address)

    def mark_frame(self, frame: object) -> None:
        if not self.full:
            self.frames.add(frame)

    def mark_all(self) -> None:
        """Escalate the next check to a full rescan (unknown blast radius)."""
        self.full = True
        self.addresses.clear()
        self.frames.clear()

    def clear(self) -> None:
        self.addresses.clear()
        self.frames.clear()
        self.full = False

    def __bool__(self) -> bool:
        return self.full or bool(self.addresses) or bool(self.frames)

    def __repr__(self) -> str:
        return (
            f"DirtySet(addresses={len(self.addresses)}, "
            f"frames={len(self.frames)}, full={self.full})"
        )


__all__ = ["DirtySet"]
