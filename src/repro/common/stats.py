"""Event counters and distributions used by every simulator.

The paper reports results as *fractions of overall cache accesses*
(Figures 5, 8, 9, 11), *reuse-count histograms* (Figure 7), and
*relative performance* (Figures 6, 10, 12).  The classes here collect
the raw events those reports are computed from.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.common.types import MissClass

#: Reuse-count buckets from Figure 7: 0, 1, 2-5, and >5 reuses.
REUSE_BUCKETS = ("0", "1", "2-5", ">5")


def reuse_bucket(count: int) -> str:
    """Map a reuse count onto Figure 7's histogram buckets."""
    if count < 0:
        raise ValueError("reuse count cannot be negative")
    if count == 0:
        return "0"
    if count == 1:
        return "1"
    if count <= 5:
        return "2-5"
    return ">5"


@dataclass
class AccessStats:
    """Counts of L2 accesses broken down by the paper's miss classes."""

    counts: "Counter[MissClass]" = field(default_factory=Counter)

    def record(self, miss_class: MissClass) -> None:
        self.counts[miss_class] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def hits(self) -> int:
        return self.counts[MissClass.HIT]

    @property
    def misses(self) -> int:
        return self.total - self.hits

    def fraction(self, miss_class: MissClass) -> float:
        """Fraction of all accesses in ``miss_class`` (0.0 if empty)."""
        total = self.total
        return self.counts[miss_class] / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        total = self.total
        return self.misses / total if total else 0.0

    def distribution(self) -> "dict[str, float]":
        """Access mix as {class name: fraction}, the Figure 5/8 format."""
        return {mc.value: self.fraction(mc) for mc in MissClass}

    def merge(self, other: "AccessStats") -> None:
        self.counts.update(other.counts)

    def state_dict(self) -> "list[tuple[str, int]]":
        from repro.common import serialization

        return serialization.counter_state(self.counts, lambda mc: mc.value)

    def load_state_dict(self, state, path: str = "accesses") -> None:
        from repro.common import serialization

        serialization.load_counter(self.counts, state, path, MissClass)


@dataclass
class ReuseStats:
    """Figure 7 histograms.

    Tracks, for blocks that *leave* a cache, how many times they were
    reused (hit) after the fill that brought them in.  Separate
    histograms for blocks brought in by ROS misses (and later replaced)
    and blocks brought in by RWS misses (and later invalidated).
    """

    ros_replaced: "Counter[str]" = field(default_factory=Counter)
    rws_invalidated: "Counter[str]" = field(default_factory=Counter)

    def record_ros_replacement(self, reuse_count: int) -> None:
        self.ros_replaced[reuse_bucket(reuse_count)] += 1

    def record_rws_invalidation(self, reuse_count: int) -> None:
        self.rws_invalidated[reuse_bucket(reuse_count)] += 1

    @staticmethod
    def _fractions(counter: "Counter[str]") -> "dict[str, float]":
        total = sum(counter.values())
        if not total:
            return {bucket: 0.0 for bucket in REUSE_BUCKETS}
        return {bucket: counter[bucket] / total for bucket in REUSE_BUCKETS}

    def ros_fractions(self) -> "dict[str, float]":
        return self._fractions(self.ros_replaced)

    def rws_fractions(self) -> "dict[str, float]":
        return self._fractions(self.rws_invalidated)

    def merge(self, other: "ReuseStats") -> None:
        self.ros_replaced.update(other.ros_replaced)
        self.rws_invalidated.update(other.rws_invalidated)

    def state_dict(self) -> dict:
        from repro.common import serialization

        return {
            "ros_replaced": serialization.counter_state(self.ros_replaced),
            "rws_invalidated": serialization.counter_state(self.rws_invalidated),
        }

    def load_state_dict(self, state: dict, path: str = "reuse") -> None:
        from repro.common import serialization

        serialization.load_counter(
            self.ros_replaced,
            serialization.require(state, "ros_replaced", path),
            f"{path}.ros_replaced",
        )
        serialization.load_counter(
            self.rws_invalidated,
            serialization.require(state, "rws_invalidated", path),
            f"{path}.rws_invalidated",
        )


@dataclass
class DgroupStats:
    """Figure 9: where distance-associative hits are served from."""

    closest_hits: int = 0
    farther_hits: int = 0
    misses: int = 0

    def record(self, dgroup_distance: "int | None", is_hit: bool) -> None:
        if not is_hit:
            self.misses += 1
        elif dgroup_distance == 0:
            self.closest_hits += 1
        else:
            self.farther_hits += 1

    @property
    def total(self) -> int:
        return self.closest_hits + self.farther_hits + self.misses

    def distribution(self) -> "dict[str, float]":
        total = self.total
        if not total:
            return {"closest": 0.0, "farther": 0.0, "miss": 0.0}
        return {
            "closest": self.closest_hits / total,
            "farther": self.farther_hits / total,
            "miss": self.misses / total,
        }

    @property
    def closest_fraction_of_hits(self) -> float:
        hits = self.closest_hits + self.farther_hits
        return self.closest_hits / hits if hits else 0.0

    def merge(self, other: "DgroupStats") -> None:
        self.closest_hits += other.closest_hits
        self.farther_hits += other.farther_hits
        self.misses += other.misses

    def state_dict(self) -> dict:
        from repro.common import serialization

        return serialization.scalar_fields_state(self)

    def load_state_dict(self, state: dict, path: str = "dgroups") -> None:
        from repro.common import serialization

        serialization.load_scalar_fields(self, state, path)


@dataclass
class BusStats:
    """Traffic counters for the snoopy bus."""

    transactions: "Counter[str]" = field(default_factory=Counter)

    def record(self, kind: str) -> None:
        self.transactions[kind] += 1

    @property
    def total(self) -> int:
        return sum(self.transactions.values())

    def merge(self, other: "BusStats") -> None:
        self.transactions.update(other.transactions)

    def state_dict(self) -> "list[tuple[str, int]]":
        from repro.common import serialization

        return serialization.counter_state(self.transactions)

    def load_state_dict(self, state, path: str = "bus") -> None:
        from repro.common import serialization

        serialization.load_counter(self.transactions, state, path)


@dataclass
class CoreTiming:
    """Per-core cycle accounting for the in-order timing model."""

    instructions: int = 0
    cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


@dataclass
class SimulationStats:
    """Everything one whole-system run produces."""

    accesses: AccessStats = field(default_factory=AccessStats)
    reuse: ReuseStats = field(default_factory=ReuseStats)
    dgroups: DgroupStats = field(default_factory=DgroupStats)
    bus: BusStats = field(default_factory=BusStats)
    per_core: "list[CoreTiming]" = field(default_factory=list)

    @property
    def total_instructions(self) -> int:
        return sum(core.instructions for core in self.per_core)

    @property
    def max_cycles(self) -> int:
        return max((core.cycles for core in self.per_core), default=0)

    @property
    def aggregate_ipc(self) -> float:
        """Sum of per-core IPCs — the multiprogrammed (Fig. 12) metric."""
        return sum(core.ipc for core in self.per_core)

    @property
    def throughput(self) -> float:
        """Instructions per (wall-clock) cycle across the whole CMP.

        For multithreaded workloads the paper uses transactions/second;
        with equal per-core instruction quotas this is proportional to
        total-instructions / slowest-core-cycles.
        """
        cycles = self.max_cycles
        return self.total_instructions / cycles if cycles else 0.0

    def fingerprint(self) -> "dict[str, object]":
        """A JSON-able digest of every counter, for exact comparisons.

        Two runs are bit-identical iff their fingerprints are equal;
        the golden-checkpoint corpus commits these next to the fixture
        files so a resumed run can be checked across builds.
        """
        return {
            "accesses": {mc.value: self.accesses.counts[mc]
                         for mc in sorted(self.accesses.counts, key=lambda m: m.value)},
            "reuse_ros": dict(sorted(self.reuse.ros_replaced.items())),
            "reuse_rws": dict(sorted(self.reuse.rws_invalidated.items())),
            "dgroups": {
                "closest_hits": self.dgroups.closest_hits,
                "farther_hits": self.dgroups.farther_hits,
                "misses": self.dgroups.misses,
            },
            "bus": dict(sorted(self.bus.transactions.items())),
            "per_core": [
                {"instructions": core.instructions, "cycles": core.cycles}
                for core in self.per_core
            ],
        }

    def merge(self, other: "SimulationStats") -> None:
        """Accumulate another run's counters into this one, in place.

        Counter-valued sections add; per-core timing sums position-wise
        (a shorter list is padded, so merging systems with different
        core counts is well-defined).  Ratio properties (``miss_rate``,
        ``ipc``) are derived from the merged counters, which is the
        correct pooled value — *not* the mean of the per-run ratios.
        """
        self.accesses.merge(other.accesses)
        self.reuse.merge(other.reuse)
        self.dgroups.merge(other.dgroups)
        self.bus.merge(other.bus)
        while len(self.per_core) < len(other.per_core):
            self.per_core.append(CoreTiming())
        for mine, theirs in zip(self.per_core, other.per_core):
            mine.instructions += theirs.instructions
            mine.cycles += theirs.cycles
