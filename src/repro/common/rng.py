"""Deterministic random-number plumbing.

Every stochastic component (workload generators, the random-stop
distance-replacement policy, the paper's "random perturbations in memory
system timing") draws from its own named stream derived from a single
root seed, so runs are reproducible and components do not perturb each
other's sequences when one of them changes.
"""

from __future__ import annotations

import zlib

import numpy as np

#: Root seed used throughout the repo unless a caller overrides it.
DEFAULT_SEED = 20050604  # ISCA 2005 conference date.


def stream(name: str, seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Return an independent generator for the component ``name``.

    The stream is keyed on ``(seed, crc32(name))`` so adding or removing
    one component never changes the draws seen by another.
    """
    key = zlib.crc32(name.encode("utf-8"))
    return np.random.default_rng(np.random.SeedSequence([seed, key]))


def derive_seed(name: str, seed: int = DEFAULT_SEED) -> int:
    """Return a stable integer sub-seed for ``name`` (for random.Random)."""
    return (seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0x7FFFFFFF
