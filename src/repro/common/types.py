"""Fundamental value types shared by every subsystem.

The simulators in this package operate at *block granularity*: an access
names a 64-bit byte address, and each cache model masks it down to the
block size it manages (64 B for L1, 128 B for the L2 designs, matching
the paper's Section 4 configuration).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessType(enum.Enum):
    """Kind of memory reference issued by a core."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


class MissClass(enum.Enum):
    """Paper's L2 access taxonomy (Section 5.1.1, Figure 5).

    * ``HIT`` — the access hit in the L2 design under study.
    * ``ROS`` — read-only-sharing miss: another on-chip copy existed in a
      clean/shared state when the miss occurred.
    * ``RWS`` — read-write-sharing miss: a *dirty* on-chip copy existed
      when the miss occurred (a coherence miss in private caches).
    * ``CAPACITY`` — no on-chip copy existed; the block comes from
      off-chip memory.
    """

    HIT = "hit"
    ROS = "ros_miss"
    RWS = "rws_miss"
    CAPACITY = "capacity_miss"

    @property
    def is_miss(self) -> bool:
        return self is not MissClass.HIT


class SharingClass(enum.Enum):
    """Workload-level classification of a block's usage pattern."""

    PRIVATE = "private"
    READ_ONLY_SHARED = "read_only_shared"
    READ_WRITE_SHARED = "read_write_shared"


class Access:
    """One memory reference in a trace.

    Attributes:
        core: index of the issuing core (0-based).
        address: byte address; block-aligned addresses are fine since all
            simulators mask to their own block size.
        type: read or write.
        sharing: optional ground-truth sharing class assigned by the
            workload generator.  Cache models never read it for
            *functional* decisions; it exists so experiments can report
            per-class statistics the way the paper does.

    A plain slotted class (not a dataclass): traces contain millions of
    these and construction cost dominates the generator's hot path.
    """

    __slots__ = ("core", "address", "type", "sharing")

    def __init__(
        self,
        core: int,
        address: int,
        type: AccessType,  # noqa: A002 - matches the trace-format field name
        sharing: SharingClass = SharingClass.PRIVATE,
    ) -> None:
        self.core = core
        self.address = address
        self.type = type
        self.sharing = sharing

    @property
    def is_write(self) -> bool:
        return self.type is AccessType.WRITE

    def __repr__(self) -> str:
        return (
            f"Access(core={self.core}, address={self.address:#x}, "
            f"type={self.type}, sharing={self.sharing})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Access):
            return NotImplemented
        return (
            self.core == other.core
            and self.address == other.address
            and self.type == other.type
            and self.sharing == other.sharing
        )

    def __hash__(self) -> int:
        return hash((self.core, self.address, self.type, self.sharing))


@dataclass(frozen=True)
class AccessResult:
    """Outcome of presenting one access to an L2 design.

    Attributes:
        miss_class: hit or one of the paper's three miss classes.
        latency: total L2-and-beyond latency in cycles (tag + data +
            any bus / remote / memory components).  Excludes L1 latency,
            which the CPU model adds.
        dgroup_distance: for distance-associative designs, 0 if the data
            was served from the requesting core's closest d-group,
            1+ for farther d-groups, and ``None`` for designs without
            d-groups or for misses served from memory.
        write_through: True when the L1 above must keep this block
            write-through — every store must be sent down to the L2.
            CMP-NuRAPID sets this for C-state blocks (Section 3.2).
    """

    miss_class: MissClass
    latency: int
    dgroup_distance: "int | None" = None
    write_through: bool = False

    @property
    def is_hit(self) -> bool:
        return self.miss_class is MissClass.HIT


def restore_slots_state(obj: object, state: object) -> None:
    """``__setstate__`` body shared by the slotted hot-path classes.

    Classes converted from ``@dataclass`` to ``@dataclass(slots=True)``
    still appear inside legacy format-1 checkpoints, which pickled them
    with plain ``__dict__`` state; protocol-2 pickles of the slotted
    classes instead carry a ``(dict_state, slots_state)`` pair.  Both
    forms restore through ``setattr``, so old snapshots keep loading
    after the conversion.  Unknown attribute names (a field an older
    build had and this one dropped) are ignored rather than fatal,
    matching the checkpoint loaders' minor-layout tolerance.
    """
    if isinstance(state, tuple) and len(state) == 2:
        sources = state
    else:
        sources = (state, None)
    for source in sources:
        if not source:
            continue
        for name, value in source.items():
            try:
                setattr(obj, name, value)
            except AttributeError:
                pass


def block_address(address: int, block_size: int) -> int:
    """Mask ``address`` down to the start of its ``block_size`` block."""
    if block_size <= 0 or block_size & (block_size - 1):
        raise ValueError(f"block_size must be a power of two, got {block_size}")
    return address & ~(block_size - 1)


def log2_exact(value: int) -> int:
    """Return log2 of a power-of-two ``value``, raising otherwise."""
    if value <= 0 or value & (value - 1):
        raise ValueError(f"expected a power of two, got {value}")
    return value.bit_length() - 1
