"""Configuration dataclasses for every simulated design.

Defaults reproduce Section 4 of the paper: a 4-core CMP at 70 nm /
5 GHz, 64 KB 2-way L1s with 64 B blocks and 3-cycle latency, an 8 MB L2
budget with 128 B blocks, a 32-cycle pipelined split-transaction bus,
and 300-cycle memory.  Latency constants mirror Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.types import log2_exact

KB = 1024
MB = 1024 * KB

#: Number of cores in the paper's evaluated CMP.
DEFAULT_NUM_CORES = 4

#: Table 1 — pipelined split-transaction bus latency (cycles).
BUS_LATENCY = 32

#: Section 4.1 — main-memory latency (cycles).
MEMORY_LATENCY = 300


def _check_power_of_two(name: str, value: int) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one set-associative cache (or tag) array."""

    capacity_bytes: int
    associativity: int
    block_size: int

    def __post_init__(self) -> None:
        _check_power_of_two("capacity_bytes", self.capacity_bytes)
        _check_power_of_two("block_size", self.block_size)
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.num_blocks % self.associativity:
            raise ValueError(
                "capacity/block_size must be divisible by associativity"
            )

    @property
    def num_blocks(self) -> int:
        return self.capacity_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity

    @property
    def offset_bits(self) -> int:
        return log2_exact(self.block_size)

    @property
    def index_bits(self) -> int:
        return log2_exact(self.num_sets)

    def set_index(self, address: int) -> int:
        return (address >> self.offset_bits) & (self.num_sets - 1)

    def tag(self, address: int) -> int:
        return address >> (self.offset_bits + self.index_bits)


@dataclass(frozen=True)
class L1Params:
    """Per-core L1 cache (Section 4.1: 64 KB, 2-way, 64 B, 3 cycles)."""

    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(64 * KB, 2, 64)
    )
    latency: int = 3


@dataclass(frozen=True)
class SharedCacheParams:
    """Uniform-shared L2 (Table 1: 8 MB 32-way; tag 26 + data 33)."""

    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(8 * MB, 32, 128)
    )
    tag_latency: int = 26
    data_latency: int = 33

    @property
    def hit_latency(self) -> int:
        return self.tag_latency + self.data_latency


@dataclass(frozen=True)
class PrivateCacheParams:
    """Per-core private L2 (Table 1: 2 MB 8-way; tag 4 + data 6)."""

    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(2 * MB, 8, 128)
    )
    tag_latency: int = 4
    data_latency: int = 6

    @property
    def hit_latency(self) -> int:
        return self.tag_latency + self.data_latency


@dataclass(frozen=True)
class SnucaParams:
    """CMP-SNUCA banked shared cache ([6]'s design, Section 4.2).

    The 8 MB array is statically banked; a block's bank is a hash of its
    address.  Latency from a core to a bank grows with on-die distance.
    ``bank_latencies[c][b]`` gives the round-trip access latency from
    core ``c`` to bank ``b`` including the (distributed) tag lookup.
    The default 16-bank latency matrix is derived in
    :mod:`repro.latency.tables` from the same wire-delay assumptions as
    Table 1 and cross-checked against the average SNUCA hit latencies
    reported by [14] and [6] (roughly 24-26 cycles for 8 MB at 70 nm).
    """

    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(8 * MB, 16, 128)
    )
    num_banks: int = 16
    bank_latencies: "tuple[tuple[int, ...], ...]" = ()

    def __post_init__(self) -> None:
        _check_power_of_two("num_banks", self.num_banks)
        if not self.bank_latencies:
            from repro.latency.tables import snuca_bank_latencies

            object.__setattr__(
                self,
                "bank_latencies",
                snuca_bank_latencies(DEFAULT_NUM_CORES, self.num_banks),
            )


@dataclass(frozen=True)
class IdealCacheParams:
    """Ideal cache: shared capacity at private latency (Section 5.1.1)."""

    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(8 * MB, 32, 128)
    )
    hit_latency: int = 10


@dataclass(frozen=True)
class NurapidParams:
    """CMP-NuRAPID (Section 2.2, Table 1).

    * Four 2 MB single-ported d-groups form the shared data array.
    * Each core has a private tag array with **twice** the entries
      needed to cover one d-group (Section 2.2.2's 2x compromise):
      the number of sets is doubled at the same associativity.
    * ``dgroup_latencies[c][g]`` is the data latency from core ``c`` to
      d-group ``g``; from any core's perspective the sorted latencies
      are (6, 20, 20, 33) per Table 1.
    * ``tag_latency`` (5 cycles) includes the extra tag space.
    """

    num_cores: int = DEFAULT_NUM_CORES
    num_dgroups: int = DEFAULT_NUM_CORES
    dgroup_capacity_bytes: int = 2 * MB
    block_size: int = 128
    tag_associativity: int = 8
    tag_capacity_factor: int = 2
    tag_latency: int = 5
    dgroup_latencies: "tuple[tuple[int, ...], ...]" = ()
    #: Promotion policy for private blocks: "fastest" (paper's choice for
    #: CMPs) or "next-fastest" (NuRAPID's uniprocessor choice).
    promotion_policy: str = "fastest"
    #: Number of uses after which CR replicates data into the closest
    #: d-group (paper: replicate on the *second* use).
    replicate_on_use: int = 2
    #: Extension (the paper's Section 3.2 future work): a C-state block
    #: "stuck" far from an active reader migrates to that reader after
    #: this many consecutive remote reads.  0 disables migration — the
    #: paper's simple no-exits-from-C policy.
    c_migration_threshold: int = 0

    def __post_init__(self) -> None:
        _check_power_of_two("dgroup_capacity_bytes", self.dgroup_capacity_bytes)
        _check_power_of_two("block_size", self.block_size)
        if self.promotion_policy not in ("fastest", "next-fastest"):
            raise ValueError(
                f"unknown promotion policy {self.promotion_policy!r}"
            )
        if self.replicate_on_use < 1:
            raise ValueError("replicate_on_use must be >= 1")
        if self.c_migration_threshold < 0:
            raise ValueError("c_migration_threshold must be >= 0")
        if not self.dgroup_latencies:
            from repro.latency.tables import nurapid_dgroup_latencies

            object.__setattr__(
                self,
                "dgroup_latencies",
                nurapid_dgroup_latencies(self.num_cores, self.num_dgroups),
            )

    @property
    def frames_per_dgroup(self) -> int:
        return self.dgroup_capacity_bytes // self.block_size

    @property
    def total_frames(self) -> int:
        return self.frames_per_dgroup * self.num_dgroups

    @property
    def tag_geometry(self) -> CacheGeometry:
        """Geometry of one core's private tag array.

        A private cache covering one d-group would need
        ``dgroup_capacity/block_size`` entries; the paper doubles the
        number of sets while keeping associativity (Section 2.2.2).
        """
        return CacheGeometry(
            self.dgroup_capacity_bytes * self.tag_capacity_factor,
            self.tag_associativity,
            self.block_size,
        )


@dataclass(frozen=True)
class SystemParams:
    """Whole-CMP configuration shared by all L2 designs.

    ``blocking_stores`` controls whether stores that leave the L1 stall
    the core.  The default (False) models a store buffer: stores retire
    immediately while the hierarchy processes them — coherence actions,
    write-through traffic, and statistics still happen; only loads
    stall the in-order core.
    """

    num_cores: int = DEFAULT_NUM_CORES
    l1: L1Params = field(default_factory=L1Params)
    bus_latency: int = BUS_LATENCY
    memory_latency: int = MEMORY_LATENCY
    blocking_stores: bool = False
