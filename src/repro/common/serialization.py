"""State-dict plumbing shared by every checkpointable component.

The versioned checkpoint format (:mod:`repro.harness.checkpoint`)
serializes *plain data* — nested dicts of Python scalars, strings,
tuples, and numpy arrays — never the component classes themselves, so
renaming or refactoring an internal class cannot invalidate a snapshot.
This module holds the pieces every component's ``state_dict()`` /
``load_state_dict()`` uses:

* **columnar entry packing** — a set-associative array's valid entries
  become one numpy column per dataclass field (sparse: invalid entries
  are omitted and reconstructed as defaults), with pluggable per-field
  codecs for enum-valued and pointer-valued fields;
* **enum legends** — enum columns are stored as small integer codes
  plus a legend of ``value`` strings, so reordering an enum's members
  does not reinterpret old snapshots;
* **dataclass scalar helpers** — flat counter/int dataclasses
  (statistics blocks) round-trip by field name;
* **RNG capture** — a :class:`numpy.random.Generator` round-trips via
  its bit-generator state dict (plain ints), never by pickling the
  generator object;
* **:class:`StateDictError`** — the structured complaint a loader
  raises, carrying the dotted path of the failing field so
  :class:`~repro.harness.checkpoint.CheckpointError` diagnostics can
  name it precisely.

Loaders are *minor-layout tolerant* by construction: unknown keys in a
state dict are ignored (an older build reading a newer snapshot's
extras) and a missing column leaves the freshly-built default in place
(a newer build reading an older snapshot).  Structural mismatches —
wrong column lengths, out-of-range indices, free-list accounting that
does not add up — are hard errors.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np


class StateDictError(ValueError):
    """A state dict is structurally invalid for the component loading it.

    Attributes:
        field: dotted path of the offending field (e.g.
            ``design.tags[0].entries.set_index``).
    """

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"{field}: {message}")
        self.field = field


def require(state: "Dict[str, Any]", key: str, path: str) -> Any:
    """Fetch a required key, raising a path-qualified error if absent."""
    if not isinstance(state, dict):
        raise StateDictError(path, f"expected a dict, got {type(state).__name__}")
    if key not in state:
        raise StateDictError(f"{path}.{key}", "missing required field")
    return state[key]


# ----------------------------------------------------------------------
# Per-field codecs for columnar entry packing


class EnumCodec:
    """Enum column <-> integer codes plus a value-string legend.

    The legend is written at pack time from the *current* enum, and
    decoding maps codes through the stored legend back to enum values —
    so reordering or extending the enum later never reinterprets old
    snapshots, and a legend value the current enum no longer knows is a
    precise load error instead of a silent misread.
    """

    def __init__(self, enum_type, optional: bool = False) -> None:
        self.enum_type = enum_type
        self.optional = optional

    def pack(self, values: "List[Any]") -> "Dict[str, Any]":
        legend = [member.value for member in self.enum_type]
        index = {member: i for i, member in enumerate(self.enum_type)}
        codes = np.empty(len(values), dtype=np.int8)
        for i, value in enumerate(values):
            codes[i] = -1 if value is None else index[value]
        return {"codes": codes, "legend": legend}

    def unpack(self, column: "Dict[str, Any]", count: int, path: str) -> "List[Any]":
        codes = _column_array(require(column, "codes", path), count, f"{path}.codes")
        legend = require(column, "legend", path)
        out: "List[Any]" = []
        for i, code in enumerate(codes):
            code = int(code)
            if code < 0:
                if not self.optional:
                    raise StateDictError(
                        f"{path}.codes[{i}]",
                        f"{self.enum_type.__name__} value cannot be null",
                    )
                out.append(None)
                continue
            if code >= len(legend):
                raise StateDictError(
                    f"{path}.codes[{i}]",
                    f"code {code} outside legend of {len(legend)} entries",
                )
            try:
                out.append(self.enum_type(legend[code]))
            except ValueError:
                raise StateDictError(
                    f"{path}.legend[{code}]",
                    f"unknown {self.enum_type.__name__} value {legend[code]!r}",
                ) from None
        return out


class FramePtrCodec:
    """Optional ``FramePtr`` column as two parallel int arrays (-1 = None)."""

    def pack(self, values: "List[Any]") -> "Dict[str, Any]":
        dgroup = np.full(len(values), -1, dtype=np.int32)
        frame = np.full(len(values), -1, dtype=np.int32)
        for i, value in enumerate(values):
            if value is not None:
                dgroup[i], frame[i] = value
        return {"dgroup": dgroup, "frame": frame}

    def unpack(self, column: "Dict[str, Any]", count: int, path: str) -> "List[Any]":
        from repro.core.pointers import FramePtr

        dgroup = _column_array(require(column, "dgroup", path), count, f"{path}.dgroup")
        frame = _column_array(require(column, "frame", path), count, f"{path}.frame")
        return [
            None if d < 0 else FramePtr(int(d), int(f))
            for d, f in zip(dgroup, frame)
        ]


class ScalarCodec:
    """Default codec: ints and bools become one numpy array."""

    def pack(self, values: "List[Any]") -> "Any":
        return np.asarray(values) if values else np.asarray(values, dtype=np.int64)

    def unpack(self, column: Any, count: int, path: str) -> "List[Any]":
        array = _column_array(column, count, path)
        return [value.item() if hasattr(value, "item") else value for value in array]


def _column_array(column: Any, count: int, path: str) -> np.ndarray:
    array = np.asarray(column)
    if array.ndim != 1:
        raise StateDictError(path, f"expected a 1-d column, got shape {array.shape}")
    if len(array) != count:
        raise StateDictError(
            path, f"column length {len(array)} does not match {count} rows"
        )
    return array


def _entry_codecs() -> "Dict[str, Any]":
    """Field-name -> codec registry for cache-entry columns.

    Imported lazily: ``caches.base`` imports this module.
    """
    from repro.coherence.states import CoherenceState
    from repro.common.types import MissClass

    return {
        "state": EnumCodec(CoherenceState),
        "fill_class": EnumCodec(MissClass, optional=True),
        "fwd": FramePtrCodec(),
    }


def pack_entries(array) -> "Dict[str, Any]":
    """Columnar snapshot of a :class:`SetAssociativeArray`'s valid entries.

    Sparse by design: invalid entries carry no model-visible state (the
    victim scan keys only on validity, and ``invalidate()`` resets every
    payload field), so only valid entries are stored and the rest are
    reconstructed as factory defaults on load.
    """
    codecs = _entry_codecs()
    default = ScalarCodec()
    entry_type = type(array._sets[0][0])
    field_names = [f.name for f in dataclasses.fields(entry_type)]
    set_indices: "List[int]" = []
    ways: "List[int]" = []
    values: "Dict[str, List[Any]]" = {name: [] for name in field_names}
    for set_index, way, entry in array.valid_entries():
        set_indices.append(set_index)
        ways.append(way)
        for name in field_names:
            values[name].append(getattr(entry, name))
    columns = {
        name: codecs.get(name, default).pack(column)
        for name, column in values.items()
    }
    return {
        "num_sets": array.geometry.num_sets,
        "associativity": array.geometry.associativity,
        "clock": array._clock,
        "set_index": np.asarray(set_indices, dtype=np.int32),
        "way": np.asarray(ways, dtype=np.int32),
        "fields": columns,
    }


def unpack_entries(array, state: "Dict[str, Any]", path: str) -> None:
    """Restore :func:`pack_entries` output into a freshly-built array."""
    codecs = _entry_codecs()
    default = ScalarCodec()
    num_sets = array.geometry.num_sets
    associativity = array.geometry.associativity
    for key, expected in (("num_sets", num_sets), ("associativity", associativity)):
        got = require(state, key, path)
        if got != expected:
            raise StateDictError(
                f"{path}.{key}", f"checkpoint has {got}, this array has {expected}"
            )
    set_index = np.asarray(require(state, "set_index", path))
    way = _column_array(
        require(state, "way", path), len(set_index), f"{path}.way"
    )
    columns = require(state, "fields", path)
    entry_type = type(array._sets[0][0])
    field_names = [f.name for f in dataclasses.fields(entry_type)]
    decoded: "Dict[str, List[Any]]" = {}
    for name in field_names:
        if name not in columns:
            continue  # older snapshot without this (newer) field: keep defaults
        decoded[name] = codecs.get(name, default).unpack(
            columns[name], len(set_index), f"{path}.fields.{name}"
        )
    for row, (si, wi) in enumerate(zip(set_index, way)):
        si, wi = int(si), int(wi)
        if not 0 <= si < num_sets:
            raise StateDictError(
                f"{path}.set_index[{row}]", f"set {si} outside {num_sets} sets"
            )
        if not 0 <= wi < associativity:
            raise StateDictError(
                f"{path}.way[{row}]", f"way {wi} outside associativity {associativity}"
            )
        entry = array._sets[si][wi]
        for name, column in decoded.items():
            setattr(entry, name, column[row])
    array._clock = int(require(state, "clock", path))


# ----------------------------------------------------------------------
# Flat dataclasses, counters, params, RNG


def scalar_fields_state(obj) -> "Dict[str, Any]":
    """Snapshot an all-scalar dataclass (statistics/counter blocks)."""
    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}


def load_scalar_fields(obj, state: "Dict[str, Any]", path: str) -> None:
    if not isinstance(state, dict):
        raise StateDictError(path, f"expected a dict, got {type(state).__name__}")
    for f in dataclasses.fields(obj):
        if f.name in state:
            setattr(obj, f.name, state[f.name])


def counter_state(
    counter, key_encode: "Callable[[Any], Any]" = lambda key: key
) -> "List[Tuple[Any, int]]":
    """A Counter as a sorted list of ``(encoded key, count)`` pairs."""
    return sorted(
        (key_encode(key), count) for key, count in counter.items() if count
    )


def load_counter(
    counter,
    state: "Iterable[Tuple[Any, int]]",
    path: str,
    key_decode: "Callable[[Any], Any]" = lambda key: key,
) -> None:
    counter.clear()
    try:
        pairs = list(state)
    except TypeError:
        raise StateDictError(path, "expected a list of (key, count) pairs") from None
    for i, pair in enumerate(pairs):
        if not isinstance(pair, (tuple, list)) or len(pair) != 2:
            raise StateDictError(f"{path}[{i}]", f"expected (key, count), got {pair!r}")
        key, count = pair
        try:
            counter[key_decode(key)] = int(count)
        except (ValueError, KeyError) as error:
            raise StateDictError(f"{path}[{i}]", str(error)) from None


def params_state(params) -> "Dict[str, Any]":
    """A params dataclass as a nested plain dict, keyed by field name."""
    out: "Dict[str, Any]" = {}
    for f in dataclasses.fields(params):
        value = getattr(params, f.name)
        out[f.name] = params_state(value) if dataclasses.is_dataclass(value) else value
    return out


def params_from_state(cls, state: "Dict[str, Any]", path: str):
    """Rebuild a params dataclass from :func:`params_state` output.

    Nested dataclass fields recurse through the *current* class's type
    hints, so a geometry field that moved between parameter classes
    still reconstructs as long as the field names line up.  Unknown
    keys are ignored; missing keys keep the class defaults.
    """
    if not isinstance(state, dict):
        raise StateDictError(path, f"expected a dict, got {type(state).__name__}")
    try:
        hints = typing.get_type_hints(cls)
    except Exception:  # pragma: no cover - defensive: exotic annotations
        hints = {}
    kwargs: "Dict[str, Any]" = {}
    for f in dataclasses.fields(cls):
        if f.name not in state:
            continue
        value = state[f.name]
        annotated = hints.get(f.name)
        if dataclasses.is_dataclass(annotated) and isinstance(value, dict):
            value = params_from_state(annotated, value, f"{path}.{f.name}")
        kwargs[f.name] = value
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as error:
        raise StateDictError(path, f"invalid {cls.__name__}: {error}") from None


def rng_state(generator: "np.random.Generator") -> "Dict[str, Any]":
    """A numpy Generator's bit-generator state (plain ints and strings)."""
    return generator.bit_generator.state


def load_rng(generator: "np.random.Generator", state: "Dict[str, Any]", path: str) -> None:
    try:
        generator.bit_generator.state = state
    except (TypeError, ValueError, KeyError, RuntimeError) as error:
        raise StateDictError(path, f"invalid RNG state: {error}") from None


__all__ = [
    "EnumCodec",
    "FramePtrCodec",
    "StateDictError",
    "counter_state",
    "load_counter",
    "load_rng",
    "load_scalar_fields",
    "pack_entries",
    "params_from_state",
    "params_state",
    "require",
    "rng_state",
    "scalar_fields_state",
    "unpack_entries",
]
