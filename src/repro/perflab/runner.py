"""Plan runner: execute a bench plan into a v2 capture bundle.

One :func:`run_plan` call executes every cell of a
:class:`~repro.perflab.plan.BenchPlan` and produces one
``repro-bench-v2`` record — the unit the trend engine
(:mod:`repro.perflab.history` / :mod:`repro.perflab.report`)
accumulates over time.  Each run has three passes per bus-model group:

1. **Stats pass** — the grid's cells go through the existing
   supervised parallel executor (:func:`repro.experiments.parallel.
   run_cells`): per-cell :class:`SimulationStats` with heartbeats,
   retries, and quarantine exactly as experiment sweeps get them.
   Deterministic metrics (miss rate, the stats fingerprint digest)
   come from here, so they are bit-identical across hosts and pool
   sizes.
2. **Timing pass** — best-of-``repeats`` wall-clock per cell,
   uninstrumented and in-process (the same protocol as the legacy
   hardcoded bench, so v2 throughput numbers chain onto the v1
   history).
3. **Capture pass** (opt-in per plan) — one instrumented re-run per
   cell with the profiler, interval metrics, and/or the event tracer
   attached, written into a ``<out>.capture/<cell>/`` bundle directory
   (``profile.json``, ``metrics.json``, ``trace.jsonl`` +
   ``trace.perfetto.json``).  Instrumentation never touches the timed
   runs, so capture cannot skew the trend.

The record also carries an **environment fingerprint** (CPU count,
Python/numpy versions, platform, git SHA) — the trend engine aligns
runs by cell *and* environment so a laptop run never gates a CI run —
and a legacy per-design ``throughput_accesses_per_sec`` view, so
existing v1 baselines keep working against v2 files.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import platform
import subprocess
import time
from typing import Dict, List, Optional

from repro.cpu.system import CmpSystem
from repro.experiments import bench, parallel
from repro.experiments.runner import StatsCache, build_design, run_mix, run_multithreaded
from repro.obs.metrics import MetricsCollector
from repro.obs.perfetto import export_jsonl
from repro.obs.profiler import Profiler
from repro.obs.tracer import Tracer
from repro.perflab.plan import BenchPlan, PlanCell
from repro.workloads.multiprogrammed import make_mix
from repro.workloads.multithreaded import make_workload

#: Schema tag for plan-driven bench records.
SCHEMA_V2 = "repro-bench-v2"

#: Schema tag of the legacy hardcoded-bench records.
SCHEMA_V1 = "repro-bench-v1"


def environment_fingerprint() -> dict:
    """Where this run happened, for trend alignment."""
    return {
        "cpus": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "git_sha": _git_sha(),
    }


def _numpy_version() -> "Optional[str]":
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dep today
        return None
    return numpy.__version__


def _git_sha() -> "Optional[str]":
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def stats_digest(stats) -> str:
    """A short stable digest of a run's exact-counter fingerprint."""
    payload = json.dumps(stats.fingerprint(), sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _cell_events(cell: PlanCell, config):
    """(workload object, event iterable, warmup event count) for a cell."""
    maker = make_mix if cell.multiprogrammed else make_workload
    workload = maker(cell.workload, seed=config.seed)
    total = config.warmup_per_core + config.measure_per_core
    events = workload.events(accesses_per_core=total)
    return workload, events, config.warmup_per_core * workload.num_cores


def _time_cell(cell: PlanCell, config, repeats: int) -> "tuple[float, List[float]]":
    """Best-of-``repeats`` throughput for one cell (accesses/second).

    The whole path is timed — workload generation, L1s, the design —
    with construction outside the clock, matching the legacy
    ``measure_throughput`` protocol exactly.
    """
    run = run_mix if cell.multiprogrammed else run_multithreaded
    best = 0.0
    seconds: "List[float]" = []
    for _ in range(repeats):
        design = build_design(cell.design, bus_model=cell.bus_model)
        start = time.perf_counter()
        system, _ = run(design, cell.workload, config)
        elapsed = time.perf_counter() - start
        seconds.append(round(elapsed, 4))
        total = config.measure_per_core * len(system.cores)
        best = max(best, total / elapsed if elapsed else 0.0)
    return best, seconds


def _capture_cell(cell: PlanCell, plan: BenchPlan, capture_dir: str) -> dict:
    """One instrumented run of ``cell``; returns the bundle manifest."""
    config = plan.config()
    os.makedirs(capture_dir, exist_ok=True)
    manifest: "Dict[str, object]" = {}
    tracer = None
    collector = None
    profiler = None
    if plan.capture.trace:
        trace_path = os.path.join(capture_dir, "trace.jsonl")
        tracer = Tracer(sink=trace_path)
        manifest["trace"] = "trace.jsonl"
    if plan.capture.metrics:
        collector = MetricsCollector(sample_every=plan.capture.metrics_every)
    if plan.capture.profile:
        profiler = Profiler()

    design = build_design(cell.design, bus_model=cell.bus_model)
    system = CmpSystem(design, tracer=tracer, metrics=collector)
    if profiler is not None:
        profiler.instrument(system)
    _, events, warmup_events = _cell_events(cell, config)
    iterator = iter(events)
    if warmup_events:
        system.run(itertools.islice(iterator, warmup_events))
        system.reset_stats()
    system.run(iterator)

    if collector is not None:
        series = collector.finish()
        metrics_path = os.path.join(capture_dir, "metrics.json")
        series.to_json(metrics_path)
        manifest["metrics"] = "metrics.json"
        latency = collector.registry.histogram("l2.latency")
        manifest["latency"] = {
            "mean": round(latency.mean, 3),
            "p50": round(latency.percentile(0.50), 3),
            "p95": round(latency.percentile(0.95), 3),
            "p99": round(latency.percentile(0.99), 3),
        }
    if profiler is not None:
        profile_path = os.path.join(capture_dir, "profile.json")
        with open(profile_path, "w", encoding="utf-8") as handle:
            json.dump(profiler.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        manifest["profile"] = "profile.json"
    if tracer is not None:
        tracer.close()
        perfetto_path = os.path.join(capture_dir, "trace.perfetto.json")
        export_jsonl(os.path.join(capture_dir, "trace.jsonl"), perfetto_path)
        manifest["perfetto"] = "trace.perfetto.json"
    return manifest


def cell_slug(label: str) -> str:
    """A filesystem-safe name for one cell's capture directory."""
    return label.replace("/", "-")


def run_plan(
    plan: BenchPlan,
    quick: bool = False,
    out: "Optional[str]" = None,
    jobs: "Optional[int]" = None,
    cell_timeout: "Optional[float]" = None,
    max_retries: "Optional[int]" = None,
    engine: "Optional[str]" = None,
) -> dict:
    """Execute ``plan`` and return the ``repro-bench-v2`` record.

    ``quick`` shrinks run lengths the same way the legacy bench's
    ``--quick`` does (CI smoke sizing); ``out`` names the record's
    output path so the capture bundle can sit next to it (the caller
    still writes the record itself); ``jobs`` overrides the plan's
    stats-pass worker count.  ``engine`` (``None`` defers to
    ``REPRO_ENGINE``) is recorded in the environment fingerprint;
    ``"batch"`` force-enables the plan's ``[batch]`` leg.  The stats
    pass itself always runs the scalar engine — it is the reference the
    batch leg's fingerprints are checked against, so batching it would
    make the identity proof circular.  A cell that exhausts its
    supervised retries raises :class:`~repro.experiments.parallel.
    QuarantinedCellError`, exactly like an experiment sweep.
    """
    from repro.kernel import resolve_engine

    engine = resolve_engine(engine)
    if quick:
        plan = _quicken(plan)
    config = plan.config()
    cells = plan.cells()
    batch_enabled = plan.batch.enabled or engine == "batch"
    batch_cells = plan.batch_cells() if batch_enabled else []
    resolved_jobs = parallel.resolve_jobs(
        jobs if jobs is not None else (plan.jobs or None)
    )

    # Stats pass: through the supervised executor, one bus-model group
    # at a time (the executor resolves one bus model per invocation;
    # separate caches keep the groups' records from colliding on the
    # bus-model-free cache key).  Covers the union of the grid and the
    # batch leg's cells, so every batch lane has a scalar reference.
    stats_by_label: "Dict[str, object]" = {}
    all_cells = list(cells)
    grid_labels = {cell.label for cell in cells}
    all_cells.extend(
        cell for cell in batch_cells if cell.label not in grid_labels
    )
    for bus_model in dict.fromkeys(cell.bus_model for cell in all_cells):
        group = [cell for cell in all_cells if cell.bus_model == bus_model]
        grid = [
            parallel.Cell(cell.workload, cell.design, cell.multiprogrammed)
            for cell in group
        ]
        cache = StatsCache()
        report = parallel.run_cells(
            grid, config, cache, jobs=resolved_jobs, bus_model=bus_model,
            cell_timeout=cell_timeout, max_retries=max_retries,
        )
        if report.quarantined:
            raise parallel.QuarantinedCellError(report.quarantined, None)
        for plan_cell, grid_cell in zip(group, grid):
            stats_by_label[plan_cell.label] = cache._cache[grid_cell.key(config)]

    # Timing pass: uninstrumented best-of-repeats, in plan order.
    capture_base = f"{os.path.splitext(out)[0]}.capture" if out else None
    records: "Dict[str, dict]" = {}
    for cell in cells:
        stats = stats_by_label[cell.label]
        best, seconds = _time_cell(cell, config, plan.repeats)
        record = {
            "workload": cell.workload,
            "design": cell.design,
            "bus_model": cell.bus_model,
            "multiprogrammed": cell.multiprogrammed,
            "throughput_accesses_per_sec": round(best, 1),
            "repeat_seconds": seconds,
            "miss_rate": round(stats.accesses.miss_rate, 6),
            "fingerprint": stats_digest(stats),
        }
        # Capture pass: one extra instrumented run, never the timed one.
        if plan.capture.any and capture_base is not None:
            capture_dir = os.path.join(capture_base, cell_slug(cell.label))
            manifest = _capture_cell(cell, plan, capture_dir)
            latency = manifest.pop("latency", None)
            if latency is not None:
                record["latency"] = latency
            record["capture"] = {
                "dir": os.path.relpath(capture_dir,
                                       os.path.dirname(out) or "."),
                **manifest,
            }
        records[cell.label] = record

    environment = environment_fingerprint()
    environment["engine"] = engine
    result = {
        "schema": SCHEMA_V2,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "plan": plan.to_dict(),
        "environment": environment,
        "accesses_per_core": config.measure_per_core,
        "repeats": plan.repeats,
        "cells": records,
        # Legacy view: per-design best across the grid, so v1 baselines
        # (and compare_to_baseline) keep working against v2 records.
        "throughput_accesses_per_sec": _legacy_view(records),
    }
    if batch_enabled:
        result["batch"] = _run_batch_leg(
            plan, config, batch_cells, stats_by_label
        )
    if plan.sweep.enabled:
        sweep_jobs = plan.sweep.jobs or None
        result["sweep"] = bench.measure_sweep(
            jobs=max(parallel.resolve_jobs(sweep_jobs), 2),
            quick=quick or plan.sweep.quick,
            cell_timeout=cell_timeout,
            max_retries=max_retries,
        )
    return result


def _run_batch_leg(
    plan: BenchPlan,
    config,
    batch_cells: "List[PlanCell]",
    stats_by_label: "Dict[str, object]",
) -> dict:
    """Time the SoA batch kernel over the ``[batch]`` grid vs scalar.

    Both sides run serially in-process, in **paired rounds**: each
    round times the scalar engine cell-by-cell over the whole grid and
    then one :func:`repro.kernel.run_batch` call over the same grid
    back-to-back, so host-load drift cancels out of the ratio instead
    of gating it (on shared single-core hosts the absolute numbers
    swing far more than the ratio does).  The gate value is the best
    paired ratio across rounds.  The kernel shares one event tape
    across every design and bus model of a workload — part of its
    advantage, so tape construction is deliberately inside the clock,
    matching the scalar side's timed generation.  Every lane's stats
    must be fingerprint-identical to the scalar reference from the
    stats pass.
    """
    from repro.kernel import run_batch

    repeats = plan.batch_repeats
    lanes = [
        (cell.workload, cell.design, cell.multiprogrammed, cell.bus_model)
        for cell in batch_cells
    ]

    results: "Dict" = {}
    scalar_rounds: "List[float]" = []
    batch_rounds: "List[float]" = []
    speedup = 0.0
    for _ in range(repeats):
        scalar_elapsed = 0.0
        for cell in batch_cells:
            run = run_mix if cell.multiprogrammed else run_multithreaded
            # Design construction stays inside the clock: run_batch
            # builds every lane's design inside its own timed call, and
            # a real sweep pays construction per cell on either engine,
            # so excluding it here would bias the ratio against batch.
            start = time.perf_counter()
            design = build_design(cell.design, bus_model=cell.bus_model)
            run(design, cell.workload, config)
            scalar_elapsed += time.perf_counter() - start
        start = time.perf_counter()
        results = run_batch(lanes, config)
        batch_elapsed = time.perf_counter() - start
        scalar_rounds.append(round(scalar_elapsed, 4))
        batch_rounds.append(round(batch_elapsed, 4))
        if batch_elapsed:
            speedup = max(speedup, scalar_elapsed / batch_elapsed)

    mismatches: "List[str]" = []
    accesses = 0
    for cell, lane in zip(batch_cells, lanes):
        stats = results[lane]
        accesses += config.measure_per_core * len(stats.per_core)
        if stats.fingerprint() != stats_by_label[cell.label].fingerprint():
            mismatches.append(cell.label)

    scalar_seconds = min(scalar_rounds)
    batch_seconds = min(batch_rounds)
    return {
        "cells": [cell.label for cell in batch_cells],
        "accesses": accesses,
        "repeats": repeats,
        "scalar_seconds": round(scalar_seconds, 3),
        "batch_seconds": round(batch_seconds, 3),
        "scalar_round_seconds": scalar_rounds,
        "batch_round_seconds": batch_rounds,
        "scalar_accesses_per_sec": round(
            accesses / scalar_seconds if scalar_seconds else 0.0, 1
        ),
        "batch_accesses_per_sec": round(
            accesses / batch_seconds if batch_seconds else 0.0, 1
        ),
        "speedup": round(speedup, 2),
        "identical": not mismatches,
        "mismatches": mismatches,
        "min_speedup": plan.batch.min_speedup,
        "cpus": os.cpu_count() or 1,
    }


def _quicken(plan: BenchPlan) -> BenchPlan:
    """The plan resized for CI smoke runs (mirrors the legacy --quick)."""
    from dataclasses import replace

    return replace(
        plan,
        accesses_per_core=min(plan.accesses_per_core, 20_000),
        repeats=min(plan.repeats, 2),
    )


def _legacy_view(records: "Dict[str, dict]") -> "Dict[str, float]":
    view: "Dict[str, float]" = {}
    for record in records.values():
        design = record["design"]
        value = record["throughput_accesses_per_sec"]
        view[design] = max(view.get(design, 0.0), value)
    return view


def write_record(record: dict, path: str) -> None:
    """Write one BENCH record as stable, diff-friendly JSON."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_record(record: dict) -> str:
    """Human-readable summary of one v2 record (the CLI's stdout)."""
    plan = record.get("plan", {})
    run = plan.get("run", {})
    lines = [
        f"plan: {plan.get('name', '?')} "
        f"({record.get('accesses_per_core', run.get('accesses_per_core', '?'))} "
        f"accesses/core, best of {record.get('repeats', '?')})"
    ]
    for label, cell in record.get("cells", {}).items():
        line = (
            f"  {label:<34} "
            f"{cell['throughput_accesses_per_sec']:>12,.0f} accesses/s  "
            f"miss {100.0 * cell['miss_rate']:.2f}%"
        )
        latency = cell.get("latency")
        if latency:
            line += f"  p95 {latency['p95']:g}cy"
        lines.append(line)
    sweep = record.get("sweep")
    if sweep:
        note = "bit-identical" if sweep.get("identical") else "MISMATCH"
        lines.append(
            f"sweep: {sweep['cells']} cells, serial {sweep['serial_seconds']}s "
            f"-> {sweep['jobs']} jobs {sweep['parallel_seconds']}s "
            f"({sweep['speedup']}x, {note})"
        )
        if not sweep.get("speedup_gate_eligible", True):
            lines.append(f"  speedup gate {sweep.get('speedup_gate_note', 'skipped')}")
    batch = record.get("batch")
    if batch:
        note = "bit-identical" if batch.get("identical") else "MISMATCH"
        lines.append(
            f"batch: {len(batch['cells'])} lanes, "
            f"scalar {batch['scalar_seconds']}s -> "
            f"kernel {batch['batch_seconds']}s "
            f"({batch['speedup']}x aggregate, {note})"
        )
    env = record.get("environment", {})
    if env:
        lines.append(
            f"environment: {env.get('cpus', '?')} cpu(s), "
            f"python {env.get('python', '?')}, numpy {env.get('numpy', '?')}, "
            f"git {str(env.get('git_sha'))[:12]}"
        )
    return "\n".join(lines)


__all__ = [
    "SCHEMA_V1",
    "SCHEMA_V2",
    "cell_slug",
    "environment_fingerprint",
    "render_record",
    "run_plan",
    "stats_digest",
    "write_record",
]
