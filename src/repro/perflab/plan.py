"""Declarative bench plans: the grid a perf-lab run measures.

A *plan* is a TOML or JSON file describing a benchmark campaign —
which (design, workload, bus-model) cells to time, how long each run
is, what to capture per cell, and how strictly each cell is gated
against its own history.  ``plans/default.toml`` reproduces the
historical hardcoded ``repro bench`` cell set; CI's tiny smoke plan
lives next to it.

Schema (TOML shown; JSON mirrors it with the same keys)::

    [plan]
    name = "default"            # required; appears in BENCH records
    description = "..."

    [grid]                      # cells = designs x workloads x bus_models
    designs = ["uniform-shared", "private", "cmp-nurapid"]
    workloads = ["oltp"]        # Table 3 names and/or Table 2 mixes
    bus_models = ["atomic"]

    [run]
    accesses_per_core = 40000   # measured accesses per core per repeat
    warmup_per_core = 0         # warm-up accesses per core (not timed)
    repeats = 3                 # timing repeats; best-of wins
    jobs = 0                    # workers for the stats pass (0 = auto)

    [sweep]                     # optional serial-vs-pool wall-clock leg
    enabled = true
    quick = false
    jobs = 0                    # 0 = auto (REPRO_JOBS, floored at 2)

    [batch]                     # opt-in batch-kernel (--engine batch) leg
    enabled = true              # defaults to the table's presence
    designs = []                # empty/omitted fields inherit [grid]
    workloads = []
    bus_models = []
    repeats = 0                 # 0 = inherit run.repeats
    min_speedup = 1.2           # aggregate accesses/sec floor vs the
                                # scalar engine (0 = don't gate)

    [capture]                   # opt-in per-cell capture bundle
    profile = false             # profiler section timings (JSON)
    trace = false               # JSONL event trace + Perfetto export
    metrics = false             # interval metrics series (JSON)
    metrics_every = 10000

    [gate]
    threshold = 0.2             # max fractional throughput drop
    window = 5                  # rolling-baseline window (median)
    miss_rate_increase = 0.0    # allowed absolute miss-rate increase
    min_speedup = 0.0           # sweep speedup floor (0 = don't gate);
                                # never applied on single-CPU hosts

    [gate.cells]                # per-cell threshold overrides
    "oltp/cmp-nurapid/atomic" = 0.15

Everything except ``[plan] name`` has a default, so the minimal plan
is three lines.  Unknown tables, unknown keys, unknown design /
workload / bus-model names, and out-of-range numbers are all rejected
with a :class:`PlanError` naming the offending key — a plan typo must
fail the run, not silently measure the wrong grid.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import BUS_MODELS, DESIGN_FACTORIES, ExperimentConfig
from repro.workloads.multiprogrammed import MIXES
from repro.workloads.multithreaded import MULTITHREADED

_WORKLOADS = tuple(spec.name for spec in MULTITHREADED)


class PlanError(ValueError):
    """A bench plan failed validation; the message names the key."""


@dataclass(frozen=True)
class PlanCell:
    """One grid cell a plan measures."""

    workload: str
    design: str
    bus_model: str = "atomic"

    @property
    def multiprogrammed(self) -> bool:
        return self.workload in MIXES

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.design}/{self.bus_model}"


@dataclass(frozen=True)
class GatePolicy:
    """Per-cell regression thresholds for the trend engine."""

    #: Default allowed fractional throughput drop vs the rolling baseline.
    threshold: float = 0.2
    #: Rolling-baseline window: median of up to this many prior runs.
    window: int = 5
    #: Allowed absolute miss-rate increase (deterministic metric; the
    #: default tolerates float noise only).
    miss_rate_increase: float = 0.0
    #: Sweep-speedup floor (0 disables); skipped on single-CPU hosts.
    min_speedup: float = 0.0
    #: Cell label -> threshold override.
    cells: "Dict[str, float]" = field(default_factory=dict)

    def threshold_for(self, label: str) -> float:
        return self.cells.get(label, self.threshold)


@dataclass(frozen=True)
class CapturePolicy:
    """What to bundle per cell, beyond the timing numbers."""

    profile: bool = False
    trace: bool = False
    metrics: bool = False
    metrics_every: int = 10_000

    @property
    def any(self) -> bool:
        return self.profile or self.trace or self.metrics


@dataclass(frozen=True)
class SweepPolicy:
    """The optional serial-vs-pool wall-clock measurement."""

    enabled: bool = True
    quick: bool = False
    jobs: int = 0  # 0 = auto


@dataclass(frozen=True)
class BatchPolicy:
    """The optional batch-kernel (``--engine batch``) measurement leg.

    Times the SoA kernel over its own cell grid against the scalar
    engine run cell-by-cell, checks the two are fingerprint-identical,
    and (optionally) gates on an aggregate-throughput speedup floor.
    Empty ``designs``/``workloads``/``bus_models`` inherit the plan's
    ``[grid]``; ``repeats = 0`` inherits ``run.repeats``.
    """

    enabled: bool = False
    designs: "Sequence[str]" = ()
    workloads: "Sequence[str]" = ()
    bus_models: "Sequence[str]" = ()
    repeats: int = 0
    #: Aggregate accesses/sec floor as a multiple of the scalar engine
    #: (0 disables).  Both sides run serially on one core, so unlike
    #: the sweep-speedup gate this one is meaningful on any host; the
    #: process pool multiplies *on top* of whatever ratio it measures.
    min_speedup: float = 0.0


@dataclass(frozen=True)
class BenchPlan:
    """A validated bench plan, ready to run."""

    name: str
    description: str = ""
    designs: "Sequence[str]" = ("uniform-shared", "private", "cmp-nurapid")
    workloads: "Sequence[str]" = ("oltp",)
    bus_models: "Sequence[str]" = ("atomic",)
    accesses_per_core: int = 40_000
    warmup_per_core: int = 0
    repeats: int = 3
    jobs: int = 0  # stats-pass workers; 0 = auto (REPRO_JOBS, else 1)
    sweep: SweepPolicy = SweepPolicy()
    capture: CapturePolicy = CapturePolicy()
    gate: GatePolicy = GatePolicy()
    batch: BatchPolicy = BatchPolicy()
    #: Where the plan was loaded from (None for in-memory plans).
    path: "Optional[str]" = None

    def cells(self) -> "List[PlanCell]":
        """The grid, expanded in plan order."""
        return [
            PlanCell(workload, design, bus_model)
            for bus_model in self.bus_models
            for workload in self.workloads
            for design in self.designs
        ]

    def batch_cells(self) -> "List[PlanCell]":
        """The batch leg's grid ([batch] fields, inheriting [grid])."""
        return [
            PlanCell(workload, design, bus_model)
            for bus_model in (self.batch.bus_models or self.bus_models)
            for workload in (self.batch.workloads or self.workloads)
            for design in (self.batch.designs or self.designs)
        ]

    @property
    def batch_repeats(self) -> int:
        return self.batch.repeats or self.repeats

    def config(self) -> ExperimentConfig:
        return ExperimentConfig(
            warmup_per_core=self.warmup_per_core,
            measure_per_core=self.accesses_per_core,
        )

    def to_dict(self) -> dict:
        """The plan as it is embedded in a BENCH record."""
        return {
            "name": self.name,
            "description": self.description,
            "path": self.path,
            "grid": {
                "designs": list(self.designs),
                "workloads": list(self.workloads),
                "bus_models": list(self.bus_models),
            },
            "run": {
                "accesses_per_core": self.accesses_per_core,
                "warmup_per_core": self.warmup_per_core,
                "repeats": self.repeats,
            },
            "gate": {
                "threshold": self.gate.threshold,
                "window": self.gate.window,
                "miss_rate_increase": self.gate.miss_rate_increase,
                "min_speedup": self.gate.min_speedup,
                "cells": dict(self.gate.cells),
            },
            "batch": {
                "enabled": self.batch.enabled,
                "designs": list(self.batch.designs or self.designs),
                "workloads": list(self.batch.workloads or self.workloads),
                "bus_models": list(self.batch.bus_models or self.bus_models),
                "repeats": self.batch_repeats,
                "min_speedup": self.batch.min_speedup,
            },
        }


# -- validation helpers ------------------------------------------------


def _require(table: dict, context: str, known: "Sequence[str]") -> None:
    for key in table:
        if key not in known:
            raise PlanError(
                f"{context}: unknown key {key!r} "
                f"(known: {', '.join(sorted(known))})"
            )


def _names(table: dict, key: str, default: "Sequence[str]",
           valid: "Sequence[str]", what: str,
           context: str = "grid") -> "List[str]":
    value = table.get(key, list(default))
    if not isinstance(value, list) or not value or not all(
        isinstance(item, str) for item in value
    ):
        raise PlanError(f"{context}.{key} must be a non-empty list of strings")
    for item in value:
        if item not in valid:
            raise PlanError(
                f"{context}.{key}: unknown {what} {item!r} "
                f"(choose from {', '.join(sorted(valid))})"
            )
    if len(set(value)) != len(value):
        raise PlanError(f"{context}.{key} contains duplicates")
    return value


def _int(table: dict, key: str, default: int, context: str,
         minimum: int = 0) -> int:
    value = table.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise PlanError(f"{context}.{key} must be an integer, got {value!r}")
    if value < minimum:
        raise PlanError(f"{context}.{key} must be >= {minimum}, got {value}")
    return value


def _number(table: dict, key: str, default: float, context: str,
            lo: float = 0.0, hi: "Optional[float]" = None) -> float:
    value = table.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise PlanError(f"{context}.{key} must be a number, got {value!r}")
    if value < lo or (hi is not None and value >= hi):
        bound = f"[{lo:g}, {hi:g})" if hi is not None else f">= {lo:g}"
        raise PlanError(f"{context}.{key} must be {bound}, got {value}")
    return float(value)


def _bool(table: dict, key: str, default: bool, context: str) -> bool:
    value = table.get(key, default)
    if not isinstance(value, bool):
        raise PlanError(f"{context}.{key} must be true/false, got {value!r}")
    return value


def plan_from_dict(raw: dict, path: "Optional[str]" = None) -> BenchPlan:
    """Validate a parsed plan document into a :class:`BenchPlan`."""
    if not isinstance(raw, dict):
        raise PlanError(f"plan document must be a table, got {type(raw).__name__}")
    _require(raw, "plan file",
             ("plan", "grid", "run", "sweep", "capture", "gate", "batch"))

    plan_table = raw.get("plan", {})
    _require(plan_table, "[plan]", ("name", "description"))
    name = plan_table.get("name")
    if not isinstance(name, str) or not name:
        raise PlanError("[plan] name is required and must be a non-empty string")
    description = plan_table.get("description", "")
    if not isinstance(description, str):
        raise PlanError("[plan] description must be a string")

    grid = raw.get("grid", {})
    _require(grid, "[grid]", ("designs", "workloads", "bus_models"))
    defaults = BenchPlan(name="_")
    designs = _names(grid, "designs", defaults.designs,
                     tuple(DESIGN_FACTORIES), "design")
    workloads = _names(grid, "workloads", defaults.workloads,
                       _WORKLOADS + tuple(MIXES), "workload or mix")
    bus_models = _names(grid, "bus_models", defaults.bus_models,
                        BUS_MODELS, "bus model")

    run = raw.get("run", {})
    _require(run, "[run]", ("accesses_per_core", "warmup_per_core",
                            "repeats", "jobs"))
    accesses = _int(run, "accesses_per_core", defaults.accesses_per_core,
                    "run", minimum=1)
    warmup = _int(run, "warmup_per_core", defaults.warmup_per_core, "run")
    repeats = _int(run, "repeats", defaults.repeats, "run", minimum=1)
    jobs = _int(run, "jobs", defaults.jobs, "run")

    sweep_table = raw.get("sweep", {})
    _require(sweep_table, "[sweep]", ("enabled", "quick", "jobs"))
    sweep = SweepPolicy(
        enabled=_bool(sweep_table, "enabled", True, "sweep"),
        quick=_bool(sweep_table, "quick", False, "sweep"),
        jobs=_int(sweep_table, "jobs", 0, "sweep"),
    )

    capture_table = raw.get("capture", {})
    _require(capture_table, "[capture]",
             ("profile", "trace", "metrics", "metrics_every"))
    capture = CapturePolicy(
        profile=_bool(capture_table, "profile", False, "capture"),
        trace=_bool(capture_table, "trace", False, "capture"),
        metrics=_bool(capture_table, "metrics", False, "capture"),
        metrics_every=_int(capture_table, "metrics_every", 10_000,
                           "capture", minimum=1),
    )

    batch_table = raw.get("batch", {})
    _require(batch_table, "[batch]",
             ("enabled", "designs", "workloads", "bus_models", "repeats",
              "min_speedup"))
    batch = BatchPolicy(
        # A bare [batch] table means "measure it": enabled defaults to
        # the table's presence, so disabling is always explicit.
        enabled=_bool(batch_table, "enabled", "batch" in raw, "batch"),
        designs=tuple(
            _names(batch_table, "designs", (), tuple(DESIGN_FACTORIES),
                   "design", context="batch")
        ) if "designs" in batch_table else (),
        workloads=tuple(
            _names(batch_table, "workloads", (), _WORKLOADS + tuple(MIXES),
                   "workload or mix", context="batch")
        ) if "workloads" in batch_table else (),
        bus_models=tuple(
            _names(batch_table, "bus_models", (), BUS_MODELS, "bus model",
                   context="batch")
        ) if "bus_models" in batch_table else (),
        repeats=_int(batch_table, "repeats", 0, "batch"),
        min_speedup=_number(batch_table, "min_speedup", 0.0, "batch"),
    )

    gate_table = raw.get("gate", {})
    _require(gate_table, "[gate]",
             ("threshold", "window", "miss_rate_increase", "min_speedup",
              "cells"))
    overrides_table = gate_table.get("cells", {})
    if not isinstance(overrides_table, dict):
        raise PlanError("[gate.cells] must be a table of label -> threshold")
    labels = {
        PlanCell(workload, design, bus_model).label
        for bus_model in bus_models
        for workload in workloads
        for design in designs
    }
    overrides: "Dict[str, float]" = {}
    for label, value in overrides_table.items():
        if label not in labels:
            raise PlanError(
                f"[gate.cells] {label!r} is not a cell of this plan's grid"
            )
        overrides[label] = _number({"_": value}, "_", 0.0, "gate.cells",
                                   lo=0.0, hi=1.0)
    gate = GatePolicy(
        threshold=_number(gate_table, "threshold", defaults.gate.threshold,
                          "gate", lo=0.0, hi=1.0),
        window=_int(gate_table, "window", defaults.gate.window, "gate",
                    minimum=1),
        miss_rate_increase=_number(gate_table, "miss_rate_increase",
                                   defaults.gate.miss_rate_increase, "gate"),
        min_speedup=_number(gate_table, "min_speedup",
                            defaults.gate.min_speedup, "gate"),
        cells=overrides,
    )

    return BenchPlan(
        name=name,
        description=description,
        designs=tuple(designs),
        workloads=tuple(workloads),
        bus_models=tuple(bus_models),
        accesses_per_core=accesses,
        warmup_per_core=warmup,
        repeats=repeats,
        jobs=jobs,
        sweep=sweep,
        capture=capture,
        gate=gate,
        batch=batch,
        path=path,
    )


def load_plan(path: str) -> BenchPlan:
    """Load and validate a plan file (``.toml`` or ``.json``)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise PlanError(f"cannot read plan {path}: {error}") from None
    if path.endswith(".json"):
        try:
            raw = json.loads(data.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise PlanError(f"{path} is not valid JSON: {error}") from None
    else:
        try:
            text = data.decode("utf-8")
        except UnicodeDecodeError as error:
            raise PlanError(f"{path} is not valid UTF-8: {error}") from None
        raw = _parse_toml(text, path)
    return plan_from_dict(raw, path=os.path.abspath(path))


def _parse_toml(text: str, path: str) -> dict:
    """Parse plan TOML: stdlib ``tomllib`` (3.11+) or the mini parser."""
    try:
        import tomllib
    except ImportError:  # Python <= 3.10: the baked toolchain has no tomli
        return parse_plan_toml(text, path)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as error:
        raise PlanError(f"{path} is not valid TOML: {error}") from None


def parse_plan_toml(text: str, path: str = "<plan>") -> dict:
    """A minimal TOML-subset parser for plan files.

    Fallback for interpreters without :mod:`tomllib` (the repo floor is
    3.9).  Supports exactly what the plan schema needs — ``[table]``
    and ``[dotted.table]`` headers, bare or quoted keys, strings,
    integers, floats, booleans, single-line string arrays, and ``#``
    comments — and rejects everything else loudly, so a plan that
    parses here parses identically under the real ``tomllib``.
    """
    root: dict = {}
    current = root
    for number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_toml_comment(raw_line).strip()
        if not line:
            continue
        where = f"{path}:{number}"
        if line.startswith("["):
            if not line.endswith("]"):
                raise PlanError(f"{where}: malformed table header {line!r}")
            current = root
            for part in line[1:-1].split("."):
                key = _toml_key(part.strip(), where)
                current = current.setdefault(key, {})
                if not isinstance(current, dict):
                    raise PlanError(f"{where}: {key!r} is not a table")
            continue
        if "=" not in line:
            raise PlanError(f"{where}: expected 'key = value', got {line!r}")
        key_text, value_text = line.split("=", 1)
        key = _toml_key(key_text.strip(), where)
        current[key] = _toml_value(value_text.strip(), where)
    return root


def _strip_toml_comment(line: str) -> str:
    """Drop a trailing ``#`` comment, respecting double-quoted strings."""
    in_string = False
    for index, char in enumerate(line):
        if char == '"':
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:index]
    return line


def _toml_key(text: str, where: str) -> str:
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        return text[1:-1]
    if text and all(c.isalnum() or c in "-_" for c in text):
        return text
    raise PlanError(f"{where}: malformed key {text!r}")


def _toml_value(text: str, where: str):
    if not text:
        raise PlanError(f"{where}: missing value")
    if text == "true":
        return True
    if text == "false":
        return False
    if text[0] == '"':
        if len(text) < 2 or text[-1] != '"' or '"' in text[1:-1]:
            raise PlanError(f"{where}: malformed string {text!r}")
        return text[1:-1]
    if text[0] == "[":
        if text[-1] != "]":
            raise PlanError(f"{where}: arrays must close on the same line")
        inner = text[1:-1].strip()
        if not inner:
            return []
        items = [item.strip() for item in inner.split(",") if item.strip()]
        return [_toml_value(item, where) for item in items]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise PlanError(f"{where}: unsupported value {text!r}") from None


def default_plan() -> BenchPlan:
    """The in-memory twin of ``plans/default.toml``: the legacy bench.

    Same designs, workload, access count, and repeat count as the
    historical hardcoded ``repro bench`` cell, so a default-plan run is
    directly comparable with the accumulated v1 history.
    """
    return BenchPlan(
        name="default",
        description="the legacy hardcoded bench grid as a declarative plan",
    )


__all__ = [
    "BatchPolicy",
    "BenchPlan",
    "CapturePolicy",
    "GatePolicy",
    "PlanCell",
    "PlanError",
    "SweepPolicy",
    "default_plan",
    "load_plan",
    "parse_plan_toml",
    "plan_from_dict",
]
