"""Trend engine: per-cell verdicts and rendered reports over history.

Takes the runs :mod:`repro.perflab.history` loaded, computes per-cell
throughput / miss-rate deltas against a **rolling baseline** (the
median of up to ``gate.window`` prior comparable runs — same cell,
same environment key, same run length), and renders:

* ``trend.md`` — verdict table for the latest run, sweep-speedup
  status, and per-cell history tables;
* ``throughput.png`` / ``miss_rate.png`` — trend curves (matplotlib
  when importable, the built-in numpy renderer otherwise).

Gate semantics (the generalization of the old exit-5 point check):

* each cell's allowed fractional throughput drop comes from the plan —
  ``[gate] threshold`` with ``[gate.cells]`` per-cell overrides — so a
  noisy cell can be gated loosely without loosening the rest;
* miss rate is deterministic, so any increase beyond
  ``gate.miss_rate_increase`` (default 0, i.e. *any* increase) is a
  regression — a model change hiding behind a wall-clock win still
  trips the gate;
* the sweep speedup is gated only when ``gate.min_speedup`` > 0 **and**
  the run's host had more than one CPU (a single-CPU host records its
  speedup but is never judged by it — the skip is stated in the
  verdict);
* cells with no comparable history are ``skipped``, never failed.

A run with any ``regression`` verdict makes ``repro bench report``
exit :data:`~repro.experiments.bench.REGRESSION_EXIT` naming the
offending cells.
"""

from __future__ import annotations

import os
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.perflab.history import BenchRun, CellTrend, TrendPoint, build_trends
from repro.perflab.plan import BenchPlan, GatePolicy

#: Default allowed fractional throughput drop when no plan supplies one.
DEFAULT_THRESHOLD = 0.2

#: Tolerance for float round-off on the deterministic miss-rate check.
_MISS_EPS = 1e-9

OK = "ok"
REGRESSION = "regression"
SKIPPED = "skipped"


@dataclass
class CellVerdict:
    """One cell's gate outcome for the latest run."""

    label: str
    status: str  # ok | regression | skipped
    reason: str
    latest: "Optional[float]" = None  # accesses/sec
    baseline: "Optional[float]" = None  # rolling-baseline accesses/sec
    delta: "Optional[float]" = None  # fractional change (+ = faster)
    threshold: "Optional[float]" = None
    miss_delta: "Optional[float]" = None  # absolute miss-rate change

    def line(self) -> str:
        return f"{self.label}: {self.status} — {self.reason}"


@dataclass
class TrendReport:
    """Everything one ``repro bench report`` invocation produced."""

    runs: "List[BenchRun]"
    trends: "Dict[str, CellTrend]"
    verdicts: "List[CellVerdict]" = field(default_factory=list)
    markdown_path: "Optional[str]" = None
    chart_paths: "List[str]" = field(default_factory=list)

    @property
    def regressions(self) -> "List[CellVerdict]":
        return [v for v in self.verdicts if v.status == REGRESSION]


def _comparable(trend: CellTrend, latest: TrendPoint) -> "List[TrendPoint]":
    """Prior points the latest one may be judged against."""
    prior = []
    for point in trend.points:
        if point is latest:
            break
        if point.throughput is None:
            continue
        if point.env != latest.env:
            continue
        if (point.accesses is not None and latest.accesses is not None
                and point.accesses != latest.accesses):
            continue
        prior.append(point)
    return prior


def evaluate(
    runs: "Sequence[BenchRun]",
    trends: "Dict[str, CellTrend]",
    gate: "Optional[GatePolicy]" = None,
) -> "List[CellVerdict]":
    """Per-cell verdicts for the newest run in ``runs`` (oldest-first)."""
    if not runs:
        return []
    gate = gate if gate is not None else GatePolicy(threshold=DEFAULT_THRESHOLD)
    latest_run = runs[-1]
    verdicts: "List[CellVerdict]" = []
    for label in sorted(latest_run.cells):
        trend = trends[label]
        latest = trend.points[-1]
        threshold = gate.threshold_for(label)
        if latest.throughput is None:
            verdicts.append(CellVerdict(
                label, SKIPPED, "latest run recorded no throughput",
                threshold=threshold,
            ))
            continue
        prior = _comparable(trend, latest)[-gate.window:]
        if not prior:
            verdicts.append(CellVerdict(
                label, SKIPPED,
                "no comparable history (same environment and run length)",
                latest=latest.throughput, threshold=threshold,
            ))
            continue
        baseline = statistics.median(point.throughput for point in prior)
        delta = latest.throughput / baseline - 1.0 if baseline else 0.0
        miss_delta = None
        miss_prior = [p.miss_rate for p in prior if p.miss_rate is not None]
        if latest.miss_rate is not None and miss_prior:
            miss_delta = latest.miss_rate - statistics.median(miss_prior)
        verdict = CellVerdict(
            label, OK, "", latest=latest.throughput, baseline=baseline,
            delta=delta, threshold=threshold, miss_delta=miss_delta,
        )
        problems = []
        if -delta > threshold:
            problems.append(
                f"throughput {latest.throughput:,.0f} is {-delta:.1%} below "
                f"the rolling baseline {baseline:,.0f} "
                f"(threshold {threshold:.0%}, window of {len(prior)})"
            )
        if miss_delta is not None and miss_delta > gate.miss_rate_increase + _MISS_EPS:
            problems.append(
                f"miss rate rose {miss_delta:+.4f} vs the rolling baseline "
                f"(allowed {gate.miss_rate_increase:+.4f})"
            )
        if problems:
            verdict.status = REGRESSION
            verdict.reason = "; ".join(problems)
        else:
            verdict.reason = (
                f"{delta:+.1%} vs baseline {baseline:,.0f} "
                f"over {len(prior)} comparable run(s)"
            )
        verdicts.append(verdict)
    verdicts.extend(_sweep_verdicts(latest_run, gate))
    return verdicts


def _sweep_verdicts(run: BenchRun, gate: GatePolicy) -> "List[CellVerdict]":
    sweep = run.sweep
    if not sweep:
        return []
    verdicts: "List[CellVerdict]" = []
    if sweep.get("identical") is False:
        verdicts.append(CellVerdict(
            "sweep/bit-identity", REGRESSION,
            "parallel sweep diverged from serial: "
            + ", ".join(sweep.get("mismatches", ())),
        ))
    if gate.min_speedup > 0:
        eligible = sweep.get("speedup_gate_eligible")
        if eligible is None:  # pre-gating record: infer from cpus if known
            cpus = sweep.get("cpus") or run.environment.get("cpus")
            eligible = cpus is None or cpus > 1
        if not eligible:
            verdicts.append(CellVerdict(
                "sweep/speedup", SKIPPED,
                sweep.get(
                    "speedup_gate_note",
                    "skipped: single-CPU host — speedup recorded, not gated",
                ),
            ))
        elif sweep.get("speedup", 0.0) < gate.min_speedup:
            verdicts.append(CellVerdict(
                "sweep/speedup", REGRESSION,
                f"sweep speedup {sweep.get('speedup')}x is below the "
                f"plan floor {gate.min_speedup:g}x",
            ))
        else:
            verdicts.append(CellVerdict(
                "sweep/speedup", OK,
                f"sweep speedup {sweep.get('speedup')}x "
                f">= floor {gate.min_speedup:g}x",
            ))
    return verdicts


# -- rendering ---------------------------------------------------------


def _chart_series(
    runs: "Sequence[BenchRun]",
    trends: "Dict[str, CellTrend]",
    metric: str,
) -> "Dict[str, List[Tuple[float, float]]]":
    """``{cell label: [(run index, value), ...]}`` for one metric."""
    order = {run.run_id: index for index, run in enumerate(runs)}
    series: "Dict[str, List[Tuple[float, float]]]" = {}
    for label in sorted(trends):
        points = [
            (float(order[p.run_id]), float(getattr(p, metric)))
            for p in trends[label].points
            if getattr(p, metric) is not None and p.run_id in order
        ]
        if points:
            series[label] = points
    return series


def render_chart(
    series: "Dict[str, List[Tuple[float, float]]]",
    path: str,
    title: str,
    run_ids: "Sequence[str]",
) -> bool:
    """Write one trend chart; returns False when there is nothing to plot."""
    if not series:
        return False
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        from repro.perflab import chartpng

        chartpng.write_png(path, chartpng.line_chart(series))
        return True
    figure, axes = plt.subplots(figsize=(8, 4.2), dpi=100)
    for label, points in series.items():
        xs = [x for x, _ in points]
        ys = [y for _, y in points]
        axes.plot(xs, ys, marker="o", label=label)
    axes.set_title(title)
    axes.set_xticks(range(len(run_ids)))
    axes.set_xticklabels(run_ids, rotation=45, ha="right", fontsize=7)
    axes.grid(True, alpha=0.3)
    axes.legend(fontsize=7)
    figure.tight_layout()
    figure.savefig(path)
    plt.close(figure)
    return True


def _verdict_table(verdicts: "Sequence[CellVerdict]") -> "List[str]":
    lines = [
        "| cell | latest (acc/s) | baseline | Δ | threshold | miss Δ | verdict |",
        "|---|---|---|---|---|---|---|",
    ]
    for v in verdicts:
        lines.append(
            "| {label} | {latest} | {baseline} | {delta} | {threshold} "
            "| {miss} | **{status}** |".format(
                label=v.label,
                latest=f"{v.latest:,.0f}" if v.latest is not None else "—",
                baseline=f"{v.baseline:,.0f}" if v.baseline is not None else "—",
                delta=f"{v.delta:+.1%}" if v.delta is not None else "—",
                threshold=f"{v.threshold:.0%}" if v.threshold is not None else "—",
                miss=f"{v.miss_delta:+.4f}" if v.miss_delta is not None else "—",
                status=v.status,
            )
        )
    return lines


def render_markdown(
    runs: "Sequence[BenchRun]",
    trends: "Dict[str, CellTrend]",
    verdicts: "Sequence[CellVerdict]",
    chart_files: "Sequence[str]" = (),
    plan: "Optional[BenchPlan]" = None,
) -> str:
    """The full trend report as markdown text."""
    latest = runs[-1]
    lines = [
        "# Perf-lab trend report",
        "",
        f"Latest run: **{latest.run_id}** ({latest.created}, "
        f"{latest.env_key}); history depth: {len(runs)} run(s).",
    ]
    if plan is not None:
        lines.append(
            f"Gate: plan **{plan.name}** — default threshold "
            f"{plan.gate.threshold:.0%}, window {plan.gate.window}, "
            f"{len(plan.gate.cells)} per-cell override(s)."
        )
    else:
        lines.append(
            f"Gate: no plan given — default threshold "
            f"{DEFAULT_THRESHOLD:.0%} for every cell."
        )
    lines += ["", "## Verdicts", ""]
    lines += _verdict_table(verdicts)
    regressions = [v for v in verdicts if v.status == REGRESSION]
    lines.append("")
    if regressions:
        lines.append(
            f"**{len(regressions)} regression(s):** "
            + ", ".join(v.label for v in regressions)
        )
        for v in regressions:
            lines.append(f"- `{v.label}`: {v.reason}")
    else:
        lines.append("No regressions against the rolling baselines.")
    if chart_files:
        lines += ["", "## Trend curves", ""]
        for chart in chart_files:
            name = os.path.basename(chart)
            lines.append(f"![{name}]({name})")
        lines += [
            "",
            "Series are colored in cell-label order (legend below when "
            "rendered without matplotlib):",
            "",
        ]
        for index, label in enumerate(sorted(trends)):
            lines.append(f"{index + 1}. `{label}`")
    lines += ["", "## Per-cell history", ""]
    for label in sorted(trends):
        lines += [f"### `{label}`", ""]
        lines += [
            "| run | environment | acc/s | miss rate | p95 latency |",
            "|---|---|---|---|---|",
        ]
        for point in trends[label].points:
            lines.append(
                "| {run} | {env} | {tput} | {miss} | {p95} |".format(
                    run=point.run_id,
                    env=point.env,
                    tput=f"{point.throughput:,.0f}"
                    if point.throughput is not None else "—",
                    miss=f"{point.miss_rate:.4f}"
                    if point.miss_rate is not None else "—",
                    p95=f"{point.latency_p95:g}cy"
                    if point.latency_p95 is not None else "—",
                )
            )
        lines.append("")
    sweep = latest.sweep
    if sweep:
        lines += ["## Latest sweep", ""]
        lines.append(
            f"{sweep.get('cells', '?')} cells, serial "
            f"{sweep.get('serial_seconds', '?')}s -> "
            f"{sweep.get('jobs', '?')} jobs "
            f"{sweep.get('parallel_seconds', '?')}s "
            f"({sweep.get('speedup', '?')}x, "
            f"{'bit-identical' if sweep.get('identical') else 'MISMATCH'})."
        )
        if not sweep.get("speedup_gate_eligible", True):
            lines.append(sweep.get("speedup_gate_note", ""))
    return "\n".join(lines) + "\n"


def write_report(
    runs: "Sequence[BenchRun]",
    out_dir: str,
    plan: "Optional[BenchPlan]" = None,
) -> TrendReport:
    """Evaluate the gate and write ``trend.md`` + PNG curves to ``out_dir``."""
    if not runs:
        raise ValueError("cannot report on an empty BENCH history")
    runs = list(runs)
    trends = build_trends(runs)
    gate = plan.gate if plan is not None else None
    verdicts = evaluate(runs, trends, gate)
    os.makedirs(out_dir, exist_ok=True)
    run_ids = [run.run_id for run in runs]
    charts: "List[str]" = []
    for metric, filename, title in (
        ("throughput", "throughput.png", "throughput (accesses/sec)"),
        ("miss_rate", "miss_rate.png", "L2 miss rate"),
        ("latency_p95", "latency_p95.png", "L2 hit+miss latency p95 (cycles)"),
    ):
        path = os.path.join(out_dir, filename)
        if render_chart(_chart_series(runs, trends, metric), path, title,
                        run_ids):
            charts.append(path)
    markdown = render_markdown(runs, trends, verdicts, charts, plan)
    markdown_path = os.path.join(out_dir, "trend.md")
    with open(markdown_path, "w", encoding="utf-8") as handle:
        handle.write(markdown)
    return TrendReport(
        runs=runs, trends=trends, verdicts=verdicts,
        markdown_path=markdown_path, chart_paths=charts,
    )


__all__ = [
    "DEFAULT_THRESHOLD",
    "CellVerdict",
    "OK",
    "REGRESSION",
    "SKIPPED",
    "TrendReport",
    "evaluate",
    "render_chart",
    "render_markdown",
    "write_report",
]
