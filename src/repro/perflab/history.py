"""BENCH history: load accumulated ``BENCH_*.json`` files as trends.

The perf lab's long-term memory is the pile of ``BENCH_<date>.json``
records a repo accumulates — one per ``repro bench`` invocation.  This
module turns that pile into aligned per-cell time series:

* **v1 upgrade** — records written by the legacy hardcoded bench
  (``repro-bench-v1``) are upgraded in memory to the v2 cell layout
  (each ``throughput_accesses_per_sec`` entry becomes an
  ``<workload>/<design>/atomic`` cell), so pre-perflab history chains
  straight into the trends instead of being write-only.
* **Run ordering** — runs sort by their recorded creation time, falling
  back to the date in the filename (``BENCH_20260806-2.json`` sorts
  after ``BENCH_20260806.json``), so a day with several runs keeps its
  intra-day order.
* **Environment alignment** — every run carries an environment
  fingerprint; :func:`env_key` reduces it to the fields that change
  what a wall-clock number *means* (CPU count, Python minor version).
  The trend engine compares a run only against prior runs with the same
  key, so a laptop run never gates a CI run.
"""

from __future__ import annotations

import glob
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.perflab.runner import SCHEMA_V1, SCHEMA_V2

_FILENAME_DATE = re.compile(r"BENCH_(\d{8})(?:-(\d+))?\.json$")


class HistoryError(ValueError):
    """A BENCH history file could not be read or recognized."""


@dataclass
class BenchRun:
    """One normalized (v2-shaped) BENCH record in the history."""

    run_id: str  # file basename without .json
    created: str  # ISO timestamp, or a filename-derived surrogate
    environment: dict
    cells: "Dict[str, dict]"  # label -> cell record
    sweep: "Optional[dict]" = None
    schema: str = SCHEMA_V2
    path: "Optional[str]" = None
    #: Measured accesses per core; runs of different lengths are not
    #: throughput-comparable (cold-start fractions differ).
    accesses: "Optional[int]" = None

    @property
    def env_key(self) -> str:
        return env_key(self.environment)


def env_key(environment: dict) -> str:
    """The alignment key: runs compare only within the same key.

    A non-scalar engine is part of the key: a batch-kernel run's
    throughput means something different from a scalar run's, so the
    two must never share a rolling baseline even on the same host and
    the same day.  Scalar (and pre-engine records, which carry no
    ``engine`` field) keep the historical key unchanged.
    """
    cpus = environment.get("cpus", "?")
    python = str(environment.get("python", "?"))
    minor = ".".join(python.split(".")[:2])
    key = f"cpus={cpus}/py={minor}"
    engine = environment.get("engine")
    if engine and engine != "scalar":
        key += f"/engine={engine}"
    return key


def _surrogate_created(run_id: str) -> str:
    """An orderable creation surrogate from a BENCH filename."""
    match = _FILENAME_DATE.search(f"{run_id}.json")
    if not match:
        return run_id
    date, suffix = match.group(1), match.group(2) or "1"
    return f"{date[:4]}-{date[4:6]}-{date[6:8]}T00:00:00Z+{int(suffix):04d}"


def upgrade_record(record: dict, run_id: str,
                   path: "Optional[str]" = None) -> BenchRun:
    """Normalize one parsed BENCH record (v1 or v2) to :class:`BenchRun`."""
    if not isinstance(record, dict):
        raise HistoryError(f"{run_id}: BENCH record must be a JSON object")
    schema = record.get("schema")
    if schema == SCHEMA_V2:
        cells = record.get("cells")
        if not isinstance(cells, dict):
            raise HistoryError(f"{run_id}: v2 record has no 'cells' table")
        return BenchRun(
            run_id=run_id,
            created=record.get("created") or _surrogate_created(run_id),
            environment=record.get("environment", {}),
            cells=cells,
            sweep=record.get("sweep"),
            schema=SCHEMA_V2,
            path=path,
            accesses=record.get("accesses_per_core"),
        )
    if schema == SCHEMA_V1:
        throughput = record.get("throughput_accesses_per_sec", {})
        if not isinstance(throughput, dict):
            raise HistoryError(f"{run_id}: v1 record has no throughput table")
        workload = record.get("workload", "oltp")
        cells = {
            f"{workload}/{design}/atomic": {
                "workload": workload,
                "design": design,
                "bus_model": "atomic",
                "multiprogrammed": False,
                "throughput_accesses_per_sec": value,
                # v1 recorded no per-cell model metrics; the trend
                # engine treats absent values as "not measured".
                "miss_rate": None,
                "fingerprint": None,
            }
            for design, value in throughput.items()
        }
        return BenchRun(
            run_id=run_id,
            created=_surrogate_created(run_id),
            environment=record.get("environment", {}),
            cells=cells,
            sweep=record.get("sweep"),
            schema=SCHEMA_V1,
            path=path,
            accesses=record.get("accesses_per_core"),
        )
    raise HistoryError(
        f"{run_id}: unknown BENCH schema {schema!r} "
        f"(expected {SCHEMA_V1} or {SCHEMA_V2})"
    )


def load_history(paths: "Sequence[str]") -> "List[BenchRun]":
    """Load BENCH files into runs, oldest first."""
    runs: "List[BenchRun]" = []
    for path in paths:
        run_id = os.path.basename(path)
        if run_id.endswith(".json"):
            run_id = run_id[: -len(".json")]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except OSError as error:
            raise HistoryError(f"cannot read {path}: {error}") from None
        except ValueError as error:
            raise HistoryError(f"{path} is not valid JSON: {error}") from None
        runs.append(upgrade_record(record, run_id, path=path))
    runs.sort(key=lambda run: (run.created, run.run_id))
    return runs


def discover_history(patterns: "Sequence[str]") -> "List[str]":
    """Expand history globs/paths into a sorted, de-duplicated file list."""
    paths: "List[str]" = []
    seen = set()
    for pattern in patterns:
        matches = sorted(glob.glob(pattern)) if any(
            char in pattern for char in "*?["
        ) else [pattern]
        for path in matches:
            real = os.path.abspath(path)
            if real not in seen:
                seen.add(real)
                paths.append(path)
    return paths


@dataclass
class TrendPoint:
    """One run's measurement of one cell."""

    run_id: str
    created: str
    env: str
    throughput: "Optional[float]"
    miss_rate: "Optional[float]" = None
    latency_p95: "Optional[float]" = None
    fingerprint: "Optional[str]" = None
    accesses: "Optional[int]" = None


@dataclass
class CellTrend:
    """One cell's measurements across the history, oldest first."""

    label: str
    points: "List[TrendPoint]" = field(default_factory=list)

    def in_env(self, env: str) -> "List[TrendPoint]":
        return [point for point in self.points if point.env == env]


def build_trends(runs: "Sequence[BenchRun]") -> "Dict[str, CellTrend]":
    """Per-cell trend series over ``runs`` (which must be oldest-first)."""
    trends: "Dict[str, CellTrend]" = {}
    for run in runs:
        for label, cell in sorted(run.cells.items()):
            trend = trends.setdefault(label, CellTrend(label))
            latency = cell.get("latency") or {}
            trend.points.append(
                TrendPoint(
                    run_id=run.run_id,
                    created=run.created,
                    env=run.env_key,
                    throughput=cell.get("throughput_accesses_per_sec"),
                    miss_rate=cell.get("miss_rate"),
                    latency_p95=latency.get("p95"),
                    fingerprint=cell.get("fingerprint"),
                    accesses=run.accesses,
                )
            )
    return trends


__all__ = [
    "BenchRun",
    "CellTrend",
    "HistoryError",
    "TrendPoint",
    "build_trends",
    "discover_history",
    "env_key",
    "load_history",
    "upgrade_record",
]
