"""Dependency-free PNG line charts (the no-matplotlib fallback).

The trend report prefers matplotlib when it is importable; this module
keeps ``repro bench report`` functional on the baked-toolchain
containers where it is not (numpy + stdlib only).  It renders a plain
multi-series line chart — white canvas, gridlines, numeric y-tick
labels from a tiny built-in 5x7 glyph font, one colored polyline plus
markers per series — and writes it as an 8-bit RGB PNG via zlib.

The markdown report carries the series-to-color legend (this renderer
has no general text), so the PNG stays readable without one.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Series palette (dark, distinguishable on white), cycled in order.
PALETTE: "Tuple[Tuple[int, int, int], ...]" = (
    (31, 119, 180),   # blue
    (214, 39, 40),    # red
    (44, 160, 44),    # green
    (148, 103, 189),  # purple
    (255, 127, 14),   # orange
    (23, 190, 207),   # cyan
    (140, 86, 75),    # brown
    (227, 119, 194),  # pink
)

_BG = (255, 255, 255)
_AXIS = (40, 40, 40)
_GRID = (225, 225, 225)
_TEXT = (70, 70, 70)

# 5x7 glyphs for numeric tick labels; '#' is ink.
_GLYPHS = {
    "0": (".###.", "#...#", "#..##", "#.#.#", "##..#", "#...#", ".###."),
    "1": ("..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."),
    "2": (".###.", "#...#", "....#", "...#.", "..#..", ".#...", "#####"),
    "3": (".###.", "#...#", "....#", "..##.", "....#", "#...#", ".###."),
    "4": ("...#.", "..##.", ".#.#.", "#..#.", "#####", "...#.", "...#."),
    "5": ("#####", "#....", "####.", "....#", "....#", "#...#", ".###."),
    "6": (".###.", "#....", "####.", "#...#", "#...#", "#...#", ".###."),
    "7": ("#####", "....#", "...#.", "..#..", "..#..", "..#..", "..#.."),
    "8": (".###.", "#...#", "#...#", ".###.", "#...#", "#...#", ".###."),
    "9": (".###.", "#...#", "#...#", ".####", "....#", "....#", ".###."),
    ".": (".....", ".....", ".....", ".....", ".....", "..##.", "..##."),
    "-": (".....", ".....", ".....", ".###.", ".....", ".....", "....."),
    "+": (".....", "..#..", "..#..", "#####", "..#..", "..#..", "....."),
    "e": (".....", ".....", ".###.", "#...#", "#####", "#....", ".###."),
    "k": ("#....", "#....", "#..#.", "#.#..", "##...", "#.#..", "#..#."),
    "M": ("#...#", "##.##", "#.#.#", "#...#", "#...#", "#...#", "#...#"),
}


def format_tick(value: float) -> str:
    """Short numeric label: 1500000 -> '1.5M', 226000 -> '226k'."""
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1_000_000:
        text = f"{value / 1_000_000:.3g}M"
    elif magnitude >= 1_000:
        text = f"{value / 1_000:.3g}k"
    elif magnitude >= 1:
        text = f"{value:.3g}"
    else:
        text = f"{value:.3g}"
    return text


def _draw_text(canvas: np.ndarray, x: int, y: int, text: str,
               color: "Tuple[int, int, int]" = _TEXT) -> None:
    """Stamp ``text`` with the 5x7 font at (x, y) = top-left."""
    height, width, _ = canvas.shape
    for char in text:
        glyph = _GLYPHS.get(char)
        if glyph is None:  # unknown char: advance, draw nothing
            x += 6
            continue
        for row, bits in enumerate(glyph):
            for col, bit in enumerate(bits):
                if bit == "#":
                    py, px = y + row, x + col
                    if 0 <= py < height and 0 <= px < width:
                        canvas[py, px] = color
        x += 6


def _draw_line(canvas: np.ndarray, x0: float, y0: float, x1: float,
               y1: float, color: "Tuple[int, int, int]") -> None:
    """A 2px-thick line segment, sampled densely (no AA)."""
    height, width, _ = canvas.shape
    steps = int(max(abs(x1 - x0), abs(y1 - y0))) + 1
    xs = np.linspace(x0, x1, steps).round().astype(int)
    ys = np.linspace(y0, y1, steps).round().astype(int)
    for dy in (0, 1):
        for dx in (0, 1):
            px = np.clip(xs + dx, 0, width - 1)
            py = np.clip(ys + dy, 0, height - 1)
            canvas[py, px] = color


def _draw_marker(canvas: np.ndarray, x: int, y: int,
                 color: "Tuple[int, int, int]") -> None:
    height, width, _ = canvas.shape
    y0, y1 = max(y - 2, 0), min(y + 3, height)
    x0, x1 = max(x - 2, 0), min(x + 3, width)
    canvas[y0:y1, x0:x1] = color


def _ticks(lo: float, hi: float, count: int = 5) -> "List[float]":
    if hi <= lo:
        return [lo]
    raw_step = (hi - lo) / max(count - 1, 1)
    scale = 10.0 ** np.floor(np.log10(raw_step))
    for multiple in (1, 2, 2.5, 5, 10):
        step = multiple * scale
        if step >= raw_step:
            break
    first = np.ceil(lo / step) * step
    ticks = []
    value = first
    while value <= hi + 1e-9 * step:
        ticks.append(float(value))
        value += step
    return ticks or [lo]


def line_chart(
    series: "Dict[str, Sequence[Tuple[float, float]]]",
    size: "Tuple[int, int]" = (800, 420),
    y_min: "Optional[float]" = None,
) -> np.ndarray:
    """Render ``{label: [(x, y), ...]}`` as an RGB canvas.

    Series colors follow :data:`PALETTE` in iteration order — the
    caller's legend (markdown) must list labels in the same order.
    """
    width, height = size
    canvas = np.empty((height, width, 3), dtype=np.uint8)
    canvas[:] = _BG
    margin_left, margin_right, margin_top, margin_bottom = 64, 16, 16, 28
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    points = [p for values in series.values() for p in values]
    if points:
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
    else:
        x_lo = x_hi = y_lo = y_hi = 0.0
    if y_min is not None:
        y_lo = min(y_lo, y_min)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + (abs(y_lo) or 1.0)
    pad = 0.06 * (y_hi - y_lo)
    y_lo, y_hi = y_lo - pad, y_hi + pad

    def to_px(x: float, y: float) -> "Tuple[float, float]":
        px = margin_left + (x - x_lo) / (x_hi - x_lo) * (plot_w - 1)
        py = margin_top + (1.0 - (y - y_lo) / (y_hi - y_lo)) * (plot_h - 1)
        return px, py

    # Gridlines + y tick labels.
    for tick in _ticks(y_lo, y_hi):
        _, py = to_px(x_lo, tick)
        row = int(round(py))
        if margin_top <= row < margin_top + plot_h:
            canvas[row, margin_left:margin_left + plot_w] = _GRID
            _draw_text(canvas, 4, row - 3, format_tick(tick))
    # x tick marks at integer run indices when they fit.
    span = x_hi - x_lo
    if span <= 40:
        x_tick = np.ceil(x_lo)
        while x_tick <= x_hi:
            px, _ = to_px(x_tick, y_lo)
            col = int(round(px))
            canvas[margin_top:margin_top + plot_h, col] = np.minimum(
                canvas[margin_top:margin_top + plot_h, col], np.array(_GRID)
            )
            _draw_text(canvas, col - 2, height - margin_bottom + 6,
                       format_tick(x_tick))
            x_tick += max(1.0, np.ceil(span / 10))

    # Axes.
    canvas[margin_top + plot_h - 1,
           margin_left:margin_left + plot_w] = _AXIS
    canvas[margin_top:margin_top + plot_h, margin_left] = _AXIS

    # Series.
    for index, (label, values) in enumerate(series.items()):
        color = PALETTE[index % len(PALETTE)]
        pixels = [to_px(x, y) for x, y in values]
        for (x0, y0), (x1, y1) in zip(pixels, pixels[1:]):
            _draw_line(canvas, x0, y0, x1, y1, color)
        for px, py in pixels:
            _draw_marker(canvas, int(round(px)), int(round(py)), color)
    return canvas


def write_png(path: str, canvas: np.ndarray) -> None:
    """Write an (H, W, 3) uint8 array as a PNG file."""
    if canvas.ndim != 3 or canvas.shape[2] != 3 or canvas.dtype != np.uint8:
        raise ValueError(
            f"expected an (H, W, 3) uint8 canvas, got "
            f"{canvas.shape} {canvas.dtype}"
        )
    height, width, _ = canvas.shape
    raw = b"".join(
        b"\x00" + canvas[row].tobytes() for row in range(height)
    )

    def chunk(tag: bytes, payload: bytes) -> bytes:
        return (
            struct.pack(">I", len(payload))
            + tag
            + payload
            + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
        )

    header = struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0)
    with open(path, "wb") as handle:
        handle.write(b"\x89PNG\r\n\x1a\n")
        handle.write(chunk(b"IHDR", header))
        handle.write(chunk(b"IDAT", zlib.compress(raw, 6)))
        handle.write(chunk(b"IEND", b""))


def read_png_size(path: str) -> "Tuple[int, int]":
    """(width, height) from a PNG's IHDR — a cheap validity check."""
    with open(path, "rb") as handle:
        signature = handle.read(8)
        if signature != b"\x89PNG\r\n\x1a\n":
            raise ValueError(f"{path} is not a PNG")
        handle.read(8)  # IHDR length + tag
        width, height = struct.unpack(">II", handle.read(8))
    return width, height


__all__ = [
    "PALETTE",
    "format_tick",
    "line_chart",
    "read_png_size",
    "write_png",
]
