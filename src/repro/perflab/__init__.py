"""Perf lab: declarative bench plans, capture bundles, trend reports.

The perf lab turns ``repro bench`` from a hardcoded point check into a
small benchmarking system:

* :mod:`repro.perflab.plan` — TOML/JSON **bench plans** describing a
  grid of designs x workloads x bus models, run sizing, per-cell
  capture, and per-cell gate thresholds (``plans/default.toml``
  reproduces the historical hardcoded bench);
* :mod:`repro.perflab.runner` — executes a plan through the supervised
  parallel executor into a ``repro-bench-v2`` record with an
  environment fingerprint and opt-in per-cell capture bundles;
* :mod:`repro.perflab.history` — loads accumulated ``BENCH_*.json``
  files (v1 records upgraded in memory) into aligned per-cell trends;
* :mod:`repro.perflab.report` — rolling-baseline verdicts, markdown +
  PNG trend reports, and the per-cell regression gate behind
  ``repro bench report`` (exit 5 names the offending cells).
"""

from repro.perflab.history import (
    BenchRun,
    CellTrend,
    HistoryError,
    TrendPoint,
    build_trends,
    discover_history,
    env_key,
    load_history,
    upgrade_record,
)
from repro.perflab.plan import (
    BatchPolicy,
    BenchPlan,
    CapturePolicy,
    GatePolicy,
    PlanCell,
    PlanError,
    SweepPolicy,
    default_plan,
    load_plan,
    plan_from_dict,
)
from repro.perflab.report import (
    CellVerdict,
    TrendReport,
    evaluate,
    render_markdown,
    write_report,
)
from repro.perflab.runner import (
    SCHEMA_V1,
    SCHEMA_V2,
    environment_fingerprint,
    render_record,
    run_plan,
    stats_digest,
    write_record,
)

__all__ = [
    "BatchPolicy",
    "BenchPlan",
    "BenchRun",
    "CapturePolicy",
    "CellTrend",
    "CellVerdict",
    "GatePolicy",
    "HistoryError",
    "PlanCell",
    "PlanError",
    "SCHEMA_V1",
    "SCHEMA_V2",
    "SweepPolicy",
    "TrendPoint",
    "TrendReport",
    "build_trends",
    "default_plan",
    "discover_history",
    "env_key",
    "environment_fingerprint",
    "evaluate",
    "load_history",
    "load_plan",
    "plan_from_dict",
    "render_markdown",
    "render_record",
    "run_plan",
    "stats_digest",
    "upgrade_record",
    "write_record",
    "write_report",
]
