"""2D mesh NoC backend: XY routing, occupancy, directory forwarding.

``--bus-model mesh`` replaces the paper's snoopy bus with a 2D mesh
network-on-chip plus the directory of
:mod:`repro.coherence.directory`, scaling the modeled machine to 8, 16,
and 64 tiles (one core + one L2 d-group + one directory bank per tile).

**Latency model.**  A coherence transaction is a request from the
issuer's tile to the block's home tile, directory-filtered forwards to
the recorded sharers, and a response back — all XY-routed (X first,
then Y, deadlock-free and deterministic).  Uncontended, the charge is a
per-machine constant::

    transaction_latency = router_latency + 2 * diameter * hop_latency

i.e. one router pipeline plus a diameter-bounded round trip — exactly
the abstraction the paper uses for its bus, whose 32 cycles cover the
worst-case request/response traversal of the 4-core die.  The defaults
(``hop_latency=7``, ``router_latency=4``) are **calibrated so the 2x2
mesh reproduces Table 1's 32-cycle bus**: ``4 + 2*2*7 = 32``.  At 4
cores the mesh backend therefore charges bit-identical latencies to
the bus (the differential suite pins this), while the 4x4 grid pays 88
cycles and the 8x8 grid 200 — the scaling term the scale experiment
measures CR/ISC/CS against.

**Occupancy.**  ``link_occupancy``/``router_occupancy`` (default 0)
enable contention: every message reserves each directed link (and the
home router) it traverses for that many cycles, and a message arriving
at a busy resource queues behind it, the wait surfacing in the
transaction latency.  Zero occupancy — the paper's uncontended
assumption — makes every wait zero, which is what keeps the 4-core
equivalence exact.

**Execution.**  With an event queue attached (``build_design`` always
pairs the mesh with one), request arrival, per-sharer forwards, and
completion are scheduled as messages on the queue and drained before
:meth:`MeshNoC.issue` returns — same split-phase structure as the
eventq bus, so the synchronous design API is unchanged.  Race faults
are a bus-schedule concept and are not supported here (the CLI rejects
``--inject-fault race-* --bus-model mesh``).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.coherence.directory import Directory
from repro.common.params import DEFAULT_NUM_CORES
from repro.common.rng import DEFAULT_SEED
from repro.common.stats import BusStats
from repro.interconnect.bus import BusResult, BusTransaction, SnoopBus, Snooper
from repro.latency.tables import BUS_LATENCY, mesh_dims, mesh_hops
from repro.obs import events as ev
from repro.obs.tracer import NO_TRACE

#: Per-hop (link + router stage) latency in cycles.
MESH_HOP_LATENCY = 7

#: Fixed router pipeline overhead charged once per transaction.
MESH_ROUTER_LATENCY = 4

# Calibration anchor: the 2x2 grid's round trip must equal the paper's
# bus so 4-core mesh runs are bit-identical to 4-core bus runs.
assert MESH_ROUTER_LATENCY + 2 * 2 * MESH_HOP_LATENCY == BUS_LATENCY


class MeshTopology:
    """Tile grid geometry and XY routes for one mesh machine."""

    def __init__(self, num_tiles: int) -> None:
        self.num_tiles = num_tiles
        self.rows, self.cols = mesh_dims(num_tiles)

    @property
    def diameter(self) -> int:
        """Longest Manhattan distance between any two tiles."""
        return (self.rows - 1) + (self.cols - 1)

    def tile(self, index: int) -> "Tuple[int, int]":
        return divmod(index, self.cols)

    def index(self, row: int, col: int) -> int:
        return row * self.cols + col

    def hops(self, a: int, b: int) -> int:
        return mesh_hops(a, b, self.num_tiles)

    def route(self, a: int, b: int) -> "List[Tuple[int, int]]":
        """Directed links of the XY route from tile ``a`` to ``b``.

        X (column) direction first, then Y (rows) — the standard
        deadlock-free dimension order.  ``len(route) == hops``.
        """
        row, col = self.tile(a)
        dst_row, dst_col = self.tile(b)
        links: "List[Tuple[int, int]]" = []
        here = a
        while col != dst_col:
            col += 1 if dst_col > col else -1
            nxt = self.index(row, col)
            links.append((here, nxt))
            here = nxt
        while row != dst_row:
            row += 1 if dst_row > row else -1
            nxt = self.index(row, col)
            links.append((here, nxt))
            here = nxt
        return links


class MeshStats:
    """NoC-level traffic counters (hops and per-link utilization)."""

    def __init__(self) -> None:
        self.messages = 0
        self.hops = 0
        #: Replacement hints delivered to the directory (silent-eviction
        #: notifications; not coherence transactions).
        self.hints = 0
        #: Directed-link traffic: ``"3->7"`` -> messages carried.
        self.link_traffic: "Counter[str]" = Counter()

    def state_dict(self) -> dict:
        return {
            "messages": self.messages,
            "hops": self.hops,
            "hints": self.hints,
            "link_traffic": dict(self.link_traffic),
        }

    def load_state_dict(self, state: dict, path: str = "mesh_stats") -> None:
        from repro.common import serialization

        self.messages = int(serialization.require(state, "messages", path))
        self.hops = int(serialization.require(state, "hops", path))
        self.hints = int(serialization.require(state, "hints", path))
        self.link_traffic = Counter({
            str(link): int(count)
            for link, count in serialization.require(
                state, "link_traffic", path
            ).items()
        })


class MeshNoC:
    """Mesh interconnect, drop-in for :class:`SnoopBus` on designs.

    Exposes the bus surface the designs and harness rely on —
    ``attach``/``issue``/``stats``/``latency``/``queue``/``tracer``/
    ``fault_next``/``_snoopers``/``_busy_until``/``state_dict`` — plus
    the directory (:attr:`directory`), the replacement-hint channel
    (:meth:`note_eviction`), and hop accounting (:attr:`mesh_stats`).
    """

    def __init__(
        self,
        num_tiles: int,
        block_size: int = 64,
        hop_latency: int = MESH_HOP_LATENCY,
        router_latency: int = MESH_ROUTER_LATENCY,
        link_occupancy: int = 0,
        router_occupancy: int = 0,
    ) -> None:
        self.topology = MeshTopology(num_tiles)
        self.directory = Directory(num_tiles, block_size)
        self.hop_latency = hop_latency
        self.router_latency = router_latency
        self.link_occupancy = link_occupancy
        self.router_occupancy = router_occupancy
        self.stats = BusStats()
        self.mesh_stats = MeshStats()
        self.tracer = NO_TRACE
        self.queue = None
        self.fault_next: "Optional[str]" = None
        # Race faults are bus-schedule perturbations; the mesh keeps the
        # attributes (harness/state-dict surface) but never consumes an
        # armed race — the CLI refuses race faults on this backend.
        self.race_pending: "Optional[str]" = None
        self.last_race: "Optional[str]" = None
        self._snoopers: "List[Tuple[int, Snooper]]" = []
        self._busy_until = 0
        self._link_busy: "Dict[Tuple[int, int], int]" = {}
        self._router_busy: "Dict[int, int]" = {}

    # ------------------------------------------------------------------
    # Bus-compatible surface

    @property
    def num_tiles(self) -> int:
        return self.topology.num_tiles

    @property
    def latency(self) -> int:
        """Uncontended transaction latency (the bus-latency analogue)."""
        return (
            self.router_latency
            + 2 * self.topology.diameter * self.hop_latency
        )

    @property
    def occupancy(self) -> int:
        """Nonzero when any contention model is active (bus parity)."""
        return max(self.link_occupancy, self.router_occupancy)

    def attach(self, core: int, snooper: Snooper) -> None:
        """Attach ``snooper`` as tile ``core``'s coherence agent."""
        if any(existing == core for existing, _ in self._snoopers):
            raise ValueError(f"core {core} already attached")
        if not 0 <= core < self.num_tiles:
            raise ValueError(
                f"core {core} outside this {self.topology.rows}x"
                f"{self.topology.cols} mesh"
            )
        self._snoopers.append((core, snooper))

    @property
    def num_agents(self) -> int:
        return len(self._snoopers)

    def reset_stats(self) -> None:
        self.stats = BusStats()
        self.mesh_stats = MeshStats()
        self._busy_until = 0
        self._link_busy.clear()
        self._router_busy.clear()

    # ------------------------------------------------------------------
    # Transactions

    def issue(self, txn: BusTransaction, now: int = 0) -> BusResult:
        """Route ``txn`` through its home directory bank.

        The request travels issuer -> home, the directory forwards it
        to every *recorded* sharer except the issuer (a broadcast would
        snoop everyone; non-holders are no-ops either way, which is the
        4-core equivalence argument), replies aggregate exactly as the
        bus's wired-OR, and the presence vectors update per the op.
        """
        self.stats.record(txn.op.value)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.BUS, cycle=now, core=txn.issuer, address=txn.address,
                op=txn.op.value,
            )
        fault, self.fault_next = self.fault_next, None
        home = self.directory.home(txn.address)
        holders = [
            core for core in self.directory.holders(txn.address)
            if core != txn.issuer
        ]
        wait = self._reserve(txn.issuer, home, holders, now)
        latency = self.latency + wait
        if fault == "delay":
            latency += 10 * self.latency
        self._account(txn.issuer, home, holders)
        result = BusResult(latency=latency)
        if fault == "drop":
            # The forwards are lost in the network before any sharer
            # sees them; the directory still saw the request (its
            # vector updates), so the stale copies downstream are the
            # invariant checker's to flag.
            self.directory.apply(txn)
            return result
        if self.queue is not None:
            self._issue_eventq(txn, now, home, holders, fault, result, latency)
        else:
            lookup = dict(self._snoopers)
            rounds = 2 if fault == "dup" else 1
            for round_index in range(rounds):
                for core in holders:
                    snooper = lookup.get(core)
                    if snooper is not None:
                        SnoopBus._collect(result, core, snooper.snoop(txn))
                if round_index == 0 and rounds == 2:
                    result.supplier = None
        self.directory.apply(txn)
        return result

    def _issue_eventq(
        self,
        txn: BusTransaction,
        now: int,
        home: int,
        holders: "List[int]",
        fault: "Optional[str]",
        result: BusResult,
        latency: int,
    ) -> None:
        """Schedule the transaction's messages and drain to completion.

        Request arrival at the home bank, one forward per recorded
        sharer (hop-timed along its XY route), and completion are queue
        events; everything drains inside this call, so no mesh event is
        ever pending at a checkpoint boundary.  The returned latency
        was computed up front exactly as in the direct path, so
        statistics are bit-identical at zero occupancy.
        """
        queue = self.queue
        t0 = max(now, queue.now)
        arrive = t0 + self.router_latency + self.hop_latency * self.topology.hops(
            txn.issuer, home
        )
        done = t0 + latency
        trace_phases = self.tracer.enabled and self.occupancy
        if trace_phases:
            queue.at(
                arrive, self._trace_phase, (txn, "home-arrive", arrive),
                priority=-1, label="mesh-req", track=("mesh", txn.issuer),
            )
        lookup = dict(self._snoopers)
        fwd_times = {
            core: arrive + self.hop_latency * self.topology.hops(home, core)
            for core in holders
        }
        last_fwd = max(fwd_times.values(), default=arrive)
        rounds = 2 if fault == "dup" else 1
        for round_index in range(rounds):
            for core in holders:
                snooper = lookup.get(core)
                if snooper is None:
                    continue
                # A duplicated delivery re-snoops every sharer after the
                # supplier reset (all at the last forward's time, per-
                # core order kept by the queue's FIFO), mirroring the
                # bus's two-round dup semantics.
                time = fwd_times[core] if round_index == 0 else last_fwd
                queue.at(
                    time, self._snoop_collect, (result, core, snooper, txn),
                    priority=3 * round_index, label="mesh-fwd",
                    track=("mesh", core),
                )
            if round_index == 0 and rounds == 2:
                queue.at(
                    last_fwd, self._reset_supplier, (result,),
                    priority=1, label="mesh-dup-reset",
                    track=("mesh", txn.issuer),
                )
        if trace_phases:
            queue.at(
                done, self._trace_phase, (txn, "complete", done),
                priority=4, label="mesh-complete", track=("mesh", txn.issuer),
            )
        queue.run_until(done)

    def _snoop_collect(
        self, result: BusResult, core: int, snooper: Snooper,
        txn: BusTransaction,
    ) -> None:
        SnoopBus._collect(result, core, snooper.snoop(txn))

    @staticmethod
    def _reset_supplier(result: BusResult) -> None:
        result.supplier = None

    def _trace_phase(self, txn: BusTransaction, phase: str, cycle: int) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                ev.BUS, cycle=cycle, core=txn.issuer, address=txn.address,
                op=txn.op.value, phase=phase,
            )

    # ------------------------------------------------------------------
    # Occupancy and accounting

    def _traverse(self, src: int, dst: int, start: int) -> int:
        """Walk one message along the XY route; returns its total wait.

        Each directed link is reserved for ``link_occupancy`` cycles;
        a message reaching a still-busy link queues.  No-op (returns 0)
        when the contention model is off.
        """
        if not self.link_occupancy:
            return 0
        time = start
        wait = 0
        for link in self.topology.route(src, dst):
            busy = self._link_busy.get(link, 0)
            if busy > time:
                wait += busy - time
                time = busy
            self._link_busy[link] = time + self.link_occupancy
            time += self.link_occupancy + self.hop_latency
        return wait

    def _reserve(
        self, issuer: int, home: int, holders: "List[int]", now: int
    ) -> int:
        """Total queueing wait for one transaction's message paths.

        Request (issuer -> home), the home router, the slowest forward
        (home -> sharer), and the response (home -> issuer) are on the
        critical path; their waits add to the transaction latency.
        All zero at zero occupancy.
        """
        if not self.link_occupancy and not self.router_occupancy:
            return 0
        wait = self._traverse(issuer, home, now)
        if self.router_occupancy:
            busy = self._router_busy.get(home, 0)
            at_home = now + wait
            if busy > at_home:
                wait += busy - at_home
                at_home = busy
            self._router_busy[home] = at_home + self.router_occupancy
        fanout = max(
            (self._traverse(home, core, now + wait) for core in holders),
            default=0,
        )
        return wait + fanout + self._traverse(home, issuer, now + wait + fanout)

    def _mark_route(self, src: int, dst: int) -> int:
        hops = 0
        for a, b in self.topology.route(src, dst):
            self.mesh_stats.link_traffic[f"{a}->{b}"] += 1
            hops += 1
        return hops

    def _account(
        self, issuer: "Optional[int]", home: int, holders: "List[int]"
    ) -> None:
        """Hop statistics for request + forwards + response."""
        stats = self.mesh_stats
        src = home if issuer is None else issuer
        stats.messages += 2 + len(holders)
        stats.hops += self._mark_route(src, home)
        for core in holders:
            stats.hops += self._mark_route(home, core)
        stats.hops += self._mark_route(home, src)

    # ------------------------------------------------------------------
    # Directory side channels (designs without a bus object, evictions)

    def note_eviction(self, core: int, address: int) -> None:
        """Replacement hint: ``core`` silently dropped its copy.

        The snoopy bus never hears clean evictions; the directory must,
        or its vectors over-approximate forever.  Hints ride the mesh
        (core -> home) but are not coherence transactions — they skip
        ``stats`` and snooping entirely.
        """
        self.directory.discard(address, core)
        self.mesh_stats.hints += 1
        self.mesh_stats.messages += 1
        self.mesh_stats.hops += self._mark_route(
            core, self.directory.home(address)
        )

    def record_protocol_message(
        self, issuer: "Optional[int]", address: int
    ) -> None:
        """Hop accounting for a design that runs its own protocol.

        CMP-NuRAPID's controller applies MESIC itself over its private
        tag arrays (no ``issue`` call); it reports each protocol
        transaction here so mesh traffic is still accounted: request to
        the home bank, forwards to the directory's recorded sharers,
        response back.
        """
        home = self.directory.home(address)
        holders = [
            core for core in self.directory.holders(address)
            if issuer is None or core != issuer
        ]
        self._account(issuer, home, holders)

    # ------------------------------------------------------------------
    # Versioned checkpointing.  The directory is deliberately absent:
    # its vectors are derived state, rebuilt from the restored tag
    # arrays by the owning design's ``load_state_dict`` (which makes
    # the directory-consistency invariant hold by construction after
    # every resume).

    def state_dict(self) -> dict:
        return {
            "num_tiles": self.num_tiles,
            "block_size": self.directory.block_size,
            "hop_latency": self.hop_latency,
            "router_latency": self.router_latency,
            "link_occupancy": self.link_occupancy,
            "router_occupancy": self.router_occupancy,
            "stats": self.stats.state_dict(),
            "mesh_stats": self.mesh_stats.state_dict(),
            "fault_next": self.fault_next,
            "race_pending": self.race_pending,
            "last_race": self.last_race,
            "busy_until": self._busy_until,
            "link_busy": {f"{a}->{b}": t for (a, b), t in self._link_busy.items()},
            "router_busy": dict(self._router_busy),
        }

    def load_state_dict(self, state: dict, path: str = "bus") -> None:
        from repro.common import serialization

        num_tiles = int(serialization.require(state, "num_tiles", path))
        block_size = int(serialization.require(state, "block_size", path))
        if num_tiles != self.num_tiles or block_size != self.directory.block_size:
            self.topology = MeshTopology(num_tiles)
            self.directory = Directory(num_tiles, block_size)
        self.hop_latency = int(serialization.require(state, "hop_latency", path))
        self.router_latency = int(
            serialization.require(state, "router_latency", path)
        )
        self.link_occupancy = int(
            serialization.require(state, "link_occupancy", path)
        )
        self.router_occupancy = int(
            serialization.require(state, "router_occupancy", path)
        )
        self.stats.load_state_dict(
            serialization.require(state, "stats", path), f"{path}.stats"
        )
        self.mesh_stats.load_state_dict(
            serialization.require(state, "mesh_stats", path),
            f"{path}.mesh_stats",
        )
        self.fault_next = state.get("fault_next")
        self.race_pending = state.get("race_pending")
        self.last_race = state.get("last_race")
        self._busy_until = int(serialization.require(state, "busy_until", path))
        self._link_busy = {}
        for key, time in serialization.require(state, "link_busy", path).items():
            a, _, b = str(key).partition("->")
            self._link_busy[(int(a), int(b))] = int(time)
        self._router_busy = {
            int(tile): int(time)
            for tile, time in serialization.require(
                state, "router_busy", path
            ).items()
        }


# ----------------------------------------------------------------------
# Design wiring


def mesh_noc(design) -> "Optional[MeshNoC]":
    """The design's attached mesh NoC, if any (harness/CLI probe)."""
    noc = getattr(design, "noc", None)
    if isinstance(noc, MeshNoC):
        return noc
    bus = getattr(design, "bus", None)
    if isinstance(bus, MeshNoC):
        return bus
    return None


def attach_mesh(design, seed: int = DEFAULT_SEED, **noc_kwargs) -> MeshNoC:
    """Rebase ``design`` onto a mesh NoC + directory + event queue.

    Designs with a snoopy bus (the private-cache family) get the NoC as
    a drop-in replacement for ``design.bus``, inheriting the attached
    controllers.  CMP-NuRAPID — which runs MESIC over its own tag
    arrays — gets it as ``design.noc``: its sharer enumeration routes
    through the directory, its per-transaction bus latency becomes the
    mesh's diameter-calibrated constant, and its tag chokepoints keep
    the vectors current.  Designs with no interconnect role (shared /
    ideal) carry an inert NoC so the backend is uniform.  Always ends
    by attaching the discrete event queue — the mesh is an
    eventq-native backend.
    """
    from repro.interconnect.eventq import attach_eventq

    num_tiles = getattr(design, "num_cores", None) or DEFAULT_NUM_CORES
    noc = MeshNoC(
        num_tiles, block_size=getattr(design, "block_size", 64), **noc_kwargs
    )
    bus = getattr(design, "bus", None)
    if bus is not None and hasattr(bus, "_snoopers"):
        for core, snooper in bus._snoopers:
            noc.attach(core, snooper)
        noc.tracer = getattr(bus, "tracer", NO_TRACE)
        design.bus = noc
    else:
        design.noc = noc
        if hasattr(design, "bus_latency"):
            design.bus_latency = noc.latency
    attach_eventq(design, seed=seed)
    return noc
