"""On-chip interconnect models: snoopy bus and tag-to-d-group crossbar."""

from repro.interconnect.bus import (
    BusOp,
    BusResult,
    BusTransaction,
    SnoopBus,
    SnoopReply,
    Snooper,
)
from repro.interconnect.crossbar import Crossbar
from repro.interconnect.eventq import (
    EventQueue,
    ScheduledEvent,
    TIEBREAKS,
    attach_eventq,
)

__all__ = [
    "BusOp",
    "BusResult",
    "BusTransaction",
    "Crossbar",
    "EventQueue",
    "ScheduledEvent",
    "SnoopBus",
    "SnoopReply",
    "Snooper",
    "TIEBREAKS",
    "attach_eventq",
]
