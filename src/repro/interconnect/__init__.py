"""On-chip interconnect models: snoopy bus and tag-to-d-group crossbar."""

from repro.interconnect.bus import (
    BusOp,
    BusResult,
    BusTransaction,
    SnoopBus,
    SnoopReply,
    Snooper,
)
from repro.interconnect.crossbar import Crossbar

__all__ = [
    "BusOp",
    "BusResult",
    "BusTransaction",
    "Crossbar",
    "SnoopBus",
    "SnoopReply",
    "Snooper",
]
