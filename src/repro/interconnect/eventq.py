"""Deterministic discrete-event scheduler for the on-chip interconnect.

:class:`EventQueue` is a priority queue of :class:`ScheduledEvent`
actions keyed on ``(time, priority, tiebreak, seq)``.  It turns the
atomic interconnect models into *split-phase* transactions (request →
arbitrate → snoop → grant/data) while keeping their synchronous APIs:
a component schedules its phases and immediately drains the queue up
to the transaction's completion time, so callers observe the same
latencies and statistics as the atomic model — the zero-latency
degenerate schedule is bit-identical by construction.

Ordering guarantees:

* **global monotonicity** — events fire in non-decreasing time order;
  an event scheduled in the past (component virtual clocks are not
  globally ordered) is clamped forward to the queue's current time;
* **per-track FIFO** — two events on the same ``track`` with the same
  (time, priority) fire in schedule order, always.  Tracks model a
  source that must not be internally reordered (one bus agent, one
  crossbar port);
* **deterministic tie-breaking** — with the default ``"fifo"``
  tiebreak, *all* same-(time, priority) events fire in schedule order.
  The ``"seeded"`` tiebreak instead shuffles ties *between* tracks
  with a pure function of ``(seed, track, time)`` (per-track FIFO
  still holds), exploring alternative legal interleavings
  reproducibly from the seed.

Events left in the queue past a transaction's completion (the harness's
race faults schedule these deliberately) are drained by
:meth:`~repro.cpu.system.CmpSystem.step` as the cores' virtual clocks
advance.  Actions must be picklable (bound methods plus argument
tuples, never closures) so a checkpoint taken with a pending deferred
event resumes exactly.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple
from zlib import crc32

from repro.common.rng import DEFAULT_SEED, stream

#: Recognized tie-breaking policies.
TIEBREAKS = ("fifo", "seeded")


class ScheduledEvent:
    """One queued action: fire ``action(*args)`` at ``time``.

    A plain slotted class; the queue is on the eventq-mode hot path.
    """

    __slots__ = (
        "time", "priority", "seq", "action", "args", "label", "track",
        "cancelled", "fired",
    )

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        action: "Callable[..., Any]",
        args: "Tuple[Any, ...]",
        label: str,
        track: "Optional[object]",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.args = args
        self.label = label
        self.track = track
        self.cancelled = False
        self.fired = False

    def __repr__(self) -> str:
        return (
            f"ScheduledEvent(t={self.time}, prio={self.priority}, "
            f"seq={self.seq}, label={self.label!r}, track={self.track!r})"
        )


class EventQueue:
    """Deterministic discrete-event scheduler.

    Args:
        seed: seeds both the tie-break function and :attr:`rng` (the
            stream interconnect perturbations draw victim choices from).
        tiebreak: ``"fifo"`` (schedule order breaks ties — the
            differential-equivalence default) or ``"seeded"`` (ties
            between different tracks are shuffled deterministically).
        record_history: keep ``(time, track, label, seq)`` per fired
            event in :attr:`history` (tests; off by default).
    """

    def __init__(
        self,
        seed: int = DEFAULT_SEED,
        tiebreak: str = "fifo",
        record_history: bool = False,
    ) -> None:
        if tiebreak not in TIEBREAKS:
            raise ValueError(
                f"unknown tiebreak {tiebreak!r}; choose from {TIEBREAKS}"
            )
        self.seed = seed
        self.tiebreak = tiebreak
        self.now = 0
        self.pending = 0
        self.fired = 0
        self.rng = stream("interconnect.eventq", seed)
        self.record_history = record_history
        self.history: "List[Tuple[int, object, str, int]]" = []
        self._seq = 0
        self._heap: "List[Tuple[int, int, int, int, ScheduledEvent]]" = []

    # ------------------------------------------------------------------
    # Scheduling

    def _tiebreak_key(self, track: "Optional[object]", time: int) -> int:
        """Pure function of (seed, track, time): same-track ties share a
        key (FIFO among themselves via seq), cross-track ties shuffle."""
        if self.tiebreak == "fifo":
            return 0
        return crc32(f"{self.seed}|{track!r}|{time}".encode())

    def at(
        self,
        time: int,
        action: "Callable[..., Any]",
        args: "Tuple[Any, ...]" = (),
        priority: int = 0,
        label: str = "",
        track: "Optional[object]" = None,
    ) -> ScheduledEvent:
        """Schedule ``action(*args)`` at absolute ``time``.

        A past ``time`` is clamped to :attr:`now` — component virtual
        clocks (per-core cycle counts) are not globally ordered, so the
        queue enforces monotonicity instead of rejecting stragglers.
        """
        if time < self.now:
            time = self.now
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, priority, seq, action, args, label, track)
        heapq.heappush(
            self._heap,
            (time, priority, self._tiebreak_key(track, time), seq, event),
        )
        self.pending += 1
        return event

    def schedule(
        self,
        delay: int,
        action: "Callable[..., Any]",
        args: "Tuple[Any, ...]" = (),
        priority: int = 0,
        label: str = "",
        track: "Optional[object]" = None,
    ) -> ScheduledEvent:
        """Schedule ``action(*args)`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.at(self.now + delay, action, args, priority, label, track)

    def cancel(self, event: ScheduledEvent) -> bool:
        """Cancel a pending event; False if it already fired/cancelled."""
        if event.fired or event.cancelled:
            return False
        event.cancelled = True
        self.pending -= 1
        return True

    # ------------------------------------------------------------------
    # Draining

    def _fire(self, event: ScheduledEvent) -> None:
        event.fired = True
        self.pending -= 1
        self.fired += 1
        if self.record_history:
            self.history.append(
                (event.time, event.track, event.label, event.seq)
            )
        event.action(*event.args)

    def run_until(self, time: int) -> int:
        """Fire every event due at or before ``time``; returns the count.

        Actions may schedule further events; those also fire now if due.
        ``now`` never moves backwards.
        """
        count = 0
        heap = self._heap
        while heap and heap[0][0] <= time:
            event = heapq.heappop(heap)[4]
            if event.cancelled:
                continue
            if event.time > self.now:
                self.now = event.time
            self._fire(event)
            count += 1
        if time > self.now:
            self.now = time
        return count

    def run_next(self) -> "Optional[ScheduledEvent]":
        """Fire the single earliest pending event (None if queue empty)."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[4]
            if event.cancelled:
                continue
            if event.time > self.now:
                self.now = event.time
            self._fire(event)
            return event
        return None

    def drain(self) -> int:
        """Fire everything pending regardless of time; returns the count."""
        count = 0
        while self.run_next() is not None:
            count += 1
        return count

    def peek_time(self) -> "Optional[int]":
        """Due time of the earliest pending event (None if queue empty)."""
        heap = self._heap
        while heap and heap[0][4].cancelled:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    # ------------------------------------------------------------------
    # Versioned checkpointing

    def state_dict(self) -> dict:
        """Scheduler scalars and RNG state — *not* the pending events.

        Pending events hold bound actions into the component graph; the
        checkpoint layer encodes them by owner/name (see
        ``repro.harness.checkpoint``) and replays them through
        :meth:`restore_event`.
        """
        from repro.common import serialization

        return {
            "seed": self.seed,
            "tiebreak": self.tiebreak,
            "now": self.now,
            "fired": self.fired,
            "seq": self._seq,
            "rng": serialization.rng_state(self.rng),
        }

    def load_state_dict(self, state: dict, path: str = "eventq") -> None:
        from repro.common import serialization
        from repro.common.serialization import StateDictError, require

        tiebreak = require(state, "tiebreak", path)
        if tiebreak not in TIEBREAKS:
            raise StateDictError(
                f"{path}.tiebreak", f"unknown policy {tiebreak!r}"
            )
        self.seed = int(require(state, "seed", path))
        self.tiebreak = tiebreak
        self.now = int(require(state, "now", path))
        self.fired = int(require(state, "fired", path))
        self._seq = int(require(state, "seq", path))
        serialization.load_rng(self.rng, require(state, "rng", path), f"{path}.rng")

    def restore_event(
        self,
        time: int,
        priority: int,
        seq: int,
        action: "Callable[..., Any]",
        args: "Tuple[Any, ...]",
        label: str,
        track: "Optional[object]",
    ) -> ScheduledEvent:
        """Re-enqueue a checkpointed pending event with its original seq.

        Unlike :meth:`at`, the sequence number is *restored*, not newly
        allocated, so the heap ordering — ``(time, priority, tiebreak,
        seq)`` — reproduces the pre-checkpoint schedule exactly.
        """
        event = ScheduledEvent(time, priority, seq, action, args, label, track)
        heapq.heappush(
            self._heap,
            (time, priority, self._tiebreak_key(track, time), seq, event),
        )
        self.pending += 1
        return event

    def pending_events(self) -> "List[ScheduledEvent]":
        """Uncancelled pending events in heap order (for checkpointing)."""
        return [
            item[4] for item in sorted(self._heap) if not item[4].cancelled
        ]


def attach_eventq(
    design,
    seed: int = DEFAULT_SEED,
    tiebreak: str = "fifo",
) -> EventQueue:
    """Rebase ``design``'s interconnect on a fresh event queue.

    Sets ``design.queue`` and shares the queue with the design's bus
    and crossbar when present (attribute-probed, so any L2 design —
    including ones without an interconnect — accepts it).  Returns the
    queue.
    """
    queue = EventQueue(seed=seed, tiebreak=tiebreak)
    design.queue = queue
    bus = getattr(design, "bus", None)
    if bus is not None and hasattr(bus, "queue"):
        bus.queue = queue
    crossbar = getattr(design, "crossbar", None)
    if crossbar is not None and hasattr(crossbar, "queue"):
        crossbar.queue = queue
    noc = getattr(design, "noc", None)
    if noc is not None and hasattr(noc, "queue"):
        noc.queue = queue
    return queue


__all__ = ["EventQueue", "ScheduledEvent", "TIEBREAKS", "attach_eventq"]
