"""Crossbar between private tag arrays and the shared d-groups.

Figure 2: tag arrays reach the data d-groups through a crossbar "as used
in conventional banked caches and acceptable due to the small number of
d-groups".  Each tag array and d-group is single-ported and unpipelined
(Section 3.3.2), so aggregate bandwidth matches a single-ported private
cache / n-banked shared cache.

Because the trace-driven simulators present one access at a time, the
crossbar never actually arbitrates; it exists to (a) account traffic per
(core, d-group) link for the Figure 9 locality reports and the paper's
bandwidth claim, and (b) centralize the latency lookup from a core to a
d-group.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Crossbar:
    """Contention-free core-to-d-group interconnect with traffic counts."""

    dgroup_latencies: "tuple[tuple[int, ...], ...]"
    traffic: "Counter[tuple[int, int]]" = field(default_factory=Counter)
    #: Extra cycles per access, armed by the harness's ``delay-xbar``
    #: fault to model a degraded interconnect (0 in normal operation).
    fault_extra_latency: int = 0
    #: Event queue enabling the split-phase backend (None = atomic).
    #: With a queue attached, each access schedules its data-return
    #: phase and drains to completion, so the synchronous latency
    #: contract is preserved while the queue sees real traversal times.
    queue: "Optional[object]" = None
    #: Data phases completed through the event queue (diagnostics).
    completed: int = 0

    @property
    def num_cores(self) -> int:
        return len(self.dgroup_latencies)

    @property
    def num_dgroups(self) -> int:
        return len(self.dgroup_latencies[0]) if self.dgroup_latencies else 0

    def access(self, core: int, dgroup: int, now: int = 0) -> int:
        """Record one data access and return its latency in cycles.

        With an event queue attached, the traversal becomes a
        split-phase transaction: the request is accounted immediately
        and the data-return phase is scheduled at ``now + latency`` on
        the requesting core's crossbar track, then drained — the caller
        still observes the same latency synchronously.
        """
        if not 0 <= core < self.num_cores:
            raise IndexError(f"core {core} out of range")
        if not 0 <= dgroup < self.num_dgroups:
            raise IndexError(f"d-group {dgroup} out of range")
        self.traffic[(core, dgroup)] += 1
        latency = self.dgroup_latencies[core][dgroup] + self.fault_extra_latency
        queue = self.queue
        if queue is not None:
            done_time = max(now, queue.now) + latency
            queue.at(
                done_time, self._complete, (core, dgroup),
                label="xbar-data", track=("xbar", core),
            )
            queue.run_until(done_time)
        return latency

    def _complete(self, core: int, dgroup: int) -> None:
        self.completed += 1

    def state_dict(self) -> dict:
        from repro.common import serialization

        return {
            "dgroup_latencies": tuple(
                tuple(row) for row in self.dgroup_latencies
            ),
            "traffic": serialization.counter_state(
                self.traffic, lambda key: tuple(key)
            ),
            "fault_extra_latency": self.fault_extra_latency,
            "completed": self.completed,
        }

    def load_state_dict(self, state: dict, path: str = "crossbar") -> None:
        from repro.common import serialization

        latencies = serialization.require(state, "dgroup_latencies", path)
        self.dgroup_latencies = tuple(tuple(row) for row in latencies)
        serialization.load_counter(
            self.traffic,
            serialization.require(state, "traffic", path),
            f"{path}.traffic",
            lambda key: (int(key[0]), int(key[1])),
        )
        self.fault_extra_latency = int(
            serialization.require(state, "fault_extra_latency", path)
        )
        self.completed = int(serialization.require(state, "completed", path))

    def link_traffic(self, core: int, dgroup: int) -> int:
        return self.traffic[(core, dgroup)]

    def dgroup_traffic(self, dgroup: int) -> int:
        """Total accesses presented to one (single-ported) d-group."""
        return sum(
            count for (_, group), count in self.traffic.items() if group == dgroup
        )
