"""Transaction-level model of the snoopy split-transaction bus.

CMP-NuRAPID's private tag arrays snoop on a bus exactly like SMP private
caches (Section 2.2.2).  The bus carries *addresses* and — new in
CMP-NuRAPID — *pointers*, so that controlled replication can return a
forward pointer instead of a whole data block (Section 3.1).  Alongside
MESI's shared signal, a **dirty signal** tells a missing reader/writer
that an M or C copy exists so it can transition to C (Section 3.2).

All designs that use the bus charge Table 1's 32-cycle latency per
transaction; per the paper we ignore additional arbitration overheads,
which is conservative *against* CMP-NuRAPID's competitors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.common.stats import BusStats
from repro.obs import events as ev
from repro.obs.tracer import NO_TRACE


class BusOp(enum.Enum):
    """Bus transaction kinds (Figure 4 plus Section 3.1's BusRepl)."""

    BUS_RD = "BusRd"
    BUS_RDX = "BusRdX"
    BUS_UPG = "BusUpg"
    BUS_REPL = "BusRepl"
    WR_THRU = "WrThru"


@dataclass(frozen=True)
class BusTransaction:
    """One broadcast on the bus."""

    op: BusOp
    address: int
    issuer: int


@dataclass
class SnoopReply:
    """One snooper's response to an observed transaction.

    Attributes:
        shared: asserts the shared signal (a clean copy exists here).
        dirty: asserts the dirty signal (an M or C copy exists here).
        supplies_data: this snooper will source the block
            (cache-to-cache transfer / flush).
        pointer: forward pointer returned on the pointer wires instead
            of data (controlled replication's pointer return).
    """

    shared: bool = False
    dirty: bool = False
    supplies_data: bool = False
    pointer: "Optional[object]" = None


@dataclass
class BusResult:
    """Aggregate of all snoop replies for one transaction."""

    shared: bool = False
    dirty: bool = False
    supplier: "Optional[int]" = None
    pointer: "Optional[object]" = None
    latency: int = 0


class Snooper(Protocol):
    """Anything attached to the bus: typically an L2 controller."""

    def snoop(self, txn: BusTransaction) -> SnoopReply:  # pragma: no cover
        ...


@dataclass
class SnoopBus:
    """Pipelined split-transaction snoopy bus.

    ``occupancy`` optionally enables a contention model: each
    transaction holds the (single) address bus for that many cycles, and
    a transaction issued at virtual time ``now`` while the bus is still
    busy queues behind it.  The paper assumes an uncontended bus
    ("ignoring overheads in bus latency helps private caches"), so the
    default occupancy of 0 reproduces that; the bus-contention ablation
    turns it on.
    """

    latency: int
    occupancy: int = 0
    stats: BusStats = field(default_factory=BusStats)
    #: One-shot fault armed by the harness's fault injector: ``"drop"``
    #: skips snooping the next transaction (a lost invalidation),
    #: ``"dup"`` snoops it twice (double-counted work), ``"delay"``
    #: multiplies its latency.  Cleared after one transaction.
    fault_next: "Optional[str]" = None
    #: Structured event tracer (disabled by default); the system routes
    #: its tracer here so bus broadcasts appear in recorded traces.
    tracer: "object" = NO_TRACE
    _snoopers: "list[tuple[int, Snooper]]" = field(default_factory=list)
    _busy_until: int = 0

    def attach(self, core: int, snooper: Snooper) -> None:
        """Attach ``snooper`` as core ``core``'s bus agent."""
        if any(existing == core for existing, _ in self._snoopers):
            raise ValueError(f"core {core} already attached")
        self._snoopers.append((core, snooper))

    @property
    def num_agents(self) -> int:
        return len(self._snoopers)

    def issue(self, txn: BusTransaction, now: int = 0) -> BusResult:
        """Broadcast ``txn``; every *other* agent snoops it.

        Returns the wired-OR of the shared and dirty signals, the
        identity of the (unique) data/pointer supplier if any, and the
        bus latency to charge the issuer — including any queueing delay
        when the contention model is enabled and the bus is busy at
        virtual time ``now``.
        """
        self.stats.record(txn.op.value)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.BUS, cycle=now, core=txn.issuer, address=txn.address,
                op=txn.op.value,
            )
        fault, self.fault_next = self.fault_next, None
        wait = 0
        if self.occupancy:
            wait = max(0, self._busy_until - now)
            self._busy_until = max(now, self._busy_until) + self.occupancy
        latency = self.latency + wait
        if fault == "delay":
            latency += 10 * self.latency
        result = BusResult(latency=latency)
        if fault == "drop":
            # Injected fault: the broadcast is lost before any snooper
            # sees it — shared/dirty signals stay deasserted and no
            # invalidation happens, which the invariant checker must
            # flag as an exclusivity violation downstream.
            return result
        rounds = 2 if fault == "dup" else 1
        for round_index in range(rounds):
            for core, snooper in self._snoopers:
                if core == txn.issuer:
                    continue
                reply = snooper.snoop(txn)
                result.shared = result.shared or reply.shared
                result.dirty = result.dirty or reply.dirty
                if reply.supplies_data or reply.pointer is not None:
                    if result.supplier is not None and reply.supplies_data:
                        raise RuntimeError(
                            f"two agents supplied data for {txn.address:#x}"
                        )
                    if reply.supplies_data:
                        result.supplier = core
                    if reply.pointer is not None:
                        result.pointer = reply.pointer
            if round_index == 0 and rounds == 2:
                # The duplicated broadcast re-runs the snoopers (their
                # state transitions apply twice) but takes the second
                # round's replies, so a flushed supplier is not
                # double-claimed as two data sources.
                result.supplier = None
        return result
