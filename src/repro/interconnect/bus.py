"""Transaction-level model of the snoopy split-transaction bus.

CMP-NuRAPID's private tag arrays snoop on a bus exactly like SMP private
caches (Section 2.2.2).  The bus carries *addresses* and — new in
CMP-NuRAPID — *pointers*, so that controlled replication can return a
forward pointer instead of a whole data block (Section 3.1).  Alongside
MESI's shared signal, a **dirty signal** tells a missing reader/writer
that an M or C copy exists so it can transition to C (Section 3.2).

All designs that use the bus charge Table 1's 32-cycle latency per
transaction; per the paper we ignore additional arbitration overheads,
which is conservative *against* CMP-NuRAPID's competitors.

Two execution backends share the latency/statistics math:

* **atomic** (default, ``queue is None``) — one synchronous call snoops
  every agent in attach order;
* **eventq** (``queue`` set, normally via
  :func:`repro.interconnect.eventq.attach_eventq`) — the transaction is
  decomposed into split phases (request → arbitrate/grant → snoop per
  agent → completion) scheduled on the event queue and drained before
  :meth:`SnoopBus.issue` returns, so the synchronous API, statistics,
  and trace sequence are unchanged at zero occupancy.  The harness's
  protocol *race* faults perturb this schedule (a victim's snoop
  deferred past completion, or its reply discarded) — corruptions of
  event ordering, not of state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Protocol

from repro.common.stats import BusStats
from repro.obs import events as ev
from repro.obs.tracer import NO_TRACE


class BusOp(enum.Enum):
    """Bus transaction kinds (Figure 4 plus Section 3.1's BusRepl)."""

    BUS_RD = "BusRd"
    BUS_RDX = "BusRdX"
    BUS_UPG = "BusUpg"
    BUS_REPL = "BusRepl"
    WR_THRU = "WrThru"


@dataclass(frozen=True)
class BusTransaction:
    """One broadcast on the bus."""

    op: BusOp
    address: int
    issuer: int


@dataclass
class SnoopReply:
    """One snooper's response to an observed transaction.

    Attributes:
        shared: asserts the shared signal (a clean copy exists here).
        dirty: asserts the dirty signal (an M or C copy exists here).
        supplies_data: this snooper will source the block
            (cache-to-cache transfer / flush).
        pointer: forward pointer returned on the pointer wires instead
            of data (controlled replication's pointer return).
    """

    shared: bool = False
    dirty: bool = False
    supplies_data: bool = False
    pointer: "Optional[object]" = None


@dataclass
class BusResult:
    """Aggregate of all snoop replies for one transaction."""

    shared: bool = False
    dirty: bool = False
    supplier: "Optional[int]" = None
    pointer: "Optional[object]" = None
    latency: int = 0


class Snooper(Protocol):
    """Anything attached to the bus: typically an L2 controller."""

    def snoop(self, txn: BusTransaction) -> SnoopReply:  # pragma: no cover
        ...


#: Race fault kinds the bus can realize as schedule perturbations.
BUS_RACE_KINDS = ("race-reorder", "race-stale-snoop")


@dataclass
class SnoopBus:
    """Pipelined split-transaction snoopy bus.

    ``occupancy`` optionally enables a contention model: each
    transaction holds the (single) address bus for that many cycles, and
    a transaction issued at virtual time ``now`` while the bus is still
    busy queues behind it.  The paper assumes an uncontended bus
    ("ignoring overheads in bus latency helps private caches"), so the
    default occupancy of 0 reproduces that; the bus-contention ablation
    turns it on.
    """

    latency: int
    occupancy: int = 0
    stats: BusStats = field(default_factory=BusStats)
    #: One-shot fault armed by the harness's fault injector: ``"drop"``
    #: skips snooping the next transaction (a lost invalidation),
    #: ``"dup"`` snoops it twice (double-counted work), ``"delay"``
    #: multiplies its latency.  Cleared after one transaction.
    fault_next: "Optional[str]" = None
    #: Structured event tracer (disabled by default); the system routes
    #: its tracer here so bus broadcasts appear in recorded traces.
    tracer: "object" = NO_TRACE
    #: Event queue enabling the split-phase backend (None = atomic).
    queue: "Optional[object]" = None
    #: Armed race fault (one of :data:`BUS_RACE_KINDS`); *sticky* — it
    #: stays armed until an eligible transaction consumes it, so a race
    #: scheduled at an arbitrary event index still lands.  Requires the
    #: eventq backend.
    race_pending: "Optional[str]" = None
    #: Human-readable description of the last race actually applied.
    last_race: "Optional[str]" = None
    _snoopers: "list[tuple[int, Snooper]]" = field(default_factory=list)
    _busy_until: int = 0

    def attach(self, core: int, snooper: Snooper) -> None:
        """Attach ``snooper`` as core ``core``'s bus agent."""
        if any(existing == core for existing, _ in self._snoopers):
            raise ValueError(f"core {core} already attached")
        self._snoopers.append((core, snooper))

    @property
    def num_agents(self) -> int:
        return len(self._snoopers)

    def issue(self, txn: BusTransaction, now: int = 0) -> BusResult:
        """Broadcast ``txn``; every *other* agent snoops it.

        Returns the wired-OR of the shared and dirty signals, the
        identity of the (unique) data/pointer supplier if any, and the
        bus latency to charge the issuer — including any queueing delay
        when the contention model is enabled and the bus is busy at
        virtual time ``now``.
        """
        self.stats.record(txn.op.value)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.BUS, cycle=now, core=txn.issuer, address=txn.address,
                op=txn.op.value,
            )
        fault, self.fault_next = self.fault_next, None
        wait = 0
        if self.occupancy:
            wait = max(0, self._busy_until - now)
            self._busy_until = max(now, self._busy_until) + self.occupancy
        latency = self.latency + wait
        if fault == "delay":
            latency += 10 * self.latency
        result = BusResult(latency=latency)
        if fault == "drop":
            # Injected fault: the broadcast is lost before any snooper
            # sees it — shared/dirty signals stay deasserted and no
            # invalidation happens, which the invariant checker must
            # flag as an exclusivity violation downstream.
            return result
        if self.queue is not None:
            return self._issue_eventq(txn, now, wait, fault, result)
        rounds = 2 if fault == "dup" else 1
        for round_index in range(rounds):
            for core, snooper in self._snoopers:
                if core == txn.issuer:
                    continue
                self._collect(result, core, snooper.snoop(txn))
            if round_index == 0 and rounds == 2:
                # The duplicated broadcast re-runs the snoopers (their
                # state transitions apply twice) but takes the second
                # round's replies, so a flushed supplier is not
                # double-claimed as two data sources.
                result.supplier = None
        return result

    # ------------------------------------------------------------------
    # Shared reply aggregation

    @staticmethod
    def _collect(result: BusResult, core: int, reply: SnoopReply) -> None:
        result.shared = result.shared or reply.shared
        result.dirty = result.dirty or reply.dirty
        if reply.supplies_data or reply.pointer is not None:
            if result.supplier is not None and reply.supplies_data:
                raise RuntimeError(
                    "two agents supplied data for "
                    f"{'this transaction' if result.supplier == core else hex(0)}"
                )
            if reply.supplies_data:
                result.supplier = core
            if reply.pointer is not None:
                result.pointer = reply.pointer

    # ------------------------------------------------------------------
    # Event-queue backend (split-phase transactions)

    def _issue_eventq(
        self, txn: BusTransaction, now: int, wait: int, fault: "Optional[str]",
        result: BusResult,
    ) -> BusResult:
        """Schedule the transaction's phases and drain to completion.

        Times are anchored at ``max(now, queue.now)`` (the queue never
        runs backwards); the *returned* latency was already computed
        from ``now`` exactly as in atomic mode, so statistics match
        bit-for-bit.  Extra per-phase trace events are emitted only
        when the contention model is active — the zero-occupancy trace
        sequence stays identical to atomic's single ``bus`` record.
        """
        queue = self.queue
        t0 = max(now, queue.now)
        grant_time = t0 + wait
        done_time = t0 + result.latency
        trace_phases = self.tracer.enabled and (self.occupancy or wait)
        if trace_phases:
            queue.at(
                grant_time, self._trace_phase, (txn, "grant", grant_time),
                priority=-1, label="bus-grant", track=("bus", txn.issuer),
            )
        victim = self._race_victim(txn) if self.race_pending else None
        rounds = 2 if fault == "dup" else 1
        for round_index in range(rounds):
            priority = 3 * round_index
            for core, snooper in self._snoopers:
                if core == txn.issuer:
                    continue
                if victim is not None and core == victim[1] and round_index == 0:
                    kind = victim[0]
                    if kind == "race-reorder":
                        # The victim's snoop is reordered after the
                        # grant/completion: its reply is lost and its
                        # state transition fires late, from the queue.
                        queue.at(
                            done_time + 2 * self.latency + 1,
                            self._snoop_apply, (snooper, txn),
                            label="bus-snoop-late", track=("bus", core),
                        )
                        continue
                    # race-stale-snoop: the victim transitions on time
                    # but its reply is stale and never reaches the
                    # issuer's aggregation.
                    queue.at(
                        grant_time, self._snoop_apply, (snooper, txn),
                        priority=priority,
                        label="bus-snoop-stale", track=("bus", core),
                    )
                    continue
                queue.at(
                    grant_time, self._snoop_collect,
                    (result, core, snooper, txn),
                    priority=priority,
                    label="bus-snoop", track=("bus", core),
                )
            if round_index == 0 and rounds == 2:
                queue.at(
                    grant_time, self._reset_supplier, (result,),
                    priority=1, label="bus-dup-reset",
                    track=("bus", txn.issuer),
                )
        if trace_phases:
            queue.at(
                done_time, self._trace_phase, (txn, "complete", done_time),
                priority=4, label="bus-complete", track=("bus", txn.issuer),
            )
        queue.run_until(done_time)
        return result

    def _snoop_collect(
        self, result: BusResult, core: int, snooper: Snooper,
        txn: BusTransaction,
    ) -> None:
        self._collect(result, core, snooper.snoop(txn))

    @staticmethod
    def _snoop_apply(snooper: Snooper, txn: BusTransaction) -> None:
        """Apply a snoop whose reply is lost (race perturbations)."""
        snooper.snoop(txn)

    @staticmethod
    def _reset_supplier(result: BusResult) -> None:
        result.supplier = None

    def _trace_phase(self, txn: BusTransaction, phase: str, cycle: int) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                ev.BUS, cycle=cycle, core=txn.issuer, address=txn.address,
                op=txn.op.value, phase=phase,
            )

    # ------------------------------------------------------------------
    # Versioned checkpointing

    def state_dict(self) -> dict:
        """Snapshot everything but the wiring (snoopers, queue, tracer).

        Sticky fault arms (``fault_next``/``race_pending``) are part of
        the model state: a checkpoint taken between arming and landing
        must resume with the race still pending.
        """
        return {
            "latency": self.latency,
            "occupancy": self.occupancy,
            "stats": self.stats.state_dict(),
            "fault_next": self.fault_next,
            "race_pending": self.race_pending,
            "last_race": self.last_race,
            "busy_until": self._busy_until,
        }

    def load_state_dict(self, state: dict, path: str = "bus") -> None:
        from repro.common import serialization

        self.latency = int(serialization.require(state, "latency", path))
        self.occupancy = int(serialization.require(state, "occupancy", path))
        self.stats.load_state_dict(
            serialization.require(state, "stats", path), f"{path}.stats"
        )
        self.fault_next = state.get("fault_next")
        self.race_pending = state.get("race_pending")
        self.last_race = state.get("last_race")
        self._busy_until = int(serialization.require(state, "busy_until", path))

    # ------------------------------------------------------------------
    # Race fault eligibility

    def _holders(self, txn: BusTransaction) -> "list[int]":
        """Non-issuer agents holding the block (via optional ``probe``)."""
        holders = []
        for core, snooper in self._snoopers:
            if core == txn.issuer:
                continue
            probe = getattr(snooper, "probe", None)
            if probe is not None and probe(txn.address) is not None:
                holders.append(core)
        return holders

    def _race_victim(self, txn: BusTransaction) -> "Optional[tuple[str, int]]":
        """Consume the armed race if ``txn`` is eligible; pick a victim.

        * ``race-reorder`` needs an invalidating transaction (BusRdX /
          BusUpg) with at least one non-issuer holder — deferring that
          holder's snoop leaves its copy alive alongside the issuer's
          fresh M copy until the late delivery.
        * ``race-stale-snoop`` needs a BusRd whose *only* non-issuer
          holder's reply goes stale — the issuer then fills E while the
          victim (downgraded on time) keeps its copy.
        """
        kind = self.race_pending
        if kind not in BUS_RACE_KINDS or self.queue is None:
            return None
        holders = self._holders(txn)
        if not holders:
            return None
        if kind == "race-stale-snoop":
            if txn.op is not BusOp.BUS_RD or len(holders) != 1:
                return None
            chosen = holders[0]
        else:  # race-reorder
            if txn.op not in (BusOp.BUS_RDX, BusOp.BUS_UPG):
                return None
            chosen = holders[int(self.queue.rng.integers(0, len(holders)))]
        self.race_pending = None
        self.last_race = (
            f"{kind}: {txn.op.value} @{txn.address:#x} issued by core "
            f"{txn.issuer}, victim core {chosen}"
        )
        return (kind, chosen)
