"""Structure-of-arrays L1 pool: many cores' L1s as stacked numpy state.

One :class:`L1Pool` holds the L1 caches of every core of every cell in
a batch as parallel arrays indexed ``[slot, set, way]``, where a *slot*
is one (cell, core) pair.  The pool exposes two faces:

* **vectorized primitives** — :meth:`probe` (masked tag probe) and
  :meth:`classify` (hit/miss + store-permission classification) read
  state for many accesses in one array op; :meth:`commit_hits` applies
  the recency/dirty/counter updates of a *run of guaranteed pure L1
  hits* in event order (the ring-buffer recency update is an
  occurrence-ranked LRU stamp assignment);
* **scalar ops** — :meth:`load` / :meth:`store` / :meth:`fill` /
  :meth:`revoke_writable` / :meth:`invalidate` /
  :meth:`invalidate_l2_block` mirror :class:`repro.caches.l1.L1Cache`
  bit for bit, so the engine's scalar fallback path (events that reach
  the L2) mutates exactly the state the scalar engine would.  They run
  once per L2-reaching event, so they index flat array views with
  python ints instead of paying tuple fancy-indexing per touch.

The pool round-trips losslessly with real :class:`L1Cache` objects via
:meth:`from_caches` / :meth:`write_back`: every field the L1 ever
mutates (tag, validity, writable, dirty, LRU stamp, LRU clock, stats)
is represented.  L1 entries never carry ``reuse``/``fill_class``
payload (only L2 designs use those), which is what makes the six-array
representation complete.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.caches.l1 import L1Cache, L1Stats
from repro.coherence.states import CoherenceState
from repro.common.params import L1Params
from repro.common.types import block_address

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

#: L1Stats fields mirrored as per-slot counter arrays, in field order.
COUNTER_FIELDS = (
    "load_hits",
    "load_misses",
    "store_hits",
    "store_upgrades",
    "store_misses",
    "writebacks",
    "invalidations",
)

_INVALID = CoherenceState.INVALID
_SHARED = CoherenceState.SHARED


class L1Pool:
    """The L1s of ``num_slots`` (cell, core) pairs as stacked arrays."""

    def __init__(self, num_slots: int, params: "L1Params | None" = None) -> None:
        self.params = params or L1Params()
        geo = self.params.geometry
        self.num_slots = num_slots
        self.num_sets = geo.num_sets
        self.ways = geo.associativity
        self.offset_bits = geo.offset_bits
        self.index_mask = geo.num_sets - 1
        self.tag_shift = geo.offset_bits + geo.index_bits
        self.block_size = geo.block_size
        shape = (num_slots, self.num_sets, self.ways)
        self.tags = np.zeros(shape, dtype=np.int64)
        self.valid = np.zeros(shape, dtype=bool)
        self.writable = np.zeros(shape, dtype=bool)
        self.dirty = np.zeros(shape, dtype=bool)
        self.lru = np.zeros(shape, dtype=np.int64)
        #: Per-slot monotonic LRU clock (``SetAssociativeArray._clock``).
        self.clock = np.zeros(num_slots, dtype=np.int64)
        # Per-slot L1Stats counters; attributes for the scalar fast
        # path, with ``counters`` mapping field names to the same
        # arrays for bulk reset / re-sync.
        self.load_hits = np.zeros(num_slots, dtype=np.int64)
        self.load_misses = np.zeros(num_slots, dtype=np.int64)
        self.store_hits = np.zeros(num_slots, dtype=np.int64)
        self.store_upgrades = np.zeros(num_slots, dtype=np.int64)
        self.store_misses = np.zeros(num_slots, dtype=np.int64)
        self.writebacks = np.zeros(num_slots, dtype=np.int64)
        self.invalidations = np.zeros(num_slots, dtype=np.int64)
        self.counters = {name: getattr(self, name) for name in COUNTER_FIELDS}
        # Flat views (C-contiguous reshape) for the scalar ops: element
        # ``(slot, set, way)`` lives at ``(slot·num_sets + set)·ways + way``.
        self.tags_flat = self.tags.reshape(-1)
        self.valid_flat = self.valid.reshape(-1)
        self.writable_flat = self.writable.reshape(-1)
        self.dirty_flat = self.dirty.reshape(-1)
        self.lru_flat = self.lru.reshape(-1)
        self.index_bits = geo.index_bits
        # Per-slot map of resident block key (address >> offset_bits,
        # i.e. tag·num_sets + set) → flat element index.  Presence only
        # changes on installs — a pure hit never installs or evicts a
        # line — so only the installing ops (scalar fill, fill_read_*)
        # maintain these maps; pure-hit primitives read the arrays.
        self.block_maps: "list[dict[int, int]]" = [
            {} for _ in range(num_slots)
        ]

    # ------------------------------------------------------------------
    # Vectorized primitives (the batch hot path)

    def probe(
        self, slots: "NDArray", sets: "NDArray", tags: "NDArray"
    ) -> "tuple[NDArray, NDArray]":
        """Masked tag probe for many accesses at once; no state change.

        Returns ``(hit, way)`` arrays: ``hit[i]`` is True when slot
        ``slots[i]`` holds ``tags[i]`` valid in set ``sets[i]``, and
        ``way[i]`` is its way index (0 when missing).
        """
        lines = self.valid[slots, sets] & (self.tags[slots, sets] == tags[:, None])
        hit = lines.any(axis=1)
        way = lines.argmax(axis=1)
        return hit, way

    def classify(
        self,
        slots: "NDArray",
        sets: "NDArray",
        tags: "NDArray",
        is_write: "NDArray",
    ) -> "tuple[NDArray, NDArray, NDArray]":
        """Hit/miss + permission classification for many accesses.

        Returns ``(pure, hit, way)``.  ``pure[i]`` is True when the
        access completes inside the L1 without touching the L2: a load
        hit, or a store hit on a writable line.  Everything else (miss,
        or store hit needing an upgrade) must take the scalar fallback.
        """
        hit, way = self.probe(slots, sets, tags)
        pure = hit & (~is_write | self.writable[slots, sets, way])
        return pure, hit, way

    def commit_hits_stamped(
        self,
        slots: "NDArray",
        sets: "NDArray",
        ways: "NDArray",
        is_write: "NDArray",
        stamps: "NDArray",
    ) -> None:
        """Apply a run of pure L1 hits whose LRU stamps are precomputed.

        The four-class engine interleaves pure L1 hits with fast-L2
        fills inside one committed window; both tick the slot's LRU
        clock, so the engine ranks *all* committed events per slot and
        hands each its exact scalar clock value.  This variant therefore
        stamps (last-write-wins in event order, as in
        :meth:`commit_hits`) and counts, but does **not** advance
        ``clock`` — the engine bulk-advances it once per window.
        """
        if not slots.shape[0]:
            return
        self.lru[slots, sets, ways] = stamps
        counts = np.bincount(slots, minlength=self.num_slots)
        if is_write.any():
            ws, wt, ww = slots[is_write], sets[is_write], ways[is_write]
            self.dirty[ws, wt, ww] = True
            store_counts = np.bincount(ws, minlength=self.num_slots)
            self.store_hits += store_counts
            self.load_hits += counts - store_counts
        else:
            self.load_hits += counts

    def fill_read_stamped(self, slot: int, address: int, stamp: int) -> None:
        """A read-miss fill (``writable=False, dirty=False``) at a
        precomputed LRU stamp.

        Mirrors :meth:`fill` — same victim choice (first invalid way,
        else lowest stamp) and dirty-victim writeback accounting — but
        takes the scalar clock value the event would have observed from
        the engine's per-window ranking instead of ticking ``clock``
        itself.  The ``load_misses`` count is the engine's (it bulk-adds
        per window), matching the split in the scalar path where
        :meth:`load` counts the miss and :meth:`fill` installs.
        """
        block_map = self.block_maps[slot]
        key = address >> self.offset_bits
        j = block_map.get(key, -1)
        if j < 0:
            set_index = key & self.index_mask
            base = (slot * self.num_sets + set_index) * self.ways
            valid = self.valid_flat
            j = -1
            for candidate in range(base, base + self.ways):
                if not valid[candidate]:
                    j = candidate
                    break
            if j < 0:
                lru = self.lru_flat
                j = base
                best = lru[base]
                for candidate in range(base + 1, base + self.ways):
                    if lru[candidate] < best:
                        best = lru[candidate]
                        j = candidate
            if valid[j]:
                if self.dirty_flat[j]:
                    self.writebacks[slot] += 1
                del block_map[(int(self.tags_flat[j]) << self.index_bits) | set_index]
            self.tags_flat[j] = key >> self.index_bits
            valid[j] = True
            block_map[key] = j
            self.lru_flat[j] = stamp
        self.writable_flat[j] = False
        self.dirty_flat[j] = False

    def fill_read_batch(
        self, slots: "NDArray", addresses: "NDArray", stamps: "NDArray"
    ) -> None:
        """Vectorized :meth:`fill_read_stamped` for a window's fills.

        Callers guarantee the blocks are absent and that there is at
        most one fill per (slot, set) — the engine's L1 conflict keys
        truncate a window at the second — so every victim choice is
        independent and the fancy column writes never alias.
        """
        keys = addresses >> self.offset_bits
        sets = keys & self.index_mask
        va = self.valid[slots, sets]
        inv = ~va
        ways = np.where(
            inv.any(axis=1),
            inv.argmax(axis=1),
            self.lru[slots, sets].argmin(axis=1),
        )
        victim_valid = va[np.arange(slots.shape[0]), ways]
        old_tags = self.tags[slots, sets, ways]
        evict_dirty = victim_valid & self.dirty[slots, sets, ways]
        if evict_dirty.any():
            self.writebacks += np.bincount(
                slots[evict_dirty], minlength=self.num_slots
            )
        self.tags[slots, sets, ways] = keys >> self.index_bits
        self.valid[slots, sets, ways] = True
        self.lru[slots, sets, ways] = stamps
        self.writable[slots, sets, ways] = False
        self.dirty[slots, sets, ways] = False
        flat = (slots * self.num_sets + sets) * self.ways + ways
        block_maps = self.block_maps
        index_bits = self.index_bits
        for s, key, j, vv, ot, si in zip(
            slots.tolist(), keys.tolist(), flat.tolist(),
            victim_valid.tolist(), old_tags.tolist(), sets.tolist(),
        ):
            bm = block_maps[s]
            if vv:
                del bm[(ot << index_bits) | si]
            bm[key] = j

    def revoke_writable_batch(
        self, slots: "NDArray", addresses: "NDArray"
    ) -> None:
        """Vectorized :meth:`revoke_writable`: clear write permission
        on every resident line, leaving absent ones untouched."""
        sets = (addresses >> self.offset_bits) & self.index_mask
        lines = self.valid[slots, sets] & (
            self.tags[slots, sets] == (addresses >> self.tag_shift)[:, None]
        )
        hit = lines.any(axis=1)
        if hit.any():
            self.writable[
                slots[hit], sets[hit], lines[hit].argmax(axis=1)
            ] = False

    def commit_hits(
        self,
        slots: "NDArray",
        sets: "NDArray",
        ways: "NDArray",
        is_write: "NDArray",
    ) -> None:
        """Apply a run of *pure L1 hits* (already classified) in order.

        Mirrors what ``L1Cache.load``/``store`` do on a hit: bump the
        slot's LRU clock once per access, stamp the touched line with
        the new clock value, count the hit, and set the dirty bit on
        stores.  Events must be passed in execution order; several
        events may touch the same slot (the per-slot stamp sequence is
        the occurrence rank, and a line touched twice keeps the *last*
        stamp, exactly as the scalar clock would leave it).
        """
        n = slots.shape[0]
        if not n:
            return
        # Occurrence rank of each event within its slot: stable-sort by
        # slot, then rank within each equal-slot run.  new_lru is the
        # scalar clock value the event would have observed.
        order = np.argsort(slots, kind="stable")
        sorted_slots = slots[order]
        boundaries = np.empty(n, dtype=bool)
        boundaries[0] = True
        np.not_equal(sorted_slots[1:], sorted_slots[:-1], out=boundaries[1:])
        index = np.arange(n)
        run_starts = index[boundaries]
        rank = index - np.repeat(run_starts, np.diff(np.append(run_starts, n)))
        new_lru = self.clock[sorted_slots] + rank + 1
        # Fancy assignment is last-write-wins in index order; ``order``
        # preserves event order within a slot, so a line touched twice
        # ends with its latest stamp.
        self.lru[sorted_slots, sets[order], ways[order]] = new_lru
        counts = np.bincount(slots, minlength=self.num_slots)
        self.clock += counts
        if is_write.any():
            ws, wt, ww = slots[is_write], sets[is_write], ways[is_write]
            self.dirty[ws, wt, ww] = True
            store_counts = np.bincount(ws, minlength=self.num_slots)
            self.store_hits += store_counts
            self.load_hits += counts - store_counts
        else:
            self.load_hits += counts

    # ------------------------------------------------------------------
    # Scalar ops (the fallback path) — bit-exact mirrors of L1Cache

    def set_and_tag(self, address: int) -> "tuple[int, int]":
        return (
            (address >> self.offset_bits) & self.index_mask,
            address >> self.tag_shift,
        )

    def _find(self, slot: int, set_index: int, tag: int) -> int:
        """Flat index of the way holding ``tag`` valid, or -1."""
        return self.block_maps[slot].get((tag << self.index_bits) | set_index, -1)

    def load(self, slot: int, address: int) -> bool:
        """Mirror of ``L1Cache.load``: True on a hit (LRU touched)."""
        j = self.block_maps[slot].get(address >> self.offset_bits, -1)
        if j >= 0:
            clock = self.clock[slot] + 1
            self.clock[slot] = clock
            self.lru_flat[j] = clock
            self.load_hits[slot] += 1
            return True
        self.load_misses[slot] += 1
        return False

    def store(self, slot: int, address: int) -> bool:
        """Mirror of ``L1Cache.store``: True when it completes locally.

        A store hit touches the LRU *before* the permission check, as
        the scalar L1 does; a hit without write permission counts a
        store upgrade and returns False.
        """
        j = self.block_maps[slot].get(address >> self.offset_bits, -1)
        if j >= 0:
            clock = self.clock[slot] + 1
            self.clock[slot] = clock
            self.lru_flat[j] = clock
            if not self.writable_flat[j]:
                self.store_upgrades[slot] += 1
                return False
            self.store_hits[slot] += 1
            self.dirty_flat[j] = True
            return True
        self.store_misses[slot] += 1
        return False

    def fill(
        self, slot: int, address: int, writable: bool = False, dirty: bool = False
    ) -> None:
        """Mirror of ``L1Cache.fill`` (victim: first invalid way, else LRU)."""
        block_map = self.block_maps[slot]
        key = address >> self.offset_bits
        j = block_map.get(key, -1)
        if j < 0:
            set_index = key & self.index_mask
            base = (slot * self.num_sets + set_index) * self.ways
            valid = self.valid_flat
            j = -1
            for candidate in range(base, base + self.ways):
                if not valid[candidate]:
                    j = candidate
                    break
            if j < 0:
                lru = self.lru_flat
                j = base
                best = lru[base]
                for candidate in range(base + 1, base + self.ways):
                    if lru[candidate] < best:
                        best = lru[candidate]
                        j = candidate
            if valid[j]:
                if self.dirty_flat[j]:
                    self.writebacks[slot] += 1
                del block_map[(int(self.tags_flat[j]) << self.index_bits) | set_index]
            self.tags_flat[j] = key >> self.index_bits
            valid[j] = True
            block_map[key] = j
            clock = self.clock[slot] + 1
            self.clock[slot] = clock
            self.lru_flat[j] = clock
        self.writable_flat[j] = writable
        self.dirty_flat[j] = dirty

    def revoke_writable(self, slot: int, address: int) -> None:
        """Mirror of ``L1Cache.revoke_writable`` (no LRU touch)."""
        j = self.block_maps[slot].get(address >> self.offset_bits, -1)
        if j >= 0:
            self.writable_flat[j] = False

    def invalidate(self, slot: int, address: int) -> bool:
        """Mirror of ``L1Cache.invalidate``: tag and LRU stamp are kept."""
        key = address >> self.offset_bits
        j = self.block_maps[slot].get(key, -1)
        if j < 0:
            return False
        if self.dirty_flat[j]:
            self.writebacks[slot] += 1
        self.valid_flat[j] = False
        self.dirty_flat[j] = False
        self.writable_flat[j] = False
        del self.block_maps[slot][key]
        self.invalidations[slot] += 1
        return True

    def invalidate_l2_block(
        self, slot: int, l2_block_address: int, l2_block_size: int
    ) -> int:
        """Mirror of ``L1Cache.invalidate_l2_block`` (inclusion sweep)."""
        l1_size = self.block_size
        span = max(l2_block_size, l1_size)
        base = block_address(l2_block_address, span)
        count = 0
        for offset in range(0, span, l1_size):
            if self.invalidate(slot, base + offset):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Re-sync with scalar L1 objects

    def reset_stats(self, slots: "slice | Sequence[int]") -> None:
        """Zero the given slots' counters (the warm-up boundary)."""
        for array in self.counters.values():
            array[slots] = 0

    def slot_stats(self, slot: int) -> L1Stats:
        """The given slot's counters as a scalar :class:`L1Stats`."""
        return L1Stats(
            **{name: int(self.counters[name][slot]) for name in COUNTER_FIELDS}
        )

    @classmethod
    def from_caches(cls, l1s: "Sequence[L1Cache]") -> "L1Pool":
        """Build a pool mirroring ``l1s`` (one slot per cache), losslessly."""
        if not l1s:
            raise ValueError("from_caches needs at least one L1Cache")
        params = l1s[0].params
        pool = cls(len(l1s), params)
        for slot, l1 in enumerate(l1s):
            if l1.params.geometry != params.geometry:
                raise ValueError("all L1s in a pool must share one geometry")
            block_map = pool.block_maps[slot]
            for set_index, way, entry in l1.array.entries():
                valid = entry.state is not _INVALID
                pool.tags[slot, set_index, way] = entry.tag
                pool.valid[slot, set_index, way] = valid
                pool.writable[slot, set_index, way] = entry.writable
                pool.dirty[slot, set_index, way] = entry.dirty
                pool.lru[slot, set_index, way] = entry.lru
                if valid:
                    block_map[(entry.tag << pool.index_bits) | set_index] = (
                        slot * pool.num_sets + set_index
                    ) * pool.ways + way
            pool.clock[slot] = l1.array._clock
            for name in COUNTER_FIELDS:
                pool.counters[name][slot] = getattr(l1.stats, name)
        return pool

    def write_back(self, l1s: "Sequence[L1Cache]") -> None:
        """Write the pool's state into scalar ``l1s`` (inverse of
        :meth:`from_caches`)."""
        if len(l1s) != self.num_slots:
            raise ValueError(
                f"pool has {self.num_slots} slots, got {len(l1s)} caches"
            )
        for slot, l1 in enumerate(l1s):
            for set_index, way, entry in l1.array.entries():
                entry.tag = int(self.tags[slot, set_index, way])
                entry.state = (
                    _SHARED if self.valid[slot, set_index, way] else _INVALID
                )
                entry.writable = bool(self.writable[slot, set_index, way])
                entry.dirty = bool(self.dirty[slot, set_index, way])
                entry.lru = int(self.lru[slot, set_index, way])
                entry.reuse = 0
                entry.fill_class = None
            l1.array._clock = int(self.clock[slot])
            l1.stats = self.slot_stats(slot)


class L2Pool:
    """NuRAPID tag/data state of ``num_lanes`` designs as stacked arrays.

    The tag side is indexed ``[eslot, set, way]`` where an *eslot* is
    one (lane, core) pair — each core's private tag array is one bank
    of the per-lane ``[banks, sets, ways]`` cube.  Columns split into
    two groups:

    * **classification columns** — ``tags`` / ``valid`` / ``state`` /
      ``dgroup`` / ``reuse``: everything the engine's window classifier
      reads to prove a read hit side-effect-free.  The engine keeps
      these live: fast-L2 commits bump ``reuse`` in step with the
      design, and after every scalar residue the rows of each
      dirty-marked address are re-read from the design
      (:meth:`refresh_address`).
    * **snapshot columns** — LRU stamps and clocks, dirty bits, fill
      classes, forward-pointer frame indices, busy markers, remote-read
      counts, plus the data side (frame occupancy columns and the
      order-preserving free lists).  These make
      :meth:`from_designs` / :meth:`write_back` lossless, mirroring
      ``L1Pool``'s round-trip contract; the engine does **not** keep
      them live (the design objects stay authoritative), so
      ``write_back`` is only meaningful on a pool that has not been
      driven by the engine.

    States and fill classes are stored as the small-int codes of
    :mod:`repro.core.tag_array`; ``dgroup`` is the forward pointer's
    d-group, -1 when the entry has no pointer.
    """

    def __init__(
        self,
        num_lanes: int,
        num_cores: int,
        tag_geometry,
        num_dgroups: int,
        frames_per_dgroup: int,
    ) -> None:
        from repro.core.tag_array import STATE_CODES

        self.num_lanes = num_lanes
        self.num_cores = num_cores
        self.tag_geometry = tag_geometry
        self.num_dgroups = num_dgroups
        self.frames_per_dgroup = frames_per_dgroup
        self.num_sets = tag_geometry.num_sets
        self.ways = tag_geometry.associativity
        self.offset_bits = tag_geometry.offset_bits
        self.index_mask = self.num_sets - 1
        self.tag_shift = tag_geometry.offset_bits + tag_geometry.index_bits
        num_eslots = num_lanes * num_cores
        self.num_eslots = num_eslots
        shape = (num_eslots, self.num_sets, self.ways)
        self._invalid_code = STATE_CODES[_INVALID]
        # Classification columns (engine-maintained).
        self.tags = np.zeros(shape, dtype=np.int64)
        self.valid = np.zeros(shape, dtype=bool)
        self.state = np.full(shape, self._invalid_code, dtype=np.int8)
        self.dgroup = np.full(shape, -1, dtype=np.int16)
        self.reuse = np.zeros(shape, dtype=np.int64)
        # Snapshot columns (round-trip only).
        self.lru = np.zeros(shape, dtype=np.int64)
        self.dirty = np.zeros(shape, dtype=bool)
        self.fill_class = np.full(shape, -1, dtype=np.int8)
        self.fwd_frame = np.full(shape, -1, dtype=np.int32)
        self.busy = np.zeros(shape, dtype=bool)
        self.remote_reads = np.zeros(shape, dtype=np.int64)
        self.clock = np.zeros(num_eslots, dtype=np.int64)
        # Data side: one frame cube and one padded free-list cube per
        # lane.  The free list's *order* is model state (allocation pops
        # from the end), so it is stored as a column, not a bitmap.
        dshape = (num_lanes, num_dgroups, frames_per_dgroup)
        self.frame_valid = np.zeros(dshape, dtype=bool)
        self.frame_address = np.zeros(dshape, dtype=np.int64)
        self.frame_dirty = np.zeros(dshape, dtype=bool)
        self.rev_core = np.full(dshape, -1, dtype=np.int16)
        self.rev_set = np.full(dshape, -1, dtype=np.int32)
        self.rev_way = np.full(dshape, -1, dtype=np.int16)
        self.free_list = np.full(dshape, -1, dtype=np.int32)
        self.free_len = np.zeros((num_lanes, num_dgroups), dtype=np.int32)

    def set_and_tag(self, address: int) -> "tuple[int, int]":
        return (
            (address >> self.offset_bits) & self.index_mask,
            address >> self.tag_shift,
        )

    def _load_tag_bank(self, eslot: int, tag_array) -> None:
        """Mirror one core's tag array into the ``eslot`` bank."""
        from repro.core.tag_array import FILL_CLASS_CODES, STATE_CODES

        for set_index, way, entry in tag_array.array.entries():
            where = (eslot, set_index, way)
            valid = entry.state is not _INVALID
            self.tags[where] = entry.tag
            self.valid[where] = valid
            self.state[where] = STATE_CODES[entry.state]
            self.reuse[where] = entry.reuse
            self.lru[where] = entry.lru
            self.dirty[where] = entry.dirty
            self.fill_class[where] = (
                FILL_CLASS_CODES[entry.fill_class]
                if entry.fill_class is not None else -1
            )
            fwd = entry.fwd
            if fwd is not None:
                self.dgroup[where] = fwd.dgroup
                self.fwd_frame[where] = fwd.frame
            else:
                self.dgroup[where] = -1
                self.fwd_frame[where] = -1
            self.busy[where] = entry.busy
            self.remote_reads[where] = entry.remote_reads
        self.clock[eslot] = tag_array.array._clock

    def refresh_address(self, lane: int, design, address: int) -> None:
        """Re-read every core's set row covering ``address``."""
        self.refresh_sets(
            lane, design, ((address >> self.offset_bits) & self.index_mask,)
        )

    def invalidate_sets(self, lane: int, set_indices) -> None:
        """Conservatively mark the given sets' rows unknown (all banks).

        An invalid mirror row classifies as an L2 miss, which the
        engine routes to its bit-correct scalar path — so this is a
        sound (and much cheaper) alternative to :meth:`refresh_sets`
        after a scalar residue dirties the rows.  A later
        :meth:`refresh_sets` of the same sets restores their
        classification power.
        """
        base = lane * self.num_cores
        idx = np.fromiter(set_indices, dtype=np.int64)
        self.valid[base : base + self.num_cores, idx] = False

    def refresh_sets(self, lane: int, design, set_indices) -> None:
        """Re-read every core's rows for the given (deduped) set indices.

        The scalar fallback path may mutate any sharer's tag entry for
        a touched address (and any same-set victim's), so the re-read
        covers the full ``[banks, ways]`` rows of the touched sets.
        Only the classification columns are refreshed — the engine's
        contract — because the designs stay authoritative for the
        rest.  All rows of one refresh are written in five fancy-index
        assignments (one per column) rather than per-entry scalar
        stores: residue runs are short and frequent, so this path's
        fixed cost is what bounds the batch engine on warm grids.
        """
        from repro.core.tag_array import STATE_CODES

        base = lane * self.num_cores
        rows = []
        for core in range(self.num_cores):
            sets = design.tags[core].array._sets
            eslot = base + core
            for set_index in set_indices:
                rows.append((eslot, set_index, sets[set_index]))
        es_arr = np.array([r[0] for r in rows], dtype=np.int64)
        set_arr = np.array([r[1] for r in rows], dtype=np.int64)
        self.tags[es_arr, set_arr] = np.array(
            [[e.tag for e in r[2]] for r in rows], dtype=np.int64
        )
        self.valid[es_arr, set_arr] = np.array(
            [[e.state is not _INVALID for e in r[2]] for r in rows], dtype=bool
        )
        self.state[es_arr, set_arr] = np.array(
            [[STATE_CODES[e.state] for e in r[2]] for r in rows], dtype=np.int8
        )
        self.dgroup[es_arr, set_arr] = np.array(
            [[-1 if e.fwd is None else e.fwd.dgroup for e in r[2]] for r in rows],
            dtype=np.int16,
        )
        self.reuse[es_arr, set_arr] = np.array(
            [[e.reuse for e in r[2]] for r in rows], dtype=np.int64
        )

    def refresh_lane(self, lane: int, design) -> None:
        """Full re-read of one lane's classification columns."""
        from repro.core.tag_array import STATE_CODES

        base = lane * self.num_cores
        for core in range(self.num_cores):
            eslot = base + core
            self.valid[eslot] = False
            self.state[eslot] = self._invalid_code
            self.dgroup[eslot] = -1
            for set_index, way, entry in design.tags[core].array.valid_entries():
                where = (eslot, set_index, way)
                self.tags[where] = entry.tag
                self.valid[where] = True
                self.state[where] = STATE_CODES[entry.state]
                fwd = entry.fwd
                self.dgroup[where] = -1 if fwd is None else fwd.dgroup
                self.reuse[where] = entry.reuse

    @classmethod
    def from_designs(cls, designs: "Sequence") -> "L2Pool":
        """Build a pool mirroring ``designs`` (one lane each), losslessly."""
        if not designs:
            raise ValueError("from_designs needs at least one design")
        first = designs[0]
        geometry = first.params.tag_geometry
        pool = cls(
            len(designs),
            first.num_cores,
            geometry,
            first.params.num_dgroups,
            first.data.dgroups[0].num_frames if first.data.dgroups else 0,
        )
        for lane, design in enumerate(designs):
            if design.params.tag_geometry != geometry:
                raise ValueError("all designs in a pool must share one tag geometry")
            for core in range(pool.num_cores):
                pool._load_tag_bank(lane * pool.num_cores + core, design.tags[core])
            for dgroup in design.data.dgroups:
                g = dgroup.index
                for index, frame in enumerate(dgroup.frames):
                    where = (lane, g, index)
                    pool.frame_valid[where] = frame.valid
                    pool.frame_address[where] = frame.address
                    pool.frame_dirty[where] = frame.dirty
                    rev = frame.rev
                    if rev is not None:
                        pool.rev_core[where] = rev.core
                        pool.rev_set[where] = rev.set_index
                        pool.rev_way[where] = rev.way
                free = dgroup._free
                pool.free_len[lane, g] = len(free)
                if free:
                    pool.free_list[lane, g, : len(free)] = free
        return pool

    def write_back(self, designs: "Sequence") -> None:
        """Write the pool's state into scalar ``designs`` (inverse of
        :meth:`from_designs`)."""
        from repro.core.pointers import FramePtr, TagPtr
        from repro.core.tag_array import FILL_CLASSES_BY_CODE, STATES_BY_CODE

        if len(designs) != self.num_lanes:
            raise ValueError(
                f"pool has {self.num_lanes} lanes, got {len(designs)} designs"
            )
        for lane, design in enumerate(designs):
            for core in range(self.num_cores):
                eslot = lane * self.num_cores + core
                array = design.tags[core].array
                for set_index, way, entry in array.entries():
                    where = (eslot, set_index, way)
                    entry.tag = int(self.tags[where])
                    entry.state = STATES_BY_CODE[int(self.state[where])]
                    entry.lru = int(self.lru[where])
                    entry.dirty = bool(self.dirty[where])
                    fill_code = int(self.fill_class[where])
                    entry.fill_class = (
                        FILL_CLASSES_BY_CODE[fill_code] if fill_code >= 0 else None
                    )
                    entry.reuse = int(self.reuse[where])
                    dgroup = int(self.dgroup[where])
                    entry.fwd = (
                        FramePtr(dgroup, int(self.fwd_frame[where]))
                        if dgroup >= 0 else None
                    )
                    entry.busy = bool(self.busy[where])
                    entry.remote_reads = int(self.remote_reads[where])
                array._clock = int(self.clock[eslot])
            for dgroup in design.data.dgroups:
                g = dgroup.index
                for index, frame in enumerate(dgroup.frames):
                    where = (lane, g, index)
                    if self.frame_valid[where]:
                        frame.valid = True
                        frame.address = int(self.frame_address[where])
                        frame.dirty = bool(self.frame_dirty[where])
                        core = int(self.rev_core[where])
                        frame.rev = (
                            TagPtr(
                                core,
                                int(self.rev_set[where]),
                                int(self.rev_way[where]),
                            )
                            if core >= 0 else None
                        )
                    else:
                        frame.clear()
                dgroup._free = [
                    int(index)
                    for index in self.free_list[lane, g, : self.free_len[lane, g]]
                ]


__all__ = ["COUNTER_FIELDS", "L1Pool", "L2Pool"]
