"""Structure-of-arrays L1 pool: many cores' L1s as stacked numpy state.

One :class:`L1Pool` holds the L1 caches of every core of every cell in
a batch as parallel arrays indexed ``[slot, set, way]``, where a *slot*
is one (cell, core) pair.  The pool exposes two faces:

* **vectorized primitives** — :meth:`probe` (masked tag probe) and
  :meth:`classify` (hit/miss + store-permission classification) read
  state for many accesses in one array op; :meth:`commit_hits` applies
  the recency/dirty/counter updates of a *run of guaranteed pure L1
  hits* in event order (the ring-buffer recency update is an
  occurrence-ranked LRU stamp assignment);
* **scalar ops** — :meth:`load` / :meth:`store` / :meth:`fill` /
  :meth:`revoke_writable` / :meth:`invalidate` /
  :meth:`invalidate_l2_block` mirror :class:`repro.caches.l1.L1Cache`
  bit for bit, so the engine's scalar fallback path (events that reach
  the L2) mutates exactly the state the scalar engine would.  They run
  once per L2-reaching event, so they index flat array views with
  python ints instead of paying tuple fancy-indexing per touch.

The pool round-trips losslessly with real :class:`L1Cache` objects via
:meth:`from_caches` / :meth:`write_back`: every field the L1 ever
mutates (tag, validity, writable, dirty, LRU stamp, LRU clock, stats)
is represented.  L1 entries never carry ``reuse``/``fill_class``
payload (only L2 designs use those), which is what makes the six-array
representation complete.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.caches.l1 import L1Cache, L1Stats
from repro.coherence.states import CoherenceState
from repro.common.params import L1Params
from repro.common.types import block_address

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

#: L1Stats fields mirrored as per-slot counter arrays, in field order.
COUNTER_FIELDS = (
    "load_hits",
    "load_misses",
    "store_hits",
    "store_upgrades",
    "store_misses",
    "writebacks",
    "invalidations",
)

_INVALID = CoherenceState.INVALID
_SHARED = CoherenceState.SHARED


class L1Pool:
    """The L1s of ``num_slots`` (cell, core) pairs as stacked arrays."""

    def __init__(self, num_slots: int, params: "L1Params | None" = None) -> None:
        self.params = params or L1Params()
        geo = self.params.geometry
        self.num_slots = num_slots
        self.num_sets = geo.num_sets
        self.ways = geo.associativity
        self.offset_bits = geo.offset_bits
        self.index_mask = geo.num_sets - 1
        self.tag_shift = geo.offset_bits + geo.index_bits
        self.block_size = geo.block_size
        shape = (num_slots, self.num_sets, self.ways)
        self.tags = np.zeros(shape, dtype=np.int64)
        self.valid = np.zeros(shape, dtype=bool)
        self.writable = np.zeros(shape, dtype=bool)
        self.dirty = np.zeros(shape, dtype=bool)
        self.lru = np.zeros(shape, dtype=np.int64)
        #: Per-slot monotonic LRU clock (``SetAssociativeArray._clock``).
        self.clock = np.zeros(num_slots, dtype=np.int64)
        # Per-slot L1Stats counters; attributes for the scalar fast
        # path, with ``counters`` mapping field names to the same
        # arrays for bulk reset / re-sync.
        self.load_hits = np.zeros(num_slots, dtype=np.int64)
        self.load_misses = np.zeros(num_slots, dtype=np.int64)
        self.store_hits = np.zeros(num_slots, dtype=np.int64)
        self.store_upgrades = np.zeros(num_slots, dtype=np.int64)
        self.store_misses = np.zeros(num_slots, dtype=np.int64)
        self.writebacks = np.zeros(num_slots, dtype=np.int64)
        self.invalidations = np.zeros(num_slots, dtype=np.int64)
        self.counters = {name: getattr(self, name) for name in COUNTER_FIELDS}
        # Flat views (C-contiguous reshape) for the scalar ops: element
        # ``(slot, set, way)`` lives at ``(slot·num_sets + set)·ways + way``.
        self.tags_flat = self.tags.reshape(-1)
        self.valid_flat = self.valid.reshape(-1)
        self.writable_flat = self.writable.reshape(-1)
        self.dirty_flat = self.dirty.reshape(-1)
        self.lru_flat = self.lru.reshape(-1)
        self.index_bits = geo.index_bits
        # Per-slot map of resident block key (address >> offset_bits,
        # i.e. tag·num_sets + set) → flat element index.  Presence only
        # changes on the scalar path — a pure hit never installs or
        # evicts a line — so only the scalar ops maintain these maps,
        # and the vectorized primitives read the arrays directly.
        self.block_maps: "list[dict[int, int]]" = [
            {} for _ in range(num_slots)
        ]

    # ------------------------------------------------------------------
    # Vectorized primitives (the batch hot path)

    def probe(
        self, slots: "NDArray", sets: "NDArray", tags: "NDArray"
    ) -> "tuple[NDArray, NDArray]":
        """Masked tag probe for many accesses at once; no state change.

        Returns ``(hit, way)`` arrays: ``hit[i]`` is True when slot
        ``slots[i]`` holds ``tags[i]`` valid in set ``sets[i]``, and
        ``way[i]`` is its way index (0 when missing).
        """
        lines = self.valid[slots, sets] & (self.tags[slots, sets] == tags[:, None])
        hit = lines.any(axis=1)
        way = lines.argmax(axis=1)
        return hit, way

    def classify(
        self,
        slots: "NDArray",
        sets: "NDArray",
        tags: "NDArray",
        is_write: "NDArray",
    ) -> "tuple[NDArray, NDArray, NDArray]":
        """Hit/miss + permission classification for many accesses.

        Returns ``(pure, hit, way)``.  ``pure[i]`` is True when the
        access completes inside the L1 without touching the L2: a load
        hit, or a store hit on a writable line.  Everything else (miss,
        or store hit needing an upgrade) must take the scalar fallback.
        """
        hit, way = self.probe(slots, sets, tags)
        pure = hit & (~is_write | self.writable[slots, sets, way])
        return pure, hit, way

    def commit_hits(
        self,
        slots: "NDArray",
        sets: "NDArray",
        ways: "NDArray",
        is_write: "NDArray",
    ) -> None:
        """Apply a run of *pure L1 hits* (already classified) in order.

        Mirrors what ``L1Cache.load``/``store`` do on a hit: bump the
        slot's LRU clock once per access, stamp the touched line with
        the new clock value, count the hit, and set the dirty bit on
        stores.  Events must be passed in execution order; several
        events may touch the same slot (the per-slot stamp sequence is
        the occurrence rank, and a line touched twice keeps the *last*
        stamp, exactly as the scalar clock would leave it).
        """
        n = slots.shape[0]
        if not n:
            return
        # Occurrence rank of each event within its slot: stable-sort by
        # slot, then rank within each equal-slot run.  new_lru is the
        # scalar clock value the event would have observed.
        order = np.argsort(slots, kind="stable")
        sorted_slots = slots[order]
        boundaries = np.empty(n, dtype=bool)
        boundaries[0] = True
        np.not_equal(sorted_slots[1:], sorted_slots[:-1], out=boundaries[1:])
        index = np.arange(n)
        run_starts = index[boundaries]
        rank = index - np.repeat(run_starts, np.diff(np.append(run_starts, n)))
        new_lru = self.clock[sorted_slots] + rank + 1
        # Fancy assignment is last-write-wins in index order; ``order``
        # preserves event order within a slot, so a line touched twice
        # ends with its latest stamp.
        self.lru[sorted_slots, sets[order], ways[order]] = new_lru
        counts = np.bincount(slots, minlength=self.num_slots)
        self.clock += counts
        if is_write.any():
            ws, wt, ww = slots[is_write], sets[is_write], ways[is_write]
            self.dirty[ws, wt, ww] = True
            store_counts = np.bincount(ws, minlength=self.num_slots)
            self.store_hits += store_counts
            self.load_hits += counts - store_counts
        else:
            self.load_hits += counts

    # ------------------------------------------------------------------
    # Scalar ops (the fallback path) — bit-exact mirrors of L1Cache

    def set_and_tag(self, address: int) -> "tuple[int, int]":
        return (
            (address >> self.offset_bits) & self.index_mask,
            address >> self.tag_shift,
        )

    def _find(self, slot: int, set_index: int, tag: int) -> int:
        """Flat index of the way holding ``tag`` valid, or -1."""
        return self.block_maps[slot].get((tag << self.index_bits) | set_index, -1)

    def load(self, slot: int, address: int) -> bool:
        """Mirror of ``L1Cache.load``: True on a hit (LRU touched)."""
        j = self.block_maps[slot].get(address >> self.offset_bits, -1)
        if j >= 0:
            clock = self.clock[slot] + 1
            self.clock[slot] = clock
            self.lru_flat[j] = clock
            self.load_hits[slot] += 1
            return True
        self.load_misses[slot] += 1
        return False

    def store(self, slot: int, address: int) -> bool:
        """Mirror of ``L1Cache.store``: True when it completes locally.

        A store hit touches the LRU *before* the permission check, as
        the scalar L1 does; a hit without write permission counts a
        store upgrade and returns False.
        """
        j = self.block_maps[slot].get(address >> self.offset_bits, -1)
        if j >= 0:
            clock = self.clock[slot] + 1
            self.clock[slot] = clock
            self.lru_flat[j] = clock
            if not self.writable_flat[j]:
                self.store_upgrades[slot] += 1
                return False
            self.store_hits[slot] += 1
            self.dirty_flat[j] = True
            return True
        self.store_misses[slot] += 1
        return False

    def fill(
        self, slot: int, address: int, writable: bool = False, dirty: bool = False
    ) -> None:
        """Mirror of ``L1Cache.fill`` (victim: first invalid way, else LRU)."""
        block_map = self.block_maps[slot]
        key = address >> self.offset_bits
        j = block_map.get(key, -1)
        if j < 0:
            set_index = key & self.index_mask
            base = (slot * self.num_sets + set_index) * self.ways
            valid = self.valid_flat
            j = -1
            for candidate in range(base, base + self.ways):
                if not valid[candidate]:
                    j = candidate
                    break
            if j < 0:
                lru = self.lru_flat
                j = base
                best = lru[base]
                for candidate in range(base + 1, base + self.ways):
                    if lru[candidate] < best:
                        best = lru[candidate]
                        j = candidate
            if valid[j]:
                if self.dirty_flat[j]:
                    self.writebacks[slot] += 1
                del block_map[(int(self.tags_flat[j]) << self.index_bits) | set_index]
            self.tags_flat[j] = key >> self.index_bits
            valid[j] = True
            block_map[key] = j
            clock = self.clock[slot] + 1
            self.clock[slot] = clock
            self.lru_flat[j] = clock
        self.writable_flat[j] = writable
        self.dirty_flat[j] = dirty

    def revoke_writable(self, slot: int, address: int) -> None:
        """Mirror of ``L1Cache.revoke_writable`` (no LRU touch)."""
        j = self.block_maps[slot].get(address >> self.offset_bits, -1)
        if j >= 0:
            self.writable_flat[j] = False

    def invalidate(self, slot: int, address: int) -> bool:
        """Mirror of ``L1Cache.invalidate``: tag and LRU stamp are kept."""
        key = address >> self.offset_bits
        j = self.block_maps[slot].get(key, -1)
        if j < 0:
            return False
        if self.dirty_flat[j]:
            self.writebacks[slot] += 1
        self.valid_flat[j] = False
        self.dirty_flat[j] = False
        self.writable_flat[j] = False
        del self.block_maps[slot][key]
        self.invalidations[slot] += 1
        return True

    def invalidate_l2_block(
        self, slot: int, l2_block_address: int, l2_block_size: int
    ) -> int:
        """Mirror of ``L1Cache.invalidate_l2_block`` (inclusion sweep)."""
        l1_size = self.block_size
        span = max(l2_block_size, l1_size)
        base = block_address(l2_block_address, span)
        count = 0
        for offset in range(0, span, l1_size):
            if self.invalidate(slot, base + offset):
                count += 1
        return count

    # ------------------------------------------------------------------
    # Re-sync with scalar L1 objects

    def reset_stats(self, slots: "slice | Sequence[int]") -> None:
        """Zero the given slots' counters (the warm-up boundary)."""
        for array in self.counters.values():
            array[slots] = 0

    def slot_stats(self, slot: int) -> L1Stats:
        """The given slot's counters as a scalar :class:`L1Stats`."""
        return L1Stats(
            **{name: int(self.counters[name][slot]) for name in COUNTER_FIELDS}
        )

    @classmethod
    def from_caches(cls, l1s: "Sequence[L1Cache]") -> "L1Pool":
        """Build a pool mirroring ``l1s`` (one slot per cache), losslessly."""
        if not l1s:
            raise ValueError("from_caches needs at least one L1Cache")
        params = l1s[0].params
        pool = cls(len(l1s), params)
        for slot, l1 in enumerate(l1s):
            if l1.params.geometry != params.geometry:
                raise ValueError("all L1s in a pool must share one geometry")
            block_map = pool.block_maps[slot]
            for set_index, way, entry in l1.array.entries():
                valid = entry.state is not _INVALID
                pool.tags[slot, set_index, way] = entry.tag
                pool.valid[slot, set_index, way] = valid
                pool.writable[slot, set_index, way] = entry.writable
                pool.dirty[slot, set_index, way] = entry.dirty
                pool.lru[slot, set_index, way] = entry.lru
                if valid:
                    block_map[(entry.tag << pool.index_bits) | set_index] = (
                        slot * pool.num_sets + set_index
                    ) * pool.ways + way
            pool.clock[slot] = l1.array._clock
            for name in COUNTER_FIELDS:
                pool.counters[name][slot] = getattr(l1.stats, name)
        return pool

    def write_back(self, l1s: "Sequence[L1Cache]") -> None:
        """Write the pool's state into scalar ``l1s`` (inverse of
        :meth:`from_caches`)."""
        if len(l1s) != self.num_slots:
            raise ValueError(
                f"pool has {self.num_slots} slots, got {len(l1s)} caches"
            )
        for slot, l1 in enumerate(l1s):
            for set_index, way, entry in l1.array.entries():
                entry.tag = int(self.tags[slot, set_index, way])
                entry.state = (
                    _SHARED if self.valid[slot, set_index, way] else _INVALID
                )
                entry.writable = bool(self.writable[slot, set_index, way])
                entry.dirty = bool(self.dirty[slot, set_index, way])
                entry.lru = int(self.lru[slot, set_index, way])
                entry.reuse = 0
                entry.fill_class = None
            l1.array._clock = int(self.clock[slot])
            l1.stats = self.slot_stats(slot)


__all__ = ["COUNTER_FIELDS", "L1Pool"]
