"""The batch engine: run many simulation cells per numpy operation.

The engine replaces the scalar per-event loop of
:class:`repro.cpu.system.CmpSystem` with a *speculative window* over a
materialized event tape:

1. **Materialize** one workload's event stream into an
   :class:`EventTape` (columnar numpy arrays).  Every design lane in a
   batch group shares the same tape — across designs *and* bus models —
   so generation cost, more than half of a scalar run, is paid once per
   workload instead of once per cell.
2. **Probe a window** of upcoming events for every lane against the
   SoA L1 state (:class:`~repro.kernel.soa.L1Pool`) in one masked array
   op, and classify each as a *pure L1 hit* (load hit, or store hit on
   a writable line) or a *fallback* (anything that must reach the L2).
3. **Commit** the run of pure hits before each lane's first fallback as
   vectorized recency/counter/timing updates.  This is sound because a
   pure hit never changes line presence or write permission — only LRU
   stamps, dirty bits, and counters — so the window's classification
   stays valid for every event before the first fallback.
4. **Fall back to the scalar path** for the one blocking event per
   lane: charge its instruction context, drain the lane's event queue
   (the eventq backend), call ``design.access`` with the lane's virtual
   clock, and apply the L1 fill / peer-invalidate / peer-downgrade
   protocol on the SoA buffers — exactly the sequence ``CmpSystem``
   runs, against state the scalar engine would agree with bit for bit.

Statistics are assembled per lane exactly as ``CmpSystem.stats`` does,
so ``SimulationStats.fingerprint()`` is identical to the scalar
engine's for the same (workload, design, seed, bus model) cell — the
differential suite in ``tests/test_kernel_differential.py`` pins this.

Scalar-fallback contract: the batch engine supports fault-free runs
only (no tracer, no metrics, no fault injection).  Under the eventq
backend the queue is drained at each fallback event; in fault-free
operation every transaction drains inside its issuing call, so the
queue is empty between events in both engines and the drain points are
equivalent to the scalar engine's per-event drain.
"""

from __future__ import annotations

import os
from array import array
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.caches.design import L2Design
from repro.common.params import L1Params, SystemParams
from repro.common.stats import CoreTiming, SimulationStats
from repro.common.types import Access, AccessType, SharingClass
from repro.kernel.soa import L1Pool

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

    from repro.cpu.system import TimedAccess
    from repro.experiments.runner import ExperimentConfig

#: Recognized simulation engines (``--engine`` / REPRO_ENGINE).
ENGINES = ("scalar", "batch")

#: Environment variable naming the default engine.
ENGINE_ENV = "REPRO_ENGINE"

#: Speculative window length (events probed per lane per pass).  Sized
#: a little above the mean pure-hit run length so most passes commit a
#: full run and meet its fallback in the same probe.
WINDOW = 24

_SHARING = (
    SharingClass.PRIVATE,
    SharingClass.READ_ONLY_SHARED,
    SharingClass.READ_WRITE_SHARED,
)
_SHARING_CODE = {sharing: code for code, sharing in enumerate(_SHARING)}


def resolve_engine(engine: "Optional[str]" = None) -> str:
    """Pick the simulation engine: explicit arg, env, or scalar."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "scalar"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    return engine


class EventTape:
    """One workload's event stream, materialized as columnar arrays.

    Fields are exactly what the engine needs per event: the issuing
    core, the address (plus its precomputed L1 set index and tag), the
    access type and sharing class, and the per-event timing weights —
    ``instr_weight`` = gap + colocated + 1 instructions and
    ``cycle_weight`` = gap + colocated·lat + lat cycles, the totals a
    stall-free event adds to its core (fallbacks recover the pre-access
    portion from the raw gap/colocated columns).

    The builder ``array.array`` columns are kept (``*_raw``) alongside
    the numpy views: the scalar fallback path reads single events, and
    ``array.array`` indexing hands back plain python ints without the
    numpy scalar-extraction overhead.
    """

    __slots__ = (
        "n",
        "core",
        "address",
        "set_index",
        "tag",
        "is_write",
        "instr_weight",
        "cycle_weight",
        "core_raw",
        "address_raw",
        "write_raw",
        "sharing_raw",
        "gap_raw",
        "colocated_raw",
    )

    def __init__(self) -> None:
        self.n = 0

    @classmethod
    def from_events(
        cls, events: "Iterable[TimedAccess]", params: "L1Params | None" = None
    ) -> "EventTape":
        """Consume ``events`` (a workload generator) into a tape."""
        params = params or L1Params()
        write = AccessType.WRITE
        code = _SHARING_CODE
        cores = array("h")
        addresses = array("q")
        writes = array("b")
        gaps = array("i")
        colocateds = array("i")
        sharings = array("b")
        for event in events:
            access = event.access
            cores.append(access.core)
            addresses.append(access.address)
            writes.append(1 if access.type is write else 0)
            gaps.append(event.gap)
            colocateds.append(event.colocated)
            sharings.append(code[access.sharing])
        tape = cls()
        tape.n = len(cores)
        tape.core_raw = cores
        tape.address_raw = addresses
        tape.write_raw = writes
        tape.sharing_raw = sharings
        tape.gap_raw = gaps
        tape.colocated_raw = colocateds
        if tape.n:
            # frombuffer shares memory with the array.array columns.
            tape.core = np.frombuffer(cores, dtype=np.int16)
            tape.address = np.frombuffer(addresses, dtype=np.int64)
            tape.is_write = np.frombuffer(writes, dtype=np.int8).view(bool)
            gap = np.frombuffer(gaps, dtype=np.int32)
            colocated = np.frombuffer(colocateds, dtype=np.int32)
        else:
            tape.core = np.zeros(0, dtype=np.int16)
            tape.address = np.zeros(0, dtype=np.int64)
            tape.is_write = np.zeros(0, dtype=bool)
            gap = np.zeros(0, dtype=np.int32)
            colocated = np.zeros(0, dtype=np.int32)
        geo = params.geometry
        tape.set_index = (
            (tape.address >> geo.offset_bits) & (geo.num_sets - 1)
        ).astype(np.int32)
        tape.tag = tape.address >> (geo.offset_bits + geo.index_bits)
        lat = params.latency
        tape.instr_weight = gap + colocated + 1
        tape.cycle_weight = gap + colocated * lat + lat
        return tape


class _Lane:
    """One design's seat in a batch group."""

    __slots__ = ("design", "queue", "slot_base")

    def __init__(self, design: L2Design, slot_base: int) -> None:
        self.design = design
        self.queue = getattr(design, "queue", None)
        self.slot_base = slot_base


class BatchKernel:
    """Steps a group of design lanes over one shared event tape."""

    def __init__(
        self, designs: "Sequence[L2Design]", params: "Optional[SystemParams]" = None
    ) -> None:
        self.params = params or SystemParams()
        self.num_cores = self.params.num_cores
        self.l1_latency = self.params.l1.latency
        self._blocking_stores = self.params.blocking_stores
        num_slots = len(designs) * self.num_cores
        self.pool = L1Pool(num_slots, self.params.l1)
        self.instructions = np.zeros(num_slots, dtype=np.int64)
        self.cycles = np.zeros(num_slots, dtype=np.int64)
        self.instructions_at_reset = np.zeros(num_slots, dtype=np.int64)
        self.cycles_at_reset = np.zeros(num_slots, dtype=np.int64)
        self.lanes = []
        for index, design in enumerate(designs):
            base = index * self.num_cores
            design.set_l1_invalidate_hook(self._make_invalidate_hook(base, design))
            self.lanes.append(_Lane(design, base))
        self._peers = tuple(
            tuple(c for c in range(self.num_cores) if c != i)
            for i in range(self.num_cores)
        )

    def _make_invalidate_hook(self, slot_base: int, design: L2Design):
        """The design's L1-inclusion hook, redirected at the pool."""
        pool = self.pool

        def hook(core: int, l2_block_address: int) -> None:
            pool.invalidate_l2_block(
                slot_base + core, l2_block_address, design.block_size
            )

        return hook

    def run(self, tape: EventTape, warmup_events: int = 0) -> None:
        """Warm up, reset statistics, measure — over the whole batch."""
        split = min(warmup_events, tape.n)
        if warmup_events:
            self._advance(tape, 0, split)
            self.reset_stats()
        self._advance(tape, split, tape.n)

    def reset_stats(self) -> None:
        """The warm-up boundary: designs reset, timing baselines move."""
        for lane in self.lanes:
            lane.design.reset_stats()
        self.instructions_at_reset[:] = self.instructions
        self.cycles_at_reset[:] = self.cycles
        self.pool.reset_stats(slice(None))

    def _advance(self, tape: EventTape, start: int, end: int) -> None:
        """The speculative-window loop from event ``start`` to ``end``."""
        if start >= end:
            return
        pool = self.pool
        num_slots = pool.num_slots
        n_lanes = len(self.lanes)
        pos = np.full(n_lanes, start, dtype=np.int64)
        slot_base = np.arange(n_lanes, dtype=np.int64) * self.num_cores
        core_a = tape.core
        set_a = tape.set_index
        tag_a = tape.tag
        write_a = tape.is_write
        instr_w = tape.instr_weight
        cycle_w = tape.cycle_weight
        valid = pool.valid
        tags = pool.tags
        writable = pool.writable
        instructions = self.instructions
        cycles = self.cycles
        window = WINDOW
        # Templates for the full-window fast path: while every lane has
        # at least a window of events left, the ragged (rep, within,
        # starts) structure is constant and needn't be rebuilt per pass.
        lane_index_a = np.arange(n_lanes, dtype=np.int64)
        full_rep = np.repeat(lane_index_a, window)
        full_within = np.tile(np.arange(window, dtype=np.int64), n_lanes)
        full_starts = lane_index_a * window
        full_slot_base = slot_base[full_rep]
        while True:
            remaining = end - pos
            if remaining.min() >= window:
                # Fast path: all lanes probe a full window.
                rep = full_rep
                within = full_within
                ev = np.repeat(pos, window) + full_within
                slot = full_slot_base + core_a[ev]
                full = True
            else:
                active = np.nonzero(remaining > 0)[0]
                if not active.size:
                    return
                counts = np.minimum(window, remaining[active])
                starts = np.cumsum(counts) - counts
                rep = np.repeat(np.arange(active.size), counts)
                within = np.arange(rep.size) - starts[rep]
                ev = pos[active][rep] + within
                slot = slot_base[active][rep] + core_a[ev]
                full = False
            sets = set_a[ev]
            lines = valid[slot, sets] & (tags[slot, sets] == tag_a[ev][:, None])
            hit = lines.any(axis=1)
            way = lines.argmax(axis=1)
            is_write = write_a[ev]
            pure = hit & (~is_write | writable[slot, sets, way])
            # First non-pure event per lane bounds its commit run.
            bad = np.where(pure, window, within)
            if full:
                n_commit = np.minimum.reduceat(bad, full_starts)
                commit = full_within < n_commit[full_rep]
            else:
                n_commit = np.minimum(np.minimum.reduceat(bad, starts), counts)
                commit = within < n_commit[rep]
            if commit.all():
                cs, cset, cway, cwrite, cev = slot, sets, way, is_write, ev
            else:
                cs = slot[commit]
                cset = sets[commit]
                cway = way[commit]
                cwrite = is_write[commit]
                cev = ev[commit]
            if cs.size:
                pool.commit_hits(cs, cset, cway, cwrite)
                # Sums of small per-event weights: exact in the float64
                # accumulator bincount uses internally.
                instructions += np.bincount(
                    cs, weights=instr_w[cev], minlength=num_slots
                ).astype(np.int64)
                cycles += np.bincount(
                    cs, weights=cycle_w[cev], minlength=num_slots
                ).astype(np.int64)
            if full:
                pos += n_commit
                fallback_lanes = np.nonzero(n_commit < window)[0]
            else:
                pos[active] += n_commit
                fallback_lanes = active[n_commit < counts]
            for lane_index in fallback_lanes.tolist():
                self._fallback(tape, lane_index, int(pos[lane_index]))
                pos[lane_index] += 1

    def _fallback(self, tape: EventTape, lane_index: int, i: int) -> None:
        """Run one L2-reaching event exactly as ``CmpSystem`` would."""
        lane = self.lanes[lane_index]
        pool = self.pool
        base = lane.slot_base
        cycles = self.cycles
        instructions = self.instructions
        lat = self.l1_latency
        queue = lane.queue
        if queue is not None and queue.pending:
            queue.run_until(int(cycles[base : base + self.num_cores].max()))
        core = tape.core_raw[i]
        slot = base + core
        gap = tape.gap_raw[i]
        colocated = tape.colocated_raw[i]
        # The core's clock after the pre-access instruction context;
        # timing is written back in one coalesced update at the end.
        now = int(cycles[slot]) + gap + colocated * lat
        address = tape.address_raw[i]
        if tape.write_raw[i]:
            if pool.store(slot, address):
                stall = 0
            else:
                access = Access(
                    core, address, AccessType.WRITE, _SHARING[tape.sharing_raw[i]]
                )
                result = lane.design.access(access, now=now)
                pool.fill(slot, address, writable=not result.write_through, dirty=True)
                for other in self._peers[core]:
                    pool.invalidate(base + other, address)
                stall = result.latency if self._blocking_stores else 0
        elif pool.load(slot, address):
            stall = 0
        else:
            access = Access(
                core, address, AccessType.READ, _SHARING[tape.sharing_raw[i]]
            )
            result = lane.design.access(access, now=now)
            pool.fill(slot, address, writable=False)
            for other in self._peers[core]:
                pool.revoke_writable(base + other, address)
            stall = result.latency
        instructions[slot] += gap + colocated + 1
        cycles[slot] = now + lat + stall

    def lane_stats(self, index: int) -> SimulationStats:
        """Assemble one lane's stats exactly as ``CmpSystem.stats`` does."""
        lane = self.lanes[index]
        design = lane.design
        stats = SimulationStats(accesses=design.stats)
        base = lane.slot_base
        stats.per_core = [
            CoreTiming(
                int(self.instructions[base + c] - self.instructions_at_reset[base + c]),
                int(self.cycles[base + c] - self.cycles_at_reset[base + c]),
            )
            for c in range(self.num_cores)
        ]
        reuse = getattr(design, "reuse", None)
        if reuse is not None:
            stats.reuse = reuse
        dgroups = getattr(design, "dgroup_stats", None)
        if dgroups is not None:
            stats.dgroups = dgroups
        bus = getattr(design, "bus", None)
        if bus is not None:
            stats.bus = bus.stats
        bus_stats = getattr(design, "bus_stats", None)
        if bus_stats is not None:
            stats.bus = bus_stats
        return stats


#: Interconnect backends the batch kernel can model.  The mesh NoC's
#: split-phase directory transactions (and its scaled tile counts) are
#: scalar-engine territory; ``run_batch`` refuses them explicitly.
BATCH_BUS_MODELS = ("atomic", "eventq")


def _normalize_cell(cell) -> "tuple[str, str, bool, Optional[str]]":
    if hasattr(cell, "workload"):
        return (
            cell.workload,
            cell.design,
            bool(cell.multiprogrammed),
            getattr(cell, "bus_model", None),
        )
    parts = tuple(cell)
    if len(parts) == 3:
        workload, design, multiprogrammed = parts
        bus_model = None
    else:
        workload, design, multiprogrammed, bus_model = parts
    return (str(workload), str(design), bool(multiprogrammed), bus_model)


def run_batch(
    cells: "Iterable",
    config: "Optional[ExperimentConfig]" = None,
    bus_model: "Optional[str]" = None,
) -> "dict[tuple[str, str, bool, str], SimulationStats]":
    """Run a batch of cells through the SoA kernel.

    ``cells`` may be :class:`repro.experiments.parallel.Cell` objects
    (or anything with ``workload``/``design``/``multiprogrammed`` and
    optionally ``bus_model`` attributes) or plain ``(workload, design,
    multiprogrammed[, bus_model])`` tuples; a cell without a bus model
    takes the ``bus_model`` argument (itself defaulted from
    ``REPRO_BUS_MODEL``).  Cells sharing a workload are grouped into
    one kernel over one shared event tape — across designs *and* bus
    models, the batch engine's biggest lever — and the result maps each
    ``(workload, design, multiprogrammed, resolved_bus_model)`` tuple
    to stats bit-identical to a scalar run of the same cell.
    """
    from repro.experiments.runner import (
        ExperimentConfig,
        build_design,
        resolve_bus_model,
    )
    from repro.workloads.multiprogrammed import make_mix
    from repro.workloads.multithreaded import make_workload

    config = config or ExperimentConfig()
    default_bus = resolve_bus_model(bus_model)
    groups: "dict[tuple[str, bool], list[tuple[str, str]]]" = {}
    for cell in cells:
        workload, design, multiprogrammed, cell_bus = _normalize_cell(cell)
        if cell_bus is None:
            cell_bus = default_bus
        else:
            cell_bus = resolve_bus_model(cell_bus)
        if cell_bus == "mesh":
            raise ValueError(
                "the batch kernel supports the atomic and eventq bus "
                "models only; the mesh NoC's split-phase directory "
                "transactions need the scalar engine"
            )
        if getattr(cell, "num_cores", 0):
            raise ValueError(
                "the batch kernel models the paper's 4-core machine "
                "only; scaled cells need the scalar engine"
            )
        lanes = groups.setdefault((workload, multiprogrammed), [])
        if (design, cell_bus) not in lanes:
            lanes.append((design, cell_bus))
    results: "dict[tuple[str, str, bool, str], SimulationStats]" = {}
    params = SystemParams()
    total = config.warmup_per_core + config.measure_per_core
    for (workload_name, multiprogrammed), lane_keys in groups.items():
        maker = make_mix if multiprogrammed else make_workload
        workload = maker(workload_name, seed=config.seed)
        tape = EventTape.from_events(
            workload.events(accesses_per_core=total), params.l1
        )
        designs = [
            build_design(name, bus_model=bus) for name, bus in lane_keys
        ]
        kernel = BatchKernel(designs, params)
        kernel.run(tape, config.warmup_per_core * workload.num_cores)
        for index, (name, bus) in enumerate(lane_keys):
            results[(workload_name, name, multiprogrammed, bus)] = (
                kernel.lane_stats(index)
            )
    return results


__all__ = [
    "BATCH_BUS_MODELS",
    "ENGINE_ENV",
    "ENGINES",
    "WINDOW",
    "BatchKernel",
    "EventTape",
    "resolve_engine",
    "run_batch",
]
