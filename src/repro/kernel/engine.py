"""The batch engine: run many simulation cells per numpy operation.

The engine replaces the scalar per-event loop of
:class:`repro.cpu.system.CmpSystem` with a *speculative window* over a
materialized event tape:

1. **Materialize** one workload's event stream into an
   :class:`EventTape` (columnar numpy arrays).  Every design lane in a
   batch group shares the same tape — across designs *and* bus models —
   so generation cost, more than half of a scalar run, is paid once per
   workload instead of once per cell.
2. **Probe a window** of upcoming events for every lane against the
   SoA L1 state (:class:`~repro.kernel.soa.L1Pool`) and, for eligible
   lanes, the SoA L2 tag mirror (:class:`~repro.kernel.soa.L2Pool`),
   classifying each event into one of **four classes**:

   * **class 1 — pure L1 hit**: load hit, or store hit on a writable
     line; completes inside the L1.
   * **class 2 — private L2 hit, no coherence action**: a read that
     misses the L1 but hits the core's own tag array on a valid E/M
     line served from the core's closest d-group — no promotion under
     either policy, no bus op, no block movement.
   * **class 3 — L2 hit needing only local pointer/LRU updates**: a
     read hit on an S line that provably does not replicate (CR off,
     or served from the closest d-group, or still under the
     replicate-on-use threshold) or on a C line with migration
     disabled.  Side effects are the tag LRU touch, the reuse bump,
     the crossbar traffic count, and the d-group hit statistics —
     all representable as array/column updates.
   * **class 4 — true fallback**: everything else (L1 upgrades, L2
     misses, coherence transitions, replications/promotions/
     migrations, writes reaching the L2, eventq-occupied buses).

3. **Commit** classes 1–3 vectorized.  Pure hits take masked
   recency/counter updates; fast L2 hits additionally perform the L1
   fill, the peer writable-revoke, the design-side reuse/LRU touch,
   and the crossbar/d-group accounting.  All committed events in one
   window share a per-slot occurrence ranking so every LRU stamp is
   the exact scalar clock value.  A window's committable prefix is
   truncated at the first event whose (slot, L1 set) or (slot, L2
   set) was touched by an earlier fast-L2 commit in the same window —
   a fast-L2 fill changes L1 presence and line reuse counts, so later
   classifications in those sets could be stale.
4. **Batch the scalar residue.**  When a lane's prefix ends at a true
   class-4 event, the whole consecutive run of class-4 events is
   executed back-to-back on the scalar path (with per-lane timing
   hoisted into plain python ints for the run) instead of breaking
   the window for a single event — this is what makes cold grids,
   where almost every event reaches the L2, faster than scalar.
   After the run, the L2 mirror rows of every dirty-marked address
   are re-read from the design, so classification state is coherent
   again.

The scalar residue is *self-determining*: ``L1Pool``'s scalar ops plus
``design.access`` are bit-correct for any event, so classification is
purely advisory — a stale "committable" verdict is never committed
(truncation), and running extra events through the residue is always
safe.

Statistics are assembled per lane exactly as ``CmpSystem.stats`` does,
so ``SimulationStats.fingerprint()`` is identical to the scalar
engine's for the same (workload, design, seed, bus model) cell — the
differential suite in ``tests/test_kernel_differential.py`` pins this.

Scalar-fallback contract: the batch engine supports fault-free runs
only (no tracer, no metrics, no fault injection).  Under the eventq
backend the queue is drained at each fallback event; in fault-free
operation every transaction drains inside its issuing call, so the
queue is empty between events in both engines and the drain points are
equivalent to the scalar engine's per-event drain.  Fast L2 classes
are enabled per lane only when the design opts in via
:meth:`~repro.caches.design.L2Design.batch_fast_spec` *and* the lane
runs the atomic bus (an attached event queue observes crossbar data
phases the fast path would skip); ineligible lanes still get shared
tapes and batched residues.
"""

from __future__ import annotations

import os
from array import array
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.caches.design import L2Design
from repro.coherence.states import CoherenceState
from repro.common.params import L1Params, SystemParams
from repro.common.stats import CoreTiming, SimulationStats
from repro.common.types import Access, AccessType, MissClass, SharingClass
from repro.core.tag_array import STATE_CODES
from repro.kernel.soa import L1Pool, L2Pool

if TYPE_CHECKING:  # pragma: no cover
    from numpy.typing import NDArray

    from repro.cpu.system import TimedAccess
    from repro.experiments.runner import ExperimentConfig

#: Recognized simulation engines (``--engine`` / REPRO_ENGINE).
ENGINES = ("scalar", "batch")

#: Environment variable naming the default engine.
ENGINE_ENV = "REPRO_ENGINE"

#: Speculative window length (events probed per lane per pass).  Sized
#: a little above the mean committable run length so most passes commit
#: a full run and meet its residue in the same probe.
WINDOW = 24

#: Minimum fast-L2 yield (candidate reads, then classified hits) in a
#: window before the fast-L2 commit machinery engages.  Classification
#: is advisory, so skipping it is always correct — below this yield the
#: conflict/ranking overhead costs more than the scalar calls it would
#: save, and the events simply join the batched scalar residue.  Sized
#: so the tier stays idle on ordinary grids (a few L1-missing reads per
#: window) and engages only on genuinely L2-hit-heavy phases.
_FAST_GATE = 8

#: Windows between fast-tier sleep/wake decisions.  While a lane is
#: awake, every residue run conservatively invalidates the mirror rows
#: it touched (cheap, and "unknown" classifies as a miss — correct) and
#: the invalidated sets are re-read at the next epoch boundary.  A lane
#: whose residue rate shows the tier cannot pay for that upkeep is put
#: to *sleep*: its cores leave the candidate mask, so residues stop
#: paying any mirror tax at all.  A later calm epoch (an L2-hit-heavy
#: phase) wakes it with one full lane re-read.
_REFRESH_WINDOWS = 128

#: Calm threshold: a lane running at least this many scalar-residue
#: events per epoch is loud — mirror upkeep would cost more than the
#: fast classes could return, so the lane sleeps.  Below it the lane is
#: calm: upkeep is cheap (refresh cost scales with residue rate) and
#: the hit-heavy traffic is exactly what classes 2 and 3 vectorize.
_CALM_EVENTS = 64

#: Wake threshold: a sleeping lane whose residue shows at least this
#: many *convertible* L2 read hits per epoch — estimated by sampling
#: every 16th hit through the class-2/3 conditions — has traffic worth
#: one full mirror re-read.  Convertible hits, not residue volume,
#: break the chicken-and-egg of sleeping through an L2-hit-heavy
#: phase: those events would go fast if only the mirror were valid.
#: The bar doubles each time a lane goes (back) to sleep, so a lane
#: whose hits never classify fast (e.g. replication-heavy sharing)
#: stops thrash-waking geometrically.
_WAKE_HITS = 512

_SHARING = (
    SharingClass.PRIVATE,
    SharingClass.READ_ONLY_SHARED,
    SharingClass.READ_WRITE_SHARED,
)
_SHARING_CODE = {sharing: code for code, sharing in enumerate(_SHARING)}

_HIT = MissClass.HIT
_M_CODE = STATE_CODES[CoherenceState.MODIFIED]
_E_CODE = STATE_CODES[CoherenceState.EXCLUSIVE]
_S_CODE = STATE_CODES[CoherenceState.SHARED]
_C_CODE = STATE_CODES[CoherenceState.COMMUNICATION]


def resolve_engine(engine: "Optional[str]" = None) -> str:
    """Pick the simulation engine: explicit arg, env, or scalar."""
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or "scalar"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; choose from {ENGINES}")
    return engine


def _poisoned_later(keys: "NDArray", poison: "NDArray") -> "NDArray":
    """True for rows preceded, in row order, by a poison row of equal key.

    Rows are window probes in (lane-major, event-order) layout and
    ``keys`` embed the slot, so a stable sort groups each slot-local
    key without reordering events; an exclusive prefix count of poison
    rows inside each equal-key run then says "something earlier in this
    window already mutated this set".
    """
    n = keys.shape[0]
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_poison = poison[order].astype(np.int64)
    prefix = np.cumsum(sorted_poison) - sorted_poison
    boundaries = np.empty(n, dtype=bool)
    boundaries[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundaries[1:])
    index = np.arange(n)
    run_starts = index[boundaries]
    run_base = np.repeat(
        prefix[run_starts], np.diff(np.append(run_starts, n))
    )
    out = np.empty(n, dtype=bool)
    out[order] = (prefix - run_base) > 0
    return out


class EventTape:
    """One workload's event stream, materialized as columnar arrays.

    Fields are exactly what the engine needs per event: the issuing
    core, the address (plus its precomputed L1 set index and tag), the
    access type and sharing class, and the per-event timing weights —
    ``instr_weight`` = gap + colocated + 1 instructions and
    ``cycle_weight`` = gap + colocated·lat + lat cycles, the totals a
    stall-free event adds to its core (fallbacks recover the pre-access
    portion from the raw gap/colocated columns).

    The builder ``array.array`` columns are kept (``*_raw``) alongside
    the numpy views: the scalar fallback path reads single events, and
    ``array.array`` indexing hands back plain python ints without the
    numpy scalar-extraction overhead.
    """

    __slots__ = (
        "n",
        "core",
        "address",
        "set_index",
        "tag",
        "is_write",
        "instr_weight",
        "cycle_weight",
        "core_raw",
        "address_raw",
        "write_raw",
        "sharing_raw",
        "gap_raw",
        "colocated_raw",
    )

    def __init__(self) -> None:
        self.n = 0

    @classmethod
    def from_events(
        cls, events: "Iterable[TimedAccess]", params: "L1Params | None" = None
    ) -> "EventTape":
        """Consume ``events`` (a workload generator) into a tape."""
        params = params or L1Params()
        write = AccessType.WRITE
        code = _SHARING_CODE
        cores = array("h")
        addresses = array("q")
        writes = array("b")
        gaps = array("i")
        colocateds = array("i")
        sharings = array("b")
        for event in events:
            access = event.access
            cores.append(access.core)
            addresses.append(access.address)
            writes.append(1 if access.type is write else 0)
            gaps.append(event.gap)
            colocateds.append(event.colocated)
            sharings.append(code[access.sharing])
        tape = cls()
        tape.n = len(cores)
        tape.core_raw = cores
        tape.address_raw = addresses
        tape.write_raw = writes
        tape.sharing_raw = sharings
        tape.gap_raw = gaps
        tape.colocated_raw = colocateds
        if tape.n:
            # frombuffer shares memory with the array.array columns.
            tape.core = np.frombuffer(cores, dtype=np.int16)
            tape.address = np.frombuffer(addresses, dtype=np.int64)
            tape.is_write = np.frombuffer(writes, dtype=np.int8).view(bool)
            gap = np.frombuffer(gaps, dtype=np.int32)
            colocated = np.frombuffer(colocateds, dtype=np.int32)
        else:
            tape.core = np.zeros(0, dtype=np.int16)
            tape.address = np.zeros(0, dtype=np.int64)
            tape.is_write = np.zeros(0, dtype=bool)
            gap = np.zeros(0, dtype=np.int32)
            colocated = np.zeros(0, dtype=np.int32)
        geo = params.geometry
        tape.set_index = (
            (tape.address >> geo.offset_bits) & (geo.num_sets - 1)
        ).astype(np.int32)
        tape.tag = tape.address >> (geo.offset_bits + geo.index_bits)
        lat = params.latency
        tape.instr_weight = gap + colocated + 1
        tape.cycle_weight = gap + colocated * lat + lat
        return tape


class _Lane:
    """One design's seat in a batch group."""

    __slots__ = ("design", "queue", "slot_base")

    def __init__(self, design: L2Design, slot_base: int) -> None:
        self.design = design
        self.queue = getattr(design, "queue", None)
        self.slot_base = slot_base


class BatchKernel:
    """Steps a group of design lanes over one shared event tape."""

    def __init__(
        self, designs: "Sequence[L2Design]", params: "Optional[SystemParams]" = None
    ) -> None:
        self.params = params or SystemParams()
        self.num_cores = self.params.num_cores
        self.l1_latency = self.params.l1.latency
        self._blocking_stores = self.params.blocking_stores
        num_slots = len(designs) * self.num_cores
        self.pool = L1Pool(num_slots, self.params.l1)
        self.instructions = np.zeros(num_slots, dtype=np.int64)
        self.cycles = np.zeros(num_slots, dtype=np.int64)
        self.instructions_at_reset = np.zeros(num_slots, dtype=np.int64)
        self.cycles_at_reset = np.zeros(num_slots, dtype=np.int64)
        self.lanes = []
        for index, design in enumerate(designs):
            base = index * self.num_cores
            design.set_l1_invalidate_hook(self._make_invalidate_hook(base, design))
            self.lanes.append(_Lane(design, base))
        self._peers = tuple(
            tuple(c for c in range(self.num_cores) if c != i)
            for i in range(self.num_cores)
        )
        # Instrumentation (events committed per class; vacuity guards
        # in the differential suite assert the fast classes fired).
        self.pure_commits = 0
        self.fast_l2_commits = 0
        self.scalar_events = 0
        self.windows = 0
        self._init_fast_l2()

    def _make_invalidate_hook(self, slot_base: int, design: L2Design):
        """The design's L1-inclusion hook, redirected at the pool."""
        pool = self.pool

        def hook(core: int, l2_block_address: int) -> None:
            pool.invalidate_l2_block(
                slot_base + core, l2_block_address, design.block_size
            )

        return hook

    def _init_fast_l2(self) -> None:
        """Enroll lanes into the fast L2 classes and build the mirror.

        A lane qualifies when its design publishes a
        :class:`~repro.caches.design.BatchFastSpec`, runs the atomic
        bus (no event queue), has no tracer or pre-attached dirty set,
        and matches the 4-core batch shape; lanes after the first must
        also share its tag geometry and d-group count so one stacked
        mirror covers them all.  Ineligible lanes simply take the
        scalar residue for every L2-reaching event, exactly as before.
        """
        from repro.common.dirty import DirtySet

        num_slots = self.pool.num_slots
        self._any_fast = False
        self.l2: "Optional[L2Pool]" = None
        self._fast_row = [-1] * len(self.lanes)
        self._fast_designs: "list[L2Design]" = []
        self._fast_ok = np.zeros(num_slots, dtype=bool)
        self._fast_eslot = np.zeros(num_slots, dtype=np.int64)
        eligible = []
        first_spec = None
        for index, lane in enumerate(self.lanes):
            design = lane.design
            spec = design.batch_fast_spec()
            if (
                spec is None
                or lane.queue is not None
                or design.tracer.enabled
                or design.dirty_set is not None
                or spec.num_cores != self.num_cores
            ):
                continue
            if first_spec is None:
                first_spec = spec
            elif (
                spec.tag_geometry != first_spec.tag_geometry
                or spec.num_dgroups != first_spec.num_dgroups
            ):
                continue
            eligible.append((index, lane, spec))
        if not eligible:
            return
        designs = [lane.design for _, lane, _ in eligible]
        # Fresh designs (never accessed: every tag clock at zero, no
        # occupied frame) skip the full mirror scan — the pool's
        # freshly allocated columns already say "all invalid".
        fresh = all(
            tag.array._clock == 0 for d in designs for tag in d.tags
        ) and all(
            group.occupied_count == 0 for d in designs for group in d.data.dgroups
        )
        geometry = first_spec.tag_geometry
        num_dgroups = first_spec.num_dgroups
        if fresh:
            self.l2 = L2Pool(
                len(designs),
                self.num_cores,
                geometry,
                num_dgroups,
                designs[0].data.dgroups[0].num_frames if designs[0].data.dgroups else 0,
            )
        else:
            self.l2 = L2Pool.from_designs(designs)
        num_eslots = len(designs) * self.num_cores
        self._l2_closest = np.zeros(num_eslots, dtype=np.int64)
        self._l2_no_cr = np.zeros(num_eslots, dtype=bool)
        self._l2_rep_need = np.zeros(num_eslots, dtype=np.int64)
        self._l2_cmig_ok = np.zeros(num_eslots, dtype=bool)
        self._l2_stall = np.zeros((num_eslots, num_dgroups), dtype=np.int64)
        for row, (index, lane, spec) in enumerate(eligible):
            design = lane.design
            design.dirty_set = DirtySet()
            self._fast_row[index] = row
            self._fast_designs.append(design)
            xbar = design.crossbar
            for core in range(self.num_cores):
                eslot = row * self.num_cores + core
                self._fast_ok[lane.slot_base + core] = True
                self._fast_eslot[lane.slot_base + core] = eslot
                self._l2_closest[eslot] = spec.closest[core]
                self._l2_no_cr[eslot] = not spec.enable_cr
                self._l2_rep_need[eslot] = spec.replicate_on_use
                self._l2_cmig_ok[eslot] = spec.c_migration_threshold == 0
                for group in range(num_dgroups):
                    self._l2_stall[eslot, group] = (
                        spec.tag_latency
                        + xbar.dgroup_latencies[core][group]
                        + xbar.fault_extra_latency
                    )
        # Plain-python copies of the spec tables for _probe_fast (a
        # sampled per-event path where numpy scalar reads would cost).
        self._l2_closest_l = self._l2_closest.tolist()
        self._l2_no_cr_l = self._l2_no_cr.tolist()
        self._l2_rep_need_l = self._l2_rep_need.tolist()
        self._l2_cmig_ok_l = self._l2_cmig_ok.tolist()
        # Lazy mirror maintenance: per fast lane, the set indices whose
        # rows are conservatively invalidated but not yet re-read, the
        # scalar-residue event count in the current refresh epoch, and
        # the sleep/wake state (see _epoch_refresh).
        self._l2_pending = [set() for _ in eligible]
        self._l2_events = [0] * len(eligible)
        self._l2_hits = [0] * len(eligible)
        self._l2_awake = [True] * len(eligible)
        self._l2_wake_bar = [_WAKE_HITS] * len(eligible)
        self._l2_n_awake = len(eligible)
        self._l2_slot_base = [lane.slot_base for _, lane, _ in eligible]
        self._any_fast = True

    def run(self, tape: EventTape, warmup_events: int = 0) -> None:
        """Warm up, reset statistics, measure — over the whole batch."""
        split = min(warmup_events, tape.n)
        if warmup_events:
            self._advance(tape, 0, split)
            self.reset_stats()
        self._advance(tape, split, tape.n)

    def reset_stats(self) -> None:
        """The warm-up boundary: designs reset, timing baselines move."""
        for lane in self.lanes:
            lane.design.reset_stats()
        self.instructions_at_reset[:] = self.instructions
        self.cycles_at_reset[:] = self.cycles
        self.pool.reset_stats(slice(None))

    def _advance(self, tape: EventTape, start: int, end: int) -> None:
        """The speculative-window loop from event ``start`` to ``end``."""
        if start >= end:
            return
        pool = self.pool
        l2 = self.l2
        any_fast = self._any_fast
        num_slots = pool.num_slots
        n_lanes = len(self.lanes)
        pos = np.full(n_lanes, start, dtype=np.int64)
        slot_base = np.arange(n_lanes, dtype=np.int64) * self.num_cores
        core_a = tape.core
        set_a = tape.set_index
        tag_a = tape.tag
        write_a = tape.is_write
        addr_a = tape.address
        instr_w = tape.instr_weight
        cycle_w = tape.cycle_weight
        valid = pool.valid
        tags = pool.tags
        writable = pool.writable
        instructions = self.instructions
        cycles = self.cycles
        window = WINDOW
        l1_sets = pool.num_sets
        if any_fast:
            fast_ok = self._fast_ok
            fast_eslot = self._fast_eslot
            l2_valid = l2.valid
            l2_tags = l2.tags
            l2_state = l2.state
            l2_dgroup = l2.dgroup
            l2_reuse = l2.reuse
            l2_off = l2.offset_bits
            l2_mask = l2.index_mask
            l2_shift = l2.tag_shift
            l2_sets = l2.num_sets
            l2_ways = l2_tags.shape[2]
            # Disjoint key spaces for the fused conflict scan: L1 keys
            # live below num_slots*l1_sets, L2 keys above it.
            key2_off = num_slots * l1_sets
        # Templates for the full-window fast path: while every lane has
        # at least a window of events left, the ragged (rep, within,
        # starts) structure is constant and needn't be rebuilt per pass.
        lane_index_a = np.arange(n_lanes, dtype=np.int64)
        full_rep = np.repeat(lane_index_a, window)
        full_within = np.tile(np.arange(window, dtype=np.int64), n_lanes)
        full_starts = lane_index_a * window
        full_slot_base = slot_base[full_rep]
        while True:
            remaining = end - pos
            if remaining.min() >= window:
                # Fast path: all lanes probe a full window.
                rep = full_rep
                within = full_within
                ev = np.repeat(pos, window) + full_within
                slot = full_slot_base + core_a[ev]
                full = True
            else:
                active = np.nonzero(remaining > 0)[0]
                if not active.size:
                    return
                counts = np.minimum(window, remaining[active])
                starts = np.cumsum(counts) - counts
                rep = np.repeat(np.arange(active.size), counts)
                within = np.arange(rep.size) - starts[rep]
                ev = pos[active][rep] + within
                slot = slot_base[active][rep] + core_a[ev]
                full = False
            self.windows += 1
            if any_fast and self.windows % _REFRESH_WINDOWS == 0:
                self._epoch_refresh()
            sets = set_a[ev]
            lines = valid[slot, sets] & (tags[slot, sets] == tag_a[ev][:, None])
            hit = lines.any(axis=1)
            way = lines.argmax(axis=1)
            is_write = write_a[ev]
            pure = hit & (~is_write | writable[slot, sets, way])
            # Classification runs compressed to the candidate rows
            # (fast-eligible L1-missing reads) and only engages when
            # the yield clears the gate — both checks are advisory, so
            # a skipped window just routes those events to the residue.
            fastl2 = None
            if any_fast and self._l2_n_awake:
                cand = fast_ok[slot] & ~(is_write | pure)
                c_rows = np.nonzero(cand)[0]
                if c_rows.size >= _FAST_GATE:
                    c_slot = slot[c_rows]
                    addr = addr_a[ev[c_rows]]
                    l2set_c = (addr >> l2_off) & l2_mask
                    es_c = fast_eslot[c_slot]
                    l2lines = l2_valid[es_c, l2set_c] & (
                        l2_tags[es_c, l2set_c] == (addr >> l2_shift)[:, None]
                    )
                    l2hit = l2lines.any(axis=1)
                    l2way_c = l2lines.argmax(axis=1)
                    state = l2_state[es_c, l2set_c, l2way_c]
                    dgroup_c = l2_dgroup[es_c, l2set_c, l2way_c]
                    near_c = dgroup_c == self._l2_closest[es_c]
                    fast2 = ((state == _M_CODE) | (state == _E_CODE)) & near_c
                    fast3 = (state == _S_CODE) & (
                        self._l2_no_cr[es_c]
                        | near_c
                        | (l2_reuse[es_c, l2set_c, l2way_c] + 2
                           < self._l2_rep_need[es_c])
                    )
                    fast3 |= (state == _C_CODE) & self._l2_cmig_ok[es_c]
                    fast_c = l2hit & (fast2 | fast3)
                    if int(np.count_nonzero(fast_c)) >= _FAST_GATE:
                        fastl2 = np.zeros(slot.shape[0], dtype=bool)
                        fastl2[c_rows[fast_c]] = True
            if fastl2 is not None:
                committable = pure | fastl2
                # Truncate each lane's prefix at the first event an
                # earlier fast-L2 commit of this window could have
                # misclassified.  One fused poison scan: the L1 keys of
                # all rows (a fill changes L1 presence, which every
                # row's classification reads) stacked with offset
                # way-resolved L2 keys.  A fast commit's only L2-side
                # mutation is its own entry's reuse/lru, and of the
                # classification inputs only the S-state replication
                # threshold reads reuse — so the L2 half applies only
                # to those reuse-sensitive victims, letting e.g. two
                # reads of one block's halves commit in one window.
                n_rows = slot.shape[0]
                keys = np.concatenate(
                    (
                        slot * l1_sets + sets,
                        (c_slot * l2_sets + l2set_c) * l2_ways
                        + l2way_c + key2_off,
                    )
                )
                poison = np.concatenate((fastl2, fast_c))
                poisoned = _poisoned_later(keys, poison)
                conflict = poisoned[:n_rows]
                sens_c = fast_c & (state == _S_CODE) & ~(
                    self._l2_no_cr[es_c] | near_c
                )
                conflict[c_rows] |= poisoned[n_rows:] & sens_c
                ok = committable & ~conflict
            else:
                committable = pure
                ok = pure
            # First non-committable event per lane bounds its commit run.
            bad = np.where(ok, window, within)
            if full:
                n_commit = np.minimum.reduceat(bad, full_starts)
                commit = full_within < n_commit[full_rep]
            else:
                n_commit = np.minimum(np.minimum.reduceat(bad, starts), counts)
                commit = within < n_commit[rep]
            if fastl2 is None:
                # Pure-hit-only window: commit_hits handles stamps and
                # the clock internally — the original cheap path.
                if commit.all():
                    cs, cset, cway, cwrite, cev = slot, sets, way, is_write, ev
                else:
                    cs = slot[commit]
                    cset = sets[commit]
                    cway = way[commit]
                    cwrite = is_write[commit]
                    cev = ev[commit]
                if cs.size:
                    pool.commit_hits(cs, cset, cway, cwrite)
                    self.pure_commits += int(cs.size)
                    # Sums of small per-event weights: exact in the
                    # float64 accumulator bincount uses internally.
                    instructions += np.bincount(
                        cs, weights=instr_w[cev], minlength=num_slots
                    ).astype(np.int64)
                    cycles += np.bincount(
                        cs, weights=cycle_w[cev], minlength=num_slots
                    ).astype(np.int64)
            else:
                c_idx = np.nonzero(commit)[0]
                if c_idx.size:
                    cs = slot[c_idx]
                    n = cs.size
                    # Per-slot occurrence rank over ALL committed events
                    # (classes 1–3 all tick the slot's L1 LRU clock), so
                    # every stamp is the exact scalar clock value.
                    order = np.argsort(cs, kind="stable")
                    sorted_slots = cs[order]
                    boundaries = np.empty(n, dtype=bool)
                    boundaries[0] = True
                    np.not_equal(
                        sorted_slots[1:], sorted_slots[:-1], out=boundaries[1:]
                    )
                    index = np.arange(n)
                    run_starts = index[boundaries]
                    rank = index - np.repeat(
                        run_starts, np.diff(np.append(run_starts, n))
                    )
                    stamps = np.empty(n, dtype=np.int64)
                    stamps[order] = pool.clock[sorted_slots] + rank + 1
                    cev = ev[c_idx]
                    cyc_weights = cycle_w[cev].astype(np.float64)
                    pmask = pure[c_idx]
                    pool.commit_hits_stamped(
                        cs[pmask],
                        sets[c_idx][pmask],
                        way[c_idx][pmask],
                        is_write[c_idx][pmask],
                        stamps[pmask],
                    )
                    fmask = ~pmask
                    if fmask.any():
                        # Map committed fast rows back into the
                        # candidate-compressed classification arrays.
                        pos_in_c = np.empty(slot.shape[0], dtype=np.int64)
                        pos_in_c[c_rows] = np.arange(c_rows.size)
                        ci = pos_in_c[c_idx[fmask]]
                        cyc_weights[fmask] += self._commit_fast_l2(
                            ci,
                            cs[fmask],
                            stamps[fmask],
                            addr,
                            es_c,
                            l2set_c,
                            l2way_c,
                            dgroup_c,
                            near_c,
                        )
                        self.pure_commits += n - int(fmask.sum())
                    else:
                        self.pure_commits += n
                    instructions += np.bincount(
                        cs, weights=instr_w[cev], minlength=num_slots
                    ).astype(np.int64)
                    cycles += np.bincount(
                        cs, weights=cyc_weights, minlength=num_slots
                    ).astype(np.int64)
                    pool.clock += np.bincount(cs, minlength=num_slots)
            if full:
                pos += n_commit
                pending = np.nonzero(n_commit < window)[0]
            else:
                pos[active] += n_commit
                pending = np.nonzero(n_commit < counts)[0]
            if pending.size:
                # Per-lane index of the first committable event at or
                # past the commit boundary, in one reduction: it bounds
                # each pending lane's scalar residue run.
                if full:
                    after = committable & (full_within >= n_commit[full_rep])
                    first_next = np.minimum.reduceat(
                        np.where(after, full_within, window), full_starts
                    )
                else:
                    after = committable & (within >= n_commit[rep])
                    first_next = np.minimum.reduceat(
                        np.where(after, within, window), starts
                    )
                nc_list = n_commit.tolist()
                fn_list = first_next.tolist()
                for p in pending.tolist():
                    offset = nc_list[p]
                    boundary = fn_list[p]
                    if boundary == offset:
                        # Conflict-truncated: the boundary event is
                        # (stale-)classified committable; reprobe it
                        # against refreshed state next pass.
                        continue
                    if full:
                        lane_index = p
                        seg_count = window
                    else:
                        lane_index = int(active[p])
                        seg_count = int(counts[p])
                    run = min(boundary, seg_count) - offset
                    self._run_scalar(tape, lane_index, int(pos[lane_index]), run)
                    pos[lane_index] += run

    def _commit_fast_l2(
        self,
        rows: "NDArray",
        f_slots: "NDArray",
        f_stamps: "NDArray",
        addr_c: "NDArray",
        es_c: "NDArray",
        l2set_c: "NDArray",
        l2way_c: "NDArray",
        dgroup_c: "NDArray",
        near_c: "NDArray",
    ) -> "NDArray":
        """Commit a window's fast L2 hits (classes 2 and 3) in order.

        ``rows`` index the candidate-compressed classification arrays
        (``es_c``/``l2set_c``/``l2way_c``/``dgroup_c``/``near_c``/
        ``addr_c``); ``f_slots``/``f_stamps`` are already gathered.
        Per event this mirrors the scalar sequence for a read that
        misses the L1 and hits its own tag array with no coherence
        action: the L2 lookup's LRU touch and reuse bump, the crossbar
        traffic count, the d-group hit record, the HIT count, the L1
        miss count, the L1 fill (``writable=False``) at the event's
        ranked stamp, and the peer writable-revoke sweep.  Returns the
        per-event stall (the access latency) for the caller's timing
        bincount.  Small batches (the common shape under the window
        gate) fold the statistics into the per-event loop; large
        batches — L2-hit-heavy workloads — aggregate them vectorized.
        """
        pool = self.pool
        l2 = self.l2
        num_slots = pool.num_slots
        num_cores = self.num_cores
        f_es = es_c[rows]
        f_set = l2set_c[rows]
        f_way = l2way_c[rows]
        f_dg = dgroup_c[rows]
        stall = self._l2_stall[f_es, f_dg]
        # Design-side per-entry updates, in event order per core (the
        # only L2 clock ticks during a vectorized commit, so applying
        # them here in row order is exact).
        lanes = self.lanes
        slots_list = f_slots.tolist()
        n = len(slots_list)
        set_list = f_set.tolist()
        way_list = f_way.tolist()
        small = n < 32
        if small:
            addr_list = addr_c[rows].tolist()
            stamp_list = f_stamps.tolist()
            fill_read = pool.fill_read_stamped
            revoke = pool.revoke_writable
            peers = self._peers
            es_list = f_es.tolist()
            dg_list = f_dg.tolist()
            near_list = near_c[rows].tolist()
            load_misses = pool.load_misses
            l2_reuse = l2.reuse
        for k in range(n):
            slot = slots_list[k]
            lane = lanes[slot // num_cores]
            core = slot - lane.slot_base
            design = lane.design
            tag_array = design.tags[core].array
            set_index = set_list[k]
            way_index = way_list[k]
            entry = tag_array._sets[set_index][way_index]
            entry.reuse += 1
            tag_array._clock += 1
            entry.lru = tag_array._clock
            if small:
                address = addr_list[k]
                fill_read(slot, address, stamp_list[k])
                base = lane.slot_base
                for other in peers[core]:
                    revoke(base + other, address)
                l2_reuse[es_list[k], set_index, way_index] += 1
                load_misses[slot] += 1
                design.stats.counts[_HIT] += 1
                dgroups = design.dgroup_stats
                if near_list[k]:
                    dgroups.closest_hits += 1
                else:
                    dgroups.farther_hits += 1
                design.crossbar.traffic[(core, dg_list[k])] += 1
        if not small:
            f_addr = addr_c[rows]
            # The L1 side in bulk: the window's fills are unique per
            # (slot, set) — conflict truncation guarantees it — and the
            # peer revoke sweep is idempotent, so batching both after
            # the ordered design-entry updates is exact.
            pool.fill_read_batch(f_slots, f_addr, f_stamps)
            lane_base = (f_slots // num_cores) * num_cores
            for core in range(num_cores):
                ps = lane_base + core
                m = ps != f_slots
                if m.any():
                    pool.revoke_writable_batch(ps[m], f_addr[m])
            f_near = near_c[rows]
            # Mirror reuse keeps classification exact for future windows.
            np.add.at(l2.reuse, (f_es, f_set, f_way), 1)
            # Aggregated statistics, per lane.
            counts = np.bincount(f_slots, minlength=num_slots)
            pool.load_misses += counts
            near_counts = np.bincount(f_slots[f_near], minlength=num_slots)
            lane_totals = counts.reshape(-1, num_cores).sum(axis=1)
            near_totals = near_counts.reshape(-1, num_cores).sum(axis=1)
            for lane_index in np.nonzero(lane_totals)[0].tolist():
                design = lanes[lane_index].design
                total = int(lane_totals[lane_index])
                design.stats.counts[_HIT] += total
                dgroups = design.dgroup_stats
                near_total = int(near_totals[lane_index])
                dgroups.closest_hits += near_total
                dgroups.farther_hits += total - near_total
            # Crossbar traffic per (core, d-group) link.
            num_dgroups = l2.num_dgroups
            combo, combo_counts = np.unique(
                f_es * num_dgroups + f_dg, return_counts=True
            )
            fast_designs = self._fast_designs
            for key, count in zip(combo.tolist(), combo_counts.tolist()):
                eslot, group = divmod(key, num_dgroups)
                row, core = divmod(eslot, num_cores)
                fast_designs[row].crossbar.traffic[(core, group)] += count
        self.fast_l2_commits += n
        return stall

    def _run_scalar(
        self, tape: EventTape, lane_index: int, start: int, count: int
    ) -> None:
        """Run ``count`` consecutive events of one lane on the scalar path.

        Exactly the per-event sequence ``CmpSystem`` runs — queue
        drain, L1 probe, ``design.access`` with the lane's virtual
        clock, fill and peer invalidate/downgrade — but batched: the
        lane's per-core instruction and cycle counters are hoisted into
        plain python ints for the whole run and written back once,
        instead of paying numpy scalar extraction per event.  After the
        run, the L2 mirror is re-synced from the design's dirty-address
        marks.
        """
        lane = self.lanes[lane_index]
        design = lane.design
        pool = self.pool
        base = lane.slot_base
        num_cores = self.num_cores
        lat = self.l1_latency
        blocking = self._blocking_stores
        queue = lane.queue
        cyc = self.cycles[base : base + num_cores].tolist()
        ins = self.instructions[base : base + num_cores].tolist()
        core_raw = tape.core_raw
        address_raw = tape.address_raw
        write_raw = tape.write_raw
        sharing_raw = tape.sharing_raw
        gap_raw = tape.gap_raw
        colocated_raw = tape.colocated_raw
        access_design = design.access
        load = pool.load
        store = pool.store
        fill = pool.fill
        invalidate = pool.invalidate
        revoke = pool.revoke_writable
        peers = self._peers
        row = self._fast_row[lane_index]
        probing = row >= 0 and design.dirty_set is None
        n_hit = 0
        fast_est = 0
        for i in range(start, start + count):
            if queue is not None and queue.pending:
                queue.run_until(max(cyc))
            core = core_raw[i]
            slot = base + core
            gap = gap_raw[i]
            colocated = colocated_raw[i]
            # The core's clock after the pre-access instruction context.
            now = cyc[core] + gap + colocated * lat
            address = address_raw[i]
            if write_raw[i]:
                if store(slot, address):
                    stall = 0
                else:
                    access = Access(
                        core, address, AccessType.WRITE, _SHARING[sharing_raw[i]]
                    )
                    result = access_design(access, now=now)
                    fill(
                        slot, address,
                        writable=not result.write_through, dirty=True,
                    )
                    for other in peers[core]:
                        invalidate(base + other, address)
                    stall = result.latency if blocking else 0
            elif load(slot, address):
                stall = 0
            else:
                access = Access(
                    core, address, AccessType.READ, _SHARING[sharing_raw[i]]
                )
                result = access_design(access, now=now)
                if probing and result.miss_class is _HIT:
                    n_hit += 1
                    if not (n_hit & 15):
                        fast_est += self._probe_fast(row, core, address)
                fill(slot, address, writable=False)
                for other in peers[core]:
                    revoke(base + other, address)
                stall = result.latency
            ins[core] += gap + colocated + 1
            cyc[core] = now + lat + stall
        self.cycles[base : base + num_cores] = cyc
        self.instructions[base : base + num_cores] = ins
        self.scalar_events += count
        if row >= 0:
            self._l2_events[row] += count
            if probing:
                # Scale the 1-in-16 sample back to a convertible-hit
                # estimate for the wake decision.
                self._l2_hits[row] += fast_est << 4
            dirty = design.dirty_set
            if dirty is not None:  # awake: keep the mirror conservative
                l2 = self.l2
                if dirty.full:
                    l2.refresh_lane(row, design)
                    self._l2_pending[row].clear()
                elif dirty.addresses:
                    shift = l2.offset_bits
                    mask = l2.index_mask
                    touched = {(a >> shift) & mask for a in dirty.addresses}
                    # Conservative: an invalid mirror row classifies as
                    # an L2 miss, which routes the event back to this
                    # scalar path — always correct, just not fast.  The
                    # re-read that restores classification power waits
                    # for the next epoch boundary (see _epoch_refresh).
                    l2.invalidate_sets(row, touched)
                    self._l2_pending[row] |= touched
                dirty.clear()

    def _probe_fast(self, row: int, core: int, address: int) -> bool:
        """Would this (just-accessed) resident block classify fast?

        Sleeping lanes sample their residue's L2 read hits through the
        class-2/3 conditions to estimate how much of the traffic the
        fast tier could convert — the wake signal in _epoch_refresh.
        The post-access entry state is read without touching LRU, so
        this is a pure observation.
        """
        design = self._fast_designs[row]
        entry = design.tags[core].lookup(address, touch=False)
        if entry is None or entry.fwd is None:
            return False
        es = row * self.num_cores + core
        near = entry.fwd.dgroup == self._l2_closest_l[es]
        state = entry.state
        if state is CoherenceState.MODIFIED or state is CoherenceState.EXCLUSIVE:
            return near
        if state is CoherenceState.SHARED:
            return (
                self._l2_no_cr_l[es]
                or near
                or entry.reuse + 2 < self._l2_rep_need_l[es]
            )
        return (
            state is CoherenceState.COMMUNICATION and self._l2_cmig_ok_l[es]
        )

    def _epoch_refresh(self) -> None:
        """Epoch boundary: adapt each fast lane to its residue rate.

        A *loud* awake lane (heavy scalar residue) is put to sleep: its
        cores leave the candidate mask and its dirty-set is detached,
        so residues stop paying any mirror tax — re-validated rows
        would only be re-invalidated.  A calm awake lane gets its small
        pending set re-read, restoring classification power.  A
        sleeping lane wakes — with one full lane re-read, since its
        mirror went stale untracked — when its residue's L2 read hits
        show enough convertible traffic to pay for the re-read.
        """
        from repro.common.dirty import DirtySet

        num_cores = self.num_cores
        for row, design in enumerate(self._fast_designs):
            loud = self._l2_events[row] >= _CALM_EVENTS
            hits = self._l2_hits[row]
            self._l2_events[row] = 0
            self._l2_hits[row] = 0
            base = self._l2_slot_base[row]
            if self._l2_awake[row]:
                if loud:
                    self._l2_awake[row] = False
                    self._l2_n_awake -= 1
                    self._l2_wake_bar[row] = min(
                        self._l2_wake_bar[row] * 2, 1 << 20
                    )
                    self._fast_ok[base : base + num_cores] = False
                    self._l2_pending[row].clear()
                    design.dirty_set = None
                else:
                    pending = self._l2_pending[row]
                    if pending:
                        self.l2.refresh_sets(row, design, pending)
                        pending.clear()
            elif hits >= self._l2_wake_bar[row]:
                self.l2.refresh_lane(row, design)
                self._l2_awake[row] = True
                self._l2_n_awake += 1
                self._fast_ok[base : base + num_cores] = True
                design.dirty_set = DirtySet()

    def lane_stats(self, index: int) -> SimulationStats:
        """Assemble one lane's stats exactly as ``CmpSystem.stats`` does."""
        lane = self.lanes[index]
        design = lane.design
        stats = SimulationStats(accesses=design.stats)
        base = lane.slot_base
        stats.per_core = [
            CoreTiming(
                int(self.instructions[base + c] - self.instructions_at_reset[base + c]),
                int(self.cycles[base + c] - self.cycles_at_reset[base + c]),
            )
            for c in range(self.num_cores)
        ]
        reuse = getattr(design, "reuse", None)
        if reuse is not None:
            stats.reuse = reuse
        dgroups = getattr(design, "dgroup_stats", None)
        if dgroups is not None:
            stats.dgroups = dgroups
        bus = getattr(design, "bus", None)
        if bus is not None:
            stats.bus = bus.stats
        bus_stats = getattr(design, "bus_stats", None)
        if bus_stats is not None:
            stats.bus = bus_stats
        return stats


#: Interconnect backends the batch kernel can model.  The mesh NoC's
#: split-phase directory transactions (and its scaled tile counts) are
#: scalar-engine territory; ``run_batch`` refuses them explicitly.
BATCH_BUS_MODELS = ("atomic", "eventq")


def _normalize_cell(cell) -> "tuple[str, str, bool, Optional[str]]":
    if hasattr(cell, "workload"):
        return (
            cell.workload,
            cell.design,
            bool(cell.multiprogrammed),
            getattr(cell, "bus_model", None),
        )
    parts = tuple(cell)
    if len(parts) == 3:
        workload, design, multiprogrammed = parts
        bus_model = None
    else:
        workload, design, multiprogrammed, bus_model = parts
    return (str(workload), str(design), bool(multiprogrammed), bus_model)


def run_batch(
    cells: "Iterable",
    config: "Optional[ExperimentConfig]" = None,
    bus_model: "Optional[str]" = None,
) -> "dict[tuple[str, str, bool, str], SimulationStats]":
    """Run a batch of cells through the SoA kernel.

    ``cells`` may be :class:`repro.experiments.parallel.Cell` objects
    (or anything with ``workload``/``design``/``multiprogrammed`` and
    optionally ``bus_model`` attributes) or plain ``(workload, design,
    multiprogrammed[, bus_model])`` tuples; a cell without a bus model
    takes the ``bus_model`` argument (itself defaulted from
    ``REPRO_BUS_MODEL``).  Cells sharing a workload are grouped into
    one kernel over one shared event tape — across designs *and* bus
    models, the batch engine's biggest lever — and the result maps each
    ``(workload, design, multiprogrammed, resolved_bus_model)`` tuple
    to stats bit-identical to a scalar run of the same cell.
    """
    from repro.experiments.runner import (
        ExperimentConfig,
        build_design,
        resolve_bus_model,
    )
    from repro.workloads.multiprogrammed import make_mix
    from repro.workloads.multithreaded import make_workload

    config = config or ExperimentConfig()
    default_bus = resolve_bus_model(bus_model)
    supported = " and ".join(BATCH_BUS_MODELS)
    groups: "dict[tuple[str, bool], list[tuple[str, str]]]" = {}
    for cell in cells:
        workload, design, multiprogrammed, cell_bus = _normalize_cell(cell)
        if cell_bus is None:
            cell_bus = default_bus
        else:
            cell_bus = resolve_bus_model(cell_bus)
        if cell_bus not in BATCH_BUS_MODELS:
            detail = (
                "the mesh NoC's split-phase directory transactions need "
                "the scalar engine"
                if cell_bus == "mesh"
                else "this backend needs the scalar engine"
            )
            raise ValueError(
                f"cell ({workload}, {design}) requests bus model "
                f"{cell_bus!r}, but the batch kernel supports only the "
                f"{supported} bus models; {detail} "
                "(rerun with --engine scalar)"
            )
        cell_cores = getattr(cell, "num_cores", 0)
        if cell_cores:
            raise ValueError(
                f"cell ({workload}, {design}) requests "
                f"num_cores={cell_cores}, but the batch kernel models "
                "the paper's 4-core machine only; scaled cells need the "
                "scalar engine (rerun with --engine scalar)"
            )
        lanes = groups.setdefault((workload, multiprogrammed), [])
        if (design, cell_bus) not in lanes:
            lanes.append((design, cell_bus))
    results: "dict[tuple[str, str, bool, str], SimulationStats]" = {}
    params = SystemParams()
    total = config.warmup_per_core + config.measure_per_core
    for (workload_name, multiprogrammed), lane_keys in groups.items():
        maker = make_mix if multiprogrammed else make_workload
        workload = maker(workload_name, seed=config.seed)
        tape = EventTape.from_events(
            workload.events(accesses_per_core=total), params.l1
        )
        designs = [
            build_design(name, bus_model=bus) for name, bus in lane_keys
        ]
        kernel = BatchKernel(designs, params)
        kernel.run(tape, config.warmup_per_core * workload.num_cores)
        for index, (name, bus) in enumerate(lane_keys):
            results[(workload_name, name, multiprogrammed, bus)] = (
                kernel.lane_stats(index)
            )
    return results


__all__ = [
    "BATCH_BUS_MODELS",
    "ENGINE_ENV",
    "ENGINES",
    "WINDOW",
    "BatchKernel",
    "EventTape",
    "resolve_engine",
    "run_batch",
]
