"""Vectorized structure-of-arrays batch kernel (``--engine batch``).

Steps many (workload, design) simulation cells per numpy operation:
per-cell L1 tag arrays, recency state, and permission bits live in
structure-of-arrays buffers (:class:`~repro.kernel.soa.L1Pool`), opted-in
designs additionally mirror their NuRAPID tag arrays into a stacked L2
tier (:class:`~repro.kernel.soa.L2Pool`), and the engine
(:mod:`repro.kernel.engine`) executes tag probes, four-class hit
classification (L1 hit, private L2 hit, pointer-only L2 hit, fallback),
and recency updates as masked array ops across the whole batch, batching
the residual scalar events per window instead of breaking on the first
blocking event.  Correctness is anchored on
``SimulationStats.fingerprint()`` identity with the scalar engine.
"""

from repro.kernel.engine import (
    BATCH_BUS_MODELS,
    ENGINE_ENV,
    ENGINES,
    BatchKernel,
    EventTape,
    resolve_engine,
    run_batch,
)
from repro.kernel.soa import L1Pool, L2Pool

__all__ = [
    "BATCH_BUS_MODELS",
    "ENGINE_ENV",
    "ENGINES",
    "BatchKernel",
    "EventTape",
    "L1Pool",
    "L2Pool",
    "resolve_engine",
    "run_batch",
]
