"""Vectorized structure-of-arrays batch kernel (``--engine batch``).

Steps many (workload, design) simulation cells per numpy operation:
per-cell L1 tag arrays, recency state, and permission bits live in
structure-of-arrays buffers (:class:`~repro.kernel.soa.L1Pool`), and the
engine (:mod:`repro.kernel.engine`) executes tag probes, hit/miss
classification, and recency updates as masked array ops across the
whole batch, falling back to the scalar design path only for the rare
events that reach the L2.  Correctness is anchored on
``SimulationStats.fingerprint()`` identity with the scalar engine.
"""

from repro.kernel.engine import (
    BATCH_BUS_MODELS,
    ENGINE_ENV,
    ENGINES,
    BatchKernel,
    EventTape,
    resolve_engine,
    run_batch,
)
from repro.kernel.soa import L1Pool

__all__ = [
    "BATCH_BUS_MODELS",
    "ENGINE_ENV",
    "ENGINES",
    "BatchKernel",
    "EventTape",
    "L1Pool",
    "resolve_engine",
    "run_batch",
]
