"""CMP-NuRAPID reproduction.

Reproduction of "Optimizing Replication, Communication, and Capacity
Allocation in CMPs" (Chishti, Powell, Vijaykumar - ISCA 2005): the
CMP-NuRAPID hybrid cache with controlled replication, in-situ
communication, and capacity stealing, plus the uniform-shared,
private-MESI, CMP-SNUCA, and ideal baselines and the workload models
used to evaluate them.

Quickstart::

    from repro import NurapidCache, make_workload, run_workload

    design = NurapidCache()
    workload = make_workload("oltp")
    stats = run_workload(design, workload.events(accesses_per_core=50_000))
    print(stats.accesses.miss_rate, stats.throughput)
"""

from repro.caches import (
    IdealCache,
    L1Cache,
    L2Design,
    PrivateCaches,
    SharedCache,
    SnucaCache,
)
from repro.common import (
    Access,
    AccessResult,
    AccessType,
    MissClass,
    NurapidParams,
    SharingClass,
    SimulationStats,
    SystemParams,
)
from repro.core import NurapidCache
from repro.cpu import CmpSystem, TimedAccess, run_workload
from repro.obs import (
    MetricsCollector,
    Profiler,
    TraceEvent,
    Tracer,
    export_chrome_trace,
)
from repro.harness import (
    FaultSpec,
    HarnessConfig,
    HarnessRunner,
    InvariantViolation,
    check_system,
    load_checkpoint,
    run_events,
    save_checkpoint,
)
from repro.workloads import (
    COMMERCIAL,
    MIXES,
    MULTITHREADED,
    SCIENTIFIC,
    MultiprogrammedWorkload,
    SyntheticWorkload,
    make_mix,
    make_workload,
)

__version__ = "1.0.0"

__all__ = [
    "Access",
    "AccessResult",
    "AccessType",
    "CmpSystem",
    "COMMERCIAL",
    "FaultSpec",
    "HarnessConfig",
    "HarnessRunner",
    "IdealCache",
    "L1Cache",
    "L2Design",
    "InvariantViolation",
    "MIXES",
    "MULTITHREADED",
    "MetricsCollector",
    "MissClass",
    "MultiprogrammedWorkload",
    "NurapidCache",
    "NurapidParams",
    "PrivateCaches",
    "Profiler",
    "SCIENTIFIC",
    "SharedCache",
    "SharingClass",
    "SimulationStats",
    "SnucaCache",
    "SyntheticWorkload",
    "SystemParams",
    "TimedAccess",
    "TraceEvent",
    "Tracer",
    "check_system",
    "export_chrome_trace",
    "load_checkpoint",
    "make_mix",
    "make_workload",
    "run_events",
    "run_workload",
    "save_checkpoint",
]
