"""CPU timing model and whole-CMP system harness."""

from repro.cpu.core import InOrderCore
from repro.cpu.system import CmpSystem, TimedAccess, run_workload

__all__ = ["CmpSystem", "InOrderCore", "TimedAccess", "run_workload"]
