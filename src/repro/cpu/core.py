"""In-order core timing model (Section 4.1).

The paper simulates in-order x86 cores with 3-cycle L1s and one
outstanding miss.  This model charges:

* 1 cycle per non-memory instruction;
* the L1 latency (3 cycles) per memory instruction that hits in the L1
  — an in-order core cannot hide load-to-use latency;
* the full L2-and-beyond latency on top when a reference leaves the L1
  — the single outstanding miss blocks the core.

Workload events carry *co-located* memory accesses — the extra word
accesses that fall on the same cache line as the event's reference
(spatial locality).  They are guaranteed L1 hits, so the core charges
them the L1 latency without simulating them through the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import restore_slots_state


@dataclass(slots=True)
class InOrderCore:
    """Cycle accounting for one core.

    ``instructions``/``cycles`` are monotonic for the core's lifetime —
    they double as the hierarchy's virtual clock, so they must never
    move backwards (e.g. across a warm-up statistics reset).  Measured
    statistics subtract the ``*_at_reset`` baselines recorded by
    :meth:`reset_stats`.
    """

    core_id: int
    l1_latency: int = 3
    instructions: int = 0
    cycles: int = 0
    instructions_at_reset: int = 0
    cycles_at_reset: int = 0

    def reset_stats(self) -> None:
        """Start a measurement window; the clock itself keeps running."""
        self.instructions_at_reset = self.instructions
        self.cycles_at_reset = self.cycles

    @property
    def measured_instructions(self) -> int:
        return self.instructions - self.instructions_at_reset

    @property
    def measured_cycles(self) -> int:
        return self.cycles - self.cycles_at_reset

    def execute_gap(self, instructions: int) -> None:
        """Run ``instructions`` non-memory instructions."""
        self.instructions += instructions
        self.cycles += instructions

    def execute_colocated(self, accesses: int) -> None:
        """Run memory instructions hitting the line just referenced."""
        self.instructions += accesses
        self.cycles += accesses * self.l1_latency

    def execute_memory(self, stall_cycles: int) -> None:
        """Run one memory instruction that stalled ``stall_cycles``
        beyond the L1 (0 for an L1 hit)."""
        self.instructions += 1
        self.cycles += self.l1_latency + stall_cycles

    @property
    def ipc(self) -> float:
        cycles = self.measured_cycles
        return self.measured_instructions / cycles if cycles else 0.0

    def state_dict(self) -> dict:
        from repro.common import serialization

        return serialization.scalar_fields_state(self)

    def load_state_dict(self, state: dict, path: str = "core") -> None:
        from repro.common import serialization

        serialization.load_scalar_fields(self, state, path)

    def __setstate__(self, state) -> None:
        restore_slots_state(self, state)
