"""The 4-core CMP: cores, L1s, one L2 design, and the run loop.

:class:`CmpSystem` wires per-core L1s above any :class:`~repro.caches.
design.L2Design` and keeps the hierarchy coherent at the granularity
the trace-driven model needs:

* **inclusion** — L2 evictions/invalidations invalidate the covered L1
  blocks via the design's L1-invalidate hook;
* **write-invalidate at L1** — a store that reaches the L2 invalidates
  other cores' L1 copies of the block;
* **read-downgrade** — a load that reaches the L2 revokes other cores'
  L1 write permission, so their next store must re-request it from the
  L2 (this is how L2-level coherence observes writes after reads, as a
  MESI L1 hierarchy would);
* **write-through blocks** — when the L2 marks a block write-through
  (CMP-NuRAPID's C state), L1 write permission is withheld and every
  store is sent down.

:func:`run_workload` drives a system from a workload's per-core access
streams, interleaving cores round-robin, and returns the
:class:`~repro.common.stats.SimulationStats` the experiments report.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, Optional

from repro.caches.design import L2Design
from repro.caches.l1 import L1Cache
from repro.common.params import SystemParams
from repro.common.stats import CoreTiming, SimulationStats
from repro.common.types import Access, AccessResult, AccessType
from repro.cpu.core import InOrderCore
from repro.obs import events as ev
from repro.obs.metrics import MetricsCollector
from repro.obs.tracer import NO_TRACE, NullTracer, Tracer


class TimedAccess:
    """One workload event: a cache-line touch with its instruction context.

    Attributes:
        access: the memory reference presented to the hierarchy.
        gap: non-memory instructions executed before it.
        colocated: additional memory instructions that hit the same
            cache line (spatial locality) — guaranteed L1 hits, charged
            the L1 latency without being simulated individually.

    A plain slotted class: traces contain millions of these and
    construction cost dominates the generator's hot path.
    """

    __slots__ = ("access", "gap", "colocated")

    def __init__(self, access: Access, gap: int = 0, colocated: int = 0) -> None:
        self.access = access
        self.gap = gap
        self.colocated = colocated

    def __repr__(self) -> str:
        return (
            f"TimedAccess({self.access!r}, gap={self.gap}, "
            f"colocated={self.colocated})"
        )


class CmpSystem:
    """A CMP with per-core L1s above one L2 design."""

    def __init__(
        self,
        design: L2Design,
        params: "Optional[SystemParams]" = None,
        tracer: "Tracer | NullTracer | None" = None,
        metrics: "Optional[MetricsCollector]" = None,
    ) -> None:
        if params is None:
            # Size the CMP from the design: an 8/16/64-core design gets
            # matching cores and L1s without callers threading params.
            params = SystemParams()
            design_cores = getattr(design, "num_cores", 0) or 0
            if design_cores and design_cores != params.num_cores:
                params = replace(params, num_cores=design_cores)
        self.params = params
        self.design = design
        self.l1s = [L1Cache(self.params.l1) for _ in range(self.params.num_cores)]
        self.cores = [
            InOrderCore(i, self.params.l1.latency)
            for i in range(self.params.num_cores)
        ]
        design.set_l1_invalidate_hook(self._on_l2_invalidate)
        # Peer-core index tuples, precomputed: the access path visits
        # "every core but the issuer" on each L2-reaching reference, and
        # building a generator there costs an allocation per access.
        self._peers = tuple(
            tuple(c for c in range(self.params.num_cores) if c != i)
            for i in range(self.params.num_cores)
        )
        self.tracer = NO_TRACE
        self.attach_tracer(tracer if tracer is not None else NO_TRACE)
        self.metrics: "Optional[MetricsCollector]" = None
        if metrics is not None:
            self.attach_metrics(metrics)

    def attach_tracer(self, tracer: "Tracer | NullTracer") -> None:
        """Route this system's (and its design's) events to ``tracer``."""
        self.tracer = tracer
        self.design.tracer = tracer
        bus = getattr(self.design, "bus", None)
        if bus is not None and hasattr(bus, "tracer"):
            bus.tracer = tracer

    def attach_metrics(self, metrics: MetricsCollector) -> "MetricsCollector":
        """Bind an interval-sampling metrics collector to this system."""
        self.metrics = metrics.bind(self)
        return metrics

    def _on_l2_invalidate(self, core: int, l2_block_address: int) -> None:
        self.l1s[core].invalidate_l2_block(l2_block_address, self.design.block_size)

    def _others(self, core: int) -> "Iterable[int]":
        return (c for c in range(self.params.num_cores) if c != core)

    def access(self, access: Access) -> int:
        """Run one memory reference; returns its stall cycles (0 on L1 hit)."""
        l1 = self.l1s[access.core]
        if access.type is AccessType.WRITE:
            if l1.store(access.address):
                return 0
            return self._store_miss(access)
        if l1.load(access.address):
            return 0
        return self._load_miss(access)

    # The L1-missing halves of ``access`` are separate methods so the
    # specialized run loop can probe the L1 directly and only pay a
    # call into the L2 path on a miss.

    def _store_miss(self, access: Access) -> int:
        core = access.core
        l1s = self.l1s
        address = access.address
        result = self.design.access(access, now=self.cores[core].cycles)
        if self.metrics is not None:
            self.metrics.observe_l2(result)
        l1s[core].fill(address, writable=not result.write_through, dirty=True)
        for other in self._peers[core]:
            l1s[other].invalidate(address)
        # Stores retire through a store buffer by default: the
        # hierarchy has processed the write (coherence, traffic,
        # statistics) but the in-order core does not stall on it.
        return result.latency if self.params.blocking_stores else 0

    def _load_miss(self, access: Access) -> int:
        core = access.core
        l1s = self.l1s
        address = access.address
        result = self.design.access(access, now=self.cores[core].cycles)
        if self.metrics is not None:
            self.metrics.observe_l2(result)
        l1s[core].fill(address, writable=False)
        for other in self._peers[core]:
            l1s[other].revoke_writable(address)
        return result.latency

    def reset_stats(self) -> None:
        """Clear all statistics after a warm-up phase; state is kept.

        Core cycle counters are *preserved* (only their measurement
        baselines move): they double as the hierarchy's virtual clock
        (the ``now`` passed to the L2), so recreating cores here would
        send post-warm-up timestamps backwards relative to pre-warm-up
        fills — the harness's ``timestamp-monotonic`` invariant.
        """
        self.design.reset_stats()
        for core in self.cores:
            core.reset_stats()
        for l1 in self.l1s:
            l1.stats = type(l1.stats)()
        if self.metrics is not None:
            self.metrics.reset()

    def _trace_step(self, event: "TimedAccess") -> None:
        """Emit the replayable ``step`` record for one workload event."""
        access = event.access
        self.tracer.emit(
            ev.STEP,
            cycle=self.cores[access.core].cycles,
            core=access.core,
            address=access.address,
            type=access.type.value,
            sharing=access.sharing.value,
            gap=event.gap,
            colocated=event.colocated,
        )

    def _drain_interconnect(self) -> None:
        """Fire interconnect events due by the cores' virtual clocks.

        Deferred events (the race faults' late deliveries) fire at the
        *start* of the following step, so the harness's invariant check
        — which runs after each step — observes the open race window.
        In normal operation the queue is already empty here (every
        transaction drains inside its issuing call) and this is one
        attribute load and one branch.
        """
        queue = getattr(self.design, "queue", None)
        if queue is not None and queue.pending:
            queue.run_until(max(core.cycles for core in self.cores))

    def step(self, event: TimedAccess) -> None:
        """Execute one timed access (the harness's unit of work).

        The ``step`` record is emitted *before* execution so that when
        an access blows up mid-protocol, the fatal event is already in
        the tracer's ring buffer (the harness's replayable window).
        """
        self._drain_interconnect()
        if self.tracer.enabled:
            self._trace_step(event)
        core = self.cores[event.access.core]
        if event.gap:
            core.execute_gap(event.gap)
        if event.colocated:
            core.execute_colocated(event.colocated)
        core.execute_memory(self.access(event.access))
        if self.metrics is not None:
            self.metrics.on_step()

    def run(self, events: "Iterable[TimedAccess]") -> None:
        """Execute a stream of timed accesses.

        Dispatches on the observability configuration once, not per
        event: a plain run (no tracer, no metrics, atomic interconnect)
        takes a specialized loop with *zero* instrumentation guards and
        the core's cycle accounting inlined, which is where the
        simulator spends its life.  Any attached instrument falls back
        to the general loop, whose behavior is bit-identical.
        """
        if (
            self.tracer.enabled
            or self.metrics is not None
            or getattr(self.design, "queue", None) is not None
        ):
            return self._run_instrumented(events)
        # Specialized hot loop.  The per-event accounting mirrors
        # InOrderCore.execute_gap/execute_colocated/execute_memory in
        # that order (the L2 reads core.cycles as its virtual clock, so
        # gap and colocated cycles must land *before* the access);
        # test_system pins the equivalence against the method-call path.
        cores = self.cores
        l1s = self.l1s
        store_miss = self._store_miss
        load_miss = self._load_miss
        write = AccessType.WRITE
        for event in events:
            acc = event.access
            core_id = acc.core
            core = cores[core_id]
            latency = core.l1_latency
            gap = event.gap
            colocated = event.colocated
            if gap or colocated:
                core.instructions += gap + colocated
                core.cycles += gap + colocated * latency
            if acc.type is write:
                stall = 0 if l1s[core_id].store(acc.address) else store_miss(acc)
            elif l1s[core_id].load(acc.address):
                stall = 0
            else:
                stall = load_miss(acc)
            core.instructions += 1
            core.cycles += latency + stall

    def _run_instrumented(self, events: "Iterable[TimedAccess]") -> None:
        """The general event loop: tracing, metrics, event-queue drains.

        Inlines :meth:`step`; with tracing disabled and no metrics
        bound the additions are one branch each per event.
        """
        tracer = self.tracer
        traced = tracer.enabled
        metrics = self.metrics
        queue = getattr(self.design, "queue", None)
        for event in events:
            if queue is not None and queue.pending:
                queue.run_until(max(core.cycles for core in self.cores))
            if traced:
                self._trace_step(event)
            core = self.cores[event.access.core]
            if event.gap:
                core.execute_gap(event.gap)
            if event.colocated:
                core.execute_colocated(event.colocated)
            core.execute_memory(self.access(event.access))
            if metrics is not None:
                metrics.on_step()

    def state_dict(self) -> dict:
        """Full model state as plain dicts of primitives and numpy arrays.

        Observability (tracer/metrics/profiler) is per-process and never
        part of a snapshot; pending event-queue deferrals are encoded
        separately by :mod:`repro.harness.checkpoint`, which knows the
        component graph needed to name their bound actions.
        """
        from repro.common import serialization

        state = {
            "params": serialization.params_state(self.params),
            "cores": [core.state_dict() for core in self.cores],
            "l1s": [l1.state_dict() for l1 in self.l1s],
            "design": self.design.state_dict(),
        }
        queue = getattr(self.design, "queue", None)
        if queue is not None:
            state["eventq"] = queue.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Inject a :meth:`state_dict` snapshot into this fresh system.

        The snapshot's :class:`SystemParams` win over construction-time
        ones (cores and L1s are rebuilt from them), so non-default
        geometries restore onto a default-built system.  The design must
        already be the right one (``build_design`` chose it from the
        checkpoint envelope); its internals are rebuilt by its own
        ``load_state_dict``.
        """
        from repro.common import serialization
        from repro.common.serialization import StateDictError, require

        self.params = serialization.params_from_state(
            SystemParams, require(state, "params", "system"), "system.params"
        )
        cores = require(state, "cores", "system")
        l1s = require(state, "l1s", "system")
        if len(cores) != self.params.num_cores:
            raise StateDictError(
                "system.cores",
                f"{len(cores)} cores in snapshot, params say {self.params.num_cores}",
            )
        if len(l1s) != self.params.num_cores:
            raise StateDictError(
                "system.l1s",
                f"{len(l1s)} L1s in snapshot, params say {self.params.num_cores}",
            )
        self.l1s = [L1Cache(self.params.l1) for _ in range(self.params.num_cores)]
        self.cores = [
            InOrderCore(i, self.params.l1.latency)
            for i in range(self.params.num_cores)
        ]
        self._peers = tuple(
            tuple(c for c in range(self.params.num_cores) if c != i)
            for i in range(self.params.num_cores)
        )
        for i, (core, core_state) in enumerate(zip(self.cores, cores)):
            core.load_state_dict(core_state, f"system.cores[{i}]")
        for i, (l1, l1_state) in enumerate(zip(self.l1s, l1s)):
            l1.load_state_dict(l1_state, f"system.l1s[{i}]")
        self.design.load_state_dict(require(state, "design", "system"), "design")
        self.design.set_l1_invalidate_hook(self._on_l2_invalidate)
        queue = getattr(self.design, "queue", None)
        if "eventq" in state:
            if queue is None:
                raise StateDictError(
                    "system.eventq",
                    "snapshot carries event-queue state but this system was "
                    "built with the atomic bus model",
                )
            queue.load_state_dict(state["eventq"], "system.eventq")
        elif queue is not None and queue.pending:
            raise StateDictError(
                "system.eventq", "fresh queue is not empty before restore"
            )

    def stats(self) -> SimulationStats:
        """Collect the run's statistics from every component."""
        stats = SimulationStats(accesses=self.design.stats)
        stats.per_core = [
            CoreTiming(core.measured_instructions, core.measured_cycles)
            for core in self.cores
        ]
        reuse = getattr(self.design, "reuse", None)
        if reuse is not None:
            stats.reuse = reuse
        dgroups = getattr(self.design, "dgroup_stats", None)
        if dgroups is not None:
            stats.dgroups = dgroups
        bus = getattr(self.design, "bus", None)
        if bus is not None:
            stats.bus = bus.stats
        bus_stats = getattr(self.design, "bus_stats", None)
        if bus_stats is not None:
            stats.bus = bus_stats
        return stats


def run_workload(design: L2Design, events: "Iterable[TimedAccess]",
                 params: "Optional[SystemParams]" = None) -> SimulationStats:
    """Convenience wrapper: build a system, run, return statistics."""
    system = CmpSystem(design, params)
    system.run(events)
    return system.stats()


__all__ = ["CmpSystem", "TimedAccess", "run_workload", "AccessResult", "AccessType"]
