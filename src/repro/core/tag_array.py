"""CMP-NuRAPID's private per-core tag arrays (Section 2.2.2).

Each core has its own tag array placed close to it, snooping on the bus
like an SMP private cache.  To let multiple tag arrays point at a single
shared data copy, each array holds **twice** the entries needed to cover
one d-group (doubled sets, same associativity — the paper's 6%-overhead
compromise that performs almost as well as quadrupling).

Tag entries extend the generic :class:`~repro.caches.base.Entry` with
the forward pointer.  The replacement *category* order — invalid, then
private, then shared — implements Section 3.3.2's preference to avoid
evicting shared blocks (whose replacement costs a BusRepl broadcast).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.caches.base import Entry, SetAssociativeArray
from repro.coherence.states import CoherenceState
from repro.common.params import CacheGeometry
from repro.common.types import MissClass
from repro.core.pointers import FramePtr, TagPtr

#: Stable small-int codes for coherence states (declaration order, the
#: same ordering checkpoint legends use): M=0, E=1, S=2, I=3, C=4.
STATE_CODES = {state: code for code, state in enumerate(CoherenceState)}
STATES_BY_CODE = tuple(CoherenceState)

#: Codes for ``Entry.fill_class`` (None maps to -1).
FILL_CLASS_CODES = {mc: code for code, mc in enumerate(MissClass)}
FILL_CLASSES_BY_CODE = tuple(MissClass)


@dataclass(slots=True)
class NurapidTagEntry(Entry):
    """Tag entry carrying a forward pointer into the shared data array."""

    fwd: "Optional[FramePtr]" = None
    #: Busy marker (Section 3.1): set while a read from a farther
    #: d-group is in progress so replacement invalidations are inhibited.
    busy: bool = False
    #: Consecutive remote reads of a C block through this tag copy —
    #: drives the optional C-migration extension.
    remote_reads: int = 0

    def invalidate(self) -> None:  # noqa: D102 - see Entry.invalidate
        # Explicit base call: @dataclass(slots=True) rebuilds the class,
        # which breaks zero-argument super()'s __class__ cell.
        Entry.invalidate(self)
        self.fwd = None
        self.busy = False
        self.remote_reads = 0


def replacement_category(entry: Entry) -> int:
    """Section 3.3.2 victim ordering: invalid < private < shared."""
    if not entry.valid:
        return 0
    if entry.state in (CoherenceState.EXCLUSIVE, CoherenceState.MODIFIED):
        return 1
    return 2  # SHARED or COMMUNICATION


@dataclass
class TagArray:
    """One core's private tag array."""

    core: int
    geometry: CacheGeometry
    array: SetAssociativeArray = field(init=False)

    def __post_init__(self) -> None:
        self.array = SetAssociativeArray(self.geometry, NurapidTagEntry)

    def lookup(self, address: int, touch: bool = True) -> "Optional[NurapidTagEntry]":
        entry = self.array.lookup(address, touch=touch)
        return entry  # type: ignore[return-value]

    def victim(self, address: int) -> NurapidTagEntry:
        return self.array.victim(address, replacement_category)  # type: ignore[return-value]

    def install(
        self,
        entry: NurapidTagEntry,
        address: int,
        state: CoherenceState,
        fwd: "Optional[FramePtr]",
    ) -> None:
        self.array.install(entry, address, state)
        entry.fwd = fwd
        entry.busy = False

    def ptr_of(self, address: int, entry: NurapidTagEntry) -> TagPtr:
        """Reverse-pointer coordinates of ``entry``."""
        set_index = self.geometry.set_index(address)
        way = self.array.way_of(set_index, entry)
        return TagPtr(self.core, set_index, way)

    def entry_at(self, ptr: TagPtr) -> NurapidTagEntry:
        if ptr.core != self.core:
            raise ValueError(f"pointer targets core {ptr.core}, not {self.core}")
        return self.array.entry_at(ptr.set_index, ptr.way)  # type: ignore[return-value]

    def address_of(self, set_index: int, entry: NurapidTagEntry) -> int:
        return self.array.block_address(set_index, entry)

    def export_columns(self) -> dict:
        """Dense ``[sets, ways]`` column arrays of every entry field.

        The state_dict-shaped export the batch kernel's
        :class:`~repro.kernel.soa.L2Pool` is built from: one numpy
        array per :class:`NurapidTagEntry` field (states and fill
        classes as small-int codes, forward pointers split into dgroup/
        frame columns with -1 for None) plus the array's LRU ``clock``.
        Lossless: :meth:`import_columns` restores an identical array.
        """
        geo = self.geometry
        shape = (geo.num_sets, geo.associativity)
        columns = {
            "tag": np.zeros(shape, dtype=np.int64),
            "state": np.full(shape, STATE_CODES[CoherenceState.INVALID],
                             dtype=np.int8),
            "lru": np.zeros(shape, dtype=np.int64),
            "dirty": np.zeros(shape, dtype=bool),
            "fill_class": np.full(shape, -1, dtype=np.int8),
            "reuse": np.zeros(shape, dtype=np.int64),
            "fwd_dgroup": np.full(shape, -1, dtype=np.int16),
            "fwd_frame": np.full(shape, -1, dtype=np.int32),
            "busy": np.zeros(shape, dtype=bool),
            "remote_reads": np.zeros(shape, dtype=np.int64),
            "clock": self.array._clock,
        }
        for set_index, way, entry in self.array.entries():
            columns["tag"][set_index, way] = entry.tag
            columns["state"][set_index, way] = STATE_CODES[entry.state]
            columns["lru"][set_index, way] = entry.lru
            columns["dirty"][set_index, way] = entry.dirty
            if entry.fill_class is not None:
                columns["fill_class"][set_index, way] = (
                    FILL_CLASS_CODES[entry.fill_class]
                )
            columns["reuse"][set_index, way] = entry.reuse
            if entry.fwd is not None:
                columns["fwd_dgroup"][set_index, way] = entry.fwd.dgroup
                columns["fwd_frame"][set_index, way] = entry.fwd.frame
            columns["busy"][set_index, way] = entry.busy
            columns["remote_reads"][set_index, way] = entry.remote_reads
        return columns

    def import_columns(self, columns: dict) -> None:
        """Restore an :meth:`export_columns` snapshot (its inverse)."""
        for set_index, way, entry in self.array.entries():
            entry.tag = int(columns["tag"][set_index, way])
            entry.state = STATES_BY_CODE[int(columns["state"][set_index, way])]
            entry.lru = int(columns["lru"][set_index, way])
            entry.dirty = bool(columns["dirty"][set_index, way])
            fill_code = int(columns["fill_class"][set_index, way])
            entry.fill_class = (
                FILL_CLASSES_BY_CODE[fill_code] if fill_code >= 0 else None
            )
            entry.reuse = int(columns["reuse"][set_index, way])
            dgroup = int(columns["fwd_dgroup"][set_index, way])
            entry.fwd = (
                FramePtr(dgroup, int(columns["fwd_frame"][set_index, way]))
                if dgroup >= 0 else None
            )
            entry.busy = bool(columns["busy"][set_index, way])
            entry.remote_reads = int(columns["remote_reads"][set_index, way])
        self.array._clock = int(columns["clock"])

    def state_dict(self) -> dict:
        return {"core": self.core, "entries": self.array.state_dict()}

    def load_state_dict(self, state: dict, path: str = "tags") -> None:
        from repro.common import serialization
        from repro.common.serialization import StateDictError

        core = serialization.require(state, "core", path)
        if core != self.core:
            raise StateDictError(
                f"{path}.core", f"snapshot is core {core}, this array is {self.core}"
            )
        self.array.load_state_dict(
            serialization.require(state, "entries", path), f"{path}.entries"
        )
