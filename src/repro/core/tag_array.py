"""CMP-NuRAPID's private per-core tag arrays (Section 2.2.2).

Each core has its own tag array placed close to it, snooping on the bus
like an SMP private cache.  To let multiple tag arrays point at a single
shared data copy, each array holds **twice** the entries needed to cover
one d-group (doubled sets, same associativity — the paper's 6%-overhead
compromise that performs almost as well as quadrupling).

Tag entries extend the generic :class:`~repro.caches.base.Entry` with
the forward pointer.  The replacement *category* order — invalid, then
private, then shared — implements Section 3.3.2's preference to avoid
evicting shared blocks (whose replacement costs a BusRepl broadcast).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.caches.base import Entry, SetAssociativeArray
from repro.coherence.states import CoherenceState
from repro.common.params import CacheGeometry
from repro.core.pointers import FramePtr, TagPtr


@dataclass(slots=True)
class NurapidTagEntry(Entry):
    """Tag entry carrying a forward pointer into the shared data array."""

    fwd: "Optional[FramePtr]" = None
    #: Busy marker (Section 3.1): set while a read from a farther
    #: d-group is in progress so replacement invalidations are inhibited.
    busy: bool = False
    #: Consecutive remote reads of a C block through this tag copy —
    #: drives the optional C-migration extension.
    remote_reads: int = 0

    def invalidate(self) -> None:  # noqa: D102 - see Entry.invalidate
        # Explicit base call: @dataclass(slots=True) rebuilds the class,
        # which breaks zero-argument super()'s __class__ cell.
        Entry.invalidate(self)
        self.fwd = None
        self.busy = False
        self.remote_reads = 0


def replacement_category(entry: Entry) -> int:
    """Section 3.3.2 victim ordering: invalid < private < shared."""
    if not entry.valid:
        return 0
    if entry.state in (CoherenceState.EXCLUSIVE, CoherenceState.MODIFIED):
        return 1
    return 2  # SHARED or COMMUNICATION


@dataclass
class TagArray:
    """One core's private tag array."""

    core: int
    geometry: CacheGeometry
    array: SetAssociativeArray = field(init=False)

    def __post_init__(self) -> None:
        self.array = SetAssociativeArray(self.geometry, NurapidTagEntry)

    def lookup(self, address: int, touch: bool = True) -> "Optional[NurapidTagEntry]":
        entry = self.array.lookup(address, touch=touch)
        return entry  # type: ignore[return-value]

    def victim(self, address: int) -> NurapidTagEntry:
        return self.array.victim(address, replacement_category)  # type: ignore[return-value]

    def install(
        self,
        entry: NurapidTagEntry,
        address: int,
        state: CoherenceState,
        fwd: "Optional[FramePtr]",
    ) -> None:
        self.array.install(entry, address, state)
        entry.fwd = fwd
        entry.busy = False

    def ptr_of(self, address: int, entry: NurapidTagEntry) -> TagPtr:
        """Reverse-pointer coordinates of ``entry``."""
        set_index = self.geometry.set_index(address)
        way = self.array.way_of(set_index, entry)
        return TagPtr(self.core, set_index, way)

    def entry_at(self, ptr: TagPtr) -> NurapidTagEntry:
        if ptr.core != self.core:
            raise ValueError(f"pointer targets core {ptr.core}, not {self.core}")
        return self.array.entry_at(ptr.set_index, ptr.way)  # type: ignore[return-value]

    def address_of(self, set_index: int, entry: NurapidTagEntry) -> int:
        return self.array.block_address(set_index, entry)

    def state_dict(self) -> dict:
        return {"core": self.core, "entries": self.array.state_dict()}

    def load_state_dict(self, state: dict, path: str = "tags") -> None:
        from repro.common import serialization
        from repro.common.serialization import StateDictError

        core = serialization.require(state, "core", path)
        if core != self.core:
            raise StateDictError(
                f"{path}.core", f"snapshot is core {core}, this array is {self.core}"
            )
        self.array.load_state_dict(
            serialization.require(state, "entries", path), f"{path}.entries"
        )
