"""CMP-NuRAPID: hybrid private-tag / shared-data L2 (Sections 2 and 3).

The controller combines:

* **private per-core tag arrays** snooping a split-transaction bus,
  with forward pointers into
* **a shared data array** of four single-ported 2 MB d-groups reached
  through a crossbar, with reverse pointers back to the owner tag;

and implements the paper's three optimizations:

* **Controlled replication (CR, Section 3.1)** — a read miss that finds
  a clean on-chip copy takes only a *tag* copy: the holder returns its
  forward pointer on the bus's pointer wires instead of the data.  On
  the block's *second* use the reader replicates the data into its
  closest d-group.  Replacing a shared data copy broadcasts ``BusRepl``
  so tag entries pointing at the dying frame are invalidated — unless
  a sharer has its own replica (its pointer names a different frame).
* **In-situ communication (ISC, Section 3.2)** — the MESIC protocol's C
  state lets a writer and its readers share one *dirty* copy.  A read
  miss on a dirty block relocates the single copy into the reader's
  closest d-group and repoints every sharer; a write miss on a dirty
  block joins the communication group and writes the copy *in place*;
  a write hit in C writes through from L1 and posts a ``BusRdX`` that
  invalidates other sharers' L1 copies while their tag copies stay in C.
* **Capacity stealing (CS, Section 3.3)** — private blocks are placed
  in the closest d-group and promoted there on reuse (*fastest* policy
  by default); replacement demotes private victims step-by-step along
  the core's staggered d-group preference ranking into neighbours'
  under-used d-groups, stopping at a randomly chosen d-group; shared
  victims are evicted (never demoted) to avoid dangling reverse
  pointers.

Timing: a hit costs the tag latency plus the crossbar access to the
serving d-group; a miss adds the 32-cycle bus and either a remote
d-group access (on-chip supply / pointer return) or the 300-cycle
memory.  The ``BusRdX`` posted on a C-state write hit and the L1
write-through are treated as posted (non-blocking) operations — they
consume bus bandwidth (counted in bus stats) but do not stall the
store, mirroring how invalidations retire behind a store buffer.

Concurrency races (Section 3.1's busy bits and queue re-probe) cannot
arise in this atomic trace-driven model, but the same mechanism is used
internally: frames being read mid-operation are *protected* from the
demotion/eviction chains, exactly what the busy bit achieves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.caches.design import L2Design
from repro.coherence import mesic
from repro.coherence.mesic import DataAction
from repro.coherence.states import CoherenceState
from repro.common.params import BUS_LATENCY, MEMORY_LATENCY, NurapidParams
from repro.common.rng import DEFAULT_SEED, stream
from repro.common.stats import BusStats, DgroupStats
from repro.common.types import Access, AccessResult, MissClass, block_address
from repro.core.data_array import DataArray
from repro.core.pointers import FramePtr, TagPtr
from repro.core.tag_array import NurapidTagEntry, TagArray
from repro.interconnect.bus import BusOp
from repro.interconnect.crossbar import Crossbar
from repro.latency.tables import dgroup_preferences
from repro.obs import events as ev

M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741 - matches the protocol literature
C = CoherenceState.COMMUNICATION


@dataclass
class NurapidCounters:
    """Optimization-level event counts (ablation reporting)."""

    pointer_returns: int = 0
    replications: int = 0
    relocations: int = 0
    promotions: int = 0
    demotions: int = 0
    shared_evictions: int = 0
    writebacks: int = 0
    upgrades: int = 0
    c_writes: int = 0
    c_migrations: int = 0


class NurapidCache(L2Design):
    """The CMP-NuRAPID L2 design."""

    name = "cmp-nurapid"

    #: Armed by the harness's ``race-delay-repl`` fault (sticky; needs
    #: an event queue): the next shared-frame eviction frees the frame
    #: *before* its BusRepl invalidations deliver, leaving stale tag
    #: pointers naming a dead frame until the deferred delivery fires.
    race_delay_repl = False
    #: Human-readable description of the last delayed BusRepl race.
    last_race = None
    #: Mesh NoC set by :func:`repro.interconnect.mesh.attach_mesh`
    #: (``--bus-model mesh``); None under the bus backends.  When
    #: attached, sharer enumeration routes through its directory, the
    #: tag install/invalidate chokepoints keep the sharer vectors
    #: current, and invalidations deliver as hop-timed mesh messages.
    noc = None

    def __init__(
        self,
        params: "NurapidParams | None" = None,
        bus_latency: int = BUS_LATENCY,
        memory_latency: int = MEMORY_LATENCY,
        enable_cr: bool = True,
        enable_isc: bool = True,
        seed: int = DEFAULT_SEED,
        preferences: "tuple[tuple[int, ...], ...] | None" = None,
    ) -> None:
        self.params = params or NurapidParams()
        super().__init__(self.params.block_size)
        self.bus_latency = bus_latency
        self.memory_latency = memory_latency
        self.enable_cr = enable_cr
        self.enable_isc = enable_isc
        self.num_cores = self.params.num_cores

        # ``preferences`` overrides Figure 1's staggered ranking (used
        # by the ranking ablation); each row must start with the core's
        # own d-group.
        self.prefs = preferences or dgroup_preferences(
            self.num_cores, self.params.num_dgroups
        )
        self.tags = [
            TagArray(core, self.params.tag_geometry) for core in range(self.num_cores)
        ]
        self.data = DataArray(self.params.num_dgroups, self.params.frames_per_dgroup)
        self.crossbar = Crossbar(self.params.dgroup_latencies)
        self.bus_stats = BusStats()
        self.dgroup_stats = DgroupStats()
        self.counters = NurapidCounters()
        self._rng = stream("nurapid.replacement", seed)
        self._protect: "set[FramePtr]" = set()

    def reset_stats(self) -> None:
        """Clear access, d-group, and bus statistics (post-warm-up)."""
        super().reset_stats()
        self.dgroup_stats = DgroupStats()
        self.bus_stats = BusStats()
        self.counters = NurapidCounters()
        if self.noc is not None:
            self.noc.reset_stats()

    # ------------------------------------------------------------------
    # Small helpers

    def closest(self, core: int) -> int:
        """The d-group a core places and promotes its blocks into."""
        return self.prefs[core][0]

    def batch_fast_spec(self):
        """The batch kernel's fast-class contract (see ``BatchFastSpec``).

        CMP-NuRAPID read hits are side-effect-free exactly when they
        trigger none of the three optimizations: an E/M hit served from
        the core's closest d-group (no promotion, under either
        promotion policy), an S hit that cannot replicate, or a C hit
        with the migration extension disabled.  The mesh NoC routes
        sharer enumeration through a directory the kernel does not
        mirror, so a mesh-attached design stays scalar-only.
        """
        if self.noc is not None:
            return None
        from repro.caches.design import BatchFastSpec

        return BatchFastSpec(
            tag_geometry=self.params.tag_geometry,
            num_cores=self.num_cores,
            num_dgroups=self.params.num_dgroups,
            tag_latency=self.params.tag_latency,
            closest=tuple(self.closest(core) for core in range(self.num_cores)),
            enable_cr=self.enable_cr,
            replicate_on_use=self.params.replicate_on_use,
            c_migration_threshold=self.params.c_migration_threshold,
        )

    def _record_bus(
        self, op: BusOp, core: "Optional[int]" = None,
        address: "Optional[int]" = None,
    ) -> None:
        self.bus_stats.record(op.value)
        if self.noc is not None and address is not None:
            # MESIC runs over the private tag arrays, not through
            # ``MeshNoC.issue``; report the transaction so request/
            # forward/response hops are still accounted on the mesh.
            self.noc.record_protocol_message(core, address)
        if self.tracer.enabled:
            self.tracer.emit(
                ev.BUS, cycle=self.current_time, core=core, address=address,
                op=op.value,
            )

    def _trace_transition(
        self, core: int, address: int, old: CoherenceState,
        new: CoherenceState, trigger: str,
    ) -> None:
        """Emit a MESIC transition record (call sites guard on enabled)."""
        self.tracer.emit(
            ev.TRANSITION, cycle=self.current_time, core=core, address=address,
            **{"from": old.value, "to": new.value, "trigger": trigger},
        )

    def _dgroup_latency(self, core: int, dgroup: int) -> int:
        return self.crossbar.access(core, dgroup, now=self.current_time)

    def _sharers(self, address: int) -> "Iterator[tuple[int, NurapidTagEntry]]":
        if self.noc is not None:
            # Directory-filtered enumeration: visit only the recorded
            # holders (ascending core order matches the broadcast scan).
            # The lookup guard keeps an over-approximating vector
            # harmless — a recorded non-holder yields nothing, exactly
            # like a snooped agent without a copy.
            for core in self.noc.directory.holders(address):
                entry = self.tags[core].lookup(address, touch=False)
                if entry is not None:
                    yield core, entry
            return
        for core in range(self.num_cores):
            entry = self.tags[core].lookup(address, touch=False)
            if entry is not None:
                yield core, entry

    def _signals(self, address: int, except_core: int) -> "tuple[bool, bool]":
        """Wired-OR shared and dirty bus signals for ``address``."""
        shared = dirty = False
        for core, entry in self._sharers(address):
            if core == except_core:
                continue
            shared = shared or entry.state in (E, S)
            dirty = dirty or entry.state.is_dirty
        return shared, dirty

    def _invalidate_tag(
        self, core: int, entry: NurapidTagEntry, address: int,
        trigger: str = "invalidate",
    ) -> None:
        """Drop one tag copy and (inclusion) its L1 blocks."""
        if self.tracer.enabled and entry.state is not I:
            self._trace_transition(core, address, entry.state, I, trigger)
        entry.invalidate()
        if self.noc is not None:
            self.noc.directory.discard(address, core)
        self._invalidate_l1(core, address)
        self._touch(address=address)

    def _owner_entry(self, ptr: FramePtr) -> NurapidTagEntry:
        rev = self.data.frame(ptr).rev
        if rev is None:
            raise RuntimeError(f"frame {ptr} has no reverse pointer")
        return self.tags[rev.core].entry_at(rev)

    # ------------------------------------------------------------------
    # Replacement machinery (Section 3.3.2)

    def _evict_frame(self, ptr: FramePtr) -> None:
        """Data replacement of one frame, including the BusRepl protocol.

        Shared blocks (S or C) are evicted — never demoted — and the
        BusRepl broadcast invalidates every tag entry whose forward
        pointer names the dying frame.  Sharers holding their own
        replica point elsewhere and survive, as Section 3.1 describes.
        Private blocks invalidate only their owner tag.
        """
        frame = self.data.frame(ptr)
        address = frame.address
        owner = self._owner_entry(ptr)
        if owner.fwd != ptr:
            raise RuntimeError(
                f"reverse pointer of {ptr} names a tag not pointing back"
            )
        if frame.dirty:
            self.counters.writebacks += 1
        shared = owner.state in (S, C)
        if self.tracer.enabled:
            rev = frame.rev
            self.tracer.emit(
                ev.EVICTION, cycle=self.current_time,
                core=rev.core if rev is not None else None,
                address=address, dgroup=ptr.dgroup,
                shared=shared, dirty=frame.dirty,
            )
        if shared:
            self.counters.shared_evictions += 1
            self._record_bus(BusOp.BUS_REPL, address=address)
            if self.race_delay_repl and self.queue is not None:
                # Injected race: the frame dies now, but the BusRepl
                # invalidations deliver late — sharers keep forward
                # pointers into a freed (soon re-occupied) frame.
                self.race_delay_repl = False
                self.last_race = (
                    f"race-delay-repl: BusRepl @{address:#x} frame {ptr} "
                    "freed before invalidation delivery"
                )
                self.queue.schedule(
                    2 * self.bus_latency, self._deliver_bus_repl,
                    (address, ptr), label="bus-repl-late",
                    track="nurapid-repl",
                )
            elif self.noc is not None and self.queue is not None:
                # Mesh backend: BusRepl invalidations are hop-timed
                # forwards from the home bank (drained before the frame
                # is freed below, same as the broadcast's sweep).
                self._forward_invalidations(
                    address,
                    [
                        (core, self._deliver_repl_invalidation,
                         (core, address, ptr))
                        for core, entry in list(self._sharers(address))
                        if entry.fwd == ptr and not entry.busy
                    ],
                    label="mesh-repl",
                )
            else:
                for core, entry in list(self._sharers(address)):
                    if entry.fwd == ptr and not entry.busy:
                        self._invalidate_tag(core, entry, address, trigger="BusRepl")
        else:
            rev = frame.rev
            assert rev is not None
            self._invalidate_tag(rev.core, owner, address, trigger="eviction")
        self._touch(address=address, frame=ptr)
        self.data.free(ptr)

    def _deliver_bus_repl(self, address: int, ptr: FramePtr) -> None:
        """Late BusRepl delivery (the tail of the injected race)."""
        for core, entry in list(self._sharers(address)):
            if entry.fwd == ptr and not entry.busy:
                self._invalidate_tag(core, entry, address, trigger="BusRepl-late")

    def _deliver_repl_invalidation(
        self, core: int, address: int, ptr: FramePtr
    ) -> None:
        """Mesh delivery of one BusRepl invalidation forward."""
        entry = self.tags[core].lookup(address, touch=False)
        if entry is not None and entry.fwd == ptr and not entry.busy:
            self._invalidate_tag(core, entry, address, trigger="BusRepl")

    def _move_block(self, src: FramePtr, dst: FramePtr) -> None:
        """Move a block between frames, fixing the owner's forward pointer."""
        rev = self.data.frame(src).rev
        assert rev is not None
        self.data.move(src, dst)
        self.tags[rev.core].entry_at(rev).fwd = dst
        self._touch(address=self.data.frame(dst).address, frame=src)
        self._touch(frame=dst)

    def _make_room(
        self,
        core: int,
        dgroup: int,
        stop_group: "Optional[int]" = None,
        protect: "Iterable[FramePtr]" = (),
    ) -> int:
        """Return a free frame index in ``dgroup``, demoting as needed.

        Implements distance replacement: if the d-group is full, a
        random frame is chosen; a *shared* victim is evicted outright
        (shared blocks are never demoted), a *private* victim is demoted
        to the next-fastest d-group in ``core``'s preference ranking,
        recursively.  The chain stops — by evicting — at ``stop_group``
        (specific replacement, when a private victim freed a frame
        there) or at a randomly chosen d-group (non-specific, breaking
        the demotion cycle), or at the last-ranked d-group.
        """
        group = self.data[dgroup]
        if group.has_free():
            return group.allocate()

        pref = self.prefs[core]
        rank = pref.index(dgroup)
        if stop_group is None:
            stop_rank = int(self._rng.integers(rank, len(pref)))
            stop_group = pref[stop_rank]

        protect_set = frozenset(protect) | frozenset(self._protect)
        victim_index = group.random_occupied(self._rng, protect_set)
        if victim_index is None:
            raise RuntimeError(f"d-group {dgroup} fully protected; cannot replace")
        victim_ptr = FramePtr(dgroup, victim_index)
        owner = self._owner_entry(victim_ptr)

        last_rank = rank == len(pref) - 1
        if owner.state in (S, C) or dgroup == stop_group or last_rank:
            self._evict_frame(victim_ptr)
            return group.allocate()

        next_group = pref[rank + 1]
        free_index = self._make_room(core, next_group, stop_group, protect_set)
        self._move_block(victim_ptr, FramePtr(next_group, free_index))
        self.counters.demotions += 1
        if self.tracer.enabled:
            frame = self.data.frame(FramePtr(next_group, free_index))
            self.tracer.emit(
                ev.DEMOTION, cycle=self.current_time,
                core=frame.rev.core if frame.rev is not None else None,
                address=frame.address, dgroup=next_group,
                from_dgroup=dgroup,
            )
        return group.allocate()

    # ------------------------------------------------------------------
    # Promotion and replication

    def _promote(self, core: int, entry: NurapidTagEntry, address: int) -> None:
        """Move a private block toward the core (Section 3.3.1).

        ``fastest`` moves straight to the closest d-group;
        ``next-fastest`` moves one step up the preference ranking.  The
        displaced block — if private — is demoted into the promoted
        block's old frame (a swap); a displaced shared block is evicted
        instead, since shared blocks are never demoted.
        """
        src = entry.fwd
        assert src is not None
        pref = self.prefs[core]
        if self.params.promotion_policy == "fastest":
            target = pref[0]
        else:
            target = pref[max(pref.index(src.dgroup) - 1, 0)]
        if target == src.dgroup:
            return

        self.counters.promotions += 1
        if self.tracer.enabled:
            self.tracer.emit(
                ev.PROMOTION, cycle=self.current_time, core=core,
                address=address, dgroup=target, from_dgroup=src.dgroup,
            )
        group = self.data[target]
        if group.has_free():
            dst = FramePtr(target, group.allocate())
            self._move_block(src, dst)
            return

        victim_index = group.random_occupied(self._rng, frozenset({src}))
        if victim_index is None:
            return  # everything protected; skip the promotion
        victim_ptr = FramePtr(target, victim_index)
        victim_owner = self._owner_entry(victim_ptr)
        if victim_owner.state in (S, C):
            self._evict_frame(victim_ptr)
            dst = FramePtr(target, group.allocate())
            self._move_block(src, dst)
        else:
            # Swap: promoted block takes the victim's frame; the victim
            # demotes into the promoted block's old frame.
            if self.tracer.enabled:
                victim_frame = self.data.frame(victim_ptr)
                self.tracer.emit(
                    ev.DEMOTION, cycle=self.current_time,
                    core=victim_frame.rev.core if victim_frame.rev is not None else None,
                    address=victim_frame.address, dgroup=src.dgroup,
                    from_dgroup=target,
                )
            self._swap_blocks(src, victim_ptr)
            self.counters.demotions += 1

    def _swap_blocks(self, a: FramePtr, b: FramePtr) -> None:
        frame_a = self.data.frame(a)
        frame_b = self.data.frame(b)
        rev_a, rev_b = frame_a.rev, frame_b.rev
        assert rev_a is not None and rev_b is not None
        frame_a.address, frame_b.address = frame_b.address, frame_a.address
        frame_a.rev, frame_b.rev = rev_b, rev_a
        frame_a.dirty, frame_b.dirty = frame_b.dirty, frame_a.dirty
        self.tags[rev_a.core].entry_at(rev_a).fwd = b
        self.tags[rev_b.core].entry_at(rev_b).fwd = a
        self._touch(address=frame_a.address, frame=a)
        self._touch(address=frame_b.address, frame=b)

    def _replicate(self, core: int, entry: NurapidTagEntry, address: int) -> None:
        """CR second use: copy the block into the reader's closest d-group.

        If the replicating tag happens to *own* the source frame (an E
        block can be demoted into a farther d-group and then become
        shared, leaving its owner reading remotely), ownership of the
        old frame is handed to another sharer still pointing at it —
        or, with no such sharer, the now-unreferenced frame is freed.
        Without this, the old frame's reverse pointer would dangle.
        """
        src = entry.fwd
        assert src is not None
        closest = self.closest(core)
        entry.busy = True  # busy bit: the source must survive the chain
        try:
            free_index = self._make_room(core, closest, protect=frozenset({src}))
        finally:
            entry.busy = False
        dst = FramePtr(closest, free_index)
        my_ptr = self.tags[core].ptr_of(address, entry)
        self.data.occupy(dst, block_address(address, self.block_size), my_ptr)
        entry.fwd = dst
        self._touch(address=address, frame=dst)
        self._touch(frame=src)
        src_frame = self.data.frame(src)
        if src_frame.rev == my_ptr:
            for other_core, other in self._sharers(address):
                if other is not entry and other.fwd == src:
                    src_frame.rev = self.tags[other_core].ptr_of(address, other)
                    break
            else:
                if src_frame.dirty:
                    self.counters.writebacks += 1
                self.data.free(src)
        self.counters.replications += 1
        if self.tracer.enabled:
            self.tracer.emit(
                ev.REPLICATION, cycle=self.current_time, core=core,
                address=address, dgroup=closest, from_dgroup=src.dgroup,
            )

    def _migrate_c_block(
        self, core: int, entry: NurapidTagEntry, address: int
    ) -> None:
        """Relocate a C block's single copy next to an active reader.

        Extension beyond the paper's no-exits-from-C policy: the same
        relocation machinery as an ISC read miss, triggered by a run of
        remote reads instead of a tag miss.  All sharers stay in C and
        repoint to the new copy.
        """
        old_ptr = entry.fwd
        assert old_ptr is not None
        sharers = list(self._sharers(address))
        was_dirty = self.data.frame(old_ptr).dirty
        self.data.free(old_ptr)
        closest = self.closest(core)
        stop = old_ptr.dgroup if old_ptr.dgroup != closest else None
        free_index = self._make_room(core, closest, stop)
        new_ptr = FramePtr(closest, free_index)
        rev = self.tags[core].ptr_of(address, entry)
        self.data.occupy(new_ptr, address, rev, dirty=was_dirty)
        for _, sharer in sharers:
            sharer.fwd = new_ptr
        self._touch(address=address, frame=new_ptr)
        self._touch(frame=old_ptr)
        self.counters.c_migrations += 1
        if self.tracer.enabled:
            self.tracer.emit(
                ev.C_MIGRATION, cycle=self.current_time, core=core,
                address=address, dgroup=closest, from_dgroup=old_ptr.dgroup,
            )

    def bandwidth_report(self) -> "dict[str, object]":
        """Traffic summary validating the paper's bandwidth claim.

        Section 3.3.2 argues demotions are infrequent enough that
        single-ported, unpipelined tag arrays and d-groups suffice.
        This report gives per-d-group access counts alongside the
        block-movement (promotion/demotion/migration) counts so the
        claim can be checked quantitatively.
        """
        accesses_per_dgroup = {
            group.index: self.crossbar.dgroup_traffic(group.index)
            for group in self.data.dgroups
        }
        total_accesses = sum(accesses_per_dgroup.values())
        movements = (
            self.counters.promotions
            + self.counters.demotions
            + self.counters.relocations
            + self.counters.c_migrations
        )
        return {
            "accesses_per_dgroup": accesses_per_dgroup,
            "total_data_accesses": total_accesses,
            "block_movements": movements,
            "movement_fraction": movements / total_accesses if total_accesses else 0.0,
        }

    # ------------------------------------------------------------------
    # Sharer invalidation (write upgrades / write misses on clean copies)

    def _invalidate_other_sharers(
        self, address: int, keep_core: int, keep_entry: "Optional[NurapidTagEntry]"
    ) -> None:
        """Invalidate every other tag copy, freeing frames they own.

        If the surviving entry points at a frame owned by a dying
        sharer, ownership transfers (the reverse pointer is rewritten)
        instead of freeing the frame under the survivor's feet.
        """
        victims = [
            (core, entry)
            for core, entry in list(self._sharers(address))
            if core != keep_core
        ]
        if self.noc is not None and self.queue is not None and victims:
            # Mesh backend: the invalidations travel as hop-timed
            # forward messages from the home directory bank and are
            # drained before this call returns.  Per-victim handling is
            # order-independent (each victim touches only its own tag,
            # its own L1, and — as owner — its own frame; ownership
            # transfer rewrites the reverse pointer to the survivor,
            # which no other victim examines), so delivery by hop
            # distance leaves the final state identical to the bus's
            # ascending-core sweep.
            self._forward_invalidations(
                address,
                [
                    (core, self._deliver_invalidation,
                     (core, address, keep_core, keep_entry is not None))
                    for core, _entry in victims
                ],
                label="mesh-inval",
            )
            return
        for core, entry in victims:
            self._invalidate_one_sharer(core, entry, address, keep_core, keep_entry)

    def _invalidate_one_sharer(
        self,
        core: int,
        entry: NurapidTagEntry,
        address: int,
        keep_core: int,
        keep_entry: "Optional[NurapidTagEntry]",
    ) -> None:
        """Invalidate one dying sharer, freeing or transferring its frame."""
        keep_ptr = keep_entry.fwd if keep_entry is not None else None
        fwd = entry.fwd
        if fwd is not None:
            frame = self.data.frame(fwd)
            tag_ptr = self.tags[core].ptr_of(address, entry)
            if frame.rev == tag_ptr:  # this sharer owns its frame
                if keep_ptr == fwd and keep_entry is not None:
                    frame.rev = self.tags[keep_core].ptr_of(address, keep_entry)
                else:
                    if frame.dirty:
                        self.counters.writebacks += 1
                    self.data.free(fwd)
            self._touch(frame=fwd)
        self._invalidate_tag(core, entry, address)

    def _deliver_invalidation(
        self, core: int, address: int, keep_core: int, keep_valid: bool
    ) -> None:
        """Mesh delivery of one invalidation (args picklable by design)."""
        entry = self.tags[core].lookup(address, touch=False)
        if entry is None:
            return
        keep_entry = (
            self.tags[keep_core].lookup(address, touch=False)
            if keep_valid else None
        )
        self._invalidate_one_sharer(core, entry, address, keep_core, keep_entry)

    def _forward_invalidations(
        self,
        address: int,
        deliveries: "list[tuple[int, object, tuple]]",
        label: str,
    ) -> None:
        """Schedule invalidation forwards on the event queue and drain.

        Each delivery rides the mesh from the block's home directory
        bank to its target core (the forward leg of the transaction;
        the request leg is accounted by ``_record_bus``).  Everything
        fires inside this call — no mesh event is ever pending at a
        checkpoint boundary.
        """
        noc = self.noc
        queue = self.queue
        base = max(self.current_time, queue.now)
        home = noc.directory.home(address)
        last = base
        for core, action, args in deliveries:
            time = (
                base + noc.router_latency
                + noc.hop_latency * noc.topology.hops(home, core)
            )
            last = max(last, time)
            queue.at(
                time, action, args, label=label, track=("nurapid-inval", core)
            )
        queue.run_until(last)

    # ------------------------------------------------------------------
    # Hit handling

    def _hit(self, access: Access, address: int, entry: NurapidTagEntry) -> AccessResult:
        core = access.core
        entry.reuse += 1
        served_from = entry.fwd
        assert served_from is not None
        closest = self.closest(core)
        distance = 0 if served_from.dgroup == closest else 1
        latency = self.params.tag_latency + self._dgroup_latency(
            core, served_from.dgroup
        )

        if access.is_write:
            old_state = entry.state
            action = mesic.processor_write(entry.state)
            if BusOp.BUS_UPG in action.bus_ops:
                self.counters.upgrades += 1
                self._record_bus(BusOp.BUS_UPG, core, address)
                latency += self.bus_latency
                self._invalidate_other_sharers(address, core, entry)
                # The upgraded copy is now private; claim frame ownership.
                frame = self.data.frame(served_from)
                frame.rev = self.tags[core].ptr_of(address, entry)
            if BusOp.BUS_RDX in action.bus_ops:
                # C-state write: posted invalidate of other sharers' L1
                # copies; their tag copies stay in C (Section 3.2).
                self.counters.c_writes += 1
                self._record_bus(BusOp.WR_THRU, core, address)
                self._record_bus(BusOp.BUS_RDX, core, address)
                if self.tracer.enabled:
                    self.tracer.emit(
                        ev.C_WRITE, cycle=self.current_time, core=core,
                        address=address, dgroup=served_from.dgroup,
                    )
                for other in range(self.num_cores):
                    if other != core:
                        self._invalidate_l1(other, address)
            entry.state = action.next_state
            if self.tracer.enabled and old_state is not entry.state:
                self._trace_transition(core, address, old_state, entry.state, "PrWr")
            self.data.frame(served_from).dirty = True
            if (
                entry.state is M
                and not action.bus_ops
                and served_from.dgroup != closest
            ):
                entry.busy = True
                try:
                    self._promote(core, entry, address)
                finally:
                    entry.busy = False
        elif entry.state in (E, M):
            if served_from.dgroup != closest:
                entry.busy = True
                try:
                    self._promote(core, entry, address)
                finally:
                    entry.busy = False
        elif entry.state is S and self.enable_cr:
            uses = entry.reuse + 1  # the fill counted as the first use
            if served_from.dgroup != closest and uses >= self.params.replicate_on_use:
                self._replicate(core, entry, address)
        elif entry.state is C:
            # Optional extension (Section 3.2's future work): a C block
            # stuck far from an active reader migrates to that reader
            # after a run of consecutive remote reads.
            threshold = self.params.c_migration_threshold
            if threshold:
                if distance:
                    entry.remote_reads += 1
                    if entry.remote_reads >= threshold:
                        self._migrate_c_block(core, entry, address)
                        entry.remote_reads = 0
                else:
                    entry.remote_reads = 0

        self.dgroup_stats.record(distance, is_hit=True)
        return AccessResult(
            MissClass.HIT,
            latency,
            dgroup_distance=distance,
            write_through=entry.state is C,
        )

    # ------------------------------------------------------------------
    # Miss handling

    def _handle_tag_victim(self, core: int, victim: NurapidTagEntry, address: int) -> "Optional[int]":
        """Make a tag slot available; returns a specific-stop d-group.

        Section 3.3.2's data-replacement cases.  The return value is the
        d-group where a private victim's data eviction freed a frame
        (the *specific* target for distance replacement), or None when
        demotions must stop at a random d-group (*non-specific*).
        """
        if not victim.valid:
            return None
        set_index = self.params.tag_geometry.set_index(address)
        victim_address = self.tags[core].address_of(set_index, victim)
        fwd = victim.fwd
        assert fwd is not None
        frame = self.data.frame(fwd)
        victim_ptr = self.tags[core].ptr_of(victim_address, victim)
        is_owner = frame.rev == victim_ptr
        closest = self.closest(core)

        if victim.state in (E, M):
            # Private: evict the data wherever it lives.
            if frame.dirty:
                self.counters.writebacks += 1
            self._invalidate_tag(core, victim, victim_address)
            self.data.free(fwd)
            self._touch(frame=fwd)
            return fwd.dgroup if fwd.dgroup != closest else None
        if is_owner:
            # Shared owner: evict the data copy with a BusRepl.
            self._evict_frame(fwd)
            return fwd.dgroup if fwd.dgroup != closest else None
        # Shared non-owner: drop only the tag copy; the data stays for
        # the other sharers.
        self._invalidate_tag(core, victim, victim_address)
        return None

    def _fill_tag(
        self,
        core: int,
        address: int,
        victim: NurapidTagEntry,
        state: CoherenceState,
        fwd: "Optional[FramePtr]",
        fill_class: MissClass,
    ) -> NurapidTagEntry:
        self.tags[core].install(victim, address, state, fwd)
        if self.noc is not None:
            self.noc.directory.add(address, core)
        victim.fill_class = fill_class
        self._touch(address=address)
        if self.tracer.enabled:
            self._trace_transition(core, address, I, state, "fill")
        return victim

    def _fill_data(
        self,
        core: int,
        address: int,
        entry: NurapidTagEntry,
        stop_group: "Optional[int]",
        dirty: bool,
        protect: "Iterable[FramePtr]" = (),
    ) -> FramePtr:
        closest = self.closest(core)
        free_index = self._make_room(core, closest, stop_group, protect)
        ptr = FramePtr(closest, free_index)
        rev = self.tags[core].ptr_of(address, entry)
        self.data.occupy(ptr, address, rev, dirty=dirty)
        entry.fwd = ptr
        self._touch(address=address, frame=ptr)
        return ptr

    def _dirty_holder(self, address: int) -> "tuple[int, NurapidTagEntry]":
        for core, entry in self._sharers(address):
            if entry.state.is_dirty:
                return core, entry
        raise RuntimeError(f"dirty signal without a dirty holder for {address:#x}")

    def _any_supplier(self, address: int, except_core: int) -> "tuple[int, NurapidTagEntry]":
        for core, entry in self._sharers(address):
            if core != except_core and entry.fwd is not None:
                return core, entry
        raise RuntimeError(f"no supplier for {address:#x}")

    def _miss(self, access: Access, address: int) -> AccessResult:
        core = access.core
        shared_sig, dirty_sig = self._signals(address, core)

        if dirty_sig:
            miss_class = MissClass.RWS
        elif shared_sig:
            miss_class = MissClass.ROS
        else:
            miss_class = MissClass.CAPACITY

        victim = self.tags[core].victim(address)
        stop_group = self._handle_tag_victim(core, victim, address)
        base_latency = self.params.tag_latency + self.bus_latency

        if access.is_write:
            latency = self._write_miss(
                access, address, victim, shared_sig, dirty_sig, stop_group, base_latency
            )
        else:
            latency = self._read_miss(
                access, address, victim, shared_sig, dirty_sig, stop_group, base_latency
            )

        self.dgroup_stats.record(None, is_hit=False)
        filled = self.tags[core].lookup(address, touch=False)
        write_through = filled is not None and filled.state is C
        return AccessResult(miss_class, latency, write_through=write_through)

    def _read_miss(
        self,
        access: Access,
        address: int,
        victim: NurapidTagEntry,
        shared_sig: bool,
        dirty_sig: bool,
        stop_group: "Optional[int]",
        base_latency: int,
    ) -> int:
        core = access.core
        self._record_bus(BusOp.BUS_RD, core, address)

        if dirty_sig and not self.enable_isc:
            # MESI behaviour: the dirty holder flushes and drops to S;
            # the (now clean) copy is then shared via CR as usual.
            holder_core, holder = self._dirty_holder(address)
            if self.tracer.enabled:
                self._trace_transition(
                    holder_core, address, holder.state, S, "BusRd-flush"
                )
            holder.state = S
            assert holder.fwd is not None
            self.data.frame(holder.fwd).dirty = False
            self.counters.writebacks += 1
            dirty_sig, shared_sig = False, True

        action = mesic.processor_read(I, shared_sig, dirty_sig)

        if action.data_action is DataAction.RELOCATE:
            # ISC: move the single dirty copy next to this reader.
            sharers = list(self._sharers(address))
            _, holder = self._dirty_holder(address)
            old_ptr = holder.fwd
            assert old_ptr is not None
            self.data.free(old_ptr)
            self._touch(frame=old_ptr)
            entry = self._fill_tag(core, address, victim, C, None, MissClass.RWS)
            old_group = old_ptr.dgroup
            stop = old_group if old_group != self.closest(core) else None
            new_ptr = self._fill_data(core, address, entry, stop, dirty=True)
            for sharer_core, sharer in sharers:
                if self.tracer.enabled and sharer.state is not C:
                    self._trace_transition(
                        sharer_core, address, sharer.state, C, "BusRd-relocate"
                    )
                sharer.state = C
                sharer.fwd = new_ptr
            self.counters.relocations += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.RELOCATION, cycle=self.current_time, core=core,
                    address=address, dgroup=new_ptr.dgroup, from_dgroup=old_group,
                )
            return base_latency + self._dgroup_latency(core, old_group)

        if action.data_action is DataAction.POINTER_ONLY:
            supplier_core, supplier = self._any_supplier(address, core)
            supplier_ptr = supplier.fwd
            assert supplier_ptr is not None
            if supplier.state is E:
                if self.tracer.enabled:
                    self._trace_transition(supplier_core, address, E, S, "BusRd")
                supplier.state = S
            if self.enable_cr and self.params.replicate_on_use > 1:
                # Pointer return: tag copy only, no data copy.
                self._fill_tag(core, address, victim, S, supplier_ptr, MissClass.ROS)
                self.counters.pointer_returns += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        ev.POINTER_RETURN, cycle=self.current_time, core=core,
                        address=address, dgroup=supplier_ptr.dgroup,
                        supplier=supplier_core,
                    )
            else:
                # Uncontrolled replication: immediate data copy.
                entry = self._fill_tag(core, address, victim, S, None, MissClass.ROS)
                supplier.busy = True
                try:
                    dst = self._fill_data(
                        core, address, entry, None, dirty=False,
                        protect=frozenset({supplier_ptr}),
                    )
                finally:
                    supplier.busy = False
                self.counters.replications += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        ev.REPLICATION, cycle=self.current_time, core=core,
                        address=address, dgroup=dst.dgroup,
                        from_dgroup=supplier_ptr.dgroup,
                    )
            return base_latency + self._dgroup_latency(core, supplier_ptr.dgroup)

        # FILL_CLOSEST: off-chip capacity miss.  Memory attaches to the
        # bus (Figure 2), so the fill pays a bus data-return trip too.
        entry = self._fill_tag(core, address, victim, E, None, MissClass.CAPACITY)
        self._fill_data(core, address, entry, stop_group, dirty=False)
        return base_latency + self.memory_latency + self.bus_latency

    def _write_miss(
        self,
        access: Access,
        address: int,
        victim: NurapidTagEntry,
        shared_sig: bool,
        dirty_sig: bool,
        stop_group: "Optional[int]",
        base_latency: int,
    ) -> int:
        core = access.core

        if dirty_sig and not self.enable_isc:
            # MESI behaviour: BusRdX invalidates the dirty holder.
            self._record_bus(BusOp.BUS_RDX, core, address)
            holder_core, holder = self._dirty_holder(address)
            old_group = holder.fwd.dgroup if holder.fwd else self.closest(core)
            self._invalidate_other_sharers(address, core, None)
            entry = self._fill_tag(core, address, victim, M, None, MissClass.RWS)
            self._fill_data(core, address, entry, stop_group, dirty=True)
            return base_latency + self._dgroup_latency(core, old_group)

        action = mesic.processor_write(I, shared_sig, dirty_sig)

        if action.data_action is DataAction.WRITE_IN_PLACE:
            # ISC: join the communication group; the copy stays put,
            # close to the reader(s).
            self._record_bus(BusOp.BUS_RD, core, address)
            self._record_bus(BusOp.BUS_RDX, core, address)
            sharers = list(self._sharers(address))
            _, holder = self._dirty_holder(address)
            ptr = holder.fwd
            assert ptr is not None
            for sharer_core, sharer in sharers:
                if self.tracer.enabled and sharer.state is not C:
                    self._trace_transition(
                        sharer_core, address, sharer.state, C, "BusRdX-join"
                    )
                sharer.state = C
            self._fill_tag(core, address, victim, C, ptr, MissClass.RWS)
            self.data.frame(ptr).dirty = True
            if self.tracer.enabled:
                self.tracer.emit(
                    ev.C_WRITE, cycle=self.current_time, core=core,
                    address=address, dgroup=ptr.dgroup, join=True,
                )
            for other in range(self.num_cores):
                if other != core:
                    self._invalidate_l1(other, address)
            return base_latency + self._dgroup_latency(core, ptr.dgroup)

        # FILL_CLOSEST: MESI-style write miss.
        self._record_bus(BusOp.BUS_RDX, core, address)
        if shared_sig:
            supplier_core, supplier = self._any_supplier(address, core)
            assert supplier.fwd is not None
            source_group = supplier.fwd.dgroup
            self._invalidate_other_sharers(address, core, None)
            entry = self._fill_tag(core, address, victim, M, None, MissClass.ROS)
            self._fill_data(core, address, entry, stop_group, dirty=True)
            return base_latency + self._dgroup_latency(core, source_group)

        entry = self._fill_tag(core, address, victim, M, None, MissClass.CAPACITY)
        self._fill_data(core, address, entry, stop_group, dirty=True)
        return base_latency + self.memory_latency + self.bus_latency

    # ------------------------------------------------------------------
    # Versioned checkpointing

    def state_dict(self) -> dict:
        from repro.common import serialization

        state = super().state_dict()
        state.update(
            params=serialization.params_state(self.params),
            bus_latency=self.bus_latency,
            memory_latency=self.memory_latency,
            enable_cr=self.enable_cr,
            enable_isc=self.enable_isc,
            prefs=tuple(tuple(row) for row in self.prefs),
            tags=[tags.state_dict() for tags in self.tags],
            data=self.data.state_dict(),
            crossbar=self.crossbar.state_dict(),
            bus_stats=self.bus_stats.state_dict(),
            dgroup_stats=self.dgroup_stats.state_dict(),
            counters=serialization.scalar_fields_state(self.counters),
            rng=serialization.rng_state(self._rng),
            protect=sorted((ptr.dgroup, ptr.frame) for ptr in self._protect),
            race_delay_repl=bool(self.race_delay_repl),
            last_race=self.last_race,
        )
        if self.noc is not None:
            # Counters and geometry only; the directory's sharer
            # vectors are derived state, rebuilt from the tag arrays on
            # load (see ``_rebuild_directory``).
            state["noc"] = self.noc.state_dict()
        return state

    def load_state_dict(self, state: dict, path: str = "design") -> None:
        from repro.common import serialization
        from repro.common.serialization import StateDictError, require

        super().load_state_dict(state, path)
        self.params = serialization.params_from_state(
            NurapidParams, require(state, "params", path), f"{path}.params"
        )
        self.block_size = self.params.block_size
        self.num_cores = self.params.num_cores
        self.bus_latency = int(require(state, "bus_latency", path))
        self.memory_latency = int(require(state, "memory_latency", path))
        self.enable_cr = bool(require(state, "enable_cr", path))
        self.enable_isc = bool(require(state, "enable_isc", path))
        self.prefs = tuple(tuple(row) for row in require(state, "prefs", path))
        tags = require(state, "tags", path)
        if len(tags) != self.num_cores:
            raise StateDictError(
                f"{path}.tags",
                f"{len(tags)} tag arrays in snapshot, num_cores is "
                f"{self.num_cores}",
            )
        self.tags = [
            TagArray(core, self.params.tag_geometry)
            for core in range(self.num_cores)
        ]
        for core, (array, tag_state) in enumerate(zip(self.tags, tags)):
            array.load_state_dict(tag_state, f"{path}.tags[{core}]")
        self.data = DataArray(
            self.params.num_dgroups, self.params.frames_per_dgroup
        )
        self.data.load_state_dict(require(state, "data", path), f"{path}.data")
        # The crossbar object is kept (its event queue must survive);
        # only its contents are restored.
        self.crossbar.load_state_dict(
            require(state, "crossbar", path), f"{path}.crossbar"
        )
        self.bus_stats.load_state_dict(
            require(state, "bus_stats", path), f"{path}.bus_stats"
        )
        self.dgroup_stats.load_state_dict(
            require(state, "dgroup_stats", path), f"{path}.dgroup_stats"
        )
        serialization.load_scalar_fields(
            self.counters, require(state, "counters", path), f"{path}.counters"
        )
        serialization.load_rng(self._rng, require(state, "rng", path), f"{path}.rng")
        self._protect = {
            FramePtr(int(dgroup), int(frame))
            for dgroup, frame in require(state, "protect", path)
        }
        self.race_delay_repl = bool(require(state, "race_delay_repl", path))
        self.last_race = state.get("last_race")
        if self.noc is not None:
            noc_state = state.get("noc")
            if noc_state is not None:
                # Resizes the topology/directory when the snapshot's
                # tile count differs from the freshly built default.
                self.noc.load_state_dict(noc_state, f"{path}.noc")
            self._rebuild_directory()

    def _rebuild_directory(self) -> None:
        """Recompute the mesh directory's vectors from the tag arrays.

        Runs after every state restore, making the directory-vs-tags
        consistency invariant hold by construction on resume.
        """
        holders: "dict[int, int]" = {}
        for core, tag_array in enumerate(self.tags):
            for set_index, _way, entry in tag_array.array.valid_entries():
                address = tag_array.array.block_address(set_index, entry)
                holders[address] = holders.get(address, 0) | (1 << core)
        self.noc.directory.rebuild(holders)

    # ------------------------------------------------------------------
    # Entry point and invariants

    def _access(self, access: Access) -> AccessResult:
        address = access.address & self._block_mask
        entry = self.tags[access.core].array.lookup(address)
        if entry is not None:
            return self._hit(access, address, entry)
        return self._miss(access, address)

    def state_of(self, core: int, address: int) -> CoherenceState:
        entry = self.tags[core].lookup(
            block_address(address, self.block_size), touch=False
        )
        return entry.state if entry else I

    def check_invariants(self) -> None:
        """Verify pointer and protocol integrity (tests/debug only).

        Delegates to :func:`repro.harness.invariants.check_nurapid`
        (imported lazily — the harness imports this module), which
        checks tag-pointer/frame consistency, frame ownership and
        free-list accounting, MESIC exclusivity and C-state legality,
        and the single-dirty-copy rule.  Raises
        :class:`~repro.harness.invariants.InvariantViolation` (an
        :class:`AssertionError` subclass) with structured context.
        """
        from repro.harness.invariants import check_nurapid

        check_nurapid(self)
