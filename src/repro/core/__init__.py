"""CMP-NuRAPID: the paper's primary contribution."""

from repro.core.data_array import DataArray, DGroup, Frame
from repro.core.nurapid import NurapidCache, NurapidCounters
from repro.core.pointers import FramePtr, TagPtr
from repro.core.tag_array import NurapidTagEntry, TagArray, replacement_category

__all__ = [
    "DGroup",
    "DataArray",
    "Frame",
    "FramePtr",
    "NurapidCache",
    "NurapidCounters",
    "NurapidTagEntry",
    "TagArray",
    "TagPtr",
    "replacement_category",
]
