"""Forward and reverse pointers (Section 2.1).

Distance associativity decouples a block's set-associative way from its
physical location.  The **forward pointer** lives in a tag entry and
names the data frame holding the block; the **reverse pointer** lives in
the data frame and names the *owner* tag entry — the entry through which
replacement decisions for that frame are made.  In an 8 MB cache with
128 B blocks, 16-bit pointers suffice ([8]; a 3% capacity overhead).
"""

from __future__ import annotations

from typing import NamedTuple


class FramePtr(NamedTuple):
    """Forward pointer: (d-group index, frame index within the d-group)."""

    dgroup: int
    frame: int


class TagPtr(NamedTuple):
    """Reverse pointer: (core, set index, way) naming one tag entry."""

    core: int
    set_index: int
    way: int
