"""The shared data array and its distance groups (Section 2.2.1).

The data array is divided into d-groups — large (here 2 MB) regions
with a single uniform access latency per core.  Frames inside a d-group
are not constrained by set mapping: distance associativity lets any
block occupy any frame, located through the tag's forward pointer.
Each occupied frame carries a reverse pointer naming its owner tag
entry, used by replacement and demotion to find and update the tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.core.pointers import FramePtr, TagPtr


@dataclass
class Frame:
    """One data frame: a block-sized slot in a d-group."""

    valid: bool = False
    address: int = 0
    rev: "Optional[TagPtr]" = None
    dirty: bool = False

    def clear(self) -> None:
        self.valid = False
        self.address = 0
        self.rev = None
        self.dirty = False


class DGroup:
    """One distance group: a pool of frames with a free list."""

    def __init__(self, index: int, num_frames: int) -> None:
        self.index = index
        self.frames = [Frame() for _ in range(num_frames)]
        self._free = list(range(num_frames - 1, -1, -1))

    @property
    def num_frames(self) -> int:
        return len(self.frames)

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def occupied_count(self) -> int:
        return self.num_frames - self.free_count

    def has_free(self) -> bool:
        return bool(self._free)

    def allocate(self) -> int:
        """Take a free frame index; caller must then occupy it."""
        if not self._free:
            raise RuntimeError(f"d-group {self.index} has no free frames")
        return self._free.pop()

    def release(self, frame_index: int) -> None:
        frame = self.frames[frame_index]
        if frame.valid:
            raise RuntimeError("release of an occupied frame; free it first")
        self._free.append(frame_index)

    def random_occupied(
        self,
        rng: np.random.Generator,
        protect: "frozenset[FramePtr]" = frozenset(),
    ) -> "Optional[int]":
        """Pick a random occupied, unprotected frame (None if impossible).

        Section 3.3.2: demotion victims are chosen at random because LRU
        over thousands of frames per d-group is impractical in hardware.
        ``protect`` holds frames with a read in progress — the busy-bit
        mechanism of Section 3.1 inhibits replacing them.
        """
        occupied = self.occupied_count
        if occupied == 0:
            return None
        protected_here = {p.frame for p in protect if p.dgroup == self.index}
        if occupied <= len(protected_here):
            return None
        # Rejection-sample; occupancy is near-total in steady state.
        for _ in range(64):
            candidate = int(rng.integers(0, self.num_frames))
            if self.frames[candidate].valid and candidate not in protected_here:
                return candidate
        for candidate, frame in enumerate(self.frames):
            if frame.valid and candidate not in protected_here:
                return candidate
        return None


class DataArray:
    """All d-groups of the shared data array."""

    def __init__(self, num_dgroups: int, frames_per_dgroup: int) -> None:
        self.dgroups = [DGroup(g, frames_per_dgroup) for g in range(num_dgroups)]

    def __getitem__(self, dgroup: int) -> DGroup:
        return self.dgroups[dgroup]

    def frame(self, ptr: FramePtr) -> Frame:
        return self.dgroups[ptr.dgroup].frames[ptr.frame]

    def occupy(
        self, ptr: FramePtr, address: int, rev: TagPtr, dirty: bool = False
    ) -> None:
        """Fill an allocated frame with ``address``'s block."""
        frame = self.frame(ptr)
        if frame.valid:
            raise RuntimeError(f"frame {ptr} already occupied")
        frame.valid = True
        frame.address = address
        frame.rev = rev
        frame.dirty = dirty

    def free(self, ptr: FramePtr) -> None:
        """Evict the block in ``ptr`` and return the frame to the pool."""
        frame = self.frame(ptr)
        if not frame.valid:
            raise RuntimeError(f"frame {ptr} already free")
        frame.clear()
        self.dgroups[ptr.dgroup].release(ptr.frame)

    def move(self, src: FramePtr, dst: FramePtr) -> None:
        """Move a block between frames (promotion/demotion)."""
        src_frame = self.frame(src)
        dst_frame = self.frame(dst)
        if not src_frame.valid:
            raise RuntimeError(f"moving from free frame {src}")
        if dst_frame.valid:
            raise RuntimeError(f"moving onto occupied frame {dst}")
        dst_frame.valid = True
        dst_frame.address = src_frame.address
        dst_frame.rev = src_frame.rev
        dst_frame.dirty = src_frame.dirty
        src_frame.clear()
        self.dgroups[src.dgroup].release(src.frame)

    def frames_holding(self, address: int) -> "Iterator[FramePtr]":
        """All frames holding copies of ``address`` (O(frames); tests only)."""
        for dgroup in self.dgroups:
            for index, frame in enumerate(dgroup.frames):
                if frame.valid and frame.address == address:
                    yield FramePtr(dgroup.index, index)

    @property
    def total_occupied(self) -> int:
        return sum(group.occupied_count for group in self.dgroups)

    def state_dict(self) -> dict:
        """Columnar snapshot: occupied frames sparse, free lists in order.

        The free list's *order* is model state, not bookkeeping —
        :meth:`DGroup.allocate` pops from its end, so a resumed run must
        see the same allocation sequence.
        """
        groups = []
        for dgroup in self.dgroups:
            indices = []
            addresses = []
            rev_core = []
            rev_set = []
            rev_way = []
            dirty = []
            for index, frame in enumerate(dgroup.frames):
                if not frame.valid:
                    continue
                indices.append(index)
                addresses.append(frame.address)
                rev = frame.rev
                rev_core.append(-1 if rev is None else rev.core)
                rev_set.append(-1 if rev is None else rev.set_index)
                rev_way.append(-1 if rev is None else rev.way)
                dirty.append(frame.dirty)
            groups.append({
                "num_frames": dgroup.num_frames,
                "free": np.asarray(dgroup._free, dtype=np.int32),
                "frame": np.asarray(indices, dtype=np.int32),
                "address": np.asarray(addresses, dtype=np.int64),
                "rev_core": np.asarray(rev_core, dtype=np.int32),
                "rev_set": np.asarray(rev_set, dtype=np.int32),
                "rev_way": np.asarray(rev_way, dtype=np.int32),
                "dirty": np.asarray(dirty, dtype=bool),
            })
        return {"dgroups": groups}

    def load_state_dict(self, state: dict, path: str = "data") -> None:
        from repro.common import serialization
        from repro.common.serialization import StateDictError, require

        groups = require(state, "dgroups", path)
        if len(groups) != len(self.dgroups):
            raise StateDictError(
                f"{path}.dgroups",
                f"{len(groups)} d-groups in snapshot, this array has "
                f"{len(self.dgroups)}",
            )
        for g, (dgroup, group_state) in enumerate(zip(self.dgroups, groups)):
            gpath = f"{path}.dgroups[{g}]"
            num_frames = require(group_state, "num_frames", gpath)
            if num_frames != dgroup.num_frames:
                raise StateDictError(
                    f"{gpath}.num_frames",
                    f"snapshot has {num_frames}, this d-group has "
                    f"{dgroup.num_frames}",
                )
            free = np.asarray(require(group_state, "free", gpath))
            frame_idx = np.asarray(require(group_state, "frame", gpath))
            count = len(frame_idx)
            columns = {
                name: serialization._column_array(
                    require(group_state, name, gpath), count, f"{gpath}.{name}"
                )
                for name in ("address", "rev_core", "rev_set", "rev_way", "dirty")
            }
            occupied = set()
            for frame in dgroup.frames:
                frame.clear()
            for row in range(count):
                index = int(frame_idx[row])
                if not 0 <= index < num_frames:
                    raise StateDictError(
                        f"{gpath}.frame[{row}]",
                        f"frame {index} outside {num_frames} frames",
                    )
                if index in occupied:
                    raise StateDictError(
                        f"{gpath}.frame[{row}]", f"frame {index} listed twice"
                    )
                occupied.add(index)
                frame = dgroup.frames[index]
                frame.valid = True
                frame.address = int(columns["address"][row])
                core = int(columns["rev_core"][row])
                frame.rev = None if core < 0 else TagPtr(
                    core,
                    int(columns["rev_set"][row]),
                    int(columns["rev_way"][row]),
                )
                frame.dirty = bool(columns["dirty"][row])
            free_list = [int(index) for index in free]
            if sorted(free_list + sorted(occupied)) != list(range(num_frames)):
                raise StateDictError(
                    f"{gpath}.free",
                    f"free list ({len(free_list)}) and occupied frames "
                    f"({len(occupied)}) do not partition {num_frames} frames",
                )
            dgroup._free = free_list
