"""Cache models: L1, baseline L2 designs, and the common design API."""

from repro.caches.base import Entry, EvictionRecord, SetAssociativeArray
from repro.caches.design import L2Design
from repro.caches.ideal import IdealCache
from repro.caches.l1 import L1Cache, L1Entry, L1Stats
from repro.caches.private import PrivateCaches, UpdateProtocolCaches
from repro.caches.shared import SharedCache
from repro.caches.snuca import SnucaCache

__all__ = [
    "Entry",
    "EvictionRecord",
    "IdealCache",
    "L1Cache",
    "L1Entry",
    "L1Stats",
    "L2Design",
    "PrivateCaches",
    "SetAssociativeArray",
    "SharedCache",
    "SnucaCache",
    "UpdateProtocolCaches",
]
