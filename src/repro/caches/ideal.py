"""Ideal cache: shared capacity at private latency (Section 5.1.1).

"The ideal cache is a shared cache with the same latency as that of
each private cache" — the upper bound on what CMP-NuRAPID can achieve,
combining the capacity advantage of sharing with the 10-cycle access of
a small private cache.  Physically unrealizable; used for Figures 6
and 10.
"""

from __future__ import annotations

from repro.caches.base import SetAssociativeArray
from repro.caches.design import L2Design
from repro.coherence.states import CoherenceState
from repro.common.params import DEFAULT_NUM_CORES, MEMORY_LATENCY, IdealCacheParams
from repro.common.types import Access, AccessResult, MissClass


class IdealCache(L2Design):
    """8 MB shared array accessed at the private cache's 10 cycles."""

    name = "ideal"

    def __init__(
        self,
        params: "IdealCacheParams | None" = None,
        num_cores: int = DEFAULT_NUM_CORES,
        memory_latency: int = MEMORY_LATENCY,
    ) -> None:
        self.params = params or IdealCacheParams()
        super().__init__(self.params.geometry.block_size)
        self.num_cores = num_cores
        self.memory_latency = memory_latency
        self.array = SetAssociativeArray(self.params.geometry)

    def _access(self, access: Access) -> AccessResult:
        entry = self.array.lookup(access.address)
        if entry is not None:
            entry.reuse += 1
            if access.is_write:
                entry.dirty = True
            return AccessResult(MissClass.HIT, self.params.hit_latency)

        victim = self.array.victim(access.address)
        if victim.valid:
            evicted = self.array.block_address(
                self.params.geometry.set_index(access.address), victim
            )
            self._invalidate_all_l1(evicted, self.num_cores)
        self.array.install(victim, access.address, CoherenceState.EXCLUSIVE)
        victim.dirty = access.is_write
        return AccessResult(
            MissClass.CAPACITY, self.params.hit_latency + self.memory_latency
        )

    def state_dict(self) -> dict:
        from repro.common import serialization

        state = super().state_dict()
        state.update(
            params=serialization.params_state(self.params),
            num_cores=self.num_cores,
            memory_latency=self.memory_latency,
            array=self.array.state_dict(),
        )
        return state

    def load_state_dict(self, state: dict, path: str = "design") -> None:
        from repro.common import serialization

        super().load_state_dict(state, path)
        self.params = serialization.params_from_state(
            IdealCacheParams,
            serialization.require(state, "params", path),
            f"{path}.params",
        )
        self.block_size = self.params.geometry.block_size
        self.num_cores = int(serialization.require(state, "num_cores", path))
        self.memory_latency = int(serialization.require(state, "memory_latency", path))
        self.array = SetAssociativeArray(self.params.geometry)
        self.array.load_state_dict(
            serialization.require(state, "array", path), f"{path}.array"
        )
