"""Uniform-shared L2 baseline (Section 4.2's "uniform-shared cache").

A single 8 MB, 32-way array with 128 B blocks shared by all cores.  One
copy per block means no replication waste and no L2-level coherence
misses: the access mix contains only hits and capacity misses
(Figure 5a).  The price is Table 1's 59-cycle access — the tag must be
placed centrally, paying large RC wire delays.

Writes by one core invalidate other cores' L1 copies (the system's
L1-coherence layer); the L2 itself just tracks a dirty bit.
"""

from __future__ import annotations

from repro.caches.base import SetAssociativeArray
from repro.caches.design import L2Design
from repro.coherence.states import CoherenceState
from repro.common.params import DEFAULT_NUM_CORES, MEMORY_LATENCY, SharedCacheParams
from repro.common.types import Access, AccessResult, MissClass


class SharedCache(L2Design):
    """8 MB 32-way uniform-shared L2."""

    name = "uniform-shared"

    def __init__(
        self,
        params: "SharedCacheParams | None" = None,
        num_cores: int = DEFAULT_NUM_CORES,
        memory_latency: int = MEMORY_LATENCY,
    ) -> None:
        self.params = params or SharedCacheParams()
        super().__init__(self.params.geometry.block_size)
        self.num_cores = num_cores
        self.memory_latency = memory_latency
        self.array = SetAssociativeArray(self.params.geometry)

    def _access(self, access: Access) -> AccessResult:
        entry = self.array.lookup(access.address)
        hit_latency = self.params.hit_latency
        if entry is not None:
            entry.reuse += 1
            if access.is_write:
                entry.dirty = True
            return AccessResult(MissClass.HIT, hit_latency)

        victim = self.array.victim(access.address)
        if victim.valid:
            evicted = self.array.block_address(
                self.params.geometry.set_index(access.address), victim
            )
            # Inclusion: the evicted block leaves every core's L1.
            self._invalidate_all_l1(evicted, self.num_cores)
        self.array.install(victim, access.address, CoherenceState.EXCLUSIVE)
        victim.dirty = access.is_write
        return AccessResult(MissClass.CAPACITY, hit_latency + self.memory_latency)

    def state_dict(self) -> dict:
        from repro.common import serialization

        state = super().state_dict()
        state.update(
            params=serialization.params_state(self.params),
            num_cores=self.num_cores,
            memory_latency=self.memory_latency,
            array=self.array.state_dict(),
        )
        return state

    def load_state_dict(self, state: dict, path: str = "design") -> None:
        from repro.common import serialization

        super().load_state_dict(state, path)
        self.params = serialization.params_from_state(
            SharedCacheParams,
            serialization.require(state, "params", path),
            f"{path}.params",
        )
        self.block_size = self.params.geometry.block_size
        self.num_cores = int(serialization.require(state, "num_cores", path))
        self.memory_latency = int(serialization.require(state, "memory_latency", path))
        self.array = SetAssociativeArray(self.params.geometry)
        self.array.load_state_dict(
            serialization.require(state, "array", path), f"{path}.array"
        )
